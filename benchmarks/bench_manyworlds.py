"""Many-worlds vectorization: N scenario sweeps in one numpy-batched run.

``repro.sim.manyworlds`` stacks N stimulus scenarios ("worlds") as the
columns of one ``(n_signals, N)`` uint64 matrix and advances all of them
per cycle with fused numpy column kernels (``compile_vector``).  The win
is not SIMD width — it is amortization: one python-level pass over the
cone statements per cycle instead of N, with per-op constants pre-bound
and provably-redundant masks elided at codegen time.

This benchmark runs the *same* N-seed sweep both ways — N sequential
``Simulator`` runs sharing one hot ``CompiledDesign`` vs one
``ManyWorldsSimulator`` at N worlds — and reports aggregate cycles/second.

Acceptance bars:

* >= 5x aggregate throughput at N=32 worlds vs 32 sequential runs on the
  24-stage pipeline — asserted in smoke too (smoke only shrinks the cycle
  count; the world count stays at 32 because the bar is about per-cycle
  amortization, which a smaller N would dilute);
* per-world ``state_digest`` bit-identical to the sequential reference
  on **every** store backend (list / array / numpy scalar lanes),
  asserted always — the throughput knob is never a semantics knob.
"""

from __future__ import annotations

import os

import repro
import repro.hgf as hgf
from repro.hub import SessionOptions
from repro.sim import Simulator
from repro.sim.compiler import compile_design
from repro.sim.manyworlds import ManyWorldsSimulator, make_sweep_stimulus
from repro.sim.store import numpy_available
from repro.shard.spec import ShardSpec
from repro.shard.worker import make_stimulus

import pytest

from conftest import best_of

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
# The bar is pinned at N=32 even in smoke (ISSUE acceptance: asserted in
# CI smoke); smoke only shrinks the cycle count and repeat count.
_WORLDS = 32
_CYCLES = 500 if _SMOKE else 1000
_STAGES = 24
_BAR = 5.0
_PARITY_WORLDS = 4 if _SMOKE else 8
_PARITY_CYCLES = 60 if _SMOKE else 200


class _ManyWorldsPipe(hgf.Module):
    """The shard-farm pipeline (bench_shard's compute-bound scenario):
    per-stage xor+add+slice keeps each cycle arithmetic-dominated, so the
    ratio below measures simulation throughput, not harness overhead."""

    def __init__(self, stages: int = _STAGES, width: int = 32):
        super().__init__()
        self.x = self.input("x", width)
        self.o = self.output("o", width)
        mask = (1 << width) - 1
        acc = self.x
        for k in range(stages):
            r = self.reg(f"p{k}", width, init=(k * 2654435761) & mask)
            r <<= ((acc ^ r) + self.lit((2 * k + 1) & mask, width))[width - 1:0]
            acc = r
        self.o <<= acc


def _sequential_digests(design, compiled, seeds, cycles, store="array"):
    """Reference: one seeded Simulator run per world, shard seed contract."""
    digests = []
    for seed in seeds:
        sim = Simulator(
            design.low,
            compiled=compiled,
            options=SessionOptions(store=store, fast=True),
        )
        stim = make_stimulus(sim, ShardSpec(seed, seed=seed, cycles=0))
        sim.reset(1)
        sim.run_cycles(cycles, stimulus=stim)
        digests.append(sim.state_digest())
    return digests


@pytest.mark.skipif(not numpy_available(), reason="many-worlds needs numpy")
def test_manyworlds_throughput(capsys):
    """The tentpole bar: >= 5x aggregate cycles/s at N=32 (non-smoke)."""
    design = repro.compile(_ManyWorldsPipe())
    compiled = compile_design(design.low, None)
    seeds = list(range(_WORLDS))

    def seq_sweep():
        return _sequential_digests(design, compiled, seeds, _CYCLES)

    def vec_sweep():
        mw = ManyWorldsSimulator(design.low, _WORLDS, compiled=compiled)
        stim = make_sweep_stimulus(mw, seeds)
        mw.reset(1)
        mw.run_cycles(_CYCLES, stimulus=stim)
        return [mw.state_digest(k) for k in range(_WORLDS)]

    # Parity first (asserted always): same seeds, same per-world bits.
    assert vec_sweep() == seq_sweep(), "many-worlds diverged from reference"

    # The >=5x bar is a ratio assertion and holds in smoke too, so both
    # sides take the best of 2 even there — one sample flakes on load.
    seq_wall = best_of(seq_sweep, n=2)
    vec_wall = best_of(vec_sweep, n=2)
    total_cycles = _WORLDS * _CYCLES
    speedup = seq_wall / vec_wall
    with capsys.disabled():
        print(
            f"\n=== many-worlds throughput ({_WORLDS} worlds x {_CYCLES} "
            f"cycles, {_STAGES}-stage pipeline) ==="
        )
        print(f"{'':>14} {'wall':>10} {'agg cycles/s':>14}")
        print(
            f"{'sequential':>14} {seq_wall * 1e3:>8.1f}ms "
            f"{total_cycles / seq_wall:>14,.0f}"
        )
        print(
            f"{'many-worlds':>14} {vec_wall * 1e3:>8.1f}ms "
            f"{total_cycles / vec_wall:>14,.0f}"
        )
        print(f"speedup: {speedup:.2f}x (bar: >= {_BAR:.0f}x)")
    assert speedup >= _BAR, (
        f"many-worlds only {speedup:.2f}x over sequential at N={_WORLDS}"
    )


@pytest.mark.skipif(not numpy_available(), reason="many-worlds needs numpy")
def test_manyworlds_digest_parity_all_backends(capsys):
    """Per-world digests match the sequential reference on every scalar
    store backend (the matrix backend vs each of list/array/numpy)."""
    design = repro.compile(_ManyWorldsPipe(stages=6))
    compiled = compile_design(design.low, None)
    seeds = [7 * k + 3 for k in range(_PARITY_WORLDS)]

    mw = ManyWorldsSimulator(design.low, _PARITY_WORLDS, compiled=compiled)
    stim = make_sweep_stimulus(mw, seeds)
    mw.reset(1)
    mw.run_cycles(_PARITY_CYCLES, stimulus=stim)
    vec = [mw.state_digest(k) for k in range(_PARITY_WORLDS)]

    backends = ["list", "array", "numpy"]
    for store in backends:
        ref = _sequential_digests(
            design, compiled, seeds, _PARITY_CYCLES, store=store
        )
        assert ref == vec, f"{store} reference diverged from many-worlds"
    with capsys.disabled():
        print(
            f"\n=== many-worlds parity: {_PARITY_WORLDS} worlds "
            f"bit-identical on {'/'.join(backends)} ===\nok"
        )
