"""Shared fixtures and timing helpers for the benchmark harness.

Compiled designs are cached per session: compilation is not what any of the
paper's figures measure.

Every bar that *asserts a ratio* must time both sides with :func:`best_of`:
a single wall-time sample is at the mercy of whatever else the CI box is
doing, and the minimum over N repeats is the least-noisy location estimator
for a fixed workload (noise is strictly additive).  Smoke runs
(``REPRO_BENCH_SMOKE=1``) measure once — their ratio assertions are relaxed
anyway (see ``check_bench.py``).
"""

from __future__ import annotations

import os
import time

import pytest

import repro
from repro.cpu import RV32Core, assemble, build_suite
from repro.symtable import SQLiteSymbolTable, write_symbol_table

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: default timing repeats: best-of-N defeats one-off scheduler stalls
TIMING_REPS = 1 if _SMOKE else 3


def best_of(fn, *args, n: int | None = None, setup=None) -> float:
    """Minimum wall time of ``fn(*args)`` over ``n`` repeats (seconds).

    ``n`` defaults to :data:`TIMING_REPS` (1 in smoke mode, 3 otherwise).
    ``setup``, when given, runs untimed before every repeat and its return
    value becomes the call's argument tuple — use it to rebuild per-repeat
    state (a fresh simulator, a re-armed command sequence) without charging
    construction to the measurement.
    """
    reps = TIMING_REPS if n is None else max(1, n)
    best = float("inf")
    for _ in range(reps):
        call_args = args if setup is None else setup()
        if not isinstance(call_args, tuple):
            call_args = () if call_args is None else (call_args,)
        t0 = time.perf_counter()
        fn(*call_args)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="session")
def compiled_suite():
    """{(bench name, debug): (Benchmark, Design, SymbolTable)}."""
    out = {}
    for bench in build_suite():
        words = assemble(bench.source).words
        for debug in (False, True):
            design = repro.compile(RV32Core(words, mem_words=8192), debug=debug)
            st = SQLiteSymbolTable(write_symbol_table(design))
            out[(bench.name, debug)] = (bench, design, st)
    return out
