"""Shared fixtures for the benchmark harness.

Compiled designs are cached per session: compilation is not what any of the
paper's figures measure.
"""

from __future__ import annotations

import pytest

import repro
from repro.cpu import RV32Core, assemble, build_suite
from repro.symtable import SQLiteSymbolTable, write_symbol_table


@pytest.fixture(scope="session")
def compiled_suite():
    """{(bench name, debug): (Benchmark, Design, SymbolTable)}."""
    out = {}
    for bench in build_suite():
        words = assemble(bench.source).words
        for debug in (False, True):
            design = repro.compile(RV32Core(words, mem_words=8192), debug=debug)
            st = SQLiteSymbolTable(write_symbol_table(design))
            out[(bench.name, debug)] = (bench, design, st)
    return out
