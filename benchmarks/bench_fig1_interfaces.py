"""Figure 1: the two unified interfaces and their transports.

The architecture's claim: the *simulator* interface must be native (it sits
on the per-cycle hot path), while the *symbol table* may be RPC because the
simulator is paused during symbol table interactions — "the symbol table
performance is less important compared to the simulator interface"
(Sec. 3.4).

Measured: native vs RPC symbol table query latency; debugger protocol
round-trip; simulator interface get_value cost.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import Runtime
from repro.core.protocol import DebugClient, DebugServer
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.sim import Simulator
from repro.symtable import (
    RPCSymbolTable,
    SQLiteSymbolTable,
    SymbolTableServer,
    write_symbol_table,
)


@pytest.fixture(scope="module")
def cpu_setup():
    bench = benchmark_by_name("median")
    words = assemble(bench.source).words
    design = repro.compile(RV32Core(words, mem_words=8192))
    st = SQLiteSymbolTable(write_symbol_table(design))
    return design, st


def test_fig1_native_symtable_query(benchmark, cpu_setup):
    design, st = cpu_setup
    f = st.filenames()[0]
    lines = st.breakpoint_lines(f)

    def query():
        for line in lines[:20]:
            st.breakpoints_at(f, line)

    benchmark(query)


def test_fig1_rpc_symtable_query(benchmark, cpu_setup, capsys):
    design, st = cpu_setup
    with SymbolTableServer(st) as server:
        cli = RPCSymbolTable(*server.address)
        f = cli.filenames()[0]
        lines = cli.breakpoint_lines(f)

        def query():
            for line in lines[:20]:
                cli.breakpoints_at(f, line)

        benchmark(query)
        cli.close()


def test_fig1_simulator_get_value(benchmark, cpu_setup):
    """The native simulator-interface primitive on the hot path."""
    design, _st = cpu_setup
    sim = Simulator(design.low)
    sim.reset()
    paths = [s.path for s in sim.design.signals[:64]]

    def read_all():
        for p in paths:
            sim.get_value(p)

    benchmark(read_all)


def test_fig1_debug_protocol_round_trip(benchmark, cpu_setup):
    """One debugger request/response over the RPC protocol."""
    design, st = cpu_setup
    sim = Simulator(design.low)
    rt = Runtime(sim, st)
    with DebugServer(rt) as server:
        client = DebugClient(*server.address)

        benchmark(lambda: client.request("info", what="time"))
        client.close()
