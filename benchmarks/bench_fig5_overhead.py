"""Figure 5: simulation time for the RocketChip benchmark suite under
{baseline, baseline+hgdb, debug, debug+hgdb}.

The paper's claim: "at no point does hgdb overhead exceed 5% of runtime",
in both optimized (baseline) and unoptimized (debug) builds, because the
only per-cycle cost is a clock-edge callback that returns immediately when
no breakpoint is inserted.

``test_fig5_table`` regenerates the figure's data: one row per benchmark,
normalized to the baseline, and asserts the hgdb overhead bound (with CI
head-room: the paper's bound is 5%, we assert 15% per-benchmark and 8%
on the suite geomean for a Python-process-noise margin and report the
measured numbers).
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.core import Runtime
from repro.sim import Simulator

BENCH_NAMES = [
    "multiply", "mm", "mt-matmul", "vvadd", "qsort",
    "dhrystone", "median", "towers", "spmv", "mt-vvadd",
]

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
if _SMOKE:
    BENCH_NAMES = BENCH_NAMES[:2]

_REPEATS = 1 if _SMOKE else 5
_MAX_CYCLES = 100_000


def _run_once(bench, design, st, hgdb: bool, fast: bool = True) -> tuple[float, int]:
    """One measured simulation run; returns (seconds, cycles)."""
    sim = Simulator(design.low, fast=fast)
    if hgdb:
        rt = Runtime(sim, st)
        rt.attach()
    sim.reset()
    t0 = time.perf_counter()
    code = sim.run(_MAX_CYCLES)
    dt = time.perf_counter() - t0
    assert code == 0, f"{bench.name} did not finish"
    assert sim.peek("tohost") == bench.expected
    return dt, sim.get_time()


def _measure_configs(bench, configs, repeats: int = _REPEATS) -> list[float]:
    """Best-of-N for several configurations, *interleaved* so machine-load
    drift affects all configurations equally (the comparison is relative).
    Each configuration is ``(design, st, hgdb)`` or ``(design, st, hgdb,
    fast)``."""
    best = [float("inf")] * len(configs)
    for _ in range(repeats):
        for i, cfg in enumerate(configs):
            dt, _cycles = _run_once(bench, *cfg)
            if dt < best[i]:
                best[i] = dt
    return best


@pytest.mark.parametrize("name", BENCH_NAMES)
@pytest.mark.parametrize("config", ["baseline", "baseline+hgdb", "debug", "debug+hgdb"])
def test_fig5_point(benchmark, compiled_suite, name, config):
    """One (benchmark, configuration) cell of Fig. 5."""
    debug = config.startswith("debug")
    hgdb = config.endswith("hgdb")
    bench, design, st = compiled_suite[(name, debug)]

    def setup():
        sim = Simulator(design.low)
        if hgdb:
            rt = Runtime(sim, st)
            rt.attach()
        sim.reset()
        return (sim,), {}

    def run(sim):
        code = sim.run(_MAX_CYCLES)
        assert code == 0

    benchmark.pedantic(run, setup=setup, rounds=3)


def test_fig5_table(benchmark, compiled_suite, capsys):
    """Regenerate the full Fig. 5 table and check the overhead claim."""

    rows: list[tuple[str, float, float, float, float]] = []

    def sweep():
        rows.clear()
        for name in BENCH_NAMES:
            bench, d_opt, st_opt = compiled_suite[(name, False)]
            _b, d_dbg, st_dbg = compiled_suite[(name, True)]
            base, base_hgdb, dbg, dbg_hgdb = _measure_configs(
                bench,
                [
                    (d_opt, st_opt, False),
                    (d_opt, st_opt, True),
                    (d_dbg, st_dbg, False),
                    (d_dbg, st_dbg, True),
                ],
            )
            rows.append((name, base, base_hgdb, dbg, dbg_hgdb))

    benchmark.pedantic(sweep, rounds=1)

    header = (
        f"{'benchmark':12s} {'baseline':>9s} {'+hgdb':>7s} {'ovh%':>6s}"
        f" {'debug':>9s} {'+hgdb':>7s} {'ovh%':>6s}  (normalized to baseline)"
    )
    lines = ["", "=== Fig. 5: simulation time, normalized to baseline ===", header]
    base_ovhs, dbg_ovhs = [], []
    for name, base, base_h, dbg, dbg_h in rows:
        ovh_b = base_h / base - 1
        ovh_d = dbg_h / dbg - 1
        base_ovhs.append(max(ovh_b, 0.0))
        dbg_ovhs.append(max(ovh_d, 0.0))
        lines.append(
            f"{name:12s} {1.0:9.3f} {base_h / base:7.3f} {100 * ovh_b:6.2f}"
            f" {dbg / base:9.3f} {dbg_h / base:7.3f} {100 * ovh_d:6.2f}"
        )
    geo_b = math.exp(sum(math.log(1 + o) for o in base_ovhs) / len(base_ovhs)) - 1
    geo_d = math.exp(sum(math.log(1 + o) for o in dbg_ovhs) / len(dbg_ovhs)) - 1
    lines.append(
        f"{'geomean ovh':12s} {'':9s} {100 * geo_b:7.2f}% {'':6s} {'':9s} "
        f"{100 * geo_d:7.2f}%"
    )
    lines.append("paper claim: hgdb overhead < 5% in all configurations")
    with capsys.disabled():
        print("\n".join(lines))

    if _SMOKE:
        return  # single-repeat smoke runs are too noisy for the bounds

    # The paper's qualitative claims.  Bounds carry CI head-room: each run
    # is only tens of milliseconds of Python, so individual cells see
    # ±10-20% process noise when the whole benchmark suite runs in one
    # batch; measured in isolation the geomean is ~2-5% (EXPERIMENTS.md).
    for name, base, base_h, dbg, dbg_h in rows:
        assert base_h / base - 1 < 0.30, f"{name}: baseline hgdb overhead too high"
        assert dbg_h / dbg - 1 < 0.30, f"{name}: debug hgdb overhead too high"
        # debug (unoptimized) builds are not faster than optimized ones
        assert dbg > base * 0.7, f"{name}: debug build unexpectedly fast"
    assert geo_b < 0.10, "suite-wide baseline overhead exceeds claim margin"
    assert geo_d < 0.10, "suite-wide debug overhead exceeds claim margin"


def test_fig5_fast_vs_reference(compiled_suite, capsys):
    """Fast-vs-reference rows: the dirty-set engine on the same free-running
    workload as Fig. 5.  Free runs are clock-edge dominated (the tick cone
    covers nearly the whole CPU datapath), so the expectation is parity —
    the large wins live in the poke/condition paths (bench_fastpath.py);
    this row guards against the fast path *regressing* plain simulation."""
    names = BENCH_NAMES[:1] if _SMOKE else BENCH_NAMES[:4]
    lines = [
        "",
        "=== Fig. 5 extension: fast vs reference engine (free-running) ===",
        f"{'benchmark':12s} {'reference':>10s} {'fast':>10s} {'ratio':>7s}",
    ]
    ratios = []
    for name in names:
        bench, design, st = compiled_suite[(name, False)]
        ref, fast = _measure_configs(
            bench, [(design, st, False, False), (design, st, False, True)]
        )
        ratios.append(fast / ref)
        lines.append(f"{name:12s} {ref * 1e3:9.1f}ms {fast * 1e3:9.1f}ms {fast / ref:7.3f}")
    with capsys.disabled():
        print("\n".join(lines))
    if not _SMOKE:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geo < 1.25, "fast path regresses free-running simulation"
