"""Listings 3/4 + Sec. 4.2: the FPU bug case study, measured.

Regenerates the case study's artifacts: the functional-model mismatch on
the buggy build, the breakpoint inside ``when (in.wflags)``, the
reconstructed ``dcmp.io`` bundle exposing ``signaling == 1``, and the
readability contrast between generator source and emitted RTL.
"""

from __future__ import annotations

import itertools
import repro
from repro.core import DETACH, Runtime
from repro.fpu import (
    FpuCmp,
    QNAN,
    RM_FEQ,
    SNAN,
    compare_op,
    float_to_bits,
)
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table

_STIMULI = [
    float_to_bits(x) for x in (0.0, -0.0, 1.0, -2.5, 1e20, -1e-20)
] + [QNAN, SNAN]


def test_lst34_mismatch_sweep(benchmark, capsys):
    """Testbench phase: sweep compares on buggy RTL vs functional model."""
    design = repro.compile(FpuCmp(buggy=True))
    sim = Simulator(design.low)
    sim.reset()
    found = []

    def sweep():
        found.clear()
        for a, b, rm in itertools.product(_STIMULI, _STIMULI, (0, 1, 2)):
            sim.poke("in1", a)
            sim.poke("in2", b)
            sim.poke("rm", rm)
            sim.poke("wflags", 1)
            sim.step()
            got = (sim.peek("toint"), sim.peek("exc"))
            if got != compare_op(a, b, rm):
                found.append((a, b, rm))

    benchmark.pedantic(sweep, rounds=2)
    with capsys.disabled():
        print(
            f"\n=== Listing 3 case study === {len(found)} mismatching stimuli; "
            f"all quiet compares (rm==2): {all(rm == 2 for _a, _b, rm in found)}"
        )
    assert found and all(rm == RM_FEQ for _a, _b, rm in found)


def test_lst34_debug_session(benchmark):
    """Debug phase: breakpoint in the when(wflags) block + bundle view."""
    design = repro.compile(FpuCmp(buggy=True))
    st = SQLiteSymbolTable(write_symbol_table(design))
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "exc")

    def session():
        sim = Simulator(design.low)
        state = {}

        def on_hit(h):
            dcmp_bp = [
                b for b in st.all_breakpoints() if b.instance_name == "FpuCmp.dcmp"
            ][0]
            frame = rt.frames.build(dcmp_bp, h.time)
            io = next(v for v in frame.local_vars if v.name == "io")
            state["signaling"] = io.child("signaling").value
            return DETACH

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        rt.add_breakpoint(entry.info.filename, entry.info.line)
        sim.poke("in1", QNAN)
        sim.poke("in2", float_to_bits(1.0))
        sim.poke("rm", RM_FEQ)
        sim.poke("wflags", 1)
        sim.reset()
        sim.step(2)
        return state

    state = benchmark.pedantic(session, rounds=3)
    assert state["signaling"] == 1  # the smoking gun


def test_lst34_rtl_obscurity(benchmark, capsys):
    """Listing 4's contrast: count compiler artifacts in the emitted RTL."""
    design = repro.compile(FpuCmp(buggy=True))

    verilog = benchmark(design.verilog)
    ssa_temps = verilog.count("_ssa_")
    muxes = verilog.count("? ")
    with capsys.disabled():
        print(
            f"\n=== Listing 4 === emitted RTL: {len(verilog.splitlines())} lines,"
            f" {ssa_temps} SSA temporaries, {muxes} flattened muxes"
        )
    assert ssa_temps > 0 and muxes > 0
    assert "when" not in verilog
