#!/usr/bin/env python
"""Smoke-run every ``bench_*`` module in reduced-iteration mode.

CI sanity for the benchmark harness: each module must still compile its
designs, simulate, and print its table.  ``REPRO_BENCH_SMOKE=1`` makes the
parameterized benchmarks shrink their workloads and relax their timing
assertions (single-repeat runs are too noisy to bound), and
``--benchmark-disable`` turns pytest-benchmark measurement loops into
single calls.

``--json PATH`` writes a machine-readable summary (per-module return code
and wall time) that CI uploads as a build artifact, so benchmark-harness
breakage is diagnosable from the artifact alone.

Usage: ``python benchmarks/check_bench.py [--json PATH] [bench-name-substring ...]``
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
import time


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    json_path: str | None = None
    if "--json" in args:
        i = args.index("--json")
        try:
            json_path = args[i + 1]
        except IndexError:
            print("--json requires a path argument", file=sys.stderr)
            return 2
        del args[i : i + 2]

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)

    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    benches = sorted(glob.glob(os.path.join(here, "bench_*.py")))
    if args:
        benches = [
            b for b in benches
            if any(a in os.path.basename(b) for a in args)
        ]
    if not benches:
        if json_path:
            with open(json_path, "w") as f:
                json.dump(
                    {"smoke": True, "ok": False,
                     "error": "no benchmark modules matched", "modules": []},
                    f, indent=2,
                )
                f.write("\n")
        print("no benchmark modules matched", file=sys.stderr)
        return 2

    failed: list[str] = []
    results: list[dict] = []
    for path in benches:
        name = os.path.basename(path)
        print(f"== smoke: {name}", flush=True)
        t0 = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", path,
                "-q", "--benchmark-disable", "-p", "no:cacheprovider",
            ],
            cwd=root,
            env=env,
        )
        elapsed = time.perf_counter() - t0
        ok = proc.returncode in (0, 5)  # 5: no tests collected
        results.append(
            {
                "module": name,
                "returncode": proc.returncode,
                "ok": ok,
                "duration_s": round(elapsed, 3),
            }
        )
        if not ok:
            failed.append(name)

    if json_path:
        summary = {
            "smoke": True,
            "python": sys.version.split()[0],
            "modules": results,
            "ok": not failed,
        }
        with open(json_path, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {json_path}")

    if failed:
        print("FAILED: " + ", ".join(failed), file=sys.stderr)
        return 1
    print(f"ok: {len(benches)} benchmark modules smoke-tested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
