#!/usr/bin/env python
"""Smoke-run every ``bench_*`` module in reduced-iteration mode.

CI sanity for the benchmark harness: each module must still compile its
designs, simulate, and print its table.  ``REPRO_BENCH_SMOKE=1`` makes the
parameterized benchmarks shrink their workloads and relax their timing
assertions (single-repeat runs are too noisy to bound), and
``--benchmark-disable`` turns pytest-benchmark measurement loops into
single calls.

``--json PATH`` writes a machine-readable summary (per-module return code
and wall time) that CI uploads as a build artifact, so benchmark-harness
breakage is diagnosable from the artifact alone.

``--compare BASELINE.json`` turns the smoke run into a **regression
gate**: the current run is checked against a committed baseline (itself a
previous ``--json`` output).  A module that disappears, fails, or runs
slower than ``baseline * (1 + tolerance)`` — with an absolute
``--min-delta`` slack so sub-second modules cannot flake the gate on
scheduler noise — fails the check.  New modules not in the baseline are
reported (refresh the baseline) but do not fail.

Usage::

    python benchmarks/check_bench.py [--json PATH]
        [--compare BASELINE.json] [--tolerance 0.15] [--min-delta 2.0]
        [bench-name-substring ...]
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
import time

#: Default relative slowdown allowed per tracked metric.
DEFAULT_TOLERANCE = 0.15
#: Default absolute slack (seconds): a regression must exceed *both* the
#: relative tolerance and this floor to fail the gate.
DEFAULT_MIN_DELTA = 2.0


def compare_results(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> tuple[bool, list[str]]:
    """Check a ``--json`` summary against a committed baseline.

    Returns ``(ok, report lines)``.  Tracked per module: presence, the
    ``ok`` flag, and ``duration_s`` (regression = exceeds the relative
    tolerance *and* the absolute ``min_delta`` floor).
    """
    cur = {m["module"]: m for m in current.get("modules", [])}
    base = {m["module"]: m for m in baseline.get("modules", [])}
    ok = True
    lines: list[str] = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            ok = False
            lines.append(f"MISSING  {name}: in baseline but not in this run")
            continue
        if not c.get("ok", False):
            ok = False
            lines.append(f"FAILED   {name}: returncode {c.get('returncode')}")
            continue
        b_t = float(b.get("duration_s", 0.0))
        c_t = float(c.get("duration_s", 0.0))
        limit = b_t * (1.0 + tolerance)
        if c_t > limit and c_t - b_t > min_delta:
            ok = False
            lines.append(
                f"SLOWER   {name}: {c_t:.2f}s vs baseline {b_t:.2f}s "
                f"(limit {limit:.2f}s + {min_delta:.1f}s slack)"
            )
        else:
            lines.append(f"ok       {name}: {c_t:.2f}s (baseline {b_t:.2f}s)")
    for name in sorted(set(cur) - set(base)):
        lines.append(f"NEW      {name}: not in baseline (refresh it)")
    return ok, lines


def _take_flag(args: list[str], flag: str) -> str | None:
    """Pop ``flag VALUE`` from args; returns the value or None."""
    if flag not in args:
        return None
    i = args.index(flag)
    try:
        value = args[i + 1]
    except IndexError:
        raise SystemExit(f"{flag} requires an argument") from None
    del args[i : i + 2]
    return value


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    try:
        json_path = _take_flag(args, "--json")
        compare_path = _take_flag(args, "--compare")
        tolerance = float(_take_flag(args, "--tolerance") or DEFAULT_TOLERANCE)
        min_delta = float(_take_flag(args, "--min-delta") or DEFAULT_MIN_DELTA)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"--tolerance/--min-delta need a number: {exc}", file=sys.stderr)
        return 2

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)

    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    benches = sorted(glob.glob(os.path.join(here, "bench_*.py")))
    if args:
        benches = [
            b for b in benches
            if any(a in os.path.basename(b) for a in args)
        ]
    if not benches:
        if json_path:
            with open(json_path, "w") as f:
                json.dump(
                    {"smoke": True, "ok": False,
                     "error": "no benchmark modules matched", "modules": []},
                    f, indent=2,
                )
                f.write("\n")
        print("no benchmark modules matched", file=sys.stderr)
        return 2

    failed: list[str] = []
    results: list[dict] = []
    for path in benches:
        name = os.path.basename(path)
        print(f"== smoke: {name}", flush=True)
        t0 = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", path,
                "-q", "--benchmark-disable", "-p", "no:cacheprovider",
            ],
            cwd=root,
            env=env,
        )
        elapsed = time.perf_counter() - t0
        ok = proc.returncode in (0, 5)  # 5: no tests collected
        results.append(
            {
                "module": name,
                "returncode": proc.returncode,
                "ok": ok,
                "duration_s": round(elapsed, 3),
            }
        )
        if not ok:
            failed.append(name)

    summary = {
        "smoke": True,
        "python": sys.version.split()[0],
        "modules": results,
        "ok": not failed,
    }

    compare_ok = True
    if compare_path:
        try:
            with open(compare_path) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {compare_path}: {exc}", file=sys.stderr)
            return 2
        compare_ok, lines = compare_results(
            summary, baseline, tolerance=tolerance, min_delta=min_delta
        )
        print(f"== bench regression gate vs {compare_path} "
              f"(tolerance {tolerance:.0%}, min-delta {min_delta:.1f}s)")
        for line in lines:
            print("  " + line)
        summary["compare"] = {
            "baseline": compare_path,
            "tolerance": tolerance,
            "min_delta": min_delta,
            "ok": compare_ok,
            "report": lines,
        }
        summary["ok"] = summary["ok"] and compare_ok

    if json_path:
        with open(json_path, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {json_path}")

    if failed:
        print("FAILED: " + ", ".join(failed), file=sys.stderr)
        return 1
    if not compare_ok:
        print("FAILED: benchmark regression gate", file=sys.stderr)
        return 1
    print(f"ok: {len(benches)} benchmark modules smoke-tested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
