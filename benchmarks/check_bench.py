#!/usr/bin/env python
"""Smoke-run every ``bench_*`` module in reduced-iteration mode.

CI sanity for the benchmark harness: each module must still compile its
designs, simulate, and print its table.  ``REPRO_BENCH_SMOKE=1`` makes the
parameterized benchmarks shrink their workloads and relax their timing
assertions (single-repeat runs are too noisy to bound), and
``--benchmark-disable`` turns pytest-benchmark measurement loops into
single calls.

Usage: ``python benchmarks/check_bench.py [bench-name-substring ...]``
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(here)

    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    benches = sorted(glob.glob(os.path.join(here, "bench_*.py")))
    if args:
        benches = [
            b for b in benches
            if any(a in os.path.basename(b) for a in args)
        ]
    if not benches:
        print("no benchmark modules matched", file=sys.stderr)
        return 2

    failed: list[str] = []
    for path in benches:
        name = os.path.basename(path)
        print(f"== smoke: {name}", flush=True)
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", path,
                "-q", "--benchmark-disable", "-p", "no:cacheprovider",
            ],
            cwd=root,
            env=env,
        )
        if proc.returncode not in (0, 5):  # 5: no tests collected
            failed.append(name)

    if failed:
        print("FAILED: " + ", ".join(failed), file=sys.stderr)
        return 1
    print(f"ok: {len(benches)} benchmark modules smoke-tested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
