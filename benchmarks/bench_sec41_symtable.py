"""Sec. 4.1: symbol table growth in debug mode.

"We have noticed about 30% increase in the symbol table size when the
debug mode is on."  Debug mode DontTouch-protects every named signal, so
no SSA temp or enable condition is optimized away and the symbol table
keeps every source statement.

``test_sec41_table`` reports the symbol table footprint (breakpoint rows,
variable rows, serialized bytes) for the CPU and FPU designs in both modes
and asserts a meaningful debug-mode growth.
"""

from __future__ import annotations

import pytest

import repro
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.fpu import FpuCmp
from repro.symtable import write_symbol_table


def _designs():
    bench = benchmark_by_name("median")
    words = assemble(bench.source).words
    return {
        "RV32Core": lambda debug: repro.compile(RV32Core(words, mem_words=8192), debug=debug),
        "FpuCmp": lambda debug: repro.compile(FpuCmp(), debug=debug),
    }


def _table_stats(design) -> dict[str, int]:
    conn = write_symbol_table(design)
    counts = {}
    for table in ("breakpoint", "variable", "scope_variable", "instance"):
        counts[table] = conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
    # Serialized size: dump the database to bytes.
    counts["bytes"] = sum(len(line) for line in conn.iterdump())
    return counts


def test_sec41_table(benchmark, capsys):
    results: dict[str, dict[bool, dict[str, int]]] = {}

    def sweep():
        results.clear()
        for name, make in _designs().items():
            results[name] = {}
            for debug in (False, True):
                results[name][debug] = _table_stats(make(debug))

    benchmark.pedantic(sweep, rounds=1)

    lines = ["", "=== Sec. 4.1: symbol table size, optimized vs debug mode ==="]
    lines.append(
        f"{'design':10s} {'mode':6s} {'bps':>6s} {'vars':>7s} {'scope':>7s} {'bytes':>9s} {'growth':>8s}"
    )
    for name, modes in results.items():
        opt, dbg = modes[False], modes[True]
        for debug in (False, True):
            c = modes[debug]
            growth = ""
            if debug:
                growth = f"{100 * (dbg['bytes'] / opt['bytes'] - 1):+.1f}%"
            lines.append(
                f"{name:10s} {'debug' if debug else 'opt':6s} {c['breakpoint']:6d}"
                f" {c['variable']:7d} {c['scope_variable']:7d} {c['bytes']:9d} {growth:>8s}"
            )
    lines.append("paper: ~30% size increase with debug mode on")
    with capsys.disabled():
        print("\n".join(lines))

    # Growth scales with how much the optimizer could have removed: the
    # paper reports ~30% on RocketChip; our largest design (the CPU) shows
    # ~15%, the small FPU ~5%.  Assert the direction for every design and a
    # substantial effect on the large one.
    for name, modes in results.items():
        opt, dbg = modes[False], modes[True]
        assert dbg["breakpoint"] >= opt["breakpoint"], name
        assert dbg["bytes"] > opt["bytes"], f"{name}: debug table not larger"
    cpu_opt, cpu_dbg = results["RV32Core"][False], results["RV32Core"][True]
    assert cpu_dbg["bytes"] > cpu_opt["bytes"] * 1.10, (
        "expected ≥10% debug-mode growth on the CPU design, got "
        f"{100 * (cpu_dbg['bytes'] / cpu_opt['bytes'] - 1):.1f}%"
    )


@pytest.mark.parametrize("debug", [False, True], ids=["optimized", "debug"])
def test_sec41_generation_time(benchmark, debug):
    """Symbol table generation latency per mode (compile + write)."""
    bench = benchmark_by_name("median")
    words = assemble(bench.source).words

    def generate():
        design = repro.compile(RV32Core(words, mem_words=8192), debug=debug)
        return write_symbol_table(design)

    benchmark.pedantic(generate, rounds=3)
