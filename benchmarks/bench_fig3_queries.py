"""Figure 3: the SQLite symbol table schema.

"The SQL schema is designed to be simple yet efficient to query debugging
information" and "arrows in the figure illustrate relations, which can be
used to improve search performance".  Measured: the four Sec. 3.4
primitives against a realistically sized table (the CPU design), and the
location index's effect.
"""

from __future__ import annotations

import pytest

import repro
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.symtable import SQLiteSymbolTable, write_symbol_table


@pytest.fixture(scope="module")
def big_table():
    bench = benchmark_by_name("qsort")
    words = assemble(bench.source).words
    design = repro.compile(RV32Core(words, mem_words=8192), debug=True)
    st = SQLiteSymbolTable(write_symbol_table(design))
    return st


def test_fig3_breakpoints_from_location(benchmark, big_table):
    st = big_table
    f = st.filenames()[0]
    lines = st.breakpoint_lines(f)
    benchmark(lambda: [st.breakpoints_at(f, line) for line in lines])


def test_fig3_scope_info(benchmark, big_table):
    st = big_table
    bps = st.all_breakpoints()[:50]
    benchmark(lambda: [st.scope_variables(bp.id) for bp in bps])


def test_fig3_resolve_scoped(benchmark, big_table):
    st = big_table
    bp = st.all_breakpoints()[0]
    names = [v.name for v in st.scope_variables(bp.id)][:10]
    benchmark(lambda: [st.resolve_scoped_var(bp.id, n) for n in names])


def test_fig3_resolve_instance(benchmark, big_table):
    st = big_table
    insts = st.instances()
    benchmark(
        lambda: [
            st.resolve_instance_var(i.id, v.name)
            for i in insts
            for v in st.generator_variables(i.id)[:5]
        ]
    )


def test_fig3_index_speedup(benchmark, big_table, capsys):
    """Location lookups must hit idx_bp_loc, not scan."""
    st = big_table
    plan = st.conn.execute(
        "EXPLAIN QUERY PLAN SELECT * FROM breakpoint WHERE filename=? AND line_num=?",
        ("x", 1),
    ).fetchall()
    plan_text = " ".join(str(tuple(r)) for r in plan)
    with capsys.disabled():
        print(f"\n=== Fig. 3 query plan === {plan_text}")
    assert "idx_bp_loc" in plan_text

    n = st.conn.execute("SELECT COUNT(*) FROM breakpoint").fetchone()[0]
    f = st.filenames()[0]
    line = st.breakpoint_lines(f)[0]
    benchmark(lambda: st.breakpoints_at(f, line))
    assert n > 50  # realistic table, not a toy
