"""Timeline compression: rewind-window length at fixed memory.

The ``repro.sim.timeline`` subsystem stores reverse-debug history as one
head keyframe plus per-cycle deltas; the codec decides the delta
representation.  The seed ring's ``raw`` codec keeps store-native
``{index: value}`` dicts — ~100+ bytes per changed signal once the dict
table and two boxed ints are counted.  The ``rle`` codec collapses the
consecutively-allocated register block of a module into ``(start,
count)`` runs over a flat typed value buffer — ~8 bytes per changed
signal plus a constant per run.

On a *register-sparse* design (many state signals, a small adjacent
block of free-running registers actually changing per cycle) that
difference is the whole ballgame for reverse debugging: at an equal byte
budget the rle timeline must retain a **>= 8x longer** ``set_time``
window than the raw ring (the acceptance bar, asserted outside smoke
mode), with rewind results bit-identical across codecs and store
backends.

Also reported (no hard bar — wall-clock): rewind latency to the oldest
retained cycle with and without periodic keyframes (``keyframe_every``),
which bounds reconstruction to K delta replays instead of the whole
window.
"""

from __future__ import annotations

import os

import repro
import repro.hgf as hgf
from repro.sim import Simulator
from repro.sim.store import numpy_available

from conftest import best_of

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_BUDGET = (24 if _SMOKE else 192) * 1024
_CYCLES = 200 if _SMOKE else 4000
_LAT_WINDOW = 64 if _SMOKE else 512


class _RegisterSparse(hgf.Module):
    """The register-sparse scenario: a wide state vector (inputs held
    constant) plus one adjacent block of free-running counters.  Every
    cycle changes exactly the counter block — consecutive value-table
    indices, the rle codec's best honest case and the raw dict's worst.
    """

    def __init__(self, n_regs: int = 96, n_inputs: int = 128):
        super().__init__()
        ins = [self.input(f"i{k}", 16) for k in range(n_inputs)]
        self.o = self.output("o", 16)
        # Declare the whole register block first: registers allocate
        # consecutive signal indices only if nothing interleaves.
        regs = [self.reg(f"r{j}", 16, init=j) for j in range(n_regs)]
        for j, r in enumerate(regs):
            r <<= (r + self.lit(2 * j + 1, 16))[15:0]
        # Fold through explicit wires (declared after the register block,
        # so register indices stay adjacent): one stage per term keeps
        # the generated expressions flat.
        acc = self.lit(0, 16)
        for k, p in enumerate(ins):
            stage = self.wire(f"s{k}", 16)
            stage <<= (acc ^ p)[15:0]
            acc = stage
        for j, r in enumerate(regs):
            stage = self.wire(f"t{j}", 16)
            stage <<= (acc ^ r)[15:0]
            acc = stage
        self.o <<= acc


def _windows_at_budget(design, store_kind: str = "array"):
    """Run the same free-running workload under both codecs at one byte
    budget; returns {codec: sim}."""
    sims = {}
    for codec in ("raw", "rle"):
        sim = Simulator(
            design.low,
            snapshot_bytes=_BUDGET,
            snapshot_codec=codec,
            store=store_kind,
        )
        sim.reset()
        sim.step(_CYCLES)
        sims[codec] = sim
    return sims


def test_timeline_window_at_fixed_memory(capsys):
    """The tentpole bar: >= 8x longer retained window at equal bytes."""
    design = repro.compile(_RegisterSparse())
    sims = _windows_at_budget(design)
    windows = {}
    for codec, sim in sims.items():
        lo, hi = sim.timeline.window()
        windows[codec] = hi - lo + 1
        assert sim.timeline.nbytes <= _BUDGET

    # Bit-identical rewinds wherever both windows overlap.
    common = sorted(
        set(sims["raw"].timeline.times()) & set(sims["rle"].timeline.times())
    )
    assert common, "raw and rle windows must overlap"
    for t in (common[0], common[len(common) // 2], common[-1]):
        for sim in sims.values():
            sim.set_time(t)
        assert (
            sims["raw"].values.as_list() == sims["rle"].values.as_list()
        ), f"codec rewinds diverged at cycle {t}"

    ratio = windows["rle"] / windows["raw"]
    n_state = len(sims["raw"].design.state_indices)
    with capsys.disabled():
        print(
            f"\n=== timeline: rewind window at fixed memory "
            f"({_BUDGET // 1024} KiB budget, {n_state} state signals, "
            f"96-register active block, {_CYCLES} cycles) ===\n"
            f"raw ring (dict deltas):  {windows['raw']:6d} cycles retained "
            f"({sims['raw'].timeline.nbytes / 1024:7.1f} KiB)\n"
            f"rle timeline (runs):     {windows['rle']:6d} cycles retained "
            f"({sims['rle'].timeline.nbytes / 1024:7.1f} KiB)\n"
            f"window ratio: {ratio:.1f}x (bar: >= 8x)"
        )
    if not _SMOKE:
        assert ratio >= 8.0, f"rle window only {ratio:.1f}x the raw ring"


def test_timeline_rewind_bit_identical_across_backends(capsys):
    """Every store backend rewinds the bench scenario to the same bits
    under the rle codec (the full schedule matrix lives in the property
    suite; this pins the bench design itself)."""
    design = repro.compile(_RegisterSparse(n_regs=16, n_inputs=16))
    backends = ["list", "array"] + (["numpy"] if numpy_available() else [])
    sims = []
    for kind in backends:
        sim = Simulator(design.low, snapshots=64, snapshot_codec="rle",
                        keyframe_every=16, store=kind)
        sim.reset()
        sim.step(100 if not _SMOKE else 30)
        sims.append(sim)
    times = sims[0].timeline.times()
    for t in (times[0], times[len(times) // 2], times[-1]):
        states = []
        for sim in sims:
            sim.set_time(t)
            states.append(sim.values.as_list())
        assert all(s == states[0] for s in states[1:])
    with capsys.disabled():
        print(
            f"\n=== timeline: rle rewinds bit-identical on "
            f"{'/'.join(backends)} ===\nok ({len(times)} retained cycles)"
        )


def test_timeline_rewind_latency_report(capsys):
    """Periodic keyframes bound rewind reconstruction: jumping to the
    oldest retained cycle replays the whole window without them, at most
    ``keyframe_every`` deltas with them.  Reported for sizing guidance
    (docs/time_travel.md); no hard bar — both are sub-millisecond-ish
    and machine dependent."""
    design = repro.compile(_RegisterSparse())
    timings = {}
    for label, kf in (("no keyframes", 0), ("keyframe every 32", 32)):
        sim = Simulator(
            design.low,
            snapshots=_LAT_WINDOW,
            snapshot_codec="rle",
            keyframe_every=kf,
            store="array",
        )
        sim.reset()
        sim.step(_LAT_WINDOW + 50)
        oldest = sim.timeline.times()[0]
        newest = sim.timeline.times()[-1]

        def back_to_head(sim=sim, newest=newest, oldest=oldest):
            sim.set_time(newest)
            return (oldest,)

        timings[label] = best_of(sim.set_time, n=3, setup=back_to_head)
        # Ground truth: the oldest cycle reconstructs the same bits both
        # ways (r0 counts 1/cycle from init 0, recorded pre-tick).
        assert sim.get_time() == oldest
    with capsys.disabled():
        lines = "\n".join(
            f"{label:20s} {t * 1e6:9.0f} us/rewind"
            for label, t in timings.items()
        )
        print(
            f"\n=== timeline: rewind-to-oldest latency "
            f"({_LAT_WINDOW}-cycle window) ===\n{lines}"
        )
