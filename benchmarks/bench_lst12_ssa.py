"""Listings 1/2: the SSA transform with multi-line mapping.

Regenerates the paper's worked example — a for-loop accumulating ``sum``
under a data-dependent condition — and checks the three artifacts the
transform must produce:

* versioned temporaries (``sum0``/``sum1``/``sum2`` → our ``sum_0..2``);
* per-statement *enable conditions* (``data[0] % 2``, ``data[1] % 2``);
* the context-dependent variable mapping (``sum`` → ``sum0`` at Line 4,
  ``sum1`` at Line 6).

Also measures ExpandWhens throughput as the unrolled loop grows.
"""

from __future__ import annotations

import pytest

import repro
import repro.hgf as hgf
from repro.ir.debug import DebugInfo
from repro.ir.passes import expand_whens, lower_types
from tests.helpers import SumLoop


def test_lst12_artifacts(benchmark, capsys):
    outputs = {}

    def build():
        design = repro.compile(SumLoop(2), debug=True)
        outputs["entries"] = [
            e for e in design.debug_info.all_entries() if e.sink == "sum"
        ]
        return design

    benchmark.pedantic(build, rounds=3)
    entries = outputs["entries"]

    lines = ["", "=== Listings 1/2: SSA transform of the sum loop ==="]
    for e in entries:
        lines.append(
            f"line {e.info.line}: {e.node:8s} enable: {e.enable_src or '-':24s}"
            f" sum-> {e.var_map.get('sum', '-')}"
        )
    with capsys.disabled():
        print("\n".join(lines))

    assert [e.node for e in entries] == ["sum_0", "sum_1", "sum_2"]
    # Enable conditions per unrolled iteration (paper's margins):
    assert "data[0]" in entries[1].enable_src
    assert "% 2" in entries[1].enable_src
    assert "data[1]" in entries[2].enable_src
    # Context mapping: at the second accumulation, `sum` is sum_1.
    assert entries[1].var_map["sum"] == "sum_0"
    assert entries[2].var_map["sum"] == "sum_1"


@pytest.mark.parametrize("n", [4, 16, 64])
def test_lst12_transform_throughput(benchmark, n):
    """ExpandWhens cost over growing unrolled loops."""
    circuit = hgf.elaborate(SumLoop(n))

    def transform():
        debug = DebugInfo()
        low = lower_types(circuit, debug)
        return expand_whens(low, debug)

    benchmark(transform)


def test_lst12_semantics_match_python(benchmark):
    """The transformed hardware computes what Listing 1's C code computes."""
    from repro.sim import Simulator

    design = repro.compile(SumLoop(8))
    sim = Simulator(design.low)
    sim.reset()

    import random

    rng = random.Random(7)
    cases = [[rng.randrange(256) for _ in range(8)] for _ in range(50)]

    def run_all():
        for data in cases:
            for i, v in enumerate(data):
                sim.poke(f"data_{i}", v)
            expected = sum(v for v in data if v % 2) & 0xFFFF
            assert sim.peek("result") == expected

    benchmark.pedantic(run_all, rounds=2)
