"""Fast-path speedups: dirty-set incremental comb + compiled conditions.

The per-cycle hot paths this repository compiles away (see
``docs/performance.md``):

* ``poke``/``set_value`` re-evaluated the *entire* combinational schedule;
  the fast path re-evaluates only the poked signal's fanout cone.  The
  acceptance bar: >= 2x on a poke-heavy workload driving a single input of
  the CPU case-study design.
* eager per-poke cone settling paid one cone pass per driven input; the
  lazy dirty set batches N pokes between settles into one merged cone
  evaluation (``sim.batch()`` / implicit at the next step).  The
  acceptance bar: >= 2x driving several inputs per cycle, batched vs.
  flushing after every poke (PR 1's eager behavior).
* breakpoint enable/user conditions were tree-walked with per-evaluation
  name resolution; compiled conditions evaluate a whole scheduling group
  as one exec-compiled closure over pre-resolved value-table indices.  The
  acceptance bar: >= 1.5x on per-cycle condition evaluation.

* snapshot recording scanned every state signal per cycle in Python; the
  vectorized value store (``store="numpy"``) runs the delta scan and the
  keyframe copies over a zero-copy numpy view of the typed 64-bit lane
  buffer.  The acceptance bar: >= 1.3x over the ``list`` store baseline on
  a free-running tick workload with snapshots enabled.

All comparisons run the exact same workload through the reference
implementation (``fast=False`` / ``compile_conditions=False`` /
``store="list"``), and all cross-check that the paths computed identical
results before asserting on timing.
"""

from __future__ import annotations

import os
import time

import repro
import repro.hgf as hgf
from repro.core import CONTINUE, Runtime
from repro.sim import Simulator, numpy_available
from repro.symtable import SQLiteSymbolTable, write_symbol_table

from conftest import TIMING_REPS, best_of as _best_of

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_POKE_CYCLES = 20 if _SMOKE else 300
_POKES_PER_CYCLE = 4
_COND_ITERS = 100 if _SMOKE else 3000


# -- poke-heavy workload on the CPU case study -----------------------------


def _poke_workload(sim, cycles: int) -> None:
    """A testbench-style loop: re-drive an input several times per cycle,
    then clock.  ``reset`` is the CPU's only data-free input, and its comb
    fanout cone is tiny — exactly the case the dirty-set path targets."""
    for c in range(cycles):
        for i in range(_POKES_PER_CYCLE):
            sim.poke("reset", (c + i) & 1)
        sim.step(1)


def test_fastpath_poke_speedup(compiled_suite, capsys):
    _bench, design, _st = compiled_suite[("vvadd", False)]
    sims = {}
    for fast in (True, False):
        sim = Simulator(design.low, fast=fast)
        sim.reset()
        _poke_workload(sim, 2)  # warm cone caches / interpreter equally
        sims[fast] = sim

    t_fast = _best_of(_poke_workload, sims[True], _POKE_CYCLES)
    t_ref = _best_of(_poke_workload, sims[False], _POKE_CYCLES)

    # Identical stimulus must leave both paths in identical state.
    assert sims[True].values == sims[False].values
    assert sims[True].mems == sims[False].mems

    speedup = t_ref / t_fast
    with capsys.disabled():
        print(
            f"\n=== fastpath: poke-heavy workload (RV32 core, "
            f"{_POKES_PER_CYCLE} pokes/cycle x {_POKE_CYCLES} cycles) ===\n"
            f"reference (full comb per poke): {t_ref * 1e3:8.2f} ms\n"
            f"fast (fanout-cone per poke):    {t_fast * 1e3:8.2f} ms\n"
            f"speedup: {speedup:.2f}x (bar: >= 2x)"
        )
    if not _SMOKE:
        assert speedup >= 2.0, f"poke fast path only {speedup:.2f}x"


# -- batched multi-poke: lazy dirty-set union vs eager per-poke settling ----


class _ManyInputMix(hgf.Module):
    """N inputs feeding one deep shared arithmetic chain: every input's
    fanout cone is nearly the whole chain, so eager per-poke settling pays
    ~N chain evaluations per cycle where the batched dirty set pays one."""

    def __init__(self, n: int = 6, depth: int = 24):
        super().__init__()
        ins = [self.input(f"i{k}", 16) for k in range(n)]
        self.o = self.output("o", 16)
        acc = self.lit(0x1234, 16)
        # Materialize every stage as a wire: one assignment per stage keeps
        # the expression tree linear (no duplicated subtrees) and gives the
        # schedule a deep chain for the cones to subset.
        for k, p in enumerate(ins):
            stage = self.wire(f"s{k}", 16)
            stage <<= ((acc ^ p) + self.lit(2 * k + 1, 16))[15:0]
            acc = stage
        for d in range(depth):
            stage = self.wire(f"t{d}", 16)
            stage <<= ((acc * self.lit(3, 16)) ^ (acc >> 1) ^ self.lit(d, 16))[15:0]
            acc = stage
        self.o <<= acc


_BATCH_INPUTS = 6
_BATCH_CYCLES = 20 if _SMOKE else 400


def _batched_workload(sim, cycles: int) -> None:
    names = [f"i{k}" for k in range(_BATCH_INPUTS)]
    for c in range(cycles):
        with sim.batch():
            for k, name in enumerate(names):
                sim.poke(name, (c * 31 + k * 7) & 0xFFFF)
        sim.step(1)


def _eager_workload(sim, cycles: int) -> None:
    """PR 1 semantics: every poke settles its own fanout cone."""
    names = [f"i{k}" for k in range(_BATCH_INPUTS)]
    for c in range(cycles):
        for k, name in enumerate(names):
            sim.poke(name, (c * 31 + k * 7) & 0xFFFF)
            sim.flush()
        sim.step(1)


def test_fastpath_batched_multi_poke_speedup(capsys):
    design = repro.compile(_ManyInputMix(_BATCH_INPUTS))
    sims = {}
    for label, fn in (("batched", _batched_workload), ("eager", _eager_workload)):
        sim = Simulator(design.low, fast=True)
        sim.reset()
        fn(sim, 2)  # warm the cone caches equally
        sims[label] = (sim, fn)

    t_batched = _best_of(_batched_workload, sims["batched"][0], _BATCH_CYCLES)
    t_eager = _best_of(_eager_workload, sims["eager"][0], _BATCH_CYCLES)

    # Identical stimulus must leave both schedules in identical state, and
    # both must match the full-comb reference over the same run count.
    ref = Simulator(design.low, fast=False)
    ref.reset()
    _batched_workload(ref, 2)
    for _ in range(TIMING_REPS):
        _batched_workload(ref, _BATCH_CYCLES)
    for sim, _fn in sims.values():
        sim.flush()
    assert sims["batched"][0].values == sims["eager"][0].values == ref.values

    speedup = t_eager / t_batched
    with capsys.disabled():
        print(
            f"\n=== fastpath: batched multi-poke ({_BATCH_INPUTS} inputs/cycle "
            f"x {_BATCH_CYCLES} cycles) ===\n"
            f"eager (cone settle per poke):   {t_eager * 1e3:8.2f} ms\n"
            f"batched (one merged cone):      {t_batched * 1e3:8.2f} ms\n"
            f"speedup: {speedup:.2f}x (bar: >= 2x)"
        )
    if not _SMOKE:
        assert speedup >= 2.0, f"batched multi-poke only {speedup:.2f}x"


# -- per-cycle breakpoint-condition evaluation -----------------------------


class _CondLane(hgf.Module):
    def __init__(self):
        super().__init__()
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        acc = self.reg("acc", 8, init=0)
        with self.when(self.x > 0):
            acc <<= (acc + self.x)[7:0]
        self.y <<= acc


class _CondLanes(hgf.Module):
    """N concurrent instances sharing one source line: one scheduling
    group with N breakpoints, evaluated every armed cycle."""

    def __init__(self, n: int = 16):
        super().__init__()
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        out = self.lit(0, 8)
        for i in range(n):
            lane = self.instance(f"lane{i}", _CondLane())
            lane.x <<= self.x
            out = out ^ lane.y
        self.y <<= out


def test_fastpath_condition_eval_speedup(capsys):
    design = repro.compile(_CondLanes(16))
    st = SQLiteSymbolTable(write_symbol_table(design))
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")

    timings = {}
    hits_by_mode = {}
    for compiled in (True, False):
        sim = Simulator(design.low)
        rt = Runtime(sim, st, lambda h: CONTINUE, compile_conditions=compiled)
        rt.attach()
        sim.reset()
        # `acc` is 8 bits: the user condition evaluates fully every cycle
        # and never stops the simulation — pure evaluation cost.
        rt.add_breakpoint(
            entry.info.filename, entry.info.line, condition="acc > 300"
        )
        sim.poke("x", 1)
        sim.step(1)
        groups = rt.scheduler.groups()
        rt._find_hit(groups, 0, 1)  # warm: compiles the group closure once
        evals0 = rt.stats_bp_evals

        def eval_loop(rt=rt, groups=groups):
            for _ in range(_COND_ITERS):
                rt._find_hit(groups, 0, 1)

        timings[compiled] = _best_of(eval_loop)
        hits_by_mode[compiled] = rt.stats_bp_evals - evals0

    # Both modes evaluated the same number of breakpoint conditions
    # (every best-of repeat runs the full loop).
    assert (
        hits_by_mode[True]
        == hits_by_mode[False]
        == _COND_ITERS * 16 * TIMING_REPS
    )

    speedup = timings[False] / timings[True]
    per_eval_ns = timings[True] / (_COND_ITERS * 16) * 1e9
    with capsys.disabled():
        print(
            f"\n=== fastpath: breakpoint-condition evaluation "
            f"(16-thread group x {_COND_ITERS} cycles) ===\n"
            f"interpreted (tree-walk + name resolution): "
            f"{timings[False] * 1e3:8.2f} ms\n"
            f"compiled (batched group closure):          "
            f"{timings[True] * 1e3:8.2f} ms   ({per_eval_ns:.0f} ns/eval)\n"
            f"speedup: {speedup:.2f}x (bar: >= 1.5x)"
        )
    if not _SMOKE:
        assert speedup >= 1.5, f"condition fast path only {speedup:.2f}x"


# -- vectorized value store: free-running ticks under snapshots -------------


class _SnapshotFarm(hgf.Module):
    """Wide state, sparse activity: many input ports (state the snapshot
    scan must cover every cycle) plus a few free-running counters (so each
    cycle has real activity and a non-empty delta).  The per-cycle cost is
    dominated by the snapshot state scan — exactly what the vectorized
    store turns into one numpy gather/compare."""

    def __init__(self, n_inputs: int = 384, n_regs: int = 4):
        super().__init__()
        ins = [self.input(f"i{k}", 16) for k in range(n_inputs)]
        self.o = self.output("o", 16)
        acc = self.lit(0, 16)
        for k, p in enumerate(ins):
            stage = self.wire(f"s{k}", 16)
            stage <<= (acc ^ p)[15:0]
            acc = stage
        for j in range(n_regs):
            r = self.reg(f"c{j}", 16, init=0)
            r <<= (r + self.lit(2 * j + 1, 16))[15:0]
            mix = self.wire(f"m{j}", 16)
            mix <<= (acc ^ r)[15:0]
            acc = mix
        self.o <<= acc


_STORE_CYCLES = 50 if _SMOKE else 4000
_STORE_SNAPSHOTS = 32


def test_fastpath_vectorized_store_speedup(capsys):
    """Free-running tick workload with snapshots: the vectorized store's
    delta scan vs. the list baseline's per-signal Python loop."""
    design = repro.compile(_SnapshotFarm())
    vec_kind = "numpy" if numpy_available() else "array"
    sims = {}
    for kind in (vec_kind, "list"):
        sim = Simulator(
            design.low, snapshots=_STORE_SNAPSHOTS, fast=True, store=kind
        )
        sim.reset()
        sim.step(4)  # warm cone caches, take the first snapshots
        sims[kind] = sim

    t_vec = _best_of(sims[vec_kind].step, _STORE_CYCLES)
    t_list = _best_of(sims["list"].step, _STORE_CYCLES)

    # Identical workload must leave both stores bit-identical, and the
    # rewind window must reconstruct identically too.
    assert sims[vec_kind].values.as_list() == sims["list"].values.as_list()
    t = sims[vec_kind].timeline.times()[0]
    for sim in sims.values():
        sim.set_time(t)
    assert sims[vec_kind].values.as_list() == sims["list"].values.as_list()

    speedup = t_list / t_vec
    with capsys.disabled():
        print(
            f"\n=== fastpath: value store, free-running ticks + snapshots "
            f"({_STORE_CYCLES} cycles, {len(design.low.modules)} module(s), "
            f"{len(sims['list'].design.state_indices)} state signals) ===\n"
            f"list store (per-signal scan):   {t_list * 1e3:8.2f} ms\n"
            f"{vec_kind} store (vectorized):     {t_vec * 1e3:8.2f} ms\n"
            f"speedup: {speedup:.2f}x (bar: >= 1.3x, asserted on numpy)"
        )
    if not _SMOKE and vec_kind == "numpy":
        assert speedup >= 1.3, f"vectorized store only {speedup:.2f}x"


# -- observability off-mode overhead ----------------------------------------


def test_fastpath_obs_disabled_overhead(compiled_suite, capsys):
    """Observability must be free when off (and nearly free in metrics
    mode): hot objects bump always-on plain ints either way, and the
    registry is only touched at snapshot time.  Runs the poke-heavy
    workload with ``obs="off"`` vs ``obs="metrics"`` and pins the ratio.
    The two paths must also stay bit-identical."""
    _bench, design, _st = compiled_suite[("vvadd", False)]
    sims = {}
    for mode in ("off", "metrics"):
        sim = Simulator(design.low, fast=True, obs=mode)
        sim.reset()
        _poke_workload(sim, 2)  # warm cone caches equally
        sims[mode] = sim

    t_off = _best_of(_poke_workload, sims["off"], _POKE_CYCLES)
    t_metrics = _best_of(_poke_workload, sims["metrics"], _POKE_CYCLES)

    assert sims["off"].state_digest() == sims["metrics"].state_digest()
    assert sims["off"].values == sims["metrics"].values
    # The enabled side actually collected: the snapshot carries the ticks.
    snap = sims["metrics"].obs.metrics.snapshot()
    ticks = next(
        m for m in snap["metrics"] if m["name"] == "sim_ticks_total"
    )
    assert ticks["value"] == sims["metrics"].stats()["ticks"]

    overhead = t_metrics / t_off
    with capsys.disabled():
        print(
            f"\n=== fastpath: observability overhead (poke-heavy workload, "
            f"{_POKE_CYCLES} cycles) ===\n"
            f"obs=off:     {t_off * 1e3:8.2f} ms\n"
            f"obs=metrics: {t_metrics * 1e3:8.2f} ms\n"
            f"ratio: {overhead:.3f}x (bar: <= 1.05x)"
        )
    if not _SMOKE:
        assert overhead <= 1.05, f"metrics-mode overhead {overhead:.3f}x"


def test_fastpath_armed_stepping_report(capsys):
    """End-to-end: armed stepping (simulation + scheduling + conditions)
    with both paths enabled vs. both references.  Reported for context; the
    focused speedup bars live in the two tests above."""
    design = repro.compile(_CondLanes(8))
    st = SQLiteSymbolTable(write_symbol_table(design))
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")
    cycles = 50 if _SMOKE else 500

    timings = {}
    for label, fast, compiled in (
        ("fast", True, True),
        ("reference", False, False),
    ):
        sim = Simulator(design.low, fast=fast)
        rt = Runtime(sim, st, lambda h: CONTINUE, compile_conditions=compiled)
        rt.attach()
        sim.reset()
        rt.add_breakpoint(
            entry.info.filename, entry.info.line, condition="acc > 300"
        )
        sim.poke("x", 1)
        sim.step(5)  # warm
        t0 = time.perf_counter()
        sim.step(cycles)
        timings[label] = time.perf_counter() - t0

    with capsys.disabled():
        print(
            f"\n=== fastpath: armed stepping, {cycles} cycles, 8-thread "
            f"group ===\n"
            f"reference: {timings['reference'] * 1e3:8.2f} ms\n"
            f"fast:      {timings['fast'] * 1e3:8.2f} ms  "
            f"({timings['reference'] / timings['fast']:.2f}x)"
        )
