"""Fast-path speedups: dirty-set incremental comb + compiled conditions.

The per-cycle hot paths this repository compiles away (see
``docs/performance.md``):

* ``poke``/``set_value`` re-evaluated the *entire* combinational schedule;
  the fast path re-evaluates only the poked signal's fanout cone.  The
  acceptance bar: >= 2x on a poke-heavy workload driving a single input of
  the CPU case-study design.
* breakpoint enable/user conditions were tree-walked with per-evaluation
  name resolution; compiled conditions evaluate a whole scheduling group
  as one exec-compiled closure over pre-resolved value-table indices.  The
  acceptance bar: >= 1.5x on per-cycle condition evaluation.

Both comparisons run the exact same workload through the reference
implementation (``fast=False`` / ``compile_conditions=False``), and both
cross-check that the two paths computed identical results before asserting
on timing.
"""

from __future__ import annotations

import os
import time

import repro
import repro.hgf as hgf
from repro.core import CONTINUE, Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_POKE_CYCLES = 20 if _SMOKE else 300
_POKES_PER_CYCLE = 4
_COND_ITERS = 100 if _SMOKE else 3000
_REPEATS = 1 if _SMOKE else 3


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


# -- poke-heavy workload on the CPU case study -----------------------------


def _poke_workload(sim, cycles: int) -> None:
    """A testbench-style loop: re-drive an input several times per cycle,
    then clock.  ``reset`` is the CPU's only data-free input, and its comb
    fanout cone is tiny — exactly the case the dirty-set path targets."""
    for c in range(cycles):
        for i in range(_POKES_PER_CYCLE):
            sim.poke("reset", (c + i) & 1)
        sim.step(1)


def test_fastpath_poke_speedup(compiled_suite, capsys):
    _bench, design, _st = compiled_suite[("vvadd", False)]
    sims = {}
    for fast in (True, False):
        sim = Simulator(design.low, fast=fast)
        sim.reset()
        _poke_workload(sim, 2)  # warm cone caches / interpreter equally
        sims[fast] = sim

    t_fast = _best_of(_poke_workload, sims[True], _POKE_CYCLES)
    t_ref = _best_of(_poke_workload, sims[False], _POKE_CYCLES)

    # Identical stimulus must leave both paths in identical state.
    assert sims[True].values == sims[False].values
    assert sims[True].mems == sims[False].mems

    speedup = t_ref / t_fast
    with capsys.disabled():
        print(
            f"\n=== fastpath: poke-heavy workload (RV32 core, "
            f"{_POKES_PER_CYCLE} pokes/cycle x {_POKE_CYCLES} cycles) ===\n"
            f"reference (full comb per poke): {t_ref * 1e3:8.2f} ms\n"
            f"fast (fanout-cone per poke):    {t_fast * 1e3:8.2f} ms\n"
            f"speedup: {speedup:.2f}x (bar: >= 2x)"
        )
    if not _SMOKE:
        assert speedup >= 2.0, f"poke fast path only {speedup:.2f}x"


# -- per-cycle breakpoint-condition evaluation -----------------------------


class _CondLane(hgf.Module):
    def __init__(self):
        super().__init__()
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        acc = self.reg("acc", 8, init=0)
        with self.when(self.x > 0):
            acc <<= (acc + self.x)[7:0]
        self.y <<= acc


class _CondLanes(hgf.Module):
    """N concurrent instances sharing one source line: one scheduling
    group with N breakpoints, evaluated every armed cycle."""

    def __init__(self, n: int = 16):
        super().__init__()
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        out = self.lit(0, 8)
        for i in range(n):
            lane = self.instance(f"lane{i}", _CondLane())
            lane.x <<= self.x
            out = out ^ lane.y
        self.y <<= out


def test_fastpath_condition_eval_speedup(capsys):
    design = repro.compile(_CondLanes(16))
    st = SQLiteSymbolTable(write_symbol_table(design))
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")

    timings = {}
    hits_by_mode = {}
    for compiled in (True, False):
        sim = Simulator(design.low)
        rt = Runtime(sim, st, lambda h: CONTINUE, compile_conditions=compiled)
        rt.attach()
        sim.reset()
        # `acc` is 8 bits: the user condition evaluates fully every cycle
        # and never stops the simulation — pure evaluation cost.
        rt.add_breakpoint(
            entry.info.filename, entry.info.line, condition="acc > 300"
        )
        sim.poke("x", 1)
        sim.step(1)
        groups = rt.scheduler.groups()
        rt._find_hit(groups, 0, 1)  # warm: compiles the group closure once
        evals0 = rt.stats_bp_evals

        t0 = time.perf_counter()
        for _ in range(_COND_ITERS):
            rt._find_hit(groups, 0, 1)
        timings[compiled] = time.perf_counter() - t0
        hits_by_mode[compiled] = rt.stats_bp_evals - evals0

    # Both modes evaluated the same number of breakpoint conditions.
    assert hits_by_mode[True] == hits_by_mode[False] == _COND_ITERS * 16

    speedup = timings[False] / timings[True]
    per_eval_ns = timings[True] / (_COND_ITERS * 16) * 1e9
    with capsys.disabled():
        print(
            f"\n=== fastpath: breakpoint-condition evaluation "
            f"(16-thread group x {_COND_ITERS} cycles) ===\n"
            f"interpreted (tree-walk + name resolution): "
            f"{timings[False] * 1e3:8.2f} ms\n"
            f"compiled (batched group closure):          "
            f"{timings[True] * 1e3:8.2f} ms   ({per_eval_ns:.0f} ns/eval)\n"
            f"speedup: {speedup:.2f}x (bar: >= 1.5x)"
        )
    if not _SMOKE:
        assert speedup >= 1.5, f"condition fast path only {speedup:.2f}x"


def test_fastpath_armed_stepping_report(capsys):
    """End-to-end: armed stepping (simulation + scheduling + conditions)
    with both paths enabled vs. both references.  Reported for context; the
    focused speedup bars live in the two tests above."""
    design = repro.compile(_CondLanes(8))
    st = SQLiteSymbolTable(write_symbol_table(design))
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")
    cycles = 50 if _SMOKE else 500

    timings = {}
    for label, fast, compiled in (
        ("fast", True, True),
        ("reference", False, False),
    ):
        sim = Simulator(design.low, fast=fast)
        rt = Runtime(sim, st, lambda h: CONTINUE, compile_conditions=compiled)
        rt.attach()
        sim.reset()
        rt.add_breakpoint(
            entry.info.filename, entry.info.line, condition="acc > 300"
        )
        sim.poke("x", 1)
        sim.step(5)  # warm
        t0 = time.perf_counter()
        sim.step(cycles)
        timings[label] = time.perf_counter() - t0

    with capsys.disabled():
        print(
            f"\n=== fastpath: armed stepping, {cycles} cycles, 8-thread "
            f"group ===\n"
            f"reference: {timings['reference'] * 1e3:8.2f} ms\n"
            f"fast:      {timings['fast'] * 1e3:8.2f} ms  "
            f"({timings['reference'] / timings['fast']:.2f}x)"
        )
