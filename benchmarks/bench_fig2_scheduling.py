"""Figure 2: the breakpoint scheduling loop.

Measures the properties the algorithm is designed for:

* the *fast exit* when no breakpoint is inserted (the whole reason
  overhead stays < 5% — step (1) "if there is no breakpoint left to
  select, we exit the loop");
* per-cycle scheduling cost as inserted breakpoints grow;
* group evaluation over many concurrent instances ("tens of threads that
  share the same source information");
* forward vs reversed selection order (intra-cycle reverse debugging)
  costing the same.
"""

from __future__ import annotations

import os

import pytest

import repro
import repro.hgf as hgf
from repro.core import CONTINUE, Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table

from conftest import best_of

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


class _Lane(hgf.Module):
    def __init__(self):
        super().__init__()
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        acc = self.reg("acc", 8, init=0)
        with self.when(self.x > 0):
            acc <<= (acc + self.x)[7:0]
        self.y <<= acc


class _ManyLanes(hgf.Module):
    """N instances sharing source lines: one scheduling group, N threads."""

    def __init__(self, n: int):
        super().__init__()
        self.n = n
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        out = self.lit(0, 8)
        for i in range(n):
            lane = self.instance(f"lane{i}", _Lane())
            lane.x <<= self.x
            out = out ^ lane.y
        self.y <<= out


def _make(n_lanes: int, compile_conditions: bool = True):
    design = repro.compile(_ManyLanes(n_lanes))
    sim = Simulator(design.low)
    st = SQLiteSymbolTable(write_symbol_table(design))
    rt = Runtime(sim, st, lambda h: CONTINUE, compile_conditions=compile_conditions)
    rt.attach()
    return design, sim, rt


def test_fig2_fast_exit_no_breakpoints(benchmark):
    """Scheduling cost with zero inserted breakpoints: the fast path."""
    _design, sim, rt = _make(8)
    sim.reset()
    sim.poke("x", 1)

    benchmark(lambda: sim.step(100))
    assert rt.stats_bp_evals == 0


@pytest.mark.parametrize("n_lanes", [1, 4, 16])
def test_fig2_group_evaluation_scales(benchmark, n_lanes):
    """One source breakpoint over N concurrent instances: the scheduler
    evaluates the whole group per cycle."""
    design, sim, rt = _make(n_lanes)
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")
    sim.reset()
    rt.add_breakpoint(entry.info.filename, entry.info.line)
    sim.poke("x", 1)

    benchmark(lambda: sim.step(50))
    assert rt.stats_bp_evals >= 50 * n_lanes


def test_fig2_reverse_order_costs_like_forward(benchmark, capsys):
    """Intra-cycle reverse scheduling is the same loop, reversed."""
    design, sim, rt = _make(4)
    entry = next(e for e in design.debug_info.all_entries() if e.sink == "acc")
    rt.add_breakpoint(entry.info.filename, entry.info.line)
    sim.poke("x", 1)
    sim.reset()

    from repro.core import REVERSE_STEP, STEP

    timings = {}

    def measure():
        for label, cmds in (("forward", [STEP] * 40), ("reverse", [STEP, REVERSE_STEP] * 20)):
            # Best-of-N (conftest.best_of): the x10 bound below is a
            # ratio assertion, and a single 20-cycle sample flakes on
            # scheduler noise.  The command sequence is re-armed untimed
            # before every repeat.
            def arm(cmds=cmds):
                seq = iter(cmds)
                rt.on_hit = lambda h: next(seq, CONTINUE)
                return (20,)

            timings[label] = best_of(sim.step, setup=arm)

    benchmark.pedantic(measure, rounds=1)
    with capsys.disabled():
        print(
            f"\n=== Fig. 2: scheduling order ===\n"
            f"forward stepping: {timings['forward'] * 1e3:.2f} ms / 20 cycles\n"
            f"with reverse-steps: {timings['reverse'] * 1e3:.2f} ms / 20 cycles"
        )
    # Reverse scheduling must be the same order of magnitude.
    assert timings["reverse"] < timings["forward"] * 10


def test_fig2_compiled_vs_interpreted_conditions(benchmark, capsys):
    """Fast-vs-reference row: armed scheduling with a conditional
    breakpoint over 16 concurrent instances, with exec-compiled group
    conditions vs. the tree-walking interpreter."""
    cycles = 20 if _SMOKE else 200
    timings = {}
    evals = {}

    def measure():
        for label, compiled in (("compiled", True), ("interpreted", False)):
            design, sim, rt = _make(16, compile_conditions=compiled)
            entry = next(
                e for e in design.debug_info.all_entries() if e.sink == "acc"
            )
            sim.reset()
            # Never-true user condition: pure per-cycle evaluation cost.
            rt.add_breakpoint(
                entry.info.filename, entry.info.line, condition="acc > 300"
            )
            sim.poke("x", 1)
            sim.step(2)  # warm (compiles the group closure once)
            # Best-of-N: the "not slower" x1.1 bound is the tightest
            # ratio bar in the suite and flaked on single samples.
            timings[label] = best_of(sim.step, cycles)
            evals[label] = rt.stats_bp_evals

    benchmark.pedantic(measure, rounds=1)
    assert evals["compiled"] == evals["interpreted"]
    with capsys.disabled():
        print(
            f"\n=== Fig. 2 extension: condition evaluation, 16-thread group "
            f"x {cycles} cycles ===\n"
            f"interpreted: {timings['interpreted'] * 1e3:8.2f} ms\n"
            f"compiled:    {timings['compiled'] * 1e3:8.2f} ms  "
            f"({timings['interpreted'] / timings['compiled']:.2f}x)"
        )
    if not _SMOKE:
        # Compiled conditions must not be slower; the focused >=1.5x bar
        # lives in bench_fastpath.py.
        assert timings["compiled"] < timings["interpreted"] * 1.1
