"""Shard-farm scaling: aggregate simulation throughput vs. worker count.

The ``repro.shard`` subsystem exists to buy wall-clock with processes: a
4-shard sweep on 4 workers should finish close to 4x faster than on one.
This benchmark runs the *same* 4-shard sweep (same seeds, same armed
breakpoint) at 1, 2, and 4 workers and reports the scaling curve as
aggregate cycles/second.

Acceptance bar: >= 2x aggregate throughput at 4 workers vs. 1 on the
4-shard sweep.  The bar needs real parallel hardware, so it is asserted
only when the machine exposes >= 4 usable CPUs (and never in smoke mode);
the parity check — every worker count must produce identical per-shard
results — always runs, on any machine.
"""

from __future__ import annotations

import os

import repro
import repro.hgf as hgf
from repro.shard import BreakpointSpec, ShardSession, make_sweep

from conftest import best_of

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_SHARDS = 4
_CYCLES = 60 if _SMOKE else 3000
_WORKER_COUNTS = (1, 2, 4)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


class _ShardPipe(hgf.Module):
    """A register pipeline with per-stage arithmetic: enough tick work per
    cycle that a shard is compute-bound in the simulator, not in pipes."""

    def __init__(self, stages: int = 24, width: int = 32):
        super().__init__()
        self.x = self.input("x", width)
        self.o = self.output("o", width)
        mask = (1 << width) - 1
        acc = self.x
        for k in range(stages):
            r = self.reg(f"p{k}", width, init=(k * 2654435761) & mask)
            r <<= ((acc ^ r) + self.lit((2 * k + 1) & mask, width))[width - 1:0]
            acc = r
        self.o <<= acc


def _sweep_specs(design):
    # One armed breakpoint with a rarely-true condition: the sweep pays
    # the per-cycle debugger cost a real hit-hunting run would pay.
    filename = line = None
    for entry in design.debug_info.all_entries():
        if entry.sink == "p0":
            filename, line = entry.info.filename, entry.info.line
            break
    assert filename is not None
    bp = BreakpointSpec(filename, line, condition="p0 == 12345")
    return make_sweep(_SHARDS, _CYCLES, breakpoints=[bp])


def test_shard_scaling_curve(capsys):
    design = repro.compile(_ShardPipe())
    specs = _sweep_specs(design)

    rows = []
    outcomes = {}
    for workers in _WORKER_COUNTS:
        with ShardSession(design, workers=workers) as session:
            # Best-of-N (conftest.best_of): the >=2x bar below is a ratio
            # assertion and a single sweep sample flakes on pool-launch
            # jitter.  n=2 keeps the bench's wall time bounded; every
            # repeat's report must be ok and identical (parity below
            # compares the last).
            reports = []
            wall = best_of(
                lambda s=session: reports.append(s.run(specs)),
                n=1 if _SMOKE else 2,
            )
        report = reports[-1]
        for rep in reports:
            assert rep.ok, [r.error for r in rep.errors]
        rows.append((workers, wall, report.total_cycles / wall))
        outcomes[workers] = [
            (r.shard_id, r.seed, r.cycles, r.hits) for r in report.results
        ]

    # Parity: the worker count is a throughput knob, never a semantics
    # knob — every pool size must produce identical per-shard results.
    for workers in _WORKER_COUNTS[1:]:
        assert outcomes[workers] == outcomes[_WORKER_COUNTS[0]]

    base_rate = rows[0][2]
    with capsys.disabled():
        print(
            f"\n=== shard farm scaling ({_SHARDS} shards x {_CYCLES} "
            f"cycles, {_cpus()} CPU(s) available) ==="
        )
        print(f"{'workers':>8} {'wall':>10} {'cycles/s':>12} {'speedup':>8}")
        for workers, wall, rate in rows:
            print(
                f"{workers:>8} {wall * 1e3:>8.1f}ms {rate:>12,.0f} "
                f"{rate / base_rate:>7.2f}x"
            )
        print("bar: >= 2x at 4 workers (asserted with >= 4 CPUs, non-smoke)")

    speedup4 = dict((w, r) for w, _t, r in rows)[4] / base_rate
    if not _SMOKE and _cpus() >= 4:
        assert speedup4 >= 2.0, (
            f"4-worker sweep only {speedup4:.2f}x over 1 worker"
        )
