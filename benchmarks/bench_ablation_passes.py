"""Ablation: which compiler passes cost how many debug symbols?

DESIGN.md notes a deliberate choice: the default pipeline keeps named nodes
in the netlist (like FIRRTL) so optimized builds stay debuggable, and the
``inline_nodes`` pass (FIRRTL's emit-time expression folding) is *not* run
by default.  This bench quantifies that trade-off and the per-pass symbol
cost on the CPU design:

* netlist statements vs surviving breakpoints per pipeline variant,
* simulation speed per variant (what the optimization buys).
"""

from __future__ import annotations

import os

import repro.hgf as hgf
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.ir.debug import DebugInfo
from repro.ir.passes import const_prop, cse, dce, expand_whens, lower_types
from repro.ir.passes.inline_nodes import inline_nodes
from repro.ir.stmt import DefNode
from repro.sim import Simulator


def _pipeline(circuit_high, variant: str):
    """Run a named pipeline variant; returns (low circuit, debug info)."""
    debug = DebugInfo()
    low = lower_types(circuit_high, debug)
    low, _ = expand_whens(low, debug)
    if variant == "none":
        pass
    elif variant in ("constprop", "constprop+cse", "full", "full+inline"):
        low = const_prop(low)
        if variant != "constprop":
            low, renames = cse(low)
            for module, table in renames.items():
                debug.apply_renames(module, table)
        if variant in ("full", "full+inline"):
            if variant == "full+inline":
                low = inline_nodes(low)
            low, _alive = dce(low)
    else:
        raise ValueError(variant)
    # Algorithm 1 second pass:
    for name, m in low.modules.items():
        defined = {p.name for p in m.ports}
        for s in m.body:
            if hasattr(s, "name"):
                defined.add(s.name)
        debug.prune_dead(name, defined)
    return low, debug


from conftest import best_of

_VARIANTS = ["none", "constprop", "constprop+cse", "full", "full+inline"]

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _stats(low, debug):
    stmts = sum(len(m.body) for m in low.modules.values())
    nodes = sum(
        1 for m in low.modules.values() for s in m.body if isinstance(s, DefNode)
    )
    return stmts, nodes, len(debug.all_entries())


def test_ablation_table(benchmark, capsys):
    bench = benchmark_by_name("median")
    words = assemble(bench.source).words
    circuit = hgf.elaborate(RV32Core(words, mem_words=8192))

    rows = {}

    def sweep():
        rows.clear()
        for variant in _VARIANTS:
            low, debug = _pipeline(circuit, variant)
            rows[variant] = (_stats(low, debug), low)

    benchmark.pedantic(sweep, rounds=1)

    lines = ["", "=== Ablation: pass pipeline vs netlist size vs debug symbols ==="]
    lines.append(
        f"{'pipeline':16s} {'stmts':>7s} {'nodes':>7s} {'symbols':>8s} {'sim ms':>8s}"
    )
    sim_ms = {}
    for variant in _VARIANTS:
        (stmts, nodes, symbols), low = rows[variant]
        # Best-of-N (conftest.best_of): the full-vs-none bound below flaked
        # on one-off scheduler stalls before.  Each repeat runs on a fresh
        # reset simulator (the untimed setup) and is checked for the right
        # answer afterwards.
        sims = []

        def fresh(low=low):
            sim = Simulator(low)
            sim.reset()
            sims.append(sim)
            return (sim, 100_000)

        sim_ms[variant] = best = best_of(Simulator.run, setup=fresh) * 1e3
        for sim in sims:
            assert sim.peek("tohost") == bench.expected, variant
        lines.append(
            f"{variant:16s} {stmts:7d} {nodes:7d} {symbols:8d} {best:8.1f}"
        )
    with capsys.disabled():
        print("\n".join(lines))

    # The trade-off the design choice rests on:
    none_syms = rows["none"][0][2]
    full_syms = rows["full"][0][2]
    inline_syms = rows["full+inline"][0][2]
    assert none_syms >= full_syms >= inline_syms
    assert inline_syms < full_syms, "inline_nodes must cost extra symbols"
    # Every variant still computes the right answer (asserted above), and
    # optimization must not make simulation slower.  The symbol-count
    # assertions above are exact in every mode; the timing bound is only
    # checked on best-of-N runs — a smoke run measures each variant once,
    # which is too noisy to bound (see check_bench.py).
    if not _SMOKE:
        assert sim_ms["full"] <= sim_ms["none"] * 1.5
