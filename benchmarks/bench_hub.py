"""Hub amortization: compile once, debug many times.

The ``repro.hub`` debug server exists to amortize elaboration + lint +
compile across debug sessions: the design is hot after the first attach,
so the Nth engineer's time-to-first-breakpoint is the per-session cost
(value store + symbol table handle), not the per-design cost (compile).
This benchmark measures exactly that, against the honest alternative —
every engineer constructing their own ``Simulator`` (which recompiles):

* time-to-first-breakpoint for N cold independent sessions vs N hub
  attaches on one hot design;
* state-digest parity: K concurrent hub sessions with distinct seeds,
  each bit-identical to a standalone seeded ``Simulator`` run.

Acceptance bars: the Nth hub attach reaches its first breakpoint >= 5x
faster than a cold independent session (asserted non-smoke, N=8), and
every concurrent session's digest matches its standalone twin (asserted
always, K=32, smoke 8).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import repro
import repro.hgf as hgf
from repro.core import Runtime
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.hub import DebugHub, HubClient, LocalSession
from repro.shard.spec import ShardSpec
from repro.shard.worker import make_stimulus
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable
from repro.symtable.writer import write_symbol_table

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_SESSIONS = 4 if _SMOKE else 8          # time-to-first-breakpoint fan-in
_PARITY_SESSIONS = 8 if _SMOKE else 32  # concurrent digest-parity fan-in
_PARITY_CYCLES = 40 if _SMOKE else 200


class _HubPipe(hgf.Module):
    """A register pipeline big enough that compilation dominates session
    setup — the cost the hub exists to amortize."""

    def __init__(self, stages: int = 12 if _SMOKE else 48, width: int = 32):
        super().__init__()
        self.x = self.input("x", width)
        self.o = self.output("o", width)
        mask = (1 << width) - 1
        acc = self.x
        for k in range(stages):
            r = self.reg(f"p{k}", width, init=(k * 2654435761) & mask)
            r <<= ((acc ^ r) + self.lit((2 * k + 1) & mask, width))[width - 1:0]
            acc = r
        self.o <<= acc


def test_time_to_first_breakpoint(capsys):
    bench = benchmark_by_name("median")
    words = assemble(bench.source).words

    def make_cpu() -> repro.Design:
        return repro.compile(RV32Core(words, mem_words=8192), debug=True)

    design = make_cpu()
    entry = design.debug_info.all_entries()[0]
    filename, line = entry.info.filename, entry.info.line

    # Cold path: every session elaborates and compiles the design for
    # itself — what N engineers each running their own debug script pay
    # before their first breakpoint.
    cold = []
    for i in range(_SESSIONS):
        t0 = time.perf_counter()
        fresh = make_cpu()
        sim = Simulator(fresh.low)  # no compiled= : a fresh compile
        runtime = Runtime(
            sim, SQLiteSymbolTable(write_symbol_table(fresh))
        )
        session = LocalSession(
            runtime,
            stimulus=make_stimulus(sim, ShardSpec(i, seed=i, cycles=0)),
        )
        session.add_breakpoint(filename, line)
        stop = session.run(1000)
        cold.append(time.perf_counter() - t0)
        assert stop.reason == "breakpoint", stop.reason
        session.detach()

    # Hub path: one compile at serve time, N attaches against the hot
    # design.  The hub's own compile is charged separately below.
    t0 = time.perf_counter()
    hub = DebugHub(design)
    host, port = hub.serve_background()
    hub_compile = time.perf_counter() - t0

    hot = []
    clients = []
    try:
        for i in range(_SESSIONS):
            t0 = time.perf_counter()
            client = HubClient(host, port)
            clients.append(client)
            session = client.attach(seed=i)
            session.add_breakpoint(filename, line)
            stop = session.run(1000)
            hot.append(time.perf_counter() - t0)
            assert stop.reason == "breakpoint", stop.reason
    finally:
        for client in clients:
            client.close()
        hub.close()

    # Best-of across sessions (the conftest.best_of estimator, applied to
    # the samples this loop already collected): every session repeats the
    # same workload, so the column minima are the noise-robust sides of
    # the ratio — the last-session sample alone flaked on one-off stalls.
    speedup = min(cold) / min(hot)
    with capsys.disabled():
        print(
            f"\n=== hub amortization: time-to-first-breakpoint "
            f"({_SESSIONS} sessions) ==="
        )
        print(f"{'session':>8} {'cold (ms)':>12} {'hub (ms)':>12}")
        for i, (c, h) in enumerate(zip(cold, hot)):
            print(f"{i:>8} {c * 1e3:>12.1f} {h * 1e3:>12.1f}")
        print(f"hub compile (once): {hub_compile * 1e3:.1f}ms")
        print(
            f"best-of-{_SESSIONS}: {speedup:.1f}x faster attached "
            f"(bar: >= 5x, asserted non-smoke)"
        )

    if not _SMOKE:
        assert speedup >= 5.0, (
            f"Nth hub attach only {speedup:.2f}x faster than a cold "
            f"independent session"
        )


def test_concurrent_session_digest_parity(capsys):
    from repro.sim.compiler import compile_design

    design = repro.compile(_HubPipe(), debug=True)
    compiled = compile_design(design.low, None)

    # Standalone twins: one seeded Simulator run per session, sharing one
    # compiled design (construction cost only — parity is the point here).
    def standalone_digest(seed: int) -> str:
        sim = Simulator(design.low, compiled=compiled)
        stim = make_stimulus(sim, ShardSpec(seed, seed=seed, cycles=0))
        sim.reset(1)
        sim.run_cycles(_PARITY_CYCLES, stimulus=stim)
        return sim.state_digest()

    expected = {seed: standalone_digest(seed) for seed in range(_PARITY_SESSIONS)}

    hub = DebugHub(design)
    host, port = hub.serve_background()

    def hub_digest(seed: int) -> str:
        client = HubClient(host, port)
        try:
            session = client.attach(seed=seed)
            session.reset(1)
            stop = session.run(_PARITY_CYCLES)
            assert stop.reason == "done", stop.reason
            digest = session.state_digest()
            session.detach()
            return digest
        finally:
            client.close()

    t0 = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=_PARITY_SESSIONS) as pool:
            got = dict(
                zip(
                    range(_PARITY_SESSIONS),
                    pool.map(hub_digest, range(_PARITY_SESSIONS)),
                )
            )
    finally:
        hub.close()
    wall = time.perf_counter() - t0

    mismatches = [s for s in expected if got[s] != expected[s]]
    with capsys.disabled():
        print(
            f"\n=== hub isolation: {_PARITY_SESSIONS} concurrent sessions x "
            f"{_PARITY_CYCLES} cycles in {wall * 1e3:.0f}ms ==="
        )
        print(
            f"digest parity vs standalone seeded runs: "
            f"{_PARITY_SESSIONS - len(mismatches)}/{_PARITY_SESSIONS}"
        )
    assert not mismatches, f"sessions diverged from standalone: {mismatches}"
