"""The benchmark regression gate (``benchmarks/check_bench.py --compare``)."""

from __future__ import annotations

import copy
import importlib.util
import json
import os

import pytest

_HERE = os.path.dirname(os.path.abspath(__file__))
_CHECK_BENCH = os.path.join(_HERE, "..", "benchmarks", "check_bench.py")


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location("check_bench", _CHECK_BENCH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _summary(**durations) -> dict:
    return {
        "smoke": True,
        "modules": [
            {"module": name, "returncode": 0, "ok": True, "duration_s": d}
            for name, d in durations.items()
        ],
        "ok": True,
    }


def test_identical_run_passes(check_bench):
    base = _summary(a=1.0, b=30.0)
    ok, lines = check_bench.compare_results(copy.deepcopy(base), base)
    assert ok
    assert all(line.startswith("ok") for line in lines)


def test_large_regression_fails(check_bench):
    base = _summary(a=1.0, b=30.0)
    cur = _summary(a=1.0, b=60.0)
    ok, lines = check_bench.compare_results(cur, base)
    assert not ok
    assert any("SLOWER" in line and "b:" in line for line in lines)


def test_small_absolute_regression_is_noise(check_bench):
    """Sub-second modules cannot flake the gate: the relative tolerance is
    backed by an absolute min-delta floor."""
    base = _summary(a=0.5)
    cur = _summary(a=1.2)  # 2.4x relative, but only +0.7s
    ok, _lines = check_bench.compare_results(cur, base)
    assert ok


def test_missing_and_failed_modules_fail(check_bench):
    base = _summary(a=1.0, b=2.0)
    cur = _summary(a=1.0)
    ok, lines = check_bench.compare_results(cur, base)
    assert not ok and any("MISSING" in line for line in lines)

    cur = _summary(a=1.0, b=2.0)
    cur["modules"][1]["ok"] = False
    cur["modules"][1]["returncode"] = 2
    ok, lines = check_bench.compare_results(cur, base)
    assert not ok and any("FAILED" in line for line in lines)


def test_new_module_reported_not_failed(check_bench):
    base = _summary(a=1.0)
    cur = _summary(a=1.0, brand_new=5.0)
    ok, lines = check_bench.compare_results(cur, base)
    assert ok
    assert any("NEW" in line for line in lines)


def test_tolerance_is_configurable(check_bench):
    base = _summary(a=10.0)
    cur = _summary(a=13.0)  # +30%, +3s
    ok, _ = check_bench.compare_results(cur, base, tolerance=0.15)
    assert not ok
    ok, _ = check_bench.compare_results(cur, base, tolerance=0.5)
    assert ok


def test_bad_flag_values_are_usage_errors(check_bench, capsys):
    assert check_bench.main(["--tolerance", "abc"]) == 2
    assert "need a number" in capsys.readouterr().err
    assert check_bench.main(["--json"]) == 2


def test_committed_baseline_matches_schema(check_bench):
    with open(os.path.join(_HERE, "..", "benchmarks", "baseline.json")) as f:
        baseline = json.load(f)
    assert baseline["modules"], "baseline must track at least one module"
    for m in baseline["modules"]:
        assert {"module", "ok", "duration_s"} <= set(m)
    # The baseline must compare clean against itself.
    ok, _ = check_bench.compare_results(baseline, baseline)
    assert ok
