"""Runtime tests: breakpoint emulation, the Fig. 2 scheduling loop,
conditions, step/reverse, and callback overhead accounting."""

import pytest

import repro
from repro.core import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    DebuggerError,
)
from repro.sim import Simulator
from tests.helpers import Accumulator, TwoLeaves, line_of, make_runtime


def _setup(mod_cls=Accumulator, snapshots=64, debug=False, **kw):
    d = repro.compile(mod_cls(), debug=debug)
    sim = Simulator(d.low, snapshots=snapshots)
    return d, sim


class TestBreakpointManagement:
    def test_add_by_short_filename(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        _f, line = line_of(d, "acc")
        bps = rt.add_breakpoint("helpers.py", line)
        assert len(bps) == 1

    def test_unknown_file(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        with pytest.raises(DebuggerError, match="unknown source file"):
            rt.add_breakpoint("missing.py", 1)

    def test_unmapped_line(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        with pytest.raises(DebuggerError, match="no statement"):
            rt.add_breakpoint("helpers.py", 1)

    def test_remove_and_clear(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        _f, line = line_of(d, "acc")
        bps = rt.add_breakpoint("helpers.py", line)
        assert rt.remove_breakpoint(bps[0].rec.id)
        assert not rt.remove_breakpoint(bps[0].rec.id)
        rt.add_breakpoint("helpers.py", line)
        rt.clear_breakpoints()
        assert rt.list_breakpoints() == []


class TestHits:
    def test_enable_condition_gates_hits(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            hits.append(h.time)
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        sim.reset()
        sim.poke("d", 1)
        sim.poke("en", 0)
        sim.step(3)
        assert hits == []  # enable (en == 1) is false
        sim.poke("en", 1)
        sim.step(2)
        assert len(hits) == 2

    def test_frames_carry_values(self):
        d, sim = _setup()
        captured = []

        def on_hit(h):
            captured.append(h.frames[0].var("acc"))
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 10)
        sim.step(3)
        assert captured == [0, 10, 20]

    def test_user_condition(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            hits.append(h.frames[0].var("acc"))
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line, condition="acc >= 30")
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 10)
        sim.step(5)
        assert hits == [30, 40]

    def test_condition_on_generator_var(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        _f, line = line_of(d, "acc")
        # `width` is a generator constant (16): condition compares against it
        rt.add_breakpoint("helpers.py", line, condition="width == 16")
        sim.reset()
        sim.poke("en", 1)
        sim.step(1)
        assert len(hits) == 1

    def test_threads_for_sibling_instances(self):
        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        groups = []

        def on_hit(h):
            groups.append([f.instance_path for f in h.frames])
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, line = line_of(d, "o")
        sim.reset()  # reset before inserting: reset-cycle hits would count
        rt.add_breakpoint("helpers.py", line)
        sim.poke("x", 4)  # a.i=4 (>2 hits), b.i=1 (no)
        sim.step(1)
        assert groups == [["TwoLeaves.a"]]
        sim.poke("x", 6)  # a.i=6 hits, b.i=3 hits: two threads in one group
        sim.step(1)
        assert groups[-1] == ["TwoLeaves.a", "TwoLeaves.b"]

    def test_detach_stops_future_hits(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            hits.append(h.time)
            return DETACH

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        sim.reset()
        sim.poke("en", 1)
        sim.step(5)
        assert len(hits) == 1
        assert not rt.attached


class TestStepping:
    def test_step_visits_next_statement(self):
        d, sim = _setup()
        seq = []
        cmds = iter([STEP, STEP, CONTINUE])

        def on_hit(h):
            seq.append((h.time, h.line))
            return next(cmds, CONTINUE)

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, acc_line = line_of(d, "acc")
        _f, total_line = line_of(d, "total")
        rt.add_breakpoint("helpers.py", acc_line)
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        assert seq[0] == (1, acc_line)
        assert seq[1] == (1, total_line)   # step: next group, same cycle
        assert seq[2][0] == 2              # step past end: next cycle

    def test_pause_request(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.line), CONTINUE)[1])
        rt.attach()
        sim.reset()
        sim.step(2)
        assert hits == []  # no breakpoints inserted
        rt.request_pause()
        sim.poke("en", 1)
        sim.step(1)
        assert len(hits) == 1  # paused at the first active statement


class TestReverse:
    def test_intra_cycle_reverse_step(self):
        d, sim = _setup()
        seq = []
        cmds = iter([STEP, REVERSE_STEP, CONTINUE])

        def on_hit(h):
            seq.append(h.line)
            return next(cmds, CONTINUE)

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, acc_line = line_of(d, "acc")
        _f, total_line = line_of(d, "total")
        rt.add_breakpoint("helpers.py", acc_line)
        sim.reset()
        sim.poke("en", 1)
        sim.step(2)
        # acc -> (step) total -> (reverse-step) acc again
        assert seq[:3] == [acc_line, total_line, acc_line]

    def test_cross_cycle_reverse_step(self):
        d, sim = _setup(snapshots=64)
        seq = []
        cmds = iter([REVERSE_STEP, CONTINUE])

        def on_hit(h):
            seq.append((h.time, h.line))
            return next(cmds, CONTINUE)

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, total_line = line_of(d, "total")
        # `total` is the first statement of the module's schedule? No —
        # use acc (earliest conditional stmt): reverse from it crosses cycles.
        _f, acc_line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", acc_line)
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        # first hit at cycle 1; reverse-step from the first group goes to
        # the previous cycle's last statement.
        assert seq[0][0] >= 1
        assert seq[1][0] == seq[0][0] - 1

    def test_reverse_continue_finds_previous_hit(self):
        d, sim = _setup(snapshots=64)
        seq = []
        cmds = iter([CONTINUE, CONTINUE, REVERSE_CONTINUE, CONTINUE, DETACH])

        def on_hit(h):
            seq.append((h.time, h.frames[0].var("acc")))
            return next(cmds, DETACH)

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        _f, acc_line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", acc_line)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(4)
        times = [t for t, _ in seq]
        # hits at 1, 2, 3 then reverse-continue lands back at 2
        assert times[0] == 1 and times[1] == 2 and times[2] == 3
        assert times[3] == 2
        assert seq[3][1] == seq[1][1]  # same state as the first visit

    def test_reverse_without_snapshots_warns(self):
        d, sim = _setup(snapshots=0)
        cmds = iter([REVERSE_STEP])
        rt = make_runtime(d, sim, lambda h: next(cmds, CONTINUE))
        rt.attach()
        _f, acc_line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", acc_line)
        sim.reset()
        sim.poke("en", 1)
        sim.step(2)
        assert any("reverse" in w for w in rt.warnings)


class TestOverheadAccounting:
    def test_no_breakpoints_fast_path(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        rt.attach()
        sim.reset()
        sim.step(50)
        assert rt.stats_callbacks == 51
        assert rt.stats_bp_evals == 0  # nothing evaluated without breakpoints

    def test_evaluate_global(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        sim.reset()
        sim.poke("d", 7)
        assert rt.evaluate("d + 1") == 8
