"""Frame reconstruction (bundles!) and hierarchy matching (Sec. 3.4)."""

import pytest

import repro
import repro.hgf as hgf
from repro.core.frames import FrameBuilder, build_variable_tree
from repro.core.matching import MatchError, locate_instance
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import Counter, TwoLeaves, line_of


class TestVariableTree:
    def test_flat_variables(self):
        tree = build_variable_tree([("a", 1, "a"), ("b", 2, "b")])
        assert [v.name for v in tree] == ["a", "b"]
        assert tree[0].value == 1

    def test_bundle_reconstruction(self):
        """Flattened RTL signals regroup into the source bundle — the
        PortBundle reconstruction of paper Sec. 4.2."""
        tree = build_variable_tree(
            [
                ("io.a", 1, "io_a"),
                ("io.b.lo", 2, "io_b_lo"),
                ("io.b.hi", 3, "io_b_hi"),
                ("other", 9, "other"),
            ]
        )
        io = next(v for v in tree if v.name == "io")
        assert io.is_aggregate
        assert io.child("a").value == 1
        b = io.child("b")
        assert b.child("lo").value == 2 and b.child("hi").value == 3

    def test_vec_reconstruction(self):
        tree = build_variable_tree([("v[0]", 5, None), ("v[1]", 6, None)])
        v = tree[0]
        assert v.name == "v"
        assert [c.name for c in v.children] == ["[0]", "[1]"]

    def test_flatten_round_trip(self):
        tree = build_variable_tree([("io.a", 1, None), ("io.b", 2, None)])
        flat = tree[0].flatten()
        assert flat == [("io.a", 1), ("io.b", 2)]

    def test_to_dict(self):
        tree = build_variable_tree([("x.y", 3, "x_y")])
        d = tree[0].to_dict()
        assert d["name"] == "x"
        assert d["children"][0]["value"] == 3


class TestMatching:
    def _symtable(self, design):
        return SQLiteSymbolTable(write_symbol_table(design))

    def test_identity_mapping(self):
        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        st = self._symtable(d)
        mapping = locate_instance(st, sim.hierarchy())
        assert mapping["TwoLeaves"] == "TwoLeaves"
        assert mapping["TwoLeaves.a"] == "TwoLeaves.a"

    def test_wrapped_design_located(self):
        """Paper Sec. 3.4: the symbol table has a partial view; the runtime
        finds the generated IP inside a testbench wrapper."""
        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low, top_path="TestHarness.dut.core")
        st = self._symtable(d)
        mapping = locate_instance(st, sim.hierarchy())
        assert mapping["TwoLeaves"] == "TestHarness.dut.core"
        assert mapping["TwoLeaves.b"] == "TestHarness.dut.core.b"

    def test_wrong_design_rejected(self):
        d1 = repro.compile(TwoLeaves())
        d2 = repro.compile(Counter())
        sim = Simulator(d2.low)
        st = self._symtable(d1)
        with pytest.raises(MatchError):
            locate_instance(st, sim.hierarchy())


class TestFrameBuilder:
    def test_frame_reads_live_values(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        st = SQLiteSymbolTable(write_symbol_table(d))
        mapping = locate_instance(st, sim.hierarchy())
        fb = FrameBuilder(st, sim, mapping)
        filename, line = line_of(d, "out")
        bp = st.breakpoints_at(filename, line)[0]
        frame = fb.build(bp, sim.get_time())
        assert frame.var("count") == 3
        assert frame.var("en") == 1

    def test_generator_vars_in_frame(self):
        d = repro.compile(Counter(width=6))
        sim = Simulator(d.low)
        sim.reset()
        st = SQLiteSymbolTable(write_symbol_table(d))
        fb = FrameBuilder(st, sim, locate_instance(st, sim.hierarchy()))
        filename, line = line_of(d, "out")
        bp = st.breakpoints_at(filename, line)[0]
        frame = fb.build(bp, 0)
        gen = {v.name: v.value for v in frame.generator_vars}
        assert gen["width"] == "6"

    def test_bundle_frame(self):
        class BundleMod(hgf.Module):
            def __init__(self):
                super().__init__()
                self.io = self.input(
                    "io",
                    typ=hgf.Bundle(a=hgf.UInt(8), q=hgf.Flip(hgf.UInt(8))),
                )
                self.io.q <<= self.io.a + 1

        d = repro.compile(BundleMod())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("io_a", 41)
        st = SQLiteSymbolTable(write_symbol_table(d))
        fb = FrameBuilder(st, sim, locate_instance(st, sim.hierarchy()))
        bp = st.all_breakpoints()[0]
        frame = fb.build(bp, 0)
        io = next(v for v in frame.local_vars if v.name == "io")
        assert io.is_aggregate
        assert io.child("a").value == 41
        assert io.child("q").value == 42

    def test_missing_signal_value_none(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        st = SQLiteSymbolTable(write_symbol_table(d))
        fb = FrameBuilder(st, sim, {"Counter": "WrongPath"})
        bp = st.all_breakpoints()[0]
        frame = fb.build(bp, 0)
        assert all(v.value is None for v in frame.local_vars if not v.is_aggregate)
