"""Watchpoint (data breakpoint) tests."""

import pytest

import repro
from repro.core import CONTINUE, DETACH, DebuggerError
from repro.sim import Simulator
from tests.helpers import Accumulator, Counter, line_of, make_runtime


def _setup(mod_cls=Counter):
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=16)
    return d, sim


class TestWatchpoints:
    def test_change_detected(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            assert h.watch is not None
            hits.append((h.time, h.watch["old"], h.watch["new"]))
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(4)
        # priming observation at cycle 1; changes observed at 2, 3, 4
        assert hits == [(2, 0, 1), (3, 1, 2), (4, 2, 3)]

    def test_no_hit_without_change(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 0)
        sim.step(5)
        assert hits == []

    def test_full_path_target(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        wp = rt.add_watchpoint("Counter.count")
        assert wp.path == "Counter.count"

    def test_instance_local_target(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        wp = rt.add_watchpoint("count")
        assert wp.path == "Counter.count"

    def test_unresolvable_rejected(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        with pytest.raises(DebuggerError, match="watch target"):
            rt.add_watchpoint("no_such_signal")

    def test_condition_on_new_value(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.watch["new"]), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count", condition="new >= 3")
        sim.poke("en", 1)
        sim.step(6)
        assert hits == [3, 4, 5]

    def test_condition_on_old_value(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.watch["old"]), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count", condition="old == 2")
        sim.poke("en", 1)
        sim.step(5)
        assert hits == [2]

    def test_remove(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(1), CONTINUE)[1])
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(3)  # prime at 1, hits at 2 and 3
        assert rt.remove_watchpoint(wp.id)
        sim.step(2)
        assert len(hits) == 2
        assert not rt.remove_watchpoint(wp.id)

    def test_hit_count_tracked(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(5)  # prime + 4 observed changes
        assert wp.hit_count == 4

    def test_detach_from_watch_hit(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            hits.append(h.time)
            return DETACH

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(4)
        assert len(hits) == 1
        assert not rt.attached

    def test_watch_and_breakpoints_combine(self):
        d, sim = _setup(Accumulator)
        kinds = []

        def on_hit(h):
            kinds.append("watch" if h.watch else "bp")
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        rt.add_watchpoint("acc")
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(2)
        # each cycle: watch fires (when acc changed) and the bp fires
        assert "watch" in kinds and "bp" in kinds


class TestIgnoreCounts:
    def test_ignore_skips_hits(self):
        d, sim = _setup(Accumulator)
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        (bp,) = rt.add_breakpoint("helpers.py", line)
        bp.ignore_count = 2
        sim.poke("en", 1)
        sim.poke("d", 1)
        sim.step(5)
        assert len(hits) == 3  # first two suppressed
        assert bp.hit_count == 5  # all condition-passing evaluations counted

    def test_console_ignore_command(self):
        from repro.client import ConsoleDebugger

        d, sim = _setup(Accumulator)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=["q"])
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line}")
        bp_id = rt.list_breakpoints()[0].rec.id
        dbg.execute(f"ignore {bp_id} 3")
        sim.poke("en", 1)
        sim.poke("d", 1)
        sim.step(5)
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert len(stops) == 1 and "cycle 4" in stops[0]


class TestConsoleWatch:
    def test_watch_command(self):
        from repro.client import ConsoleDebugger

        d, sim = _setup()
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=["info breakpoints", "q"])
        rt.attach()
        sim.reset()
        dbg.execute("watch count")
        sim.poke("en", 1)
        sim.step(2)
        joined = "\n".join(dbg.transcript)
        assert "watchpoint #1" in joined
        assert "0 -> 1" in joined
