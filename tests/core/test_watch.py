"""Watchpoint (data breakpoint) tests."""

import pytest

import repro
from repro.core import CONTINUE, DETACH, DebuggerError
from repro.sim import Simulator
from tests.helpers import Accumulator, Counter, line_of, make_runtime


def _setup(mod_cls=Counter):
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=16)
    return d, sim


class TestWatchpoints:
    def test_change_detected(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            assert h.watch is not None
            hits.append((h.time, h.watch["old"], h.watch["new"]))
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(4)
        # priming observation at cycle 1; changes observed at 2, 3, 4
        assert hits == [(2, 0, 1), (3, 1, 2), (4, 2, 3)]

    def test_no_hit_without_change(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 0)
        sim.step(5)
        assert hits == []

    def test_full_path_target(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        wp = rt.add_watchpoint("Counter.count")
        assert wp.path == "Counter.count"

    def test_instance_local_target(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        wp = rt.add_watchpoint("count")
        assert wp.path == "Counter.count"

    def test_unresolvable_rejected(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        with pytest.raises(DebuggerError, match="watch target"):
            rt.add_watchpoint("no_such_signal")

    def test_condition_on_new_value(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.watch["new"]), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count", condition="new >= 3")
        sim.poke("en", 1)
        sim.step(6)
        assert hits == [3, 4, 5]

    def test_condition_on_old_value(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.watch["old"]), CONTINUE)[1])
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count", condition="old == 2")
        sim.poke("en", 1)
        sim.step(5)
        assert hits == [2]

    def test_remove(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(1), CONTINUE)[1])
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(3)  # prime at 1, hits at 2 and 3
        assert rt.remove_watchpoint(wp.id)
        sim.step(2)
        assert len(hits) == 2
        assert not rt.remove_watchpoint(wp.id)

    def test_hit_count_tracked(self):
        d, sim = _setup()
        rt = make_runtime(d, sim)
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(5)  # prime + 4 observed changes
        assert wp.hit_count == 4

    def test_detach_from_watch_hit(self):
        d, sim = _setup()
        hits = []

        def on_hit(h):
            hits.append(h.time)
            return DETACH

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(4)
        assert len(hits) == 1
        assert not rt.attached

    def test_watch_and_breakpoints_combine(self):
        d, sim = _setup(Accumulator)
        kinds = []

        def on_hit(h):
            kinds.append("watch" if h.watch else "bp")
            return CONTINUE

        rt = make_runtime(d, sim, on_hit)
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        rt.add_watchpoint("acc")
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(2)
        # each cycle: watch fires (when acc changed) and the bp fires
        assert "watch" in kinds and "bp" in kinds


class TestConditionErrors:
    def test_unknown_name_surfaces_once_and_keeps_hitting(self):
        """A bad condition no longer silently drops hits forever: the
        watchpoint is marked errored, the error rides the first change
        event exactly once, and later changes report unconditionally."""
        d, sim = _setup()
        watches = []
        rt = make_runtime(
            d, sim, lambda h: (watches.append(dict(h.watch)), CONTINUE)[1]
        )
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count", condition="no_such_name > 0")
        assert wp.error is not None
        assert any("no_such_name" in w for w in rt.warnings)
        sim.poke("en", 1)
        sim.step(4)  # prime at 1; changes at 2, 3, 4
        assert len(watches) == 3  # hits are NOT dropped
        assert "error" in watches[0]  # surfaced on the first event...
        assert all("error" not in w for w in watches[1:])  # ...exactly once
        assert wp.hit_count == 3

    def test_runtime_value_error_marks_watchpoint(self):
        """A condition that only fails at evaluation time (negative shift
        count) errors on first evaluation instead of crashing or silently
        suppressing, then reports unconditionally."""
        d, sim = _setup()
        watches = []
        rt = make_runtime(
            d, sim, lambda h: (watches.append(dict(h.watch)), CONTINUE)[1]
        )
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count", condition="1 << (old - new) > 0")
        assert wp.error is None  # compiles fine; fails only at runtime
        sim.poke("en", 1)
        sim.step(4)
        assert wp.error is not None
        assert len(watches) == 3
        assert sum("error" in w for w in watches) == 1

    def test_parse_error_still_raises_at_add(self):
        from repro.core import ExprError

        d, sim = _setup()
        rt = make_runtime(d, sim)
        with pytest.raises(ExprError):
            rt.add_watchpoint("count", condition="1 +")


class TestCompiledConditions:
    def test_condition_compiled_and_path_indexed(self):
        """Conditions compile to a closure and the path resolves to a
        value-table index at add() time on a live simulator."""
        d, sim = _setup()
        rt = make_runtime(d, sim)
        wp = rt.add_watchpoint("count", condition="new % 2 == 0 && old < new")
        assert wp.condition_fn is not None
        assert wp.index == sim.design.signal_index["Counter.count"]

    def test_compiled_matches_interpreter_semantics(self):
        """The compiled condition agrees with tree-walking `evaluate` over
        the same old/new environments, including div-by-zero semantics."""
        import random

        from repro.core import expr_eval
        from repro.core.watch import _compile_condition

        rng = random.Random(3)
        exprs = [
            "new > old", "old == 2", "value >= 3", "new % 3 == 0 && old",
            "(new - old) * 2 < 7 || old == 0", "new / old > 1",
            "old ? new : 5", "~new & 3",
        ]
        for src in exprs:
            ast = expr_eval.parse(src)
            fn = _compile_condition(ast)
            for _ in range(50):
                env = {"old": rng.randrange(8), "new": rng.randrange(8)}
                env["value"] = env["new"]
                want = expr_eval.evaluate(ast, lambda n: env[n])
                assert fn(env["old"], env["new"]) == want, src

    def test_replay_backend_falls_back_to_get_value(self):
        """WatchStore built over a backend without a value table keeps
        working through per-cycle get_value lookups."""
        from repro.core.watch import WatchStore

        class FakeBackend:
            def __init__(self):
                self.t = 0

            def get_value(self, path):
                assert path == "Top.sig"
                return self.t

        be = FakeBackend()
        store = WatchStore(be)
        wp = store.add("Top.sig", "sig")
        assert wp.index is None
        assert store.changed(be) == []  # primes
        be.t = 5
        assert store.changed(be) == [(wp, 0, 5)]


class TestRewindRepriming:
    def test_set_time_reprimes_last(self):
        d, sim = _setup()
        hits = []
        rt = make_runtime(
            d, sim,
            lambda h: (hits.append((h.time, h.watch["old"], h.watch["new"])),
                       CONTINUE)[1],
        )
        rt.attach()
        sim.reset()
        wp = rt.add_watchpoint("count")
        sim.poke("en", 1)
        sim.step(5)
        stale = wp.last
        sim.set_time(2)
        # re-primed against the restored state, not the pre-rewind value
        assert wp.last == sim.peek("count")
        assert wp.last != stale
        hits.clear()
        sim.poke("en", 0)  # freeze: re-execution implies no changes
        sim.step(3)
        assert hits == []

    def test_replay_set_time_reprimes_too(self, tmp_path):
        """The rewind hook also fires on the trace-replay backend."""
        import repro
        from repro.core.watch import WatchStore
        from repro.sim import Simulator
        from repro.trace import ReplayEngine, VcdWriter

        d = repro.compile(Counter())
        vcd_path = tmp_path / "t.vcd"
        writer = VcdWriter(str(vcd_path))
        sim = Simulator(d.low, trace=writer)
        sim.reset()
        sim.poke("en", 1)
        sim.step(6)
        writer.close()

        rp = ReplayEngine.from_file(str(vcd_path))
        WatchStore(rp)  # binds without a value store (replay backend)
        primed = []
        rp.add_set_time_callback(lambda s, t: primed.append(t))
        rp.set_time(3)
        assert primed == [3]


class TestIgnoreCounts:
    def test_ignore_skips_hits(self):
        d, sim = _setup(Accumulator)
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        (bp,) = rt.add_breakpoint("helpers.py", line)
        bp.ignore_count = 2
        sim.poke("en", 1)
        sim.poke("d", 1)
        sim.step(5)
        assert len(hits) == 3  # first two suppressed
        assert bp.hit_count == 5  # all condition-passing evaluations counted

    def test_console_ignore_command(self):
        from repro.client import ConsoleDebugger

        d, sim = _setup(Accumulator)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=["q"])
        rt.attach()
        sim.reset()
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line}")
        bp_id = rt.list_breakpoints()[0].rec.id
        dbg.execute(f"ignore {bp_id} 3")
        sim.poke("en", 1)
        sim.poke("d", 1)
        sim.step(5)
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert len(stops) == 1 and "cycle 4" in stops[0]


class TestConsoleWatch:
    def test_watch_command(self):
        from repro.client import ConsoleDebugger

        d, sim = _setup()
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=["info breakpoints", "q"])
        rt.attach()
        sim.reset()
        dbg.execute("watch count")
        sim.poke("en", 1)
        sim.step(2)
        joined = "\n".join(dbg.transcript)
        assert "watchpoint #1" in joined
        assert "0 -> 1" in joined
