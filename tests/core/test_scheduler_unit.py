"""Unit tests for the Scheduler and debug-metadata plumbing."""

import pytest

import repro
from repro.core.scheduler import Scheduler
from repro.ir.debug import DebugEntry, DebugInfo, _rename_tokens
from repro.ir.source import UNKNOWN, SourceInfo
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import TwoLeaves, line_of


@pytest.fixture()
def sched():
    d = repro.compile(TwoLeaves())
    st = SQLiteSymbolTable(write_symbol_table(d))
    return d, st, Scheduler(st)


class TestScheduler:
    def test_insert_remove(self, sched):
        d, st, s = sched
        rec = st.all_breakpoints()[0]
        s.insert(rec)
        assert len(s) == 1
        assert s.remove(rec.id)
        assert not s.remove(rec.id)
        assert len(s) == 0

    def test_groups_sorted_lexically(self, sched):
        d, st, s = sched
        for rec in st.all_breakpoints():
            s.insert(rec)
        groups = s.groups()
        keys = [g.key for g in groups]
        assert keys == sorted(keys)

    def test_same_location_shares_group(self, sched):
        d, st, s = sched
        filename, line = line_of(d, "o")
        for rec in st.breakpoints_at(filename, line):
            s.insert(rec)
        groups = s.groups()
        assert len(groups) == 1
        assert len(groups[0].breakpoints) == 2  # both Leaf instances

    def test_all_groups_cover_every_breakpoint(self, sched):
        d, st, s = sched
        groups = s.groups(all_bps=True)
        total = sum(len(g.breakpoints) for g in groups)
        assert total == len(st.all_breakpoints())

    def test_all_groups_pick_up_inserted_conditions(self, sched):
        d, st, s = sched
        s.groups(all_bps=True)  # warm the cache
        rec = st.all_breakpoints()[0]
        bp = s.insert(rec, condition="i == 3")
        refreshed = s.groups(all_bps=True)
        found = [
            b for g in refreshed for b in g.breakpoints if b.rec.id == rec.id
        ]
        assert found[0] is bp

    def test_condition_parsed_once(self, sched):
        d, st, s = sched
        rec = st.all_breakpoints()[0]
        bp = s.insert(rec, condition="i > 1")
        assert bp.condition_ast is not None
        assert bp.condition_src == "i > 1"

    def test_clear(self, sched):
        d, st, s = sched
        for rec in st.all_breakpoints():
            s.insert(rec)
        s.clear()
        assert s.groups() == []


class TestDebugInfoPlumbing:
    def test_rename_tokens(self):
        out = _rename_tokens("_cond_1 && !_cond_2", {"_cond_1": "x", "_cond_2": "y"})
        assert out == "x && !y"

    def test_rename_tokens_word_boundaries(self):
        out = _rename_tokens("ab + abc", {"ab": "z"})
        assert out == "z + abc"

    def test_apply_renames_updates_entries(self):
        di = DebugInfo()
        mi = di.module("M")
        mi.entries.append(
            DebugEntry("M", SourceInfo("f", 1), "old_node", "old_node && x", "s", {"v": "old_node"})
        )
        di.apply_renames("M", {"old_node": "new_node"})
        e = mi.entries[0]
        assert e.node == "new_node"
        assert e.enable == "new_node && x"
        assert e.var_map["v"] == "new_node"

    def test_prune_dead_drops_missing_nodes(self):
        di = DebugInfo()
        mi = di.module("M")
        mi.entries.append(DebugEntry("M", SourceInfo("f", 1), "alive", None, "s"))
        mi.entries.append(DebugEntry("M", SourceInfo("f", 2), "dead", None, "s"))
        kept = di.prune_dead("M", {"alive"})
        assert kept == 1
        assert [e.node for e in mi.entries] == ["alive"]

    def test_prune_dead_filters_var_map(self):
        di = DebugInfo()
        mi = di.module("M")
        mi.entries.append(
            DebugEntry("M", SourceInfo("f", 1), "n", None, "s", {"a": "n", "b": "gone"})
        )
        di.prune_dead("M", {"n"})
        assert mi.entries[0].var_map == {"a": "n"}


class TestSourceInfo:
    def test_order_key(self):
        a = SourceInfo("a.py", 10, 2)
        b = SourceInfo("a.py", 10, 5)
        c = SourceInfo("b.py", 1)
        assert a.order_key() < b.order_key() < c.order_key()

    def test_unknown(self):
        assert not UNKNOWN.is_known()
        assert str(UNKNOWN) == "<unknown>"

    def test_str_forms(self):
        assert str(SourceInfo("x.py", 3)) == "x.py:3"
        assert str(SourceInfo("x.py", 3, 7)) == "x.py:3:7"


class TestSrcLocCapture:
    def test_captures_caller_not_framework(self):
        from repro.hgf import srcloc

        info = srcloc.capture()
        assert info.filename.endswith("test_scheduler_unit.py")
        assert info.line > 0

    def test_lines_distinct_per_statement(self):
        import repro.hgf as hgf

        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 2)
                a = self.wire("a", 2)
                a <<= 1
                self.o <<= a

        d = repro.compile(M(), debug=True)
        lines = {e.info.line for e in d.debug_info.all_entries()}
        assert len(lines) == 2
