"""Debug protocol tests: TCP server + client round trips, stop events,
control commands (paper Sec. 3.5 RPC debugging protocol)."""

import threading

import pytest

import repro
from repro.core import DebuggerError, Runtime
from repro.core.protocol import DebugClient, DebugServer
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import Accumulator, line_of


@pytest.fixture()
def served():
    d = repro.compile(Accumulator())
    sim = Simulator(d.low, snapshots=32)
    st = SQLiteSymbolTable(write_symbol_table(d))
    rt = Runtime(sim, st)
    server = DebugServer(rt)
    server.start()
    client = DebugClient(*server.address)
    yield d, sim, rt, server, client
    client.close()
    server.stop()


class TestHandshake:
    def test_welcome_event(self, served):
        d, _sim, _rt, _srv, client = served
        assert client.welcome["top"] == "Accumulator"
        assert client.welcome["files"]
        assert client.welcome["can_set_time"] is True

    def test_info_requests(self, served):
        _d, sim, _rt, _srv, client = served
        assert client.request("info", what="time")["time"] == sim.get_time()
        files = client.request("info", what="files")["files"]
        assert files and files[0].endswith("helpers.py")

    def test_unknown_command(self, served):
        _d, _sim, _rt, _srv, client = served
        with pytest.raises(DebuggerError, match="unknown command"):
            client.request("frobnicate")


class TestBreakpointFlow:
    def test_full_session(self, served):
        d, sim, rt, server, client = served
        rt.attach()
        _f, line = line_of(d, "acc")
        result = client.add_breakpoint("helpers.py", line)
        assert len(result["breakpoints"]) == 1
        assert result["breakpoints"][0]["enable"] == "(en == 1)"

        # Drive the simulation from a background thread (the testbench);
        # the runtime blocks inside the clock callback on each stop.
        def drive():
            sim.reset()
            sim.poke("en", 1)
            sim.poke("d", 5)
            sim.step(3)

        t = threading.Thread(target=drive, daemon=True)
        t.start()

        stop1 = client.wait_event("stopped", timeout=10)
        assert stop1["payload"]["line"] == line
        frames = stop1["payload"]["frames"]
        assert frames[0]["instance"] == "Accumulator"

        # Evaluate in the stopped scope, then continue.
        value = client.evaluate("acc + d", breakpoint_id=result["breakpoints"][0]["id"])
        assert value == 5  # acc=0, d=5 at first stop
        client.cont()
        stop2 = client.wait_event("stopped", timeout=10)
        assert stop2["payload"]["time"] == stop1["payload"]["time"] + 1
        client.cont()
        client.wait_event("stopped", timeout=10)
        client.cont()
        t.join(timeout=10)
        assert not t.is_alive()
        assert sim.peek("total") == 15

    def test_control_rejected_when_running(self, served):
        _d, _sim, rt, _srv, client = served
        rt.attach()
        with pytest.raises(DebuggerError, match="only valid while stopped"):
            client.cont()

    def test_list_and_remove(self, served):
        d, _sim, rt, _srv, client = served
        _f, line = line_of(d, "acc")
        added = client.add_breakpoint("helpers.py", line, condition="acc > 3")
        listed = client.request("list_breakpoints")["breakpoints"]
        assert listed[0]["condition"] == "acc > 3"
        client.request("remove_breakpoint", id=added["breakpoints"][0]["id"])
        assert client.request("list_breakpoints")["breakpoints"] == []

    def test_set_value(self, served):
        _d, sim, _rt, _srv, client = served
        sim.reset()
        client.request("set_value", path="Accumulator.d", value=9)
        assert sim.peek("d") == 9

    def test_step_back_over_protocol(self, served):
        d, sim, rt, _srv, client = served
        rt.attach()
        _f, line = line_of(d, "acc")
        client.add_breakpoint("helpers.py", line)

        def drive():
            sim.reset()
            sim.poke("en", 1)
            sim.poke("d", 1)
            sim.step(3)

        t = threading.Thread(target=drive, daemon=True)
        t.start()
        client.wait_event("stopped", timeout=10)
        client.cont()
        s2 = client.wait_event("stopped", timeout=10)
        client.reverse_continue()
        s_back = client.wait_event("stopped", timeout=10)
        assert s_back["payload"]["time"] == s2["payload"]["time"] - 1
        client.request("detach")
        t.join(timeout=10)
        assert not t.is_alive()
