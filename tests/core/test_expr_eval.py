"""Condition expression language tests (parser + evaluator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr_eval import ExprError, evaluate_str, names_in, parse, tokenize


def ev(text, **env):
    def resolve(name):
        if name in env:
            return env[name]
        raise ExprError(f"unknown {name}")

    return evaluate_str(text, resolve)


class TestTokenizer:
    def test_hierarchical_names_single_token(self):
        assert tokenize("io.a.b + x[3]") == ["io.a.b", "+", "x[3]"]

    def test_numbers(self):
        assert tokenize("0x1F 0b101 42") == ["0x1F", "0b101", "42"]

    def test_two_char_ops(self):
        assert tokenize("a<=b&&c||d") == ["a", "<=", "b", "&&", "c", "||", "d"]

    def test_bad_char(self):
        with pytest.raises(ExprError):
            tokenize("a @ b")


class TestParser:
    def test_precedence_mul_over_add(self):
        assert ev("2 + 3 * 4") == 14

    def test_parens(self):
        assert ev("(2 + 3) * 4") == 20

    def test_comparison_chains_into_logic(self):
        assert ev("1 < 2 && 3 > 2") == 1

    def test_unary(self):
        assert ev("!0") == 1
        assert ev("!5") == 0
        assert ev("-3 + 5") == 2
        assert ev("~0 & 0xF") == 0xF

    def test_ternary(self):
        assert ev("1 ? 10 : 20") == 10
        assert ev("0 ? 10 : 20") == 20

    def test_ternary_nested(self):
        assert ev("x == 1 ? 10 : x == 2 ? 20 : 30", x=2) == 20

    def test_hex_binary_literals(self):
        assert ev("0xFF & 0b1010") == 0b1010

    def test_trailing_garbage(self):
        with pytest.raises(ExprError):
            parse("1 + 2 3")

    def test_unbalanced_parens(self):
        with pytest.raises(ExprError):
            parse("(1 + 2")

    def test_empty(self):
        with pytest.raises(ExprError):
            parse("")


class TestEvaluation:
    def test_names_resolved(self):
        assert ev("a + b", a=3, b=4) == 7

    def test_hierarchical_name(self):
        assert ev("io.valid && io.ready", **{"io.valid": 1, "io.ready": 1}) == 1

    def test_indexed_name(self):
        assert ev("data[0] % 2", **{"data[0]": 5}) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ExprError):
            ev("nope")

    def test_division_by_zero_is_zero(self):
        assert ev("5 / 0") == 0
        assert ev("5 % 0") == 0

    def test_shifts(self):
        assert ev("1 << 4") == 16
        assert ev("256 >> 4") == 16

    def test_shortcircuit_and(self):
        # RHS unresolved but LHS false: must not raise.
        assert ev("0 && nope") == 0

    def test_shortcircuit_or(self):
        assert ev("1 || nope") == 1

    def test_names_in(self):
        assert names_in(parse("a.b + c * 2 - d[1]")) == {"a.b", "c", "d[1]"}


class TestPropertyVsPython:
    @given(
        a=st.integers(0, 1000),
        b=st.integers(0, 1000),
        c=st.integers(1, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_arith_matches_python(self, a, b, c):
        assert ev("a + b * c", a=a, b=b, c=c) == a + b * c
        assert ev("(a - b) / c", a=a, b=b, c=c) == (a - b) // c
        assert ev("a % c", a=a, c=c) == a % c

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_logic_matches_python(self, a, b):
        assert ev("a == b", a=a, b=b) == int(a == b)
        assert ev("a < b || a > b", a=a, b=b) == int(a != b)
        assert ev("a & b | a ^ b", a=a, b=b) == (a & b) | (a ^ b)
