"""ShardSession end-to-end: coordinator + forked workers + RPC symbol
table + aggregation.  The multi-process path must agree exactly with the
inline reference path, shard by shard, record by record."""

import pytest

import repro
from repro.shard import (
    BreakpointSpec,
    ShardError,
    ShardReport,
    ShardResult,
    ShardSession,
    ShardSpec,
)
from tests.helpers import Accumulator, line_of


@pytest.fixture(scope="module")
def acc():
    d = repro.compile(Accumulator())
    f, line = line_of(d, "acc")
    return d, BreakpointSpec(f, line)


class TestEndToEnd:
    def test_four_shard_sweep_multiprocess(self, acc):
        d, bp = acc
        with ShardSession(d, workers=2) as session:
            report = session.sweep(
                shards=4, cycles=40, breakpoints=[bp], overrides={"en": 1},
            )
        assert report.ok
        assert len(report.results) == 4
        assert [r.shard_id for r in report.results] == [0, 1, 2, 3]
        assert report.total_cycles == 160
        assert report.total_hits > 0

    def test_multiprocess_equals_inline(self, acc):
        """The acceptance pin: forked shard ≡ inline shard ≡ (by
        test_worker.py) standalone Simulator, per seed."""
        d, bp = acc
        kwargs = dict(
            shards=4, cycles=40, breakpoints=[bp], overrides={"en": 1},
        )
        with ShardSession(d, workers=2) as mp_session:
            mp_report = mp_session.sweep(**kwargs)
        with ShardSession(d, workers=0) as inline_session:
            inline_report = inline_session.sweep(**kwargs)
        for a, b in zip(mp_report.results, inline_report.results, strict=False):
            assert a.shard_id == b.shard_id and a.seed == b.seed
            assert a.cycles == b.cycles
            assert a.hits == b.hits
            # Raw value-table fingerprints: forked and inline workers end
            # bit-identical, whatever store backend either side used.
            assert a.state_digest is not None
            assert a.state_digest == b.state_digest
        assert not mp_report.state_divergences()

    def test_events_stream_to_coordinator(self, acc):
        d, bp = acc
        events = []
        with ShardSession(d, workers=2) as session:
            report = session.sweep(
                shards=2, cycles=30, breakpoints=[bp], overrides={"en": 1},
                on_event=events.append,
            )
        kinds = {e["event"] for e in events}
        assert "done" in kinds and "hit" in kinds and "progress" in kinds
        dones = [e for e in events if e["event"] == "done"]
        assert {e["shard"] for e in dones} == {0, 1}
        streamed = sorted(
            (e["shard"], e["record"]["time"])
            for e in events if e["event"] == "hit"
        )
        collected = sorted(
            (s, rec["time"]) for s, rec in report.iter_hits()
        )
        assert streamed == collected

    def test_more_shards_than_workers_refills_pool(self, acc):
        d, bp = acc
        with ShardSession(d, workers=2) as session:
            report = session.sweep(shards=5, cycles=15, breakpoints=[bp])
        assert report.ok and len(report.results) == 5

    def test_custom_specs_and_duplicate_ids_rejected(self, acc):
        d, _bp = acc
        session = ShardSession(d, workers=0)
        with pytest.raises(ShardError, match="duplicate"):
            session.run([
                ShardSpec(shard_id=1, seed=0, cycles=1),
                ShardSpec(shard_id=1, seed=1, cycles=1),
            ])
        with pytest.raises(ShardError, match="empty"):
            session.run([])
        session.close()

    def test_bare_circuit_requires_symtable(self, acc):
        d, _bp = acc
        with pytest.raises(ShardError, match="symbol table"):
            ShardSession(d.low)

    def test_worker_failure_is_isolated(self, acc):
        """A shard whose spec cannot run (bad breakpoint file) reports an
        error; the other shards still complete."""
        d, bp = acc
        bad = BreakpointSpec("no_such_file.py", 1)
        specs = [
            ShardSpec(shard_id=0, seed=0, cycles=20, breakpoints=(bp,),
                      overrides={"en": 1}),
            ShardSpec(shard_id=1, seed=1, cycles=20, breakpoints=(bad,)),
            ShardSpec(shard_id=2, seed=2, cycles=20, breakpoints=(bp,),
                      overrides={"en": 1}),
        ]
        with ShardSession(d, workers=2) as session:
            report = session.run(specs)
        assert not report.ok
        assert [r.ok for r in report.results] == [True, False, True]
        assert "unknown source file" in report.results[1].error
        assert report.results[0].hits and report.results[2].hits

    def test_report_json_is_serializable(self, acc):
        import json

        d, bp = acc
        with ShardSession(d, workers=2) as session:
            report = session.sweep(
                shards=2, cycles=25, breakpoints=[bp], overrides={"en": 1},
            )
        blob = json.dumps(report.to_json())
        back = json.loads(blob)
        assert back["ok"] and len(back["shards"]) == 2
        assert back["total_cycles"] == 50


class TestAggregation:
    def _report(self, hits_by_shard):
        results = [
            ShardResult(shard_id=i, seed=i, cycles=10, hits=hits)
            for i, hits in enumerate(hits_by_shard)
        ]
        return ShardReport(results)

    def _hit(self, time, value, line=5):
        return {
            "time": time, "filename": "m.py", "line": line, "column": 0,
            "frames": [{
                "breakpoint_id": 1, "instance": "Top", "filename": "m.py",
                "line": line, "time": time,
                "local": [{"name": "x", "value": value, "rtl": "x"}],
                "generator": [],
            }],
        }

    def test_first_hits_prefers_earliest_time_then_shard(self):
        report = self._report([
            [self._hit(7, 1)], [self._hit(3, 2)], [self._hit(3, 3)],
        ])
        fh = report.first_hits()["m.py:5"]
        assert (fh.time, fh.shard_id) == (3, 1)

    def test_histogram_counts_per_shard(self):
        report = self._report([
            [self._hit(1, 0), self._hit(2, 0)],
            [],
            [self._hit(4, 0)],
        ])
        assert report.histogram() == {"m.py:5": {0: 2, 2: 1}}

    def test_divergence_same_cycle_different_values(self):
        report = self._report([
            [self._hit(4, 10)], [self._hit(4, 11)], [self._hit(4, 10)],
        ])
        divs = report.divergences()
        assert len(divs) == 1
        d = divs[0]
        assert d.location == "m.py:5" and d.time == 4
        assert sorted(map(tuple, d.groups.values())) == [(0, 2), (1,)]

    def test_no_divergence_when_shards_agree(self):
        report = self._report([[self._hit(4, 10)], [self._hit(4, 10)]])
        assert report.divergences() == []

    def test_no_divergence_for_single_shard_stops(self):
        """A (location, time) only one shard reached is not comparable."""
        report = self._report([[self._hit(4, 10)], [self._hit(9, 11)]])
        assert report.divergences() == []

    def test_replicated_shards_detect_nondeterminism_shape(self, acc):
        """Replicating one seed across shards: identical configs must not
        diverge — the determinism check the divergence view exists for."""
        d, bp = acc
        specs = [
            ShardSpec(shard_id=i, seed=77, cycles=30, breakpoints=(bp,),
                      overrides={"en": 1})
            for i in range(3)
        ]
        with ShardSession(d, workers=2) as session:
            report = session.run(specs)
        assert report.ok
        assert report.total_hits > 0
        assert report.divergences() == []

    def test_summary_mentions_the_essentials(self, acc):
        d, bp = acc
        with ShardSession(d, workers=0) as session:
            report = session.sweep(
                shards=2, cycles=20, breakpoints=[bp], overrides={"en": 1},
            )
        text = report.summary()
        assert "2 shard(s)" in text
        assert "first hits:" in text
        assert "hit histogram" in text

    def test_replicated_seed_state_divergence_detected(self):
        """state_groups/state_divergences: replicated shards ending in
        different states (by raw value-table digest) are incriminated;
        distinct seeds with distinct digests are not."""
        results = [
            ShardResult(shard_id=0, seed=5, cycles=10, state_digest="aaaa"),
            ShardResult(shard_id=1, seed=5, cycles=10, state_digest="aaaa"),
            ShardResult(shard_id=2, seed=5, cycles=10, state_digest="bbbb"),
            ShardResult(shard_id=3, seed=6, cycles=10, state_digest="cccc"),
        ]
        report = ShardReport(results)
        groups = report.state_groups()
        assert groups[5] == {"aaaa": [0, 1], "bbbb": [2]}
        div = report.state_divergences()
        assert len(div) == 1
        assert div[0].location == "<state:seed 5>"
        assert div[0].groups == {"aaaa": [0, 1], "bbbb": [2]}
        assert "REPLICA STATE MISMATCH" in report.summary()
        payload = report.to_json()
        assert payload["state_digests"]["2"] == "bbbb"
        assert payload["state_divergences"]
