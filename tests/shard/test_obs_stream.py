"""Observability across the shard farm: per-shard metrics riding the
JSON-lines wire, coordinator-side supervision telemetry, merged Chrome
traces, and the report's obs rollup — inline, forked, and fault-injected."""

import json

import pytest

import repro
from repro.faults import FaultPlan
from repro.obs import NULL_OBS
from repro.shard import BreakpointSpec, RetryPolicy, ShardSession
from tests.helpers import Accumulator, line_of

FAST = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)


@pytest.fixture(scope="module")
def acc():
    d = repro.compile(Accumulator())
    f, line = line_of(d, "acc")
    return d, BreakpointSpec(f, line)


def _sweep(d, bp, *, obs, workers, shards=2, **kwargs):
    with ShardSession(d, workers=workers, obs=obs) as session:
        return session.sweep(
            shards=shards, cycles=30, breakpoints=[bp], overrides={"en": 1},
            **kwargs,
        )


def _series(report, name):
    return [m for m in report.merged_metrics()["metrics"] if m["name"] == name]


class TestObsOff:
    def test_off_sweep_collects_nothing(self, acc):
        d, bp = acc
        report = _sweep(d, bp, obs="off", workers=0)
        assert not report.has_obs
        assert report.merged_metrics()["metrics"] == []
        assert report.to_json()["obs"] is None
        assert "observability:" not in report.summary()

    def test_session_defaults_to_null_obs(self, acc):
        d, _ = acc
        with ShardSession(d, workers=0) as session:
            assert session.obs is NULL_OBS


class TestInlineMetrics:
    def test_per_shard_series_with_shard_labels(self, acc):
        d, bp = acc
        report = _sweep(d, bp, obs="metrics", workers=0)
        assert report.has_obs
        ticks = _series(report, "sim_ticks_total")
        assert {m["labels"]["shard"] for m in ticks} == {"0", "1"}
        assert all(m["value"] > 30 for m in ticks)  # reset + 30 cycles
        cycles = _series(report, "shard_cycles_total")
        assert all(m["value"] == 30 for m in cycles)

    def test_summary_carries_obs_rollup_and_timings(self, acc):
        d, bp = acc
        report = _sweep(d, bp, obs="metrics", workers=0)
        text = report.summary()
        assert "observability:" in text
        assert "sim: " in text and "tick(s)" in text
        assert "attempt(s)]" in text  # per-shard wall/attempt row suffix
        timings = report.to_json()["shard_timings"]
        assert set(timings) == {"0", "1"}
        assert all(t["attempts"] == 1 for t in timings.values())


class TestForkedSweep:
    def test_stats_event_rides_the_wire(self, acc):
        d, bp = acc
        events = []
        report = _sweep(
            d, bp, obs="metrics", workers=2, on_event=events.append,
        )
        stats = [e for e in events if e["event"] == "stats"]
        assert {e["shard"] for e in stats} == {0, 1}
        assert all(e["obs"]["metrics"]["metrics"] for e in stats)
        assert report.ok

    def test_trace_merges_coordinator_and_every_worker(self, acc, tmp_path):
        """Acceptance: a 4-worker sweep produces ONE Chrome trace holding
        the coordinator's spans and every worker's spans."""
        d, bp = acc
        report = _sweep(d, bp, obs="trace", workers=4, shards=4)
        assert report.ok
        spans = report.trace_spans()
        assert {s["proc"] for s in spans} >= {
            "coordinator", "shard 0", "shard 1", "shard 2", "shard 3",
        }
        # Workers are forked, so each process is a distinct track.
        assert len({s["pid"] for s in spans}) == 5
        assert any(s["name"] == "shard.sweep" for s in spans)
        assert any(s["name"] == "shard.attempt" for s in spans)
        assert any(s["name"] == "shard.run" for s in spans)

        path = tmp_path / "sweep.trace.json"
        report.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        procs = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {
            "coordinator", "shard 0", "shard 1", "shard 2", "shard 3",
        }

    def test_supervision_and_rpc_metrics_collected(self, acc):
        d, bp = acc
        report = _sweep(d, bp, obs="metrics", workers=2)
        (attempts,) = _series(report, "shard_attempts_total")
        assert attempts["value"] == 2
        hb = _series(report, "shard_heartbeat_gap_seconds")
        assert hb and hb[0]["count"] > 0
        rpc = _series(report, "rpc_requests_total")
        assert {m["labels"]["shard"] for m in rpc} == {"0", "1"}

    def test_prometheus_export_covers_both_sides(self, acc):
        d, bp = acc
        report = _sweep(d, bp, obs="metrics", workers=2)
        text = report.prometheus()
        assert '# TYPE sim_ticks_total counter' in text
        assert 'sim_ticks_total{shard="0"}' in text
        assert "shard_attempts_total 2" in text  # coordinator: no shard label


class TestFaultInjectedSweep:
    def test_retry_and_heartbeat_metrics_surface_in_summary(self, acc):
        """Acceptance: a fault-injected sweep's summary shows the retry
        count and heartbeat telemetry."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(1,),
            at_cycle=5, max_faulty_attempts=1,
        )
        report = _sweep(
            d, bp, obs="metrics", workers=2, retry=FAST, faults=plan,
        )
        assert report.ok
        (retries,) = _series(report, "shard_retries_total")
        assert retries["value"] == 1
        (attempts,) = _series(report, "shard_attempts_total")
        assert attempts["value"] == 3  # 2 shards + 1 retry
        text = report.summary()
        assert "supervision: 3 attempt(s), 1 retry(s)" in text
        assert "heartbeat gap:" in text

    def test_attempt_spans_label_outcomes(self, acc):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(0,),
            at_cycle=5, max_faulty_attempts=1,
        )
        report = _sweep(
            d, bp, obs="trace", workers=2, retry=FAST, faults=plan,
        )
        assert report.ok
        outcomes = sorted(
            s["args"]["outcome"]
            for s in report.trace_spans()
            if s["name"] == "shard.attempt"
        )
        assert outcomes == ["crash", "ok", "ok"]
