"""Worker determinism: a shard run must be bit-identical to a standalone
``Simulator`` + ``Runtime`` run of the same seed.

The standalone reference below is written from the spec contract alone
(sorted-name random pokes from ``Random(seed)``, overrides held, reset
first) — it shares no code with ``run_shard``'s driving loop, so the
property pins the contract, not the implementation.
"""

import random

import pytest

import repro
from repro.core import HitRecorder, Runtime
from repro.shard import BreakpointSpec, ShardSpec, WatchSpec, run_shard
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import Accumulator, TwoLeaves, line_of


@pytest.fixture(scope="module")
def acc_design():
    d = repro.compile(Accumulator())
    return d, SQLiteSymbolTable(write_symbol_table(d))


def _standalone_reference(d, symtable, spec: ShardSpec) -> list[dict]:
    """The documented semantics, written out by hand."""
    sim = Simulator(d.low)
    recorder = HitRecorder(limit=spec.hit_limit)
    rt = Runtime(sim, symtable, on_hit=recorder)
    rt.attach()
    for bp in spec.breakpoints:
        rt.add_breakpoint(bp.filename, bp.line, bp.column, bp.condition)
    for wp in spec.watchpoints:
        rt.add_watchpoint(wp.name, wp.instance, wp.condition)
    for name, value in spec.overrides.items():
        sim.poke(name, value)
    sim.reset(spec.reset_cycles)
    rng = random.Random(spec.seed)
    clock = sim.design.signals[sim.design.clock_index].name
    reset = sim.design.signals[sim.design.reset_index].name
    driven = sorted(
        name for name in sim.design.top_inputs
        if name not in spec.overrides and name not in (clock, reset)
    )
    widths = {
        name: sim.design.signals[sim.design.top_inputs[name]].width
        for name in driven
    }
    for _ in range(spec.cycles):
        if sim.finished:
            break
        for name in driven:
            sim.poke(name, rng.getrandbits(widths[name]))
        sim.step(1)
    return recorder.records


class TestShardEqualsStandalone:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345, 999_999])
    def test_property_across_seeds(self, acc_design, seed):
        d, st = acc_design
        f, line = line_of(d, "acc")
        spec = ShardSpec(
            shard_id=0, seed=seed, cycles=60,
            breakpoints=(BreakpointSpec(f, line, condition="acc >= 100"),),
        )
        result = run_shard(d.low, st, spec)
        assert result.ok and result.cycles == 60
        assert result.hits == _standalone_reference(d, st, spec)

    def test_with_overrides_and_watchpoints(self, acc_design):
        d, st = acc_design
        f, line = line_of(d, "acc")
        spec = ShardSpec(
            shard_id=0, seed=42, cycles=40,
            overrides={"en": 1},
            breakpoints=(BreakpointSpec(f, line),),
            watchpoints=(WatchSpec("total"),),
        )
        result = run_shard(d.low, st, spec)
        assert result.hits == _standalone_reference(d, st, spec)
        # en held at 1: the breakpoint fires every cycle, including the
        # reset cycle (the clock callback runs there too)
        bp_hits = [h for h in result.hits if "watch" not in h]
        watch_hits = [h for h in result.hits if "watch" in h]
        assert len(bp_hits) == 40 + spec.reset_cycles
        assert watch_hits, "acc accumulates, so `total` must change"

    def test_same_seed_same_hits_repeatedly(self, acc_design):
        d, st = acc_design
        f, line = line_of(d, "acc")
        spec = ShardSpec(
            shard_id=0, seed=5, cycles=50,
            breakpoints=(BreakpointSpec(f, line),),
        )
        a = run_shard(d.low, st, spec)
        b = run_shard(d.low, st, spec)
        assert a.hits == b.hits

    def test_different_seeds_diverge(self, acc_design):
        """Sanity: the stimulus actually depends on the seed."""
        d, st = acc_design
        f, line = line_of(d, "acc")
        runs = []
        for seed in (1, 2):
            spec = ShardSpec(
                shard_id=0, seed=seed, cycles=50,
                breakpoints=(BreakpointSpec(f, line),),
            )
            runs.append(run_shard(d.low, st, spec).hits)
        assert runs[0] != runs[1]

    def test_hit_limit_detaches(self, acc_design):
        d, st = acc_design
        f, line = line_of(d, "acc")
        spec = ShardSpec(
            shard_id=0, seed=3, cycles=50, overrides={"en": 1},
            breakpoints=(BreakpointSpec(f, line),), hit_limit=5,
        )
        result = run_shard(d.low, st, spec)
        assert len(result.hits) == 5
        assert result.cycles == 50  # simulation completes; debugger detached
        assert result.hits == _standalone_reference(d, st, spec)

    def test_multi_instance_frames_serialize(self):
        """Hits with several concurrent frames produce serializable
        records (TwoLeaves: two instances share each breakpoint)."""
        d = repro.compile(TwoLeaves())
        st = SQLiteSymbolTable(write_symbol_table(d))
        f, line = line_of(d, "o")
        spec = ShardSpec(
            shard_id=0, seed=11, cycles=20,
            breakpoints=(BreakpointSpec(f, line),),
        )
        result = run_shard(d.low, st, spec)
        assert result.hits, "expected hits within 20 random cycles"
        import json

        json.dumps(result.hits)  # must be plain data
        # the SSA enable (i > 2) gates each instance separately; some
        # cycles must stop both concurrent threads in one group
        assert max(len(h["frames"]) for h in result.hits) == 2

    def test_emit_streams_hits_and_progress(self, acc_design):
        d, st = acc_design
        f, line = line_of(d, "acc")
        events = []
        spec = ShardSpec(
            shard_id=4, seed=8, cycles=40, overrides={"en": 1},
            breakpoints=(BreakpointSpec(f, line),), progress_every=10,
        )
        result = run_shard(d.low, st, spec, emit=events.append)
        kinds = [e["event"] for e in events]
        assert kinds.count("progress") == 4
        assert kinds.count("hit") == len(result.hits)
        assert all(e["shard"] == 4 for e in events)
        streamed = [e["record"] for e in events if e["event"] == "hit"]
        assert streamed == result.hits
