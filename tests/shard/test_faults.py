"""repro.faults unit tests: the fault plan must be a pure function of
(seed, shard, attempt) — same plan, same faults, every run — and the
garbled-wire helper must defeat the event decoder every time."""

import pytest

from repro.faults import (
    RPC_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultError,
    FaultInjector,
    FaultPlan,
    RPCFaultInjector,
    ShardFault,
    corrupt_line,
)
from repro.shard import WireError, decode_line, encode_line, heartbeat_event


class TestShardFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            ShardFault(kind="meteor", at_cycle=0)

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultError, match=">= 0"):
            ShardFault(kind="kill", at_cycle=-1)

    def test_wire_round_trip(self):
        f = ShardFault(
            kind="hang", at_cycle=7, exit_code=3, hang_s=1.5, stubborn=True
        )
        assert ShardFault.from_wire(f.to_wire()) == f


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan(seed=11, rate=0.5)
        b = FaultPlan(seed=11, rate=0.5)
        draws = [
            (s, n, a.fault_for(s, n, 100))
            for s in range(8) for n in (1, 2, 3)
        ]
        assert draws == [
            (s, n, b.fault_for(s, n, 100)) for s in range(8) for n in (1, 2, 3)
        ]
        # and the draw is repeatable on the same plan instance
        assert draws == [
            (s, n, a.fault_for(s, n, 100)) for s in range(8) for n in (1, 2, 3)
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=0, rate=0.5)
        b = FaultPlan(seed=1, rate=0.5)
        assert [a.fault_for(s, 1, 100) for s in range(32)] != [
            b.fault_for(s, 1, 100) for s in range(32)
        ]

    def test_rate_bounds(self):
        none = FaultPlan(seed=0, rate=0.0)
        all_ = FaultPlan(seed=0, rate=1.0)
        assert all(
            none.fault_for(s, n, 50) is None for s in range(8) for n in (1, 2)
        )
        assert all(
            all_.fault_for(s, n, 50) is not None
            for s in range(8) for n in (1, 2)
        )

    def test_invalid_rate_rejected(self):
        with pytest.raises(FaultError, match="within"):
            FaultPlan(rate=1.5)
        with pytest.raises(FaultError, match="within"):
            FaultPlan(rpc_rate=-0.1)

    def test_invalid_kinds_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan(kinds=("kill", "meteor"))
        with pytest.raises(FaultError, match="unknown RPC fault kind"):
            FaultPlan(rpc_kinds=("delay", "meteor"))

    def test_only_shards_restricts(self):
        plan = FaultPlan(seed=0, rate=1.0, only_shards=(2, 5))
        faulted = [s for s in range(8) if plan.fault_for(s, 1, 50)]
        assert faulted == [2, 5]

    def test_at_cycle_pins_and_default_draw_is_bounded(self):
        pinned = FaultPlan(seed=0, rate=1.0, at_cycle=13)
        assert all(
            pinned.fault_for(s, 1, 50).at_cycle == 13 for s in range(8)
        )
        drawn = FaultPlan(seed=0, rate=1.0)
        assert all(
            0 <= drawn.fault_for(s, 1, 50).at_cycle < 50 for s in range(16)
        )

    def test_max_faulty_attempts_guarantees_convergence(self):
        plan = FaultPlan(seed=0, rate=1.0, max_faulty_attempts=2)
        assert plan.fault_for(0, 1, 50) is not None
        assert plan.fault_for(0, 2, 50) is not None
        assert plan.fault_for(0, 3, 50) is None
        assert plan.fault_for(0, 99, 50) is None

    def test_kind_restriction_and_knob_forwarding(self):
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("hang",), hang_s=2.5, stubborn=True,
            exit_code=9,
        )
        for s in range(8):
            f = plan.fault_for(s, 1, 50)
            assert f.kind == "hang"
            assert f.hang_s == 2.5 and f.stubborn and f.exit_code == 9

    def test_wire_round_trip_preserves_draws(self):
        plan = FaultPlan(
            seed=42, rate=0.4, kinds=("kill", "corrupt"), only_shards=(0, 3),
            at_cycle=5, max_faulty_attempts=2, hang_s=1.0, stubborn=True,
            exit_code=7, rpc_rate=0.25, rpc_kinds=("drop",), rpc_delay_s=0.2,
        )
        back = FaultPlan.from_wire(plan.to_wire())
        assert back.to_wire() == plan.to_wire()
        assert [back.fault_for(s, n, 60) for s in range(8) for n in (1, 2)] == [
            plan.fault_for(s, n, 60) for s in range(8) for n in (1, 2)
        ]

    def test_rpc_injector_only_when_rate_positive(self):
        assert FaultPlan(rpc_rate=0.0).rpc_injector() is None
        inj = FaultPlan(seed=3, rpc_rate=0.5, rpc_delay_s=0.1).rpc_injector()
        assert isinstance(inj, RPCFaultInjector)
        assert inj.seed == 3 and inj.delay_s == 0.1


class TestCorruptLine:
    def test_never_decodes(self):
        for event in (
            heartbeat_event(0, 10),
            {"event": "done", "shard": 1, "result": {"shard_id": 1}},
        ):
            garbled = corrupt_line(encode_line(event))
            with pytest.raises(WireError):
                decode_line(garbled)

    def test_stays_one_framing_unit(self):
        garbled = corrupt_line(encode_line(heartbeat_event(2, 5)))
        assert garbled.endswith(b"\n")
        assert b"\n" not in garbled[:-1]


class TestFaultInjector:
    def test_inert_without_fault(self):
        inj = FaultInjector(None)
        inj.on_cycle(0)
        assert not inj.corrupting

    def test_corrupt_arms_at_cycle_once(self):
        inj = FaultInjector(ShardFault(kind="corrupt", at_cycle=3))
        inj.on_cycle(2)
        assert not inj.corrupting
        inj.on_cycle(3)
        assert inj.corrupting


class TestRPCFaultInjector:
    def test_deterministic_sequence(self):
        a = RPCFaultInjector(seed=5, rate=0.5)
        b = RPCFaultInjector(seed=5, rate=0.5)
        assert [a.decide() for _ in range(64)] == [
            b.decide() for _ in range(64)
        ]

    def test_rate_one_always_faults_with_known_kinds(self):
        inj = RPCFaultInjector(seed=0, rate=1.0, delay_s=0.7)
        for _ in range(16):
            kind, delay = inj.decide()
            assert kind in RPC_FAULT_KINDS
            assert delay == (0.7 if kind == "delay" else 0.0)

    def test_rate_zero_never_faults(self):
        inj = RPCFaultInjector(seed=0, rate=0.0)
        assert all(inj.decide() is None for _ in range(16))


class TestHeartbeatWire:
    def test_heartbeat_round_trips(self):
        ev = heartbeat_event(3, 1200)
        back = decode_line(encode_line(ev))
        assert back["event"] == "heartbeat"
        assert back["shard"] == 3 and back["done"] == 1200

    def test_kind_tables_are_disjoint(self):
        assert not set(WORKER_FAULT_KINDS) & set(RPC_FAULT_KINDS)
