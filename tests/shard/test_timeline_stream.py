"""Shard timeline streaming: compressed state history over the wire and
stateful divergence localization in the aggregator."""

from __future__ import annotations

import copy
import json

import pytest

import repro
from repro.shard import ShardReport, ShardResult, ShardSession, ShardSpec
from repro.shard.wire import decode_line, done_event, encode_line
from tests.helpers import Accumulator


@pytest.fixture(scope="module")
def acc():
    return repro.compile(Accumulator())


def _sweep(session, timeline_cycles=12, seeds=(5, 5, 9), cycles=30):
    specs = [
        ShardSpec(i, seed=s, cycles=cycles, timeline_cycles=timeline_cycles)
        for i, s in enumerate(seeds)
    ]
    return session.run(specs)


class TestStreaming:
    def test_inline_workers_ship_timelines(self, acc):
        with ShardSession(acc, workers=0) as session:
            report = _sweep(session)
        assert all(r.timeline is not None for r in report.results)
        for r in report.results:
            assert r.timeline["codec"] == "rle"
            assert len(r.timeline["entries"]) <= 12
        # Healthy replicas: digests agree AND no localized divergence.
        assert not report.state_divergences()
        assert report.timeline_divergences() == []

    def test_timeline_disabled_by_default(self, acc):
        with ShardSession(acc, workers=0) as session:
            report = session.sweep(shards=2, cycles=10)
        assert all(r.timeline is None for r in report.results)

    def test_timeline_survives_json_wire(self, acc):
        with ShardSession(acc, workers=0) as session:
            report = _sweep(session, seeds=(3,))
        result = report.results[0]
        line = encode_line(done_event(result))
        back = ShardResult.from_wire(decode_line(line)["result"])
        assert back.timeline == result.timeline

    def test_forked_workers_match_inline(self, acc):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork unavailable")
        with ShardSession(acc, workers=0) as inline:
            a = _sweep(inline, seeds=(7,))
        with ShardSession(acc, workers=1) as forked:
            b = _sweep(forked, seeds=(7,))
        assert a.results[0].timeline == b.results[0].timeline

    def test_replicated_sweep_report_is_json_serializable(self, acc):
        with ShardSession(acc, workers=0) as session:
            report = _sweep(session)
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["timeline_divergences"] == []


class TestLocalization:
    def _divergent_report(self, acc):
        """A replicated sweep with shard 1's shipped history doctored at
        a known cycle/signal — a synthetic determinism bug."""
        with ShardSession(acc, workers=0) as session:
            report = _sweep(session, seeds=(5, 5))
        bad = copy.deepcopy(report.results[1].timeline)
        target = bad["entries"][3]  # a delta entry: flip its first value
        assert "d" in target and target["d"]
        target["d"][0][1][0] ^= 1
        report.results[1].timeline = bad
        return report, target["t"], target["d"][0][0]

    def test_first_divergent_cycle_and_signal_named(self, acc):
        report, t, idx = self._divergent_report(acc)
        divs = report.timeline_divergences()
        assert len(divs) == 1
        d = divs[0]
        assert (d.seed, d.shard_a, d.shard_b) == (5, 0, 1)
        assert d.time == t
        # The site resolves to a hierarchical path, not a raw index.
        assert d.what.startswith("Accumulator.")
        assert d.value_a != d.value_b

    def test_summary_and_json_carry_localization(self, acc):
        report, t, _idx = self._divergent_report(acc)
        text = report.summary()
        assert "timeline divergence localized" in text
        assert f"@ cycle {t}" in text
        blob = report.to_json()
        assert blob["timeline_divergences"][0]["time"] == t

    def test_single_shard_seeds_not_compared(self, acc):
        with ShardSession(acc, workers=0) as session:
            report = _sweep(session, seeds=(1, 2, 3))
        assert report.timeline_divergences() == []

    def test_unnamed_report_falls_back_to_indices(self):
        wire_a = {"v": 1, "codec": "rle", "state": [2],
                  "entries": [{"t": 0, "k": [1]}]}
        wire_b = {"v": 1, "codec": "rle", "state": [2],
                  "entries": [{"t": 0, "k": [3]}]}
        report = ShardReport([
            ShardResult(0, seed=1, cycles=1, timeline=wire_a,
                        state_digest="a"),
            ShardResult(1, seed=1, cycles=1, timeline=wire_b,
                        state_digest="b"),
        ])
        d = report.timeline_divergences()[0]
        assert d.what == "signal[2]"
        assert (d.value_a, d.value_b) == (1, 3)
