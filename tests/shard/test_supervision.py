"""Supervision layer tests: retry/deadline policies as pure units, then
the coordinator's failure paths end-to-end — crash, hang (including the
terminate→kill escalation), corrupt wire, retry exhaustion with and
without inline fallback, and the whole-sweep wall-clock budget."""

import time

import pytest

import repro
from repro.faults import FaultPlan
from repro.shard import (
    BreakpointSpec,
    DeadlinePolicy,
    RetryPolicy,
    ShardError,
    ShardSession,
    ShardSpec,
    as_deadline_policy,
    failure_record,
)
from repro.shard.supervise import (
    CORRUPT,
    CRASH,
    ERROR,
    HANG,
    INFRA_FAILURES,
    RPC,
)
from tests.helpers import Accumulator, line_of

FAST = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)


@pytest.fixture(scope="module")
def acc():
    d = repro.compile(Accumulator())
    f, line = line_of(d, "acc")
    return d, BreakpointSpec(f, line)


@pytest.fixture(scope="module")
def reference(acc):
    """Fault-free inline run of the same sweep: the parity baseline."""
    d, bp = acc
    with ShardSession(d, workers=0) as session:
        return session.sweep(
            shards=2, cycles=30, breakpoints=[bp], overrides={"en": 1},
        )


def _sweep(d, bp, **kwargs):
    kwargs.setdefault("retry", FAST)
    with ShardSession(d, workers=2) as session:
        return session.sweep(
            shards=2, cycles=30, breakpoints=[bp], overrides={"en": 1},
            **kwargs,
        )


class TestRetryPolicy:
    def test_defaults_retry_infra_only(self):
        p = RetryPolicy()
        for fclass in (CRASH, HANG, CORRUPT, RPC):
            assert p.should_retry(fclass, 1)
            assert p.wants_fallback(fclass)
        assert not p.should_retry(ERROR, 1)
        assert not p.wants_fallback(ERROR)

    def test_attempt_budget_is_exclusive_of_max(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(CRASH, 2)
        assert not p.should_retry(CRASH, 3)

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.3)
        assert p.backoff_for(1) == pytest.approx(0.1)
        assert p.backoff_for(2) == pytest.approx(0.2)
        assert p.backoff_for(3) == pytest.approx(0.3)  # capped
        assert p.backoff_for(9) == pytest.approx(0.3)

    def test_custom_retry_classes(self):
        p = RetryPolicy(retry_on=("crash",))
        assert p.should_retry(CRASH, 1)
        assert not p.should_retry(HANG, 1)
        assert not p.wants_fallback(HANG)

    def test_no_fallback_when_disabled(self):
        p = RetryPolicy(inline_fallback=False)
        assert not p.wants_fallback(CRASH)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_s=-1)


class TestDeadlinePolicy:
    def test_deadline_scales_with_cycles(self):
        p = DeadlinePolicy(base_s=2.0, per_kcycle_s=4.0)
        assert p.deadline_for(0) == pytest.approx(2.0)
        assert p.deadline_for(500) == pytest.approx(4.0)
        assert p.deadline_for(2000) == pytest.approx(10.0)

    def test_fixed_is_flat(self):
        p = DeadlinePolicy.fixed(7.5)
        assert p.deadline_for(10) == p.deadline_for(1_000_000) == 7.5

    def test_coercion(self):
        assert as_deadline_policy(None) is None
        p = DeadlinePolicy()
        assert as_deadline_policy(p) is p
        assert as_deadline_policy(3).deadline_for(99_999) == 3.0
        with pytest.raises(TypeError, match="deadline"):
            as_deadline_policy("soon")

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline terms"):
            DeadlinePolicy(base_s=-1)
        with pytest.raises(ValueError, match="heartbeat"):
            DeadlinePolicy(heartbeat_timeout_s=0)

    def test_failure_record_shape(self):
        rec = failure_record(2, CRASH, "boom", 0.123456789)
        assert rec == {
            "attempt": 2, "class": "crash", "message": "boom",
            "elapsed_s": 0.123457,
        }

    def test_infra_failure_set(self):
        assert INFRA_FAILURES == {"crash", "hang", "corrupt", "rpc"}


class TestCrashRecovery:
    def test_killed_worker_is_retried_and_converges(self, acc, reference):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(1,),
            at_cycle=5, max_faulty_attempts=1,
        )
        report = _sweep(d, bp, faults=plan)
        assert report.ok
        clean, hurt = report.results
        assert clean.attempts == 1 and not clean.failures
        assert hurt.attempts == 2 and hurt.retried
        assert [f["class"] for f in hurt.failures] == ["crash"]
        assert "exit code" in hurt.failures[0]["message"]
        # the retried shard is bit-identical to the fault-free reference
        for got, want in zip(report.results, reference.results, strict=False):
            assert got.state_digest == want.state_digest
            assert got.hits == want.hits

    def test_crashes_do_not_stall_the_event_loop(self, acc):
        """Regression: the old coordinator blocked up to 30s in
        ``proc.join(timeout=30)`` after each pipe EOF."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), at_cycle=0,
            max_faulty_attempts=1,
        )
        t0 = time.monotonic()
        report = _sweep(d, bp, faults=plan)
        assert report.ok
        assert all(r.attempts == 2 for r in report.results)
        assert time.monotonic() - t0 < 20

    def test_events_carry_attempt_numbers(self, acc):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(0,),
            at_cycle=1, max_faulty_attempts=1,
        )
        events = []
        report = _sweep(d, bp, faults=plan, on_event=events.append)
        assert report.ok
        assert "heartbeat" in {e["event"] for e in events}
        dones = {e["shard"]: e["attempt"] for e in events
                 if e["event"] == "done"}
        assert dones == {0: 2, 1: 1}


class TestCorruptWireRecovery:
    def test_garbled_wire_is_retried(self, acc, reference):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("corrupt",), only_shards=(0,),
            at_cycle=0, max_faulty_attempts=1,
        )
        report = _sweep(d, bp, faults=plan)
        assert report.ok
        hurt = report.results[0]
        assert hurt.attempts == 2
        assert [f["class"] for f in hurt.failures] == ["corrupt"]
        assert "undecodable" in hurt.failures[0]["message"]
        assert hurt.state_digest == reference.results[0].state_digest


class TestHangRecovery:
    def test_silent_worker_is_declared_hung_and_retried(self, acc, reference):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("hang",), only_shards=(1,),
            at_cycle=5, hang_s=60.0, max_faulty_attempts=1,
        )
        deadline = DeadlinePolicy(
            base_s=30.0, heartbeat_timeout_s=0.5, kill_grace_s=0.5,
        )
        t0 = time.monotonic()
        report = _sweep(d, bp, faults=plan, deadline=deadline)
        assert time.monotonic() - t0 < 30
        assert report.ok
        hurt = report.results[1]
        assert hurt.attempts == 2
        assert [f["class"] for f in hurt.failures] == ["hang"]
        assert "no event for" in hurt.failures[0]["message"]
        assert hurt.state_digest == reference.results[1].state_digest

    def test_stubborn_hang_forces_kill_escalation(self, acc):
        """A worker that shrugs off SIGTERM must still die: the zombie
        reaper escalates to SIGKILL after ``kill_grace_s``."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("hang",), only_shards=(0,),
            at_cycle=5, hang_s=60.0, stubborn=True, max_faulty_attempts=1,
        )
        deadline = DeadlinePolicy(
            base_s=30.0, heartbeat_timeout_s=0.5, kill_grace_s=0.3,
        )
        t0 = time.monotonic()
        report = _sweep(d, bp, faults=plan, deadline=deadline)
        assert time.monotonic() - t0 < 30
        assert report.ok
        assert report.results[0].attempts == 2

    def test_attempt_deadline_without_heartbeat_monitor(self, acc):
        """A flat per-attempt deadline alone (the CLI's --deadline) also
        catches the hang — no heartbeat timeout configured."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("hang",), only_shards=(0,),
            at_cycle=5, hang_s=60.0, max_faulty_attempts=1,
        )
        report = _sweep(d, bp, faults=plan, deadline=1.0)
        assert report.ok
        hurt = report.results[0]
        assert [f["class"] for f in hurt.failures] == ["hang"]
        assert "deadline exceeded" in hurt.failures[0]["message"]


class TestExhaustionAndDegradation:
    def test_exhausted_retries_fall_back_inline(self, acc, reference):
        """Every forked attempt dies, so the shard degrades to inline
        execution — and still produces the bit-identical result."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(1,), at_cycle=1,
        )  # no max_faulty_attempts: every forked attempt is killed
        report = _sweep(d, bp, faults=plan)
        assert report.ok
        hurt = report.results[1]
        assert hurt.attempts == FAST.max_attempts + 1
        assert [f["class"] for f in hurt.failures] == ["crash"] * 3
        assert hurt.state_digest == reference.results[1].state_digest

    def test_exhausted_retries_without_fallback_yield_partial_report(
        self, acc
    ):
        """The acceptance criterion: a sweep whose shard exhausts its
        budget returns a partial report naming the failed shard and its
        attempt count — it does not raise."""
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("kill",), only_shards=(0,), at_cycle=1,
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_s=0.01, inline_fallback=False,
        )
        report = _sweep(d, bp, faults=plan, retry=policy)
        assert not report.ok
        failed = report.failed_shards()
        assert failed == [(0, 2, report.results[0].error)]
        assert "exited without reporting" in report.results[0].error
        assert len(report.results[0].failures) == 2
        # the healthy shard still completed
        assert report.results[1].ok and report.results[1].hits
        text = report.summary()
        assert "fault recovery:" in text
        assert "FAILED after 2 attempt(s)" in text
        payload = report.to_json()
        assert payload["failed"] == [
            {"shard": 0, "attempts": 2, "error": report.results[0].error}
        ]
        assert payload["total_attempts"] == 3

    def test_rpc_outage_degrades_to_inline(self, acc, reference):
        """When every RPC response is dropped, every forked attempt dies
        of transport failure (class "rpc", retried) — and the inline
        fallback, which queries the symbol table natively, recovers the
        whole sweep."""
        d, bp = acc
        plan = FaultPlan(seed=0, rpc_rate=1.0, rpc_kinds=("drop",))
        report = _sweep(d, bp, faults=plan)
        assert report.ok
        for got, want in zip(report.results, reference.results, strict=False):
            assert got.attempts == FAST.max_attempts + 1
            assert {f["class"] for f in got.failures} == {"rpc"}
            assert got.state_digest == want.state_digest
            assert got.hits == want.hits

    def test_spec_errors_are_not_retried(self, acc):
        """A worker-reported error is deterministic: retrying or falling
        back would fail identically, so it settles terminally at
        attempt 1."""
        d, bp = acc
        bad = BreakpointSpec("no_such_file.py", 1)
        specs = [
            ShardSpec(shard_id=0, seed=0, cycles=20, breakpoints=(bad,)),
            ShardSpec(shard_id=1, seed=1, cycles=20, breakpoints=(bp,),
                      overrides={"en": 1}),
        ]
        with ShardSession(d, workers=2) as session:
            report = session.run(specs, retry=FAST)
        assert not report.ok
        failed = report.results[0]
        assert failed.attempts == 1
        assert [f["class"] for f in failed.failures] == ["error"]
        assert report.results[1].ok


class TestSweepTimeout:
    def test_timeout_is_wall_clock_not_per_event(self, acc):
        """Regression: the old loop passed ``timeout`` to every
        ``events.get``, so a chatty worker reset the budget forever.
        Heartbeats are now *more* frequent than ever, and the sweep must
        still abort on schedule."""
        d, bp = acc
        t0 = time.monotonic()
        with pytest.raises(ShardError, match="timed out"):
            _sweep(d, bp, faults=FaultPlan(
                seed=0, rate=1.0, kinds=("hang",), at_cycle=5, hang_s=60.0,
            ), timeout=1.0)
        assert time.monotonic() - t0 < 15

    def test_timeout_names_unresolved_shards(self, acc):
        d, bp = acc
        plan = FaultPlan(
            seed=0, rate=1.0, kinds=("hang",), only_shards=(1,),
            at_cycle=5, hang_s=60.0,
        )
        with pytest.raises(ShardError, match=r"\[1\]"):
            _sweep(d, bp, faults=plan, timeout=1.5)

    def test_no_timeout_still_completes(self, acc):
        d, bp = acc
        report = _sweep(d, bp)
        assert report.ok and not report.retried
