"""Chaos acceptance: under a seeded fault plan injecting kills, hangs,
corrupt wire, and flaky RPC at up to a 30% rate, a supervised sweep must
(a) complete within its wall-clock budget and (b) aggregate results
bit-identical — state digests, hits, first hits, streamed timelines — to
a fault-free inline run of the same specs.

Convergence is structural, not lucky: faults re-roll per (shard,
attempt), exhausted shards degrade to inline execution, and the inline
path never runs faults — so every shard eventually produces the
reference result, whatever the plan throws at the forked attempts."""

import pytest

import repro
from repro.faults import FaultPlan
from repro.shard import (
    BreakpointSpec,
    DeadlinePolicy,
    RetryPolicy,
    ShardSession,
    make_sweep,
)
from tests.helpers import Accumulator, line_of

SHARDS = 5
CYCLES = 120

RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.1)
DEADLINE = DeadlinePolicy(
    base_s=20.0,
    per_kcycle_s=20.0,
    heartbeat_timeout_s=3.0,
    kill_grace_s=1.0,
)


@pytest.fixture(scope="module")
def sweep():
    d = repro.compile(Accumulator())
    f, line = line_of(d, "acc")
    specs = make_sweep(
        SHARDS, CYCLES,
        breakpoints=[BreakpointSpec(f, line)],
        overrides={"en": 1},
        timeline_cycles=16,
    )
    return d, specs


@pytest.fixture(scope="module")
def reference(sweep):
    """The fault-free inline run every chaos sweep must reproduce."""
    d, specs = sweep
    with ShardSession(d, workers=0) as session:
        return session.run(specs)


@pytest.mark.parametrize("plan_seed", [0, 1, 2])
def test_chaos_sweep_is_bit_identical_to_fault_free(
    sweep, reference, plan_seed
):
    d, specs = sweep
    plan = FaultPlan(
        seed=plan_seed,
        rate=0.3,
        kinds=("kill", "hang", "corrupt"),
        hang_s=60.0,
        rpc_rate=0.2,
        rpc_delay_s=0.05,
    )
    with ShardSession(d, workers=3) as session:
        report = session.run(
            specs, timeout=120.0, retry=RETRY, deadline=DEADLINE,
            faults=plan,
        )
    assert report.ok, report.summary()
    assert len(report.results) == SHARDS
    for got, want in zip(report.results, reference.results, strict=False):
        assert got.shard_id == want.shard_id and got.seed == want.seed
        assert got.cycles == want.cycles
        assert got.hits == want.hits
        assert got.state_digest == want.state_digest
        assert got.timeline == want.timeline
        # supervision provenance is internally consistent
        assert got.attempts == len(got.failures) + 1
    assert {
        loc: (fh.time, fh.shard_id)
        for loc, fh in report.first_hits().items()
    } == {
        loc: (fh.time, fh.shard_id)
        for loc, fh in reference.first_hits().items()
    }
    assert report.histogram() == reference.histogram()


def test_chaos_plan_actually_bites(sweep, reference):
    """Guard against a vacuous chaos pass: pin one plan known to fault at
    least one forked attempt, and check the report says so."""
    d, specs = sweep
    plan = FaultPlan(seed=0, rate=1.0, kinds=("kill",), at_cycle=1,
                     max_faulty_attempts=1)
    with ShardSession(d, workers=3) as session:
        report = session.run(
            specs, timeout=120.0, retry=RETRY, deadline=DEADLINE,
            faults=plan,
        )
    assert report.ok
    assert len(report.retried) == SHARDS
    assert report.total_attempts == 2 * SHARDS
    for got, want in zip(report.results, reference.results, strict=False):
        assert got.state_digest == want.state_digest
