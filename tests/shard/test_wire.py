"""Wire-format tests: shard specs, results, and events must round-trip
through the JSON-lines protocol byte-exactly."""

import pytest

from repro.shard import (
    BreakpointSpec,
    ShardError,
    ShardResult,
    ShardSpec,
    WatchSpec,
    WireError,
    decode_line,
    done_event,
    encode_line,
    error_event,
    hit_event,
    make_sweep,
    progress_event,
    warning_event,
)
from repro.symtable import BreakpointRec


def _full_spec() -> ShardSpec:
    return ShardSpec(
        shard_id=3,
        seed=1234,
        cycles=500,
        overrides={"en": 1, "mode": 2},
        breakpoints=(
            BreakpointSpec("a.py", 10),
            BreakpointSpec("b.py", 20, column=4, condition="acc > 3"),
        ),
        watchpoints=(WatchSpec("total", condition="new > old"),),
        reset_cycles=2,
        progress_every=100,
        hit_limit=50,
    )


class TestSpecRoundTrip:
    def test_spec_roundtrip(self):
        spec = _full_spec()
        assert ShardSpec.from_wire(spec.to_wire()) == spec

    def test_spec_roundtrip_through_line_encoding(self):
        """Spec dicts survive the actual byte-level framing."""
        import json

        spec = _full_spec()
        line = json.dumps(spec.to_wire()).encode() + b"\n"
        assert ShardSpec.from_wire(json.loads(line)) == spec

    def test_defaults_roundtrip(self):
        spec = ShardSpec(shard_id=0, seed=0, cycles=1)
        assert ShardSpec.from_wire(spec.to_wire()) == spec

    def test_result_roundtrip(self):
        res = ShardResult(
            shard_id=1, seed=7, cycles=100,
            hits=[{"time": 3, "filename": "a.py", "line": 10, "column": 0}],
            warnings=["w"], exit_code=2, wall_time_s=0.5,
            state_digest="ab12cd34ef56",
        )
        back = ShardResult.from_wire(res.to_wire())
        assert back == res
        assert back.ok
        assert back.state_digest == "ab12cd34ef56"

    def test_failed_result_roundtrip(self):
        res = ShardResult(shard_id=1, seed=7, cycles=0, error="boom")
        back = ShardResult.from_wire(res.to_wire())
        assert not back.ok and back.error == "boom"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ShardError):
            ShardSpec(shard_id=0, seed=0, cycles=-1)
        with pytest.raises(ShardError):
            ShardSpec(shard_id=0, seed=0, cycles=1, reset_cycles=-1)
        with pytest.raises(ShardError):
            make_sweep(0, 10)

    def test_make_sweep_seeds(self):
        specs = make_sweep(3, 10, seed_base=100)
        assert [s.seed for s in specs] == [100, 101, 102]
        assert [s.shard_id for s in specs] == [0, 1, 2]


class TestEventFraming:
    def test_every_event_kind_roundtrips(self):
        result = ShardResult(shard_id=2, seed=9, cycles=10)
        events = [
            hit_event(2, {"time": 1, "filename": "a.py", "line": 3, "column": 0}),
            progress_event(2, 50, 100, 4),
            warning_event(2, "condition unevaluable"),
            done_event(result),
            error_event(2, "worker blew up"),
        ]
        for ev in events:
            line = encode_line(ev)
            assert line.endswith(b"\n") and line.count(b"\n") == 1
            assert decode_line(line) == ev

    def test_record_types_tunnel_like_the_symtable_wire(self):
        """Symbol-table record dataclasses embedded in an event survive,
        mirroring symtable/rpc.py's __type__ tagging."""
        rec = BreakpointRec(
            id=1, instance_id=2, instance_name="Top.a", filename="a.py",
            line=3, column=0, node="n", sink="s", enable="en", enable_src="en",
        )
        ev = hit_event(0, {"time": 0, "bp": rec})
        back = decode_line(encode_line(ev))
        assert back["record"]["bp"] == rec

    def test_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_line(b"not json at all\n")
        with pytest.raises(WireError):
            decode_line(b"[1,2,3]\n")
        with pytest.raises(WireError):
            decode_line(b'{"event": "nonsense"}\n')
