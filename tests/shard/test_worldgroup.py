"""World-grouped shard sweeps: processes x SIMD compose.

``ShardSession.sweep(worlds_per_shard=M)`` packs M consecutive shards
into one worker as scenario worlds of a vectorized
:class:`~repro.sim.manyworlds.ManyWorldsSimulator`.  The contract: the
report flattens back to one :class:`ShardResult` per shard, and every
field that matters — state digest, cycles actually run, exit code, hit
records — is identical to the same sweep run unpacked, inline or forked.
"""

from __future__ import annotations

import pytest

import repro
import repro.hgf as hgf
from repro.shard import (
    BreakpointSpec,
    ShardError,
    ShardSession,
    WorldGroupSpec,
    group_worlds,
    make_sweep,
)
from repro.shard.spec import ShardSpec
from repro.sim import numpy_available

from tests.helpers import Accumulator, line_of

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized groups need numpy"
)


class Stopper(hgf.Module):
    """Stops at a stimulus-dependent cycle: members of one group finish
    at different per-world times (or not at all)."""

    def __init__(self):
        super().__init__()
        x = self.input("x", 8)
        self.o = self.output("o", 16)
        acc = self.reg("acc", 16, init=0)
        acc <<= (acc + x.pad(16))[15:0]
        self.stop(acc[7:0] == self.lit(0xA5, 8), 3)
        self.o <<= acc


def _rows(report):
    return [
        (r.shard_id, r.seed, r.cycles, r.exit_code, r.state_digest)
        for r in sorted(report.results, key=lambda r: r.shard_id)
    ]


# -- spec validation and wire format ----------------------------------------


def test_worldgroup_spec_validation():
    a = ShardSpec(0, seed=0, cycles=100)
    b = ShardSpec(1, seed=1, cycles=100)
    with pytest.raises(ShardError):
        WorldGroupSpec(members=())
    with pytest.raises(ShardError):
        WorldGroupSpec(members=(a, ShardSpec(1, seed=1, cycles=50)))
    with pytest.raises(ShardError):
        WorldGroupSpec(members=(a, ShardSpec(1, seed=1, cycles=100,
                                             reset_cycles=3)))
    with pytest.raises(ShardError):
        WorldGroupSpec(
            members=(a, ShardSpec(1, seed=1, cycles=100,
                                  overrides={"en": 1}))
        )
    g = WorldGroupSpec(members=(a, b))
    assert (g.shard_id, g.seed, g.cycles, g.worlds) == (0, 0, 100, 2)


def test_worldgroup_wire_roundtrip():
    specs = make_sweep(4, 50, seed_base=7)
    g = WorldGroupSpec(members=tuple(specs))
    back = WorldGroupSpec.from_wire(g.to_wire())
    assert back == g


def test_group_worlds_chunking():
    specs = make_sweep(5, 10)
    assert group_worlds(specs, 0) == specs
    assert group_worlds(specs, 1) == specs
    groups = group_worlds(specs, 2)
    assert [g.worlds for g in groups] == [2, 2, 1]
    assert [m.shard_id for g in groups for m in g.members] == [0, 1, 2, 3, 4]


# -- digest parity: grouped == unpacked -------------------------------------


@needs_numpy
@pytest.mark.parametrize("workers", [0, 2])
def test_grouped_sweep_digest_identical(workers):
    """Vectorized groups (inline and forked) produce per-shard results
    identical to the plain sweep, including divergent per-world stop
    cycles and exit codes."""
    design = repro.compile(Stopper())
    with ShardSession(design, workers=0) as s:
        plain = s.sweep(6, 400, overrides=None)
    with ShardSession(design, workers=workers) as s:
        grouped = s.sweep(6, 400, worlds_per_shard=3)
    assert grouped.ok
    assert _rows(grouped) == _rows(plain)
    # The scenario is only interesting if stop cycles actually diverge.
    cycles = {r.cycles for r in plain.results}
    assert len(cycles) > 1, "per-world finish cycles must diverge"


@needs_numpy
def test_grouped_sweep_with_breakpoints_falls_back_sequential():
    """Armed breakpoints make a group ineligible for vectorized execution;
    it must still produce identical digests and hit counts member by
    member (sequential fallback inside the worker)."""
    design = repro.compile(Accumulator())
    fn, line = line_of(design, "acc")
    bp = BreakpointSpec(fn, line, condition="acc > 30000")
    with ShardSession(design, workers=0) as s:
        plain = s.sweep(4, 300, overrides={"en": 1}, breakpoints=[bp],
                        hit_limit=5)
        grouped = s.sweep(4, 300, overrides={"en": 1}, breakpoints=[bp],
                          hit_limit=5, worlds_per_shard=2)
    assert grouped.ok
    assert _rows(grouped) == _rows(plain)
    assert [len(r.hits) for r in grouped.results] == [
        len(r.hits) for r in plain.results
    ]
    assert any(r.hits for r in grouped.results)


def test_grouped_sweep_without_numpy_still_correct(monkeypatch):
    """Where numpy is missing the group runs its members sequentially in
    one worker — same results, no hard dependency."""
    import repro.shard.worker as worker_mod

    monkeypatch.setattr(worker_mod, "numpy_available", lambda: False)
    design = repro.compile(Stopper())
    with ShardSession(design, workers=0) as s:
        plain = s.sweep(4, 200)
        grouped = s.sweep(4, 200, worlds_per_shard=2)
    assert _rows(grouped) == _rows(plain)


@needs_numpy
def test_run_accepts_prebuilt_groups():
    design = repro.compile(Stopper())
    specs = make_sweep(4, 150)
    with ShardSession(design, workers=0) as s:
        plain = s.run(specs)
        grouped = s.run(group_worlds(specs, 4))
    assert _rows(grouped) == _rows(plain)
    assert len(grouped.results) == 4
