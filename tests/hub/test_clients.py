"""The console and DAP front ends driving remote hub sessions — the same
command/request surface they expose over an in-process Runtime."""

import pytest

import repro
from repro.client import ConsoleDebugger, DapAdapter
from repro.client.console import CommandSpec
from repro.hub import DebugHub, HubClient
from repro.sim import Simulator
from tests.helpers import Counter, line_of, make_runtime


def _serve(mod_cls=Counter):
    design = repro.compile(mod_cls())
    hub = DebugHub(design)
    host, port = hub.serve_background()
    return design, hub, host, port


class TestConstruction:
    def test_exactly_one_backend(self):
        design = repro.compile(Counter())
        sim = Simulator(design.low)
        runtime = make_runtime(design, sim)
        with pytest.raises(ValueError, match="not both"):
            ConsoleDebugger()
        with pytest.raises(ValueError, match="not both"):
            DapAdapter(runtime, session=object())


class TestConsoleOverHub:
    def test_drive_breakpoint_repl_detach(self):
        design, hub, host, port = _serve()
        _f, line = line_of(design, "count")
        with hub, HubClient(host, port) as client:
            session = client.attach(seed=1)
            dbg = ConsoleDebugger(
                session=session, script=["p count", "c", "q"]
            )
            dbg.execute(f"b helpers.py:{line}")
            dbg.execute("info breakpoints")
            stop = dbg.drive(50)
            joined = "\n".join(dbg.transcript)
            assert "breakpoint set" in joined
            assert "stopped at helpers.py:" in joined
            assert "count = " in joined  # p at the stop
            assert "detached @ cycle" in joined  # q
            assert stop.reason == "detached"

    def test_drive_to_completion(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            session = client.attach(seed=2)
            dbg = ConsoleDebugger(session=session, script=[])
            stop = dbg.drive(10)
            assert stop.reason == "done"
            assert any(
                "ran 10 cycle(s)" in line for line in dbg.transcript
            )

    def test_script_exhaustion_detaches(self):
        # A driving console whose script runs dry at a stop must not
        # spin: it detaches (nobody is left to answer the REPL).
        design, hub, host, port = _serve()
        _f, line = line_of(design, "count")
        with hub, HubClient(host, port) as client:
            session = client.attach(seed=1)
            dbg = ConsoleDebugger(session=session, script=["p count"])
            dbg.execute(f"b helpers.py:{line}")
            stop = dbg.drive(50)
            assert stop.reason == "detached"
            assert hub.session_count == 0

    def test_run_command_owns_cycles(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            session = client.attach(seed=2)
            dbg = ConsoleDebugger(session=session, script=[])
            dbg.execute("run 7")
            assert session.get_time() == 7


class TestRegistry:
    def test_help_is_generated_from_the_registry(self):
        design = repro.compile(Counter())
        runtime = make_runtime(design, Simulator(design.low))
        dbg = ConsoleDebugger(runtime, script=[])
        dbg.execute("help")
        joined = "\n".join(dbg.transcript)
        for name in ("continue/c", "timeline", "shard", "watch"):
            assert name in joined, name

    def test_instance_registration_and_aliases(self):
        design = repro.compile(Counter())
        runtime = make_runtime(design, Simulator(design.low))
        dbg = ConsoleDebugger(runtime, script=[])
        dbg.register(
            CommandSpec(
                "greet",
                lambda d, args: d._out(f"hello {' '.join(args) or 'world'}"),
                aliases=("hi",),
                help="wave back",
            )
        )
        dbg.execute("hi there")
        assert "hello there" in dbg.transcript
        dbg.execute("help")
        assert any("wave back" in line for line in dbg.transcript)
        # Instance-local: a fresh console doesn't know the command.
        other = ConsoleDebugger(make_runtime(design, Simulator(design.low)))
        other.execute("greet")
        assert any("unknown command" in line for line in other.transcript)


class TestDapOverHub:
    def test_attach_run_inspect_detach(self):
        design, hub, host, port = _serve()
        _f, line = line_of(design, "count")
        with hub, HubClient(host, port) as client:
            adapter = DapAdapter(session=client.attach(seed=1))
            init = adapter.handle({"command": "initialize", "seq": 1})
            assert init["body"]["supportsStepBack"]

            resp = adapter.handle(
                {
                    "command": "setBreakpoints",
                    "arguments": {
                        "source": {"path": "helpers.py"},
                        "breakpoints": [{"line": line}],
                    },
                }
            )
            assert resp["body"]["breakpoints"][0]["verified"]

            run = adapter.handle(
                {"command": "hgdbRun", "arguments": {"cycles": 50}}
            )
            assert run["success"]
            assert adapter.events[-1]["event"] == "stopped"
            assert adapter.events[-1]["body"]["hgdbTime"] >= 1

            trace = adapter.handle(
                {"command": "stackTrace", "arguments": {"threadId": 0}}
            )
            frame = trace["body"]["stackFrames"][0]
            assert frame["line"] == line

            scopes = adapter.handle(
                {"command": "scopes", "arguments": {"frameId": frame["id"]}}
            )
            local_ref = scopes["body"]["scopes"][0]["variablesReference"]
            variables = adapter.handle(
                {
                    "command": "variables",
                    "arguments": {"variablesReference": local_ref},
                }
            )
            names = {v["name"] for v in variables["body"]["variables"]}
            assert {"count", "en"} <= names

            ev = adapter.handle(
                {
                    "command": "evaluate",
                    "arguments": {"expression": "count + 1"},
                }
            )
            assert int(ev["body"]["result"]) >= 1

            adapter.handle({"command": "continue", "arguments": {}})
            kinds = [e["event"] for e in adapter.events]
            assert kinds.count("continued") == 1
            assert kinds.count("stopped") >= 1

            adapter.handle({"command": "disconnect", "arguments": {}})
            assert adapter.events[-1]["event"] == "exited"
            assert hub.session_count == 0

    def test_terminated_on_natural_completion(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            adapter = DapAdapter(session=client.attach(seed=3))
            adapter.handle({"command": "hgdbRun", "arguments": {"cycles": 5}})
            assert adapter.events[-1]["event"] == "terminated"
            assert adapter.events[-1]["body"]["hgdbTime"] == 5
