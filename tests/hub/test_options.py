"""SessionOptions: one configuration record across Simulator, ShardSession,
and the hub — with once-per-owner deprecation for the legacy keywords."""

import warnings

import pytest

import repro
from repro.hub import DebugHub, SessionOptions, resolve_session_options
from repro.hub.api import _LEGACY_WARNED
from repro.shard import ShardSession
from repro.sim import Simulator
from tests.helpers import Accumulator, Counter


@pytest.fixture(autouse=True)
def _fresh_warning_dedupe():
    """The dedupe set is process-global; reset it so each test observes
    its own first warning."""
    saved = set(_LEGACY_WARNED)
    _LEGACY_WARNED.clear()
    yield
    _LEGACY_WARNED.clear()
    _LEGACY_WARNED.update(saved)


class TestResolve:
    def test_legacy_value_wins_over_options_field(self):
        with pytest.warns(DeprecationWarning):
            opt = resolve_session_options(
                SessionOptions(snapshots=4), {"snapshots": 9}, "T"
            )
        assert opt.snapshots == 9

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unknown session option"):
            resolve_session_options(None, {"bogus": 1}, "T")

    def test_no_legacy_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opt = resolve_session_options(SessionOptions(fast=False), {}, "T")
        assert opt.fast is False

    def test_warned_once_per_owner_and_keyword_set(self):
        with pytest.warns(DeprecationWarning):
            resolve_session_options(None, {"snapshots": 1}, "T")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a repeat would raise
            resolve_session_options(None, {"snapshots": 2}, "T")
        with pytest.warns(DeprecationWarning):  # new owner: new warning
            resolve_session_options(None, {"snapshots": 1}, "U")


class TestSimulator:
    def test_legacy_kwarg_warns_and_still_works(self):
        d = repro.compile(Counter())
        with pytest.warns(DeprecationWarning, match="Simulator"):
            sim = Simulator(d.low, snapshots=8)
        assert sim.timeline is not None

    def test_options_equivalent_without_warning(self):
        d = repro.compile(Counter())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = Simulator(d.low, options=SessionOptions(snapshots=8))
        assert sim.timeline is not None


class TestShardSession:
    def test_legacy_kwarg_warns_and_still_works(self):
        d = repro.compile(Accumulator())
        with pytest.warns(DeprecationWarning, match="ShardSession"):
            session = ShardSession(d, fast=False)
        assert session.fast is False

    def test_options_flow_through(self):
        d = repro.compile(Accumulator())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = ShardSession(d, options=SessionOptions(fast=False))
        assert session.fast is False
        assert session.options.fast is False


class TestHub:
    def test_legacy_kwarg_warns_and_configures_sessions(self):
        d = repro.compile(Counter())
        with pytest.warns(DeprecationWarning, match="DebugHub"):
            hub = DebugHub(d, snapshots=16)
        with hub:
            assert hub.options.snapshots == 16
            # The hub vets the design once; sessions never re-gate.
            assert hub.options.strict == "off"
            ds = hub.attach()
            assert ds.session._sim.timeline is not None
