"""Debug hub server: wire round-trips, re-attach, eviction, the lint
gate, the shard endpoint, and hub-side observability."""

import time

import pytest

import repro
from repro.hub import DebugHub, HubClient, SessionError, SessionOptions
from repro.hub.server import HubError
from repro.lint import LintError
from tests.helpers import Accumulator, Counter, line_of
from tests.lint.broken_designs import Loopy, Sloppy


def _serve(mod_cls=Counter, **kw):
    design = repro.compile(mod_cls())
    hub = DebugHub(design, **kw)
    host, port = hub.serve_background()
    return design, hub, host, port


class TestWire:
    def test_hello(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            info = client.hello()
            assert info["protocol"] == 1
            assert info["design"] == design.name
            assert info["sessions"] == 0

    def test_attach_break_run_evaluate(self):
        design, hub, host, port = _serve()
        _f, line = line_of(design, "count")
        with hub, HubClient(host, port) as client:
            session = client.attach(name="alice")
            session.poke("en", 1)
            session.reset(1)
            bps = session.add_breakpoint("helpers.py", line)
            assert bps and bps[0]["line"] == line
            stop = session.run(10)
            assert stop.reason == "breakpoint"
            assert stop.stopped
            frame = stop.frames[0]
            local = {v["name"]: v.get("value") for v in frame["local"]}
            assert local["en"] == 1
            got = session.evaluate(
                "count + 1", breakpoint_id=frame["breakpoint_id"]
            )
            assert got == local["count"] + 1
            after = session.cont()
            assert after.reason == "breakpoint"
            assert after.time == stop.time + 1

    def test_state_machine_enforced_over_the_wire(self):
        # The protocol contract: resume commands only make sense at a
        # stop, and the error crosses the wire as a SessionError.
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            session = client.attach()
            with pytest.raises(SessionError, match="cannot resume"):
                session.cont()

    def test_reattach_by_sid_preserves_state(self):
        design, hub, host, port = _serve()
        with hub:
            first = HubClient(host, port)
            session = first.attach(name="alice")
            session.poke("en", 1)
            session.reset(1)
            stop = session.run(5)
            assert stop.reason == "done"
            sid = session.sid
            first.close()  # dropped connection != detach
            assert hub.session_count == 1

            with HubClient(host, port) as second:
                again = second.attach(sid=sid)
                assert again.sid == sid
                assert again.name == "alice"
                assert again.get_time() == stop.time  # state survived
                assert again.detach() is None  # idle: nothing in flight
            assert hub.session_count == 0

    def test_list_sessions(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as c1, HubClient(host, port) as c2:
            c1.attach(name="alice", seed=3)
            c2.attach(name="bob")
            listed = {s["name"]: s for s in c1.list_sessions()}
            assert set(listed) == {"alice", "bob"}
            assert listed["alice"]["seed"] == 3
            assert listed["alice"]["state"] == "idle"

    def test_unknown_methods_are_wire_errors(self):
        design, hub, host, port = _serve()
        with hub, HubClient(host, port) as client:
            with pytest.raises(SessionError, match="unknown hub method"):
                client.call("frobnicate")
            with pytest.raises(SessionError, match="no session bound"):
                client.call("s.run", {"cycles": 1})
            client.attach()
            with pytest.raises(SessionError, match="unknown session method"):
                client.call("s._sim")  # allowlist, not getattr-anything

    def test_needs_compiled_design(self):
        with pytest.raises(HubError, match="repro.compile"):
            DebugHub(Counter())


class TestEviction:
    def test_idle_sessions_evicted(self):
        design, hub, host, port = _serve(idle_ttl=0.1)
        with hub, HubClient(host, port) as client:
            session = client.attach()
            session.reset(1)
            deadline = time.monotonic() + 5.0
            while hub.session_count and time.monotonic() < deadline:
                time.sleep(0.05)
            assert hub.session_count == 0
            with pytest.raises(SessionError, match="no session"):
                client.attach(sid=session.sid)

    def test_running_sessions_survive_the_sweep(self):
        design = repro.compile(Counter())
        with DebugHub(design, idle_ttl=0.01) as hub:
            ds = hub.attach()
            ds.last_used = 0.0  # ancient, but...
            ds.session._state = "running"  # ...busy: never evicted
            assert hub.evict_idle() == []
            ds.session._state = "idle"
            assert hub.evict_idle() == [ds.sid]
            assert hub.session_count == 0

    def test_evict_without_ttl_is_a_noop(self):
        design = repro.compile(Counter())
        with DebugHub(design) as hub:
            hub.attach()
            assert hub.evict_idle() == []
            assert hub.session_count == 1


class TestLintGate:
    def test_strict_defaults_to_error_at_the_hub(self):
        # A standalone Simulator defaults the gate off; a design served
        # to many engineers hardens to "error" unless told otherwise.
        design = repro.compile(Loopy())
        with pytest.raises(LintError) as exc_info:
            DebugHub(design)
        assert any(d.rule == "comb-cycle" for d in exc_info.value.diagnostics)

    def test_explicit_strict_off_wins(self):
        # With the gate explicitly off the comb loop reaches the code
        # generator (which also rejects it) — proving lint didn't run.
        from repro.sim.compiler import CombLoopError

        design = repro.compile(Loopy())
        with pytest.raises(CombLoopError):
            DebugHub(design, options=SessionOptions(strict="off"))

    def test_strict_warn_reports_without_blocking(self):
        from repro.lint import LintWarning

        design = repro.compile(Sloppy())
        with pytest.warns(LintWarning):
            hub = DebugHub(design, options=SessionOptions(strict="warn"))
        hub.close()

    def test_sessions_do_not_regate(self):
        # The hub vets the design once; per-session options carry
        # strict="off" so every attach skips the (already-paid) gate.
        design = repro.compile(Counter())
        with DebugHub(design, options=SessionOptions(strict="error")) as hub:
            assert hub.options.strict == "off"
            hub.attach()


class TestShardEndpoint:
    def test_sweep_through_a_hub_session(self):
        design, hub, host, port = _serve(Accumulator)
        _f, line = line_of(design, "acc")
        with hub, HubClient(host, port) as client:
            session = client.attach()
            with pytest.raises(SessionError, match="no breakpoints"):
                session.shard_sweep(shards=2, cycles=20)
            session.add_breakpoint("helpers.py", line)
            report = session.shard_sweep(shards=2, cycles=20)
            assert report["ok"] is True
            assert report["shards"] == 2
            assert "2 shard(s)" in report["summary"]


class TestObservability:
    def test_hub_metrics(self):
        design, hub, host, port = _serve(obs="metrics")
        with hub, HubClient(host, port) as client:
            session = client.attach(seed=1)
            session.reset(1)
            stop = session.run(25)
            assert stop.reason == "done"
            session.detach()
            m = hub.obs.metrics
            assert m.counter("hub_attaches_total").value == 1
            assert m.gauge("hub_sessions_active").value == 0
            assert m.histogram("hub_attach_seconds").count == 1
            assert m.counter("hub_requests_total").value >= 4
            assert m.counter("hub_session_cycles_total").value >= 25
