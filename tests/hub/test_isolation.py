"""Session isolation: concurrent hub sessions share one compiled design
but nothing mutable — each is bit-identical to a standalone run."""

from concurrent.futures import ThreadPoolExecutor

import repro
from repro.hub import DebugHub, HubClient
from repro.shard.spec import ShardSpec
from repro.shard.worker import make_stimulus
from repro.sim import Simulator
from tests.helpers import Accumulator, line_of

_CYCLES = 40


def _standalone_digest(design, compiled, seed: int) -> str:
    """The seeded-stimulus contract, run on a private Simulator."""
    sim = Simulator(design.low, compiled=compiled)
    stim = make_stimulus(sim, ShardSpec(seed, seed=seed, cycles=0))
    sim.reset(1)
    sim.run_cycles(_CYCLES, stimulus=stim)
    return sim.state_digest()


def test_disjoint_breakpoints_and_digest_parity():
    design = repro.compile(Accumulator())
    _f, line = line_of(design, "acc")
    hub = DebugHub(design)
    host, port = hub.serve_background()
    try:
        with HubClient(host, port) as ca, HubClient(host, port) as cb:
            a = ca.attach(seed=3, name="a")
            b = cb.attach(seed=4, name="b")

            # Disjoint breakpoints: a's insertion is invisible to b.
            a.add_breakpoint("helpers.py", line)
            assert len(a.breakpoints()) == 1
            assert b.breakpoints() == []

            a.reset(1)
            b.reset(1)

            # Run both concurrently: b straight to completion while a
            # stops at every enabled hit of its breakpoint.
            with ThreadPoolExecutor(max_workers=2) as pool:
                fut_a = pool.submit(a.run, _CYCLES)
                stop_b = b.run(_CYCLES)
                stop_a = fut_a.result(timeout=60)
            assert stop_b.reason == "done"
            assert stop_a.reason == "breakpoint"

            # Continue a through all its stops — every stop/resume must
            # leave the state exactly where an uninterrupted run lands.
            hits = 1
            while stop_a.stopped:
                stop_a = a.cont()
                hits += 1
            assert stop_a.reason == "done"
            assert hits > 1  # the when-gate actually fired repeatedly

            expected_a = _standalone_digest(design, hub.compiled, 3)
            expected_b = _standalone_digest(design, hub.compiled, 4)
            assert a.state_digest() == expected_a
            assert b.state_digest() == expected_b
            assert expected_a != expected_b  # distinct seeds, distinct state
    finally:
        hub.close()


def test_in_process_sessions_do_not_share_values():
    # Same isolation property without the wire: two DebugSessions over
    # one DebugHub poke different values into the same input.
    design = repro.compile(Accumulator())
    with DebugHub(design) as hub:
        s1 = hub.attach().session
        s2 = hub.attach().session
        s1.poke("d", 7)
        s2.poke("d", 9)
        assert s1.peek("d") == 7
        assert s2.peek("d") == 9
        s1.poke("en", 1)
        s1.reset(1)
        run = s1.run(3)
        assert run.reason == "done"
        # s2 never ran: its clock and accumulator are untouched.
        assert s2.get_time() == 0
        assert s2.peek("acc") == 0
        assert s1.peek("acc") == 7 * 3
