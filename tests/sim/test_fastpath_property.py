"""Property tests pinning the fast paths to the reference semantics.

Three independently-optimized layers must stay bit-identical to their
reference counterparts:

* dirty-set incremental ``comb`` (``Simulator(fast=True)``) vs. the full
  monolithic ``comb`` (``fast=False``) under random pokes/steps/rewinds;
* exec-compiled breakpoint conditions vs. the tree-walking interpreter,
  both as raw expressions and through the runtime's hit sequences;
* delta snapshots: ``set_time`` must reproduce exactly the state that was
  live when the target cycle executed, including after rewind + re-poke.
"""

from __future__ import annotations

import random

import pytest

import repro
import repro.hgf as hgf
from repro.core import CONTINUE, Runtime, expr_eval
from repro.sim import Simulator
from tests.helpers import Accumulator, AluLike, Counter, SumLoop, TwoLeaves, line_of, make_runtime


class MemMixer(hgf.Module):
    """Small memory-backed design so the property run covers mem deltas."""

    def __init__(self):
        super().__init__()
        self.wen = self.input("wen", 1)
        self.waddr = self.input("waddr", 3)
        self.wdata = self.input("wdata", 8)
        self.raddr = self.input("raddr", 3)
        self.o = self.output("o", 8)
        mem = self.mem("m", 8, 8)
        cnt = self.reg("cnt", 8, init=0)
        cnt <<= (cnt + 1)[7:0]
        with self.when(self.wen == 1):
            mem.write(self.waddr, (self.wdata ^ cnt)[7:0], self.lit(1, 1))
        self.o <<= (mem[self.raddr] + cnt)[7:0]


MODULES = [Counter, Accumulator, AluLike, SumLoop, TwoLeaves, MemMixer]


def _state(sim):
    sim.flush()  # pokes settle lazily; reading `values` raw needs a flush
    return (list(sim.values), [list(m) for m in sim.mems], sim.get_time())


def _poke_targets(sim):
    return sorted(n for n in sim.design.top_inputs if n != "clock")


@pytest.mark.parametrize("mod_cls", MODULES)
@pytest.mark.parametrize("seed", [0, 1])
def test_fast_path_matches_reference(mod_cls, seed):
    """Random pokes/steps/rewinds: fast and reference sims stay in
    lockstep, signal-for-signal and memory-word-for-memory-word."""
    d = repro.compile(mod_cls())
    fast = Simulator(d.low, snapshots=16, fast=True)
    ref = Simulator(d.low, snapshots=16, fast=False)
    rng = random.Random(seed)
    inputs = _poke_targets(fast)

    for sim in (fast, ref):
        sim.reset()
    assert _state(fast) == _state(ref)

    for _ in range(120):
        r = rng.random()
        if r < 0.55 and inputs:
            name = rng.choice(inputs)
            width = fast.design.signals[fast.design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            fast.poke(name, value)
            ref.poke(name, value)
        elif r < 0.85:
            cycles = rng.randint(1, 3)
            fast.step(cycles)
            ref.step(cycles)
        else:
            times = fast.timeline.times()
            if times:
                t = rng.choice(times)
                fast.set_time(t)
                ref.set_time(t)
        assert _state(fast) == _state(ref)


@pytest.mark.parametrize("mod_cls", [Counter, MemMixer])
def test_delta_snapshots_restore_recorded_state(mod_cls):
    """set_time reproduces the exact live state each snapshot cycle saw,
    including after a rewind followed by divergent re-execution."""
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=32)
    rng = random.Random(7)
    inputs = _poke_targets(sim)
    sim.reset()

    gold: dict[int, tuple] = {}
    for _ in range(40):
        for name in inputs:
            width = sim.design.signals[sim.design.top_inputs[name]].width
            sim.poke(name, rng.randrange(1 << width))
        # State right before step() is what the snapshot at the current
        # time must capture.
        sim.flush()
        gold[sim.get_time()] = (list(sim.values), [list(m) for m in sim.mems])
        sim.step(1)

    for t in reversed(sim.timeline.times()):
        sim.set_time(t)
        vals, mems = gold[t]
        assert sim.get_time() == t
        assert list(sim.values) == vals
        assert [list(m) for m in sim.mems] == mems

    # Rewind, poke differently, re-execute: re-taken snapshots must
    # reflect the new run (the full-copy reference overwrote per-time
    # entries; the delta ring must behave identically).
    sim2 = Simulator(d.low, snapshots=32)
    sim2.reset()
    for name in inputs:
        sim2.poke(name, 1)
    sim2.step(10)
    sim2.set_time(5)
    if inputs:
        sim2.poke(inputs[0], 0)
    sim2.flush()
    expected = (list(sim2.values), [list(m) for m in sim2.mems])
    sim2.step(3)
    sim2.set_time(5)
    assert (list(sim2.values), [list(m) for m in sim2.mems]) == expected


def test_set_time_repeat_and_forward_jump():
    """Retained snapshots survive a rewind: repeating set_time and jumping
    forward to a later retained time both work (the full-copy reference
    kept entries until re-execution overwrote them)."""
    d = repro.compile(Counter())
    sim = Simulator(d.low, snapshots=32)
    sim.reset()
    sim.poke("en", 1)
    sim.step(10)
    sim.set_time(5)
    out_at_5 = sim.peek("out")
    sim.set_time(5)  # repeat: entry must still be retained
    assert sim.peek("out") == out_at_5
    sim.set_time(8)  # forward jump into still-valid history
    assert sim.peek("out") == out_at_5 + 3
    sim.set_time(5)
    sim.step(2)  # re-execution drops the stale suffix lazily
    assert sim.peek("out") == out_at_5 + 2
    assert sim.get_time() == 7


def test_callback_rewind_keeps_mem_journal_live():
    """A clock callback calling set_time mid-step() must not orphan the
    memory-write journal: writes after the rewind still reach later
    delta snapshots."""
    d = repro.compile(MemMixer())
    sim = Simulator(d.low, snapshots=32)
    sim.reset()
    sim.poke("wen", 1)
    sim.poke("waddr", 0)
    sim.poke("wdata", 7)

    fired = []

    def rewind_once(s):
        if s.get_time() == 6 and not fired:
            fired.append(True)
            s.set_time(4)

    sim.add_clock_callback(rewind_once)
    sim.step(8)  # runs 1..6, rewinds to 4, continues to completion
    assert fired
    gold = (list(sim.values), [list(m) for m in sim.mems])
    t = sim.get_time()
    sim.step(3)
    sim.set_time(t)  # restores across the rewound region's mem writes
    assert (list(sim.values), [list(m) for m in sim.mems]) == gold


@pytest.mark.parametrize("mod_cls", MODULES)
@pytest.mark.parametrize("seed", [0, 1])
def test_batched_multi_poke_matches_sequential_and_reference(mod_cls, seed):
    """Driving N inputs per round — batched (one merged cone settle),
    sequential (flush after every poke), and reference (full comb) — must
    be indistinguishable at every observation point."""
    d = repro.compile(mod_cls())
    batched = Simulator(d.low, fast=True)
    sequential = Simulator(d.low, fast=True)
    ref = Simulator(d.low, fast=False)
    sims = (batched, sequential, ref)
    rng = random.Random(seed)
    inputs = _poke_targets(batched)
    for sim in sims:
        sim.reset()

    for _ in range(60):
        k = rng.randint(0, max(1, len(inputs)))
        pokes = [
            (name, rng.randrange(1 << batched.design.signals[
                batched.design.top_inputs[name]].width))
            for name in rng.sample(inputs, min(k, len(inputs)))
        ]
        with batched.batch():
            for name, value in pokes:
                batched.poke(name, value)
        for name, value in pokes:
            sequential.poke(name, value)
            sequential.flush()
        for name, value in pokes:
            ref.poke(name, value)
        assert _state(batched) == _state(sequential) == _state(ref)
        if rng.random() < 0.5:
            cycles = rng.randint(1, 2)
            for sim in sims:
                sim.step(cycles)
            assert _state(batched) == _state(sequential) == _state(ref)


class QuietLanes(hgf.Module):
    """Several enable-gated lanes: with enables low, most cycles change no
    register at all — the activity-tracked tick must skip their cones yet
    stay bit-identical to the full reference."""

    def __init__(self, n: int = 4):
        super().__init__()
        self.en = self.input("en", n)
        self.d = self.input("d", 8)
        self.o = self.output("o", 8)
        out = self.lit(0, 8)
        for i in range(n):
            r = self.reg(f"r{i}", 8, init=0)
            with self.when(self.en[i:i] == 1):
                r <<= (r + self.d + self.lit(i, 8))[7:0]
            out = (out ^ r)[7:0]
        self.o <<= out


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_activity_tracked_tick_matches_full_tick(seed):
    """Quiet-cycle-dominated runs: sparse register activity (including
    cycles where nothing changes) stays lockstep with the reference."""
    d = repro.compile(QuietLanes())
    fast = Simulator(d.low, snapshots=8, fast=True)
    ref = Simulator(d.low, snapshots=8, fast=False)
    rng = random.Random(seed)
    for sim in (fast, ref):
        sim.reset()

    for _ in range(80):
        r = rng.random()
        if r < 0.3:
            # mostly-quiet enables: 0 (fully quiet) or a single lane
            en = 0 if rng.random() < 0.6 else 1 << rng.randrange(4)
            for sim in (fast, ref):
                sim.poke("en", en)
        elif r < 0.4:
            value = rng.randrange(256)
            for sim in (fast, ref):
                sim.poke("d", value)
        else:
            cycles = rng.randint(1, 5)
            for sim in (fast, ref):
                sim.step(cycles)
        assert _state(fast) == _state(ref)


@pytest.mark.parametrize("mod_cls", [Counter, MemMixer, AluLike])
def test_mask_cone_cache_saturation_fallback(monkeypatch, mod_cls):
    """With the merged-cone cache disabled, every settle takes the
    per-statement-thunk fallback — still bit-identical to the reference."""
    from repro.sim.compiler import CompiledDesign

    monkeypatch.setattr(CompiledDesign, "MASK_CONE_CAP", 0)
    d = repro.compile(mod_cls())
    fast = Simulator(d.low, snapshots=8, fast=True)
    ref = Simulator(d.low, snapshots=8, fast=False)
    assert fast.design.MASK_CONE_CAP == 0
    rng = random.Random(11)
    inputs = _poke_targets(fast)
    for sim in (fast, ref):
        sim.reset()
    for _ in range(60):
        if rng.random() < 0.5 and inputs:
            name = rng.choice(inputs)
            width = fast.design.signals[fast.design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            fast.poke(name, value)
            ref.poke(name, value)
        else:
            cycles = rng.randint(1, 3)
            fast.step(cycles)
            ref.step(cycles)
        assert _state(fast) == _state(ref)
    assert not fast.design._mask_cones  # nothing was cached


def test_watchpoints_across_set_time_rewind():
    """Watchpoint hits across a rewind are exactly the changes implied by
    re-execution: no phantom change at the restored cycle, no missed
    change afterwards."""
    from tests.helpers import make_runtime

    d = repro.compile(Counter())
    sim = Simulator(d.low, snapshots=32)
    hits = []
    rt = make_runtime(
        d, sim,
        lambda h: (hits.append((h.time, h.watch["old"], h.watch["new"])), CONTINUE)[1],
    )
    rt.attach()
    sim.reset()
    rt.add_watchpoint("count")
    sim.poke("en", 1)
    sim.step(6)
    first_run = list(hits)
    assert first_run  # sanity: the counter did change

    # Rewind and re-execute the same stimulus: the hit stream repeats the
    # re-executed suffix exactly — no phantom (old=stale-last) reports.
    # step(3) from time 3 fires clock callbacks at times 3, 4, and 5.
    sim.set_time(3)
    hits.clear()
    sim.step(3)
    assert hits == [h for h in first_run if 3 < h[0] <= 5]

    # Rewind then diverge (freeze the counter): no changes => no hits.
    # Without re-priming, `last` would be stale and fire a phantom.
    sim.set_time(3)
    hits.clear()
    sim.poke("en", 0)
    sim.step(3)
    assert hits == []


def test_watchpoint_rewind_via_reverse_continue():
    """The runtime's own reverse execution path (_reverse_time -> set_time)
    re-primes watchpoints through the set-time callback."""
    from repro.core import REVERSE_CONTINUE
    from tests.helpers import line_of, make_runtime

    d = repro.compile(Accumulator())
    sim = Simulator(d.low, snapshots=32)
    seen = []
    commands = iter([REVERSE_CONTINUE] + [CONTINUE] * 50)

    def on_hit(h):
        if h.watch is not None:
            seen.append((h.time, h.watch["old"], h.watch["new"]))
            return CONTINUE
        return next(commands)

    rt = make_runtime(d, sim, on_hit)
    rt.attach()
    sim.reset()
    rt.add_watchpoint("acc")
    _f, line = line_of(d, "acc")
    rt.add_breakpoint("helpers.py", line, condition="acc == 30")
    sim.poke("en", 1)
    sim.poke("d", 10)
    sim.step(8)
    # Every reported transition is a genuine +10 accumulation; the rewind
    # must not inject a phantom (e.g. old=30 -> new=10) observation.
    for _t, old, new in seen:
        assert new == old + 10, f"phantom watch report {old} -> {new}"


@pytest.mark.parametrize("mod_cls", MODULES)
def test_levelized_schedule_invariants(mod_cls):
    """The levelized order is a valid topo order: every combinational
    dependency has a strictly smaller level, and level_blocks partition
    the schedule into contiguous same-level runs."""
    design = repro.compile(mod_cls())
    cd = Simulator(design.low).design
    pairs = zip(cd.order_targets, cd.order_level, strict=False)
    level_of = {t: lvl for t, lvl in pairs}
    for pos, deps in enumerate(cd.order_deps):
        for dep in deps:
            if dep in level_of and dep != cd.order_targets[pos]:
                assert level_of[dep] < cd.order_level[pos]
    flat = [p for start, end in cd.level_blocks for p in range(start, end)]
    assert flat == list(range(len(cd.order_targets)))
    for start, end in cd.level_blocks:
        assert len({cd.order_level[p] for p in range(start, end)}) <= 1


def _random_expr(rng, names, depth=0):
    r = rng.random()
    if depth > 3 or r < 0.3:
        if rng.random() < 0.5:
            return str(rng.randrange(0, 64))
        return rng.choice(names)
    if r < 0.45:
        return f"{rng.choice(['!', '~', '-'])}({_random_expr(rng, names, depth + 1)})"
    if r < 0.55:
        return (
            f"({_random_expr(rng, names, depth + 1)}) ? "
            f"({_random_expr(rng, names, depth + 1)}) : "
            f"({_random_expr(rng, names, depth + 1)})"
        )
    op = rng.choice(
        ["||", "&&", "|", "^", "&", "==", "!=", "<", "<=", ">", ">=",
         "<<", ">>", "+", "-", "*", "/", "%"]
    )
    return (
        f"({_random_expr(rng, names, depth + 1)}) {op} "
        f"({_random_expr(rng, names, depth + 1)})"
    )


def test_compiled_expressions_match_interpreter():
    """Random expressions over random environments: the exec-compiled
    closure and the tree-walking interpreter agree on every value."""
    rng = random.Random(42)
    names = ["a", "b", "io.x", "vec[3]"]
    for _ in range(300):
        src = _random_expr(rng, names)
        ast = expr_eval.parse(src)
        env = {n: rng.randrange(-16, 64) for n in names}

        def resolve(name):
            return env[name]

        def bind(name):
            return f"_v[{names.index(name)}]"

        values = [env[n] for n in names]
        try:
            want = expr_eval.evaluate(ast, resolve)
        except ValueError:
            # negative shift counts raise identically in both paths
            with pytest.raises(ValueError):
                expr_eval.compile_fn(ast, bind)(values)
            continue
        got = expr_eval.compile_fn(ast, bind)(values)
        assert got == want, f"{src!r} with {env}: compiled {got} != {want}"


@pytest.mark.parametrize("condition", [None, "acc >= 30", "acc % 3 == 0 && en",
                                       "width == 16 || acc < 5"])
def test_runtime_compiled_hits_match_interpreter(condition):
    """The full runtime stack: compiled group evaluation produces the same
    hit sequence, hit counts, and frame values as the interpreter."""
    seqs = []
    for compiled in (True, False):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low, snapshots=16, fast=compiled)
        hits = []

        def on_hit(h):
            hits.append((h.time, h.line, [f.var("acc") for f in h.frames]))
            return CONTINUE

        from repro.symtable import SQLiteSymbolTable, write_symbol_table

        st = SQLiteSymbolTable(write_symbol_table(d))
        rt = Runtime(sim, st, on_hit, compile_conditions=compiled)
        rt.attach()
        _f, line = line_of(d, "acc")
        bps = rt.add_breakpoint("helpers.py", line, condition=condition)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 10)
        sim.step(6)
        sim.poke("en", 0)
        sim.step(2)
        seqs.append((hits, [bp.hit_count for bp in bps], rt.stats_bp_evals))
    assert seqs[0] == seqs[1]


def test_runtime_unknown_condition_name_matches_interpreter():
    """Unresolvable user conditions warn once and never hit, identically."""
    outcomes = []
    for compiled in (True, False):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt._compile_conditions = compiled
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line, condition="no_such_name > 0")
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        outcomes.append((hits, len(rt.warnings) > 0))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == []  # failing condition suppresses hits
    assert outcomes[0][1]


def test_ignore_count_matches_interpreter():
    """gdb-style ignore counts decay identically under batched eval."""
    results = []
    for compiled in (True, False):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt._compile_conditions = compiled
        rt.attach()
        _f, line = line_of(d, "acc")
        bps = rt.add_breakpoint("helpers.py", line)
        bps[0].ignore_count = 2
        sim.reset()
        sim.poke("en", 1)
        sim.step(5)
        results.append((hits, bps[0].hit_count, bps[0].ignore_count))
    assert results[0] == results[1]
    assert len(results[0][0]) == 3  # 5 condition passes - 2 ignored
