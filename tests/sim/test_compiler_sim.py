"""Tests for the simulator's codegen: semantics vs the reference
interpreter, comb-loop detection, and property-based op equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.hgf as hgf
from repro.ir import expr as E
from repro.ir.eval import eval_prim, mask
from repro.ir.types import SIntType, UIntType
from repro.sim import CombLoopError, Simulator
from repro.sim.compiler import compile_design


class TestCombLoop:
    def test_loop_detected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                a = self.wire("a", 8)
                b = self.wire("b", 8)
                a <<= (b + 1)[7:0]
                b <<= (a + 1)[7:0]
                self.o <<= a

        d = repro.compile(M())
        with pytest.raises(CombLoopError, match="combinational loop"):
            compile_design(d.low)

    def test_register_breaks_loop(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                r = self.reg("r", 8, init=0)
                r <<= (r + 1)[7:0]  # register self-feedback is fine
                self.o <<= r

        d = repro.compile(M())
        compile_design(d.low)  # should not raise


_OP_CASES = [
    ("add", 2), ("sub", 2), ("mul", 2), ("div", 2), ("rem", 2),
    ("lt", 2), ("leq", 2), ("gt", 2), ("geq", 2), ("eq", 2), ("neq", 2),
    ("and", 2), ("or", 2), ("xor", 2), ("cat", 2),
    ("dshl", 2), ("dshr", 2),
    ("not", 1), ("neg", 1), ("andr", 1), ("orr", 1), ("xorr", 1),
]


def _build_op_module(op: str, nargs: int, signed: bool):
    """A module computing one op over its inputs, output padded wide."""

    class OpMod(hgf.Module):
        def __init__(self):
            super().__init__()
            t = hgf.SInt(8) if signed else hgf.UInt(8)
            self.a = self.input("a", typ=t)
            self.b = self.input("b", typ=t)
            self.o = self.output("o", 32)
            import repro.ir.expr as EE

            ctor = {
                "add": EE.add, "sub": EE.sub, "mul": EE.mul, "div": EE.div,
                "rem": EE.rem, "lt": EE.lt, "leq": EE.leq, "gt": EE.gt,
                "geq": EE.geq, "eq": EE.eq, "neq": EE.neq, "and": EE.and_,
                "or": EE.or_, "xor": EE.xor, "cat": EE.cat, "dshl": EE.dshl,
                "dshr": EE.dshr, "not": EE.not_, "neg": EE.neg,
                "andr": EE.andr, "orr": EE.orr, "xorr": EE.xorr,
            }[op]
            args = (self.a.expr, self.b.expr)[:nargs]
            result = hgf.Value(ctor(*args), self._mb)
            self.o <<= result.as_uint().pad(32) if result.width < 32 else result.as_uint()[31:0]

    return OpMod()


class TestOpEquivalence:
    """The compiled simulator must agree with eval_prim on every op."""

    @pytest.mark.parametrize("op,nargs", _OP_CASES)
    @pytest.mark.parametrize("signed", [False, True])
    def test_compiled_matches_reference(self, op, nargs, signed):
        if signed and op == "cat":
            pytest.skip("cat result is unsigned; covered by unsigned case")
        mod = _build_op_module(op, nargs, signed)
        d = repro.compile(mod, debug=True)  # keep everything; no folding
        sim = Simulator(d.low)
        sim.reset()
        t = SIntType(8) if signed else UIntType(8)
        import repro.ir.expr as EE

        ctor = {
            "add": EE.add, "sub": EE.sub, "mul": EE.mul, "div": EE.div,
            "rem": EE.rem, "lt": EE.lt, "leq": EE.leq, "gt": EE.gt,
            "geq": EE.geq, "eq": EE.eq, "neq": EE.neq, "and": EE.and_,
            "or": EE.or_, "xor": EE.xor, "cat": EE.cat, "dshl": EE.dshl,
            "dshr": EE.dshr, "not": EE.not_, "neg": EE.neg,
            "andr": EE.andr, "orr": EE.orr, "xorr": EE.xorr,
        }[op]
        ref_expr = ctor(*(E.Ref("a", t), E.Ref("b", t))[:nargs])
        for a, b in [(0, 0), (1, 2), (255, 1), (128, 128), (200, 0), (3, 255), (85, 170)]:
            sim.poke("a", a)
            sim.poke("b", b)
            raw_args = (mask(a, 8), mask(b, 8))[:nargs]
            expected = eval_prim(
                ref_expr.op, ref_expr.params, raw_args, (t,) * nargs, ref_expr.typ
            )
            # output is the op result as_uint, zero-padded/truncated to 32
            w = ref_expr.typ.bit_width()
            expected32 = expected & 0xFFFFFFFF if w >= 32 else expected
            got = sim.peek("o")
            assert got == expected32, f"{op}(a={a}, b={b}) signed={signed}"


class TestRandomizedDatapath:
    @given(
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        c=st.integers(0, 255),
    )
    @settings(max_examples=40, deadline=None)
    def test_expression_tree(self, a, b, c):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.b = self.input("b", 8)
                self.c = self.input("c", 8)
                self.o = self.output("o", 16)
                x = (self.a + self.b) * 3
                y = hgf.mux(self.c[0], x[9:0], (self.a ^ self.c).pad(10))
                self.o <<= (y + (self.b >> 2)).pad(16)[15:0]

        key = "tree"
        sim = _CACHED.get(key)
        if sim is None:
            d = repro.compile(M())
            sim = Simulator(d.low)
            sim.reset()
            _CACHED[key] = sim
        sim.poke("a", a)
        sim.poke("b", b)
        sim.poke("c", c)
        x = ((a + b) * 3) & 0x3FF
        y = x if c & 1 else (a ^ c)
        expected = (y + (b >> 2)) & 0xFFFF
        assert sim.peek("o") == expected


_CACHED: dict = {}


class TestGeneratedSource:
    def test_sources_exposed(self):
        from tests.helpers import Counter

        d = repro.compile(Counter())
        cd = compile_design(d.low)
        assert "def comb(v, w, m):" in cd.comb_source
        assert "def tick(v, w, m, time):" in cd.tick_source

    def test_instance_port_wiring(self):
        from tests.helpers import TwoLeaves

        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("x", 4)
        # a.i = 4 -> a.o = 3; b.i = 4^5=1 -> b.o = 1
        assert sim.get_value("TwoLeaves.a.i") == 4
        assert sim.get_value("TwoLeaves.b.i") == 1
        assert sim.peek("y") == (3 << 4) | 1
