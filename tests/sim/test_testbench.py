"""Tests for the testbench driver/monitor layer (the 'UVM' stand-in the
debugger stays orthogonal to)."""

import pytest

import repro
from repro.sim import Driver, Monitor, Simulator, Testbench
from tests.helpers import Accumulator, Counter


@pytest.fixture()
def acc_sim():
    d = repro.compile(Accumulator())
    sim = Simulator(d.low)
    sim.reset()
    return sim


class TestDriver:
    def test_transactions_applied_in_order(self, acc_sim):
        drv = Driver(acc_sim)
        for v in (3, 4, 5):
            drv.add(en=1, d=v)
        drv.add(en=0)
        while drv.drive_one():
            pass
        assert acc_sim.peek("total") == 12

    def test_drive_one_returns_queue_state(self, acc_sim):
        drv = Driver(acc_sim)
        drv.add(en=0)
        drv.add(en=0)
        assert drv.drive_one() is True
        assert drv.drive_one() is False

    def test_empty_queue_still_steps(self, acc_sim):
        drv = Driver(acc_sim)
        t0 = acc_sim.get_time()
        drv.drive_one()
        assert acc_sim.get_time() == t0 + 1


class TestMonitor:
    def test_samples_every_cycle(self, acc_sim):
        mon = Monitor(acc_sim, ["total", "en"])
        acc_sim.poke("en", 1)
        acc_sim.poke("d", 2)
        acc_sim.step(3)
        assert len(mon.samples) == 3
        assert [s["total"] for s in mon.samples] == [0, 2, 4]

    def test_detach_stops_sampling(self, acc_sim):
        mon = Monitor(acc_sim, ["total"])
        acc_sim.step(2)
        mon.detach()
        acc_sim.step(2)
        assert len(mon.samples) == 2


class TestTestbench:
    def test_run_drives_and_monitors(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        sim.reset()
        tb = Testbench(sim, watch=["out"])
        for _ in range(5):
            tb.driver.add(en=1)
        tb.run()
        assert sim.peek("out") == 5
        assert [s["out"] for s in tb.monitor.samples] == [0, 1, 2, 3, 4]

    def test_max_cycles_bound(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        sim.reset()
        tb = Testbench(sim)
        for _ in range(100):
            tb.driver.add(en=1)
        tb.run(max_cycles=10)
        assert sim.peek("out") == 10

    def test_orthogonal_to_debugger(self):
        """The paper's architectural point: testing framework and debugger
        attach to the same simulation without interfering."""
        from repro.core import CONTINUE
        from tests.helpers import line_of, make_runtime

        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        sim.reset()
        hits = []
        rt = make_runtime(d, sim, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)

        tb = Testbench(sim, watch=["total"])
        for v in (1, 2, 3):
            tb.driver.add(en=1, d=v)
        tb.run()
        assert sim.peek("total") == 6          # testbench outcome unchanged
        assert len(hits) == 3                   # debugger saw every cycle
        assert len(tb.monitor.samples) == 3     # monitor saw every cycle
