"""Simulator engine tests: stepping, reset, callbacks, snapshots."""

import pytest

import repro
import repro.hgf as hgf
from repro.sim import Simulator, SimulatorError
from tests.helpers import Accumulator, Counter


@pytest.fixture()
def counter_sim():
    d = repro.compile(Counter())
    sim = Simulator(d.low, snapshots=64)
    sim.reset()
    return sim


class TestBasics:
    def test_reset_initializes(self, counter_sim):
        assert counter_sim.peek("out") == 0

    def test_counting(self, counter_sim):
        counter_sim.poke("en", 1)
        counter_sim.step(5)
        assert counter_sim.peek("out") == 5

    def test_enable_gates(self, counter_sim):
        counter_sim.poke("en", 1)
        counter_sim.step(3)
        counter_sim.poke("en", 0)
        counter_sim.step(3)
        assert counter_sim.peek("out") == 3

    def test_wrap(self):
        d = repro.compile(Counter(width=2))
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("en", 1)
        sim.step(3)
        assert sim.peek("wrapped") == 1
        sim.step()
        assert sim.peek("out") == 0

    def test_poke_masks(self, counter_sim):
        counter_sim.poke("en", 0xFF)  # 1-bit port
        assert counter_sim.peek("en") == 1

    def test_unknown_signal(self, counter_sim):
        with pytest.raises(SimulatorError):
            counter_sim.peek("bogus")
        with pytest.raises(SimulatorError):
            counter_sim.poke("bogus", 1)

    def test_peek_by_full_path(self, counter_sim):
        assert counter_sim.peek("Counter.out") == counter_sim.peek("out")

    def test_time_advances(self, counter_sim):
        t0 = counter_sim.get_time()
        counter_sim.step(4)
        assert counter_sim.get_time() == t0 + 4


class TestCallbacks:
    def test_callback_sees_stable_preedge_values(self, counter_sim):
        seen = []
        counter_sim.add_clock_callback(
            lambda s: seen.append((s.get_time(), s.get_value("Counter.out")))
        )
        counter_sim.poke("en", 1)
        counter_sim.step(3)
        times = [t for t, _ in seen]
        values = [v for _, v in seen]
        assert values == [0, 1, 2]  # pre-edge values
        assert times == sorted(times)

    def test_callback_removal(self, counter_sim):
        calls = []
        cb = counter_sim.add_clock_callback(lambda s: calls.append(1))
        counter_sim.step(2)
        counter_sim.remove_clock_callback(cb)
        counter_sim.step(2)
        assert len(calls) == 2

    def test_callback_can_poke(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        sim.reset()

        def force(s):
            s.set_value("Accumulator.d", 9)

        sim.add_clock_callback(force)
        sim.poke("en", 1)
        sim.poke("d", 1)
        sim.step(2)
        assert sim.peek("total") == 18  # callback overrode the poke


class TestSetValueSetTime:
    def test_set_value_reflects_combinationally(self, counter_sim):
        counter_sim.set_value("Counter.en", 1)
        counter_sim.step()
        assert counter_sim.peek("out") == 1

    def test_set_time_restores_state(self, counter_sim):
        # After reset the counter sits at time 1 with out == 0, so the
        # observable invariant is out == time - 1 while enabled.
        counter_sim.poke("en", 1)
        counter_sim.step(10)
        assert counter_sim.peek("out") == 10
        assert counter_sim.get_time() == 11
        counter_sim.set_time(5)
        assert counter_sim.get_time() == 5
        assert counter_sim.peek("out") == 4

    def test_resume_after_rewind(self, counter_sim):
        counter_sim.poke("en", 1)
        counter_sim.step(10)
        counter_sim.set_time(5)
        counter_sim.step(2)
        assert counter_sim.peek("out") == 6
        assert counter_sim.get_time() == 7

    def test_set_time_without_snapshots_rejected(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        sim.reset()
        assert not sim.can_set_time
        with pytest.raises(SimulatorError):
            sim.set_time(0)

    def test_snapshot_ring_bounded(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low, snapshots=4)
        sim.reset()
        sim.poke("en", 1)
        sim.step(20)
        with pytest.raises(SimulatorError):
            sim.set_time(2)  # evicted
        sim.set_time(sim.get_time() - 2)  # recent one works

    def test_memory_state_snapshot(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.wen = self.input("wen", 1)
                self.o = self.output("o", 8)
                mem = self.mem("m", 8, 4)
                cnt = self.reg("cnt", 8, init=0)
                cnt <<= (cnt + 1)[7:0]
                with self.when(self.wen == 1):
                    mem.write(self.lit(0, 2), cnt, self.lit(1, 1))
                self.o <<= mem[0]

        d = repro.compile(M())
        sim = Simulator(d.low, snapshots=64)
        sim.reset()
        sim.poke("wen", 1)
        sim.step(4)  # time is now 5
        assert sim.get_time() == 5
        value_at_5 = sim.peek("o")
        sim.step(3)
        assert sim.peek("o") != value_at_5
        sim.set_time(5)
        assert sim.peek("o") == value_at_5


class TestHierarchyInterface:
    def test_hierarchy_walk(self):
        from tests.helpers import TwoLeaves

        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        paths = [n.path for n in sim.hierarchy().walk()]
        assert paths == ["TwoLeaves", "TwoLeaves.a", "TwoLeaves.b"]

    def test_hierarchy_signals(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        root = sim.hierarchy()
        names = [s.name for s in root.signals]
        assert "out" in names and "count" in names and "clock" in names

    def test_find(self):
        from tests.helpers import TwoLeaves

        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        node = sim.hierarchy().find("TwoLeaves.b")
        assert node is not None and node.module in ("AluLeaf", "AluLeaf_1")

    def test_clock_name(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        assert sim.clock_name() == "Counter.clock"

    def test_top_path_prefix(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low, top_path="TB.dut")
        assert sim.clock_name() == "TB.dut.clock"
        sim.reset()
        sim.poke("en", 1)
        sim.step(2)
        assert sim.get_value("TB.dut.out") == 2


class TestRunAndStop:
    def test_run_until_stop(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                r = self.reg("r", 8, init=0)
                r <<= (r + 1)[7:0]
                self.o = self.output("o", 8)
                self.o <<= r
                self.stop(r == 9, 0)

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        assert sim.run(1000) == 0
        assert sim.finished
        assert sim.exit_code == 0

    def test_run_timeout_returns_none(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low)
        sim.reset()
        assert sim.run(100) is None
        assert not sim.finished

    def test_step_after_finish_is_noop(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 1)
                self.o <<= 0
                self.stop(self.lit(1, 1) == 1, 7)

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        t = sim.get_time()
        sim.step(5)
        assert sim.get_time() <= t + 5
        assert sim.exit_code == 7
