"""One time-travel test suite, two backends.

The timeline refactor's contract is that the live simulator and the VCD
replay engine expose *the same* time-travel API — ``set_time`` through
the shared interface template, a ``timeline`` view, windowed ``history``
queries, set-time callbacks — with identical observable behavior.  Every
test in ``TestTimeTravelSuite`` runs against both backends via the
parametrized fixture; divergence between the two is a regression in the
unification, not in either backend.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import CONTINUE, REVERSE_STEP, Runtime
from repro.sim import Simulator, TimelineError
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from repro.trace import ReplayEngine, VcdWriter
from tests.helpers import Counter

CYCLES = 12


def _run_stimulus(sim):
    """The canonical run both backends must agree on: reset, count 8
    enabled cycles, 3 disabled ones."""
    sim.reset()
    sim.poke("en", 1)
    sim.step(8)
    sim.poke("en", 0)
    sim.step(3)


@pytest.fixture(params=["live", "replay"])
def backend(request, tmp_path):
    """The same run, seen live (snapshots) or replayed from its trace.

    Both are driven to their final cycle before the test body runs, so
    time travel is purely about going *back*.
    """
    d = repro.compile(Counter())
    if request.param == "live":
        sim = Simulator(d.low, snapshots=64, snapshot_codec="rle",
                        keyframe_every=4)
        _run_stimulus(sim)
        return sim
    path = str(tmp_path / "run.vcd")
    w = VcdWriter(path)
    live = Simulator(d.low, trace=w)
    _run_stimulus(live)
    w.close()
    rp = ReplayEngine.from_file(path)
    rp.run()
    return rp


def _out_at(t: int) -> int:
    """Counter.out at cycle t for the canonical run (reset at cycle 0,
    counting from cycle 1, frozen from cycle 9)."""
    return min(max(t - 1, 0), 8)


class TestTimeTravelSuite:
    def test_can_set_time_and_timeline_present(self, backend):
        assert backend.can_set_time
        assert backend.timeline is not None
        assert backend.timeline.window() is not None

    def test_set_time_restores_recorded_values(self, backend):
        for t in (3, 9, 5):
            backend.set_time(t)
            assert backend.get_time() == t
            assert backend.get_value("Counter.out") == _out_at(t)

    def test_window_covers_whole_run(self, backend):
        lo, hi = backend.timeline.window()
        assert lo == 0
        assert hi >= CYCLES - 1
        assert backend.timeline.times() == list(range(lo, hi + 1))

    def test_out_of_window_raises_timeline_error(self, backend):
        with pytest.raises(TimelineError):
            backend.set_time(10_000)
        with pytest.raises(ValueError):  # TimelineError is a ValueError
            backend.set_time(10_000)

    def test_prev_time_walks_backwards(self, backend):
        tl = backend.timeline
        assert tl.prev_time(5) == 4
        assert tl.prev_time(tl.window()[0]) is None

    def test_history_matches_set_time_walk(self, backend):
        series = backend.history("Counter.out")
        assert series, "history must cover the retained window"
        for t, v in series:
            assert v == _out_at(t)
        # History restores the pre-walk cursor.
        assert backend.get_time() == backend.timeline.times()[-1] or (
            backend.get_time() >= CYCLES - 1
        )

    def test_history_windowed(self, backend):
        series = backend.history("Counter.out", start=2, end=5)
        assert [t for t, _ in series] == [2, 3, 4, 5]

    def test_set_time_callbacks_fire_once_per_jump(self, backend):
        seen = []
        cb = backend.add_set_time_callback(lambda s, t: seen.append(t))
        backend.set_time(4)
        backend.set_time(7)
        assert seen == [4, 7]
        backend.remove_set_time_callback(cb)
        backend.set_time(2)
        assert seen == [4, 7]

    def test_describe_names_the_window(self, backend):
        text = backend.timeline.describe()
        assert "0.." in text


def test_live_and_replay_history_identical(tmp_path):
    """The same run queried through both backends yields byte-identical
    history series — the unified API's end-to-end check."""
    d = repro.compile(Counter())
    path = str(tmp_path / "run.vcd")
    w = VcdWriter(path)
    live = Simulator(d.low, snapshots=64, trace=w)
    _run_stimulus(live)
    w.close()
    rp = ReplayEngine.from_file(path)
    rp.run()
    for sig in ("Counter.out", "Counter.en", "Counter.wrapped"):
        live_series = live.history(sig)
        replay_series = rp.history(sig)
        # The live run may retain one extra (current, post-step) cycle
        # beyond the trace's last sampled posedge.
        assert live_series[: len(replay_series)] == replay_series


@pytest.mark.parametrize("mode", ["live", "replay"])
def test_reverse_step_through_runtime(mode, tmp_path):
    """The runtime's reverse-step path — _reverse_time over the
    timeline's prev_time — works identically on both backends."""
    d = repro.compile(Counter())
    st = SQLiteSymbolTable(write_symbol_table(d))
    if mode == "live":
        sim = Simulator(d.low, snapshots=64)
    else:
        path = str(tmp_path / "run.vcd")
        w = VcdWriter(path)
        live = Simulator(d.low, trace=w)
        _run_stimulus(live)
        w.close()
        sim = ReplayEngine.from_file(path)

    times = []
    # Run forward to the fourth hit, then reverse-step twice.
    commands = iter([CONTINUE, CONTINUE, CONTINUE, REVERSE_STEP, REVERSE_STEP])

    def on_hit(hit):
        times.append(hit.time)
        return next(commands, CONTINUE)

    rt = Runtime(sim, st, on_hit)
    rt.attach()
    _f_line = [
        e for e in d.debug_info.all_entries() if e.sink == "count"
    ][0]
    rt.add_breakpoint(_f_line.info.filename, _f_line.info.line)
    if mode == "live":
        _run_stimulus(sim)
    else:
        sim.run()
    # Four forward hits, then two reverse steps from the fourth: reverse
    # stepping is intra-cycle first, then crosses into the prior cycle,
    # so times must not increase and must strictly precede the hit the
    # reversal started from.
    assert len(times) >= 6
    assert times[4] <= times[3] and times[5] <= times[4]
    assert times[5] < times[3]
