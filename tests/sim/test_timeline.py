"""Unit tests for the ``repro.sim.timeline`` subsystem.

Covers the surfaces the integration/property suites don't pin directly:
error shapes (``TimelineError`` is both a ``SimulatorError`` and a
``ValueError`` and always names the retained window), byte-budget
retention, periodic keyframes, the memory-history cap warning, codec
selection, wire serialization, and cross-run divergence localization.
"""

from __future__ import annotations

import pytest

import repro
import repro.hgf as hgf
from repro.sim import Simulator, SimulatorError, Timeline, TimelineError
from repro.sim.store import numpy_available
from repro.sim.timeline import (
    MEM_HISTORY_WORD_CAP,
    FullTraceTimeline,
    first_timeline_divergence,
    iter_wire_states,
    make_codec,
    resolve_codec_kind,
)
from tests.helpers import Counter

BACKENDS = ["list", "array"] + (["numpy"] if numpy_available() else [])


def _counter(**kw):
    d = repro.compile(Counter())
    sim = Simulator(d.low, **kw)
    sim.reset()
    sim.poke("en", 1)
    return sim


# -- error shapes ------------------------------------------------------------


class TestErrors:
    def test_disabled_set_time_raises_value_error(self):
        sim = _counter()
        with pytest.raises(ValueError):
            sim.set_time(0)
        with pytest.raises(SimulatorError):
            sim.set_time(0)
        with pytest.raises(TimelineError, match="snapshots"):
            sim.set_time(0)

    def test_out_of_window_names_retained_window(self):
        sim = _counter(snapshots=4)
        sim.step(20)
        with pytest.raises(TimelineError, match=r"17\.\.20"):
            sim.set_time(2)
        with pytest.raises(ValueError, match="retained window"):
            sim.set_time(999)

    def test_empty_timeline_message(self):
        d = repro.compile(Counter())
        sim = Simulator(d.low, snapshots=4)  # no step yet: nothing recorded
        with pytest.raises(TimelineError, match="empty"):
            sim.set_time(0)

    def test_replay_out_of_window_is_timeline_error(self, tmp_path):
        from repro.trace import ReplayEngine, VcdWriter

        d = repro.compile(Counter())
        path = str(tmp_path / "c.vcd")
        w = VcdWriter(path)
        live = Simulator(d.low, trace=w)
        live.reset()
        live.step(5)
        w.close()
        rp = ReplayEngine.from_file(path)
        with pytest.raises(TimelineError, match="retains cycles 0"):
            rp.set_time(999)
        with pytest.raises(ValueError):
            rp.set_time(-1)

    def test_bad_construction(self):
        sim = _counter()
        with pytest.raises(SimulatorError, match="limit or a byte budget"):
            Timeline(sim.store, sim.mems, sim.design.mems)
        with pytest.raises(SimulatorError, match="must be > 0"):
            Timeline(sim.store, sim.mems, sim.design.mems, limit=-1)
        with pytest.raises(SimulatorError, match="unknown timeline codec"):
            Simulator(sim.design.circuit, snapshots=4, snapshot_codec="zip")


# -- codec selection ---------------------------------------------------------


class TestCodecSelection:
    def test_resolve_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMELINE_CODEC", raising=False)
        assert resolve_codec_kind(None) == "raw"
        assert resolve_codec_kind("rle") == "rle"
        monkeypatch.setenv("REPRO_TIMELINE_CODEC", "rle")
        assert resolve_codec_kind(None) == "rle"
        sim = _counter(snapshots=4)
        assert sim.timeline.codec.name == "rle"
        with pytest.raises(SimulatorError):
            resolve_codec_kind("gzip")

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMELINE_CODEC", "rle")
        sim = _counter(snapshots=4, snapshot_codec="raw")
        assert sim.timeline.codec.name == "raw"
        assert make_codec("rle").name == "rle"


# -- retention ---------------------------------------------------------------


class TestRetention:
    def test_entry_limit_keeps_exactly_n(self):
        sim = _counter(snapshots=4)
        sim.step(20)
        assert len(sim.timeline) == 4
        assert sim.timeline.window() == (17, 20)

    @pytest.mark.parametrize("codec", ["raw", "rle"])
    def test_byte_budget_bounds_nbytes(self, codec):
        sim = _counter(snapshot_bytes=8_192, snapshot_codec=codec,
                       store="array")
        sim.step(300)
        tl = sim.timeline
        assert tl.nbytes <= 8_192
        assert len(tl) >= 2
        # The window is usable: rewind to its oldest cycle.
        lo, hi = tl.window()
        sim.set_time(lo)
        assert sim.get_time() == lo

    def test_rle_window_longer_than_raw_at_equal_budget(self):
        budget = 32_768
        windows = {}
        for codec in ("raw", "rle"):
            sim = _counter(snapshot_bytes=budget, snapshot_codec=codec,
                           store="array")
            sim.step(2000)
            lo, hi = sim.timeline.window()
            windows[codec] = hi - lo + 1
        assert windows["rle"] > windows["raw"]

    def test_nbytes_accounting_tracks_evictions(self):
        # Under a byte budget the per-entry estimates are maintained
        # eagerly and must stay consistent through folds and evictions.
        sim = _counter(snapshot_bytes=16_384, snapshot_codec="rle",
                       store="array")
        sim.step(300)
        tl = sim.timeline
        assert tl.nbytes == sum(e.nbytes for e in tl.entries)
        assert tl.nbytes == sum(tl._entry_nbytes(e) for e in tl.entries)
        # Entry-limited timelines skip eager accounting but still answer
        # nbytes (lazily) for the console.
        lazy = _counter(snapshots=8)
        lazy.step(20)
        assert lazy.timeline.nbytes > 0
        assert all(e.nbytes == 0 for e in lazy.timeline.entries)


# -- periodic keyframes ------------------------------------------------------


class TestKeyframes:
    def test_keyframe_cadence(self):
        sim = _counter(snapshots=32, snapshot_codec="rle", keyframe_every=8)
        sim.step(30)
        kinds = [e.values is not None for e in sim.timeline.entries]
        assert kinds[0] is True
        assert sum(kinds) >= 3  # head + periodic keyframes
        # Between two keyframes there are exactly keyframe_every deltas.
        key_pos = [i for i, k in enumerate(kinds) if k]
        assert all(b - a == 9 for a, b in zip(key_pos, key_pos[1:], strict=False))

    def test_rewind_onto_periodic_keyframe_and_resume(self):
        sim = _counter(snapshots=64, snapshot_codec="rle", keyframe_every=4)
        gold = {}
        for _ in range(20):
            sim.flush()
            gold[sim.get_time()] = sim.peek("out")
            sim.step(1)
        tl = sim.timeline
        key_times = [e.time for e in tl.entries if e.values is not None]
        assert len(key_times) >= 3
        # Land exactly on a mid-ring keyframe, then resume and re-rewind.
        t = key_times[1]
        sim.set_time(t)
        assert sim.peek("out") == gold[t]
        sim.step(3)
        sim.set_time(t + 2)
        assert sim.peek("out") == gold[t + 2]

    def test_head_is_always_keyframe_after_eviction(self):
        sim = _counter(snapshots=5, snapshot_codec="rle", keyframe_every=3)
        sim.step(40)
        assert sim.timeline.entries[0].values is not None


# -- memory-history gating ---------------------------------------------------


class _BigMem(hgf.Module):
    def __init__(self, depth):
        super().__init__()
        self.o = self.output("o", 8)
        mem = self.mem("m", 8, depth)
        cnt = self.reg("cnt", 8, init=0)
        cnt <<= (cnt + 1)[7:0]
        with self.when(cnt < 4):
            mem.write(cnt[1:0], cnt, self.lit(1, 1))
        self.o <<= mem[0]


class TestMemGating:
    def test_oversized_memories_warn_once_and_degrade(self):
        d = repro.compile(_BigMem(MEM_HISTORY_WORD_CAP + 1))
        with pytest.warns(RuntimeWarning, match="memory history disabled"):
            sim = Simulator(d.low, snapshots=8)
        assert sim.timeline.snap_mems is False
        sim.reset()
        sim.step(6)
        t = sim.timeline.times()[2]
        sim.set_time(t)  # registers still rewind
        assert sim.get_time() == t

    def test_small_memories_keep_history_silently(self, recwarn):
        d = repro.compile(_BigMem(8))
        sim = Simulator(d.low, snapshots=8)
        assert sim.timeline.snap_mems is True
        assert not any(
            isinstance(w.message, RuntimeWarning) for w in recwarn.list
        )


# -- wire serialization + divergence localization ----------------------------


class TestWire:
    @pytest.mark.parametrize("kind", BACKENDS)
    @pytest.mark.parametrize("codec", ["raw", "rle"])
    def test_wire_reconstructs_state_signals(self, kind, codec):
        sim = _counter(snapshots=8, snapshot_codec=codec, store=kind)
        sim.step(20)
        wire = sim.timeline.to_wire()
        for t, state, _wide, _mems in iter_wire_states(wire):
            sim.set_time(t)  # the recorded entry is ground truth
            for idx, val in state.items():
                assert val == sim.values[idx]

    def test_wire_is_json_safe_and_backend_independent(self):
        import json

        wires = []
        for kind in BACKENDS:
            sim = _counter(snapshots=8, snapshot_codec="rle", store=kind)
            sim.step(12)
            wires.append(json.loads(json.dumps(sim.timeline.to_wire())))
        assert all(w["entries"] == wires[0]["entries"] for w in wires[1:])

    def test_identical_runs_do_not_diverge(self):
        a = _counter(snapshots=8, snapshot_codec="rle")
        b = _counter(snapshots=8, snapshot_codec="raw", store="list")
        a.step(15)
        b.step(15)
        assert first_timeline_divergence(
            a.timeline.to_wire(), b.timeline.to_wire()
        ) is None

    def test_divergence_names_first_cycle_and_signal(self):
        a = _counter(snapshots=32)
        b = _counter(snapshots=32)
        a.step(10)
        b.step(10)
        b.poke("en", 0)  # diverges from cycle 11's recorded state on
        a.step(5)
        b.step(5)
        div = first_timeline_divergence(
            a.timeline.to_wire(), b.timeline.to_wire()
        )
        assert div is not None and div["kind"] == "signal"
        assert div["time"] == 11
        assert a.design.signals[div["index"]].path == "Counter.en"
        assert (div["a"], div["b"]) == (1, 0)

    def test_mem_divergence_localized(self):
        d = repro.compile(_BigMem(8))
        a = Simulator(d.low, snapshots=32)
        b = Simulator(d.low, snapshots=32)
        for sim in (a, b):
            sim.reset()
            sim.step(6)
        wire_b = b.timeline.to_wire()
        # Corrupt one memory word in b's keyframe.
        for rec in wire_b["entries"]:
            if "m" in rec:
                rec["m"][0][1] ^= 0xFF
                break
        div = first_timeline_divergence(a.timeline.to_wire(), wire_b)
        assert div is not None and div["kind"] == "mem"
        assert div["index"] == [0, 1]


# -- the view API ------------------------------------------------------------


class TestView:
    def test_live_view(self):
        sim = _counter(snapshots=8)
        sim.step(20)
        tl = sim.timeline
        lo, hi = tl.window()
        assert tl.times() == list(range(lo, hi + 1))
        assert lo in tl and hi in tl and (lo - 1) not in tl
        assert tl.prev_time(hi) == hi - 1
        assert tl.prev_time(lo) is None
        assert "cycles" in tl.describe()
        assert tl.nbytes > 0

    def test_full_trace_view(self):
        tl = FullTraceTimeline(10)
        assert tl.window() == (0, 9)
        assert len(tl) == 10
        assert 9 in tl and 10 not in tl
        assert tl.prev_time(5) == 4
        assert tl.prev_time(0) is None
        assert tl.prev_time(99) == 9
        assert tl.nbytes == 0
        assert FullTraceTimeline(0).window() is None


# -- history queries ---------------------------------------------------------


class TestHistory:
    def test_history_matches_recorded_values(self):
        sim = _counter(snapshots=64)
        gold = []
        for _ in range(10):
            sim.flush()
            gold.append((sim.get_time(), sim.peek("out")))
            sim.step(1)
        gold.append((sim.get_time(), sim.peek("out")))
        series = sim.history("Counter.out")
        assert series[-len(gold):] == gold  # (reset's cycle 0 precedes)
        assert sim.get_time() == gold[-1][0]  # time restored

    def test_history_window_args(self):
        sim = _counter(snapshots=64)
        sim.step(10)
        series = sim.history("Counter.out", start=3, end=6)
        assert [t for t, _ in series] == [3, 4, 5, 6]

    def test_history_restores_finished_flag(self):
        class Stopper(hgf.Module):
            def __init__(self):
                super().__init__()
                r = self.reg("r", 8, init=0)
                r <<= (r + 1)[7:0]
                self.o = self.output("o", 8)
                self.o <<= r
                self.stop(r == 5, 3)

        d = repro.compile(Stopper())
        sim = Simulator(d.low, snapshots=64)
        sim.reset()
        sim.run(100)
        assert sim.finished and sim.exit_code == 3
        series = sim.history("Stopper.r")
        assert series  # the full run is retained
        assert sim.finished and sim.exit_code == 3  # flag survived the walk

    def test_history_without_timeline_rejected(self):
        sim = _counter()
        with pytest.raises(SimulatorError, match="keeps no history"):
            sim.history("Counter.out")

    def test_history_on_full_ring_does_not_evict_oldest(self):
        """Regression: recording the current cycle for a history walk
        must not push the oldest retained cycle out of a full ring."""
        sim = _counter(snapshots=8)
        sim.step(8)
        window_before = sim.timeline.window()
        sim.history("Counter.out")
        assert sim.timeline.window()[0] == window_before[0]
        sim.set_time(window_before[0])  # oldest cycle still reachable
        assert sim.get_time() == window_before[0]

    def test_snapshot_bytes_zero_means_no_budget(self):
        """Regression: snapshots=N with snapshot_bytes=0 is the plain
        entry-limited ring, not a construction error."""
        d = repro.compile(Counter())
        sim = Simulator(d.low, snapshots=8, snapshot_bytes=0)
        assert sim.timeline is not None
        assert sim.timeline.byte_budget is None
        assert Simulator(d.low, snapshot_bytes=0).timeline is None

    def test_history_after_rewind_preserves_forward_window(self):
        """Regression: a read-only history query right after a rewind
        must neither truncate the retained window nor drop the forward
        cycles from its own result."""
        sim = _counter(snapshots=16)
        sim.step(6)
        full = sim.history("Counter.out")
        sim.set_time(3)
        series = sim.history("Counter.out")
        assert series == full          # cycles 4..6 still reported
        assert sim.get_time() == 3     # cursor restored to the rewind
        sim.set_time(6)                # forward window survived the query
        assert sim.get_time() == 6
