"""Unit tests for the unified simulator interface surface itself."""

import pytest

import repro
from repro.sim import Simulator
from repro.sim.interface import (
    HierNode,
    SimulationFinished,
    SimulatorError,
    SimulatorInterface,
)
from tests.helpers import Counter, TwoLeaves


class TestHierNode:
    def _tree(self) -> HierNode:
        root = HierNode("top", "top", "Top")
        a = HierNode("a", "top.a", "A")
        b = HierNode("b", "top.b", "B")
        ab = HierNode("x", "top.a.x", "X")
        a.children.append(ab)
        root.children.extend([a, b])
        return root

    def test_find_self(self):
        t = self._tree()
        assert t.find("top") is t

    def test_find_nested(self):
        t = self._tree()
        assert t.find("top.a.x").module == "X"

    def test_find_missing(self):
        t = self._tree()
        assert t.find("top.c") is None
        assert t.find("top.a.y") is None

    def test_find_no_prefix_confusion(self):
        root = HierNode("t", "t", "T")
        root.children.append(HierNode("ab", "t.ab", "AB"))
        root.children.append(HierNode("a", "t.a", "A"))
        assert root.find("t.a").module == "A"
        assert root.find("t.ab").module == "AB"

    def test_walk_preorder(self):
        t = self._tree()
        assert [n.path for n in t.walk()] == ["top", "top.a", "top.a.x", "top.b"]


class TestInterfaceDefaults:
    class _Minimal(SimulatorInterface):
        def get_value(self, path):
            return 0

        def hierarchy(self):
            return HierNode("m", "m", "M")

        def clock_name(self):
            return "m.clock"

        def add_clock_callback(self, fn):
            return 1

        def remove_clock_callback(self, cb_id):
            pass

        def get_time(self):
            return 0

    def test_set_value_default_rejected(self):
        m = self._Minimal()
        assert not m.can_set_value
        with pytest.raises(SimulatorError):
            m.set_value("x", 1)

    def test_set_time_default_rejected(self):
        m = self._Minimal()
        assert not m.can_set_time
        with pytest.raises(SimulatorError):
            m.set_time(3)

    def test_not_replay_by_default(self):
        assert not self._Minimal().is_replay

    def test_set_time_callbacks_default_plumbing(self):
        """Any backend can register set-time observers; _notify_set_time
        fans out to them and removal by id works."""
        m = self._Minimal()
        seen = []
        cb1 = m.add_set_time_callback(lambda sim, t: seen.append(("a", t)))
        cb2 = m.add_set_time_callback(lambda sim, t: seen.append(("b", t)))
        assert cb1 != cb2
        m._notify_set_time(7)
        assert seen == [("a", 7), ("b", 7)]
        m.remove_set_time_callback(cb1)
        m.remove_set_time_callback(999)  # unknown ids are ignored
        m._notify_set_time(9)
        assert seen == [("a", 7), ("b", 7), ("b", 9)]

    def test_finished_exception_carries_code(self):
        exc = SimulationFinished(3, 42)
        assert exc.exit_code == 3 and exc.time == 42


class TestDesignApi:
    def test_design_accessors(self):
        d = repro.compile(Counter())
        assert d.name == "Counter"
        assert d.high.main == "Counter"
        assert d.low.main == "Counter"
        assert d.debug_info.all_entries()
        assert any(True for _ in d.annotations)

    def test_compile_name_override(self):
        d = repro.compile(Counter(), name="DUT")
        assert d.name == "DUT"
        sim = Simulator(d.low)
        assert sim.clock_name() == "DUT.clock"

    def test_signal_info_metadata(self):
        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low)
        infos = {s.path: s for s in sim.design.signals}
        assert infos["TwoLeaves.x"].kind == "input"
        assert infos["TwoLeaves.y"].kind == "output"
        assert infos["TwoLeaves.a.o"].width == 4
