"""Many-worlds vectorized simulation (``repro.sim.manyworlds``).

The contract under test: N scenario worlds advanced in lockstep by fused
numpy column kernels are **bit-identical**, per world, to N sequential
reference ``Simulator`` runs of the same per-world stimulus — on every
scalar store backend — and breakpoint/watchpoint conditions evaluate as
masks over the scenario axis, reporting the exact set of worlds that
fired (``docs/manyworlds.md``).
"""

from __future__ import annotations

import random

import pytest

import repro
import repro.hgf as hgf
from repro.core.runtime import CONTINUE, HitRecorder
from repro.hub import SessionOptions
from repro.sim import (
    ManyWorldsSimulator,
    Simulator,
    SimulatorError,
    make_sweep_stimulus,
    numpy_available,
)

from tests.helpers import Accumulator, line_of, make_runtime

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="many-worlds needs numpy"
)

BACKENDS = ("list", "array", "numpy")


# -- designs ----------------------------------------------------------------


class OpZoo(hgf.Module):
    """Every vectorizable op shape: arith, compares, shifts (static and
    dynamic, signed and unsigned), div/rem, mux, cat/bits/pad, reductions,
    64-bit native-wrap lanes — the codegen's mask-elision and constant
    pre-binding paths all fire here, so per-world parity against the
    scalar engine pins their correctness."""

    def __init__(self):
        super().__init__()
        a = self.input("a", 32)
        b = self.input("b", 32)
        c = self.input("c", 6)
        o = self.output("o", 64)
        r1 = self.reg("r1", 32, init=123456789)
        r2 = self.reg("r2", 64, init=(1 << 63) | 12345)
        r3 = self.reg("r3", 16, init=7)
        sa = a.as_sint()
        sb = b.as_sint()
        n1 = self.node("n1", (a + b)[31:0])
        n2 = self.node("n2", (a * b)[63:0])
        n3 = self.node("n3", (sa - sb).as_uint()[31:0])
        n4 = self.node("n4", a // (b[3:0] + self.lit(1, 5))[4:0])
        n5 = self.node("n5", a % (b[4:0] + self.lit(3, 6))[5:0])
        n6 = self.node("n6", (a << 7)[38:32])
        n7 = self.node("n7", (sa >> 3).as_uint())
        n8 = self.node("n8", a >> 5)
        n9 = self.node("n9", (a << c)[31:0])
        n10 = self.node("n10", a >> c)
        n11 = self.node("n11", (sa >> c).as_uint())
        n12 = self.node("n12", hgf.mux(a > b, n1, n2[31:0]))
        n13 = self.node("n13", a[15:0].cat(b[15:0]))
        n14 = self.node("n14", a.andr() ^ a.orr() ^ a.xorr())
        n15 = self.node("n15", ~a)
        n16 = self.node("n16", (-sa).as_uint()[31:0])
        n17 = self.node("n17", (r2 + r2)[63:0])
        n18 = self.node("n18", (r2 * self.lit(0x9E3779B97F4A7C15, 64))[63:0])
        n19 = self.node("n19", hgf.mux(sa < sb, a, b))
        n20 = self.node("n20", a.pad(48))
        r1 <<= (n1 ^ n12 ^ n19 ^ n14.pad(32))[31:0]
        r2 <<= (n17 ^ n18 ^ n2)[63:0]
        r3 <<= (n13[15:0] ^ n5.pad(16) ^ n4[15:0] ^ n9[15:0] ^ n10[15:0]
                ^ n11[15:0] ^ n3[15:0] ^ n6.pad(16) ^ n7[15:0] ^ n8[15:0]
                ^ n15[15:0] ^ n16[15:0] ^ n20[15:0])[15:0]
        o <<= (r2 ^ r1.pad(64) ^ r3.pad(64))[63:0]


class MemZoo(hgf.Module):
    """Memory write + read under scenario batching."""

    def __init__(self):
        super().__init__()
        a = self.input("a", 8)
        d = self.input("d", 16)
        o = self.output("o", 16)
        mem = self.mem("scratch", width=16, depth=32)
        acc = self.reg("acc", 16, init=0)
        mem.write(a[4:0], (d + acc)[15:0], a[0:0])
        rd = self.node("rd", mem[(a >> 3)[4:0]])
        acc <<= (acc + rd)[15:0]
        o <<= acc


class Stopper(hgf.Module):
    """Fires ``Stop`` when the accumulator's low byte hits a marker — at a
    stimulus-dependent (so world-dependent) cycle."""

    def __init__(self):
        super().__init__()
        x = self.input("x", 8)
        self.o = self.output("o", 16)
        acc = self.reg("acc", 16, init=0)
        acc <<= (acc + x.pad(16))[15:0]
        self.stop(acc[7:0] == self.lit(0xA5, 8), 3)
        self.o <<= acc


class WideWorlds(hgf.Module):
    """Product of 64-bit operands: the 128-bit result and the 96-bit
    register live in the per-world wide overflow dict, not the matrix."""

    def __init__(self):
        super().__init__()
        x = self.input("x", 64)
        self.o = self.output("o", 64)
        # A full-width init: with init=1 the first-cycle product collapses
        # to x and the update xor self-cancels, converging every world.
        r = self.reg("r", 96, init=0x123456789ABCDEF01234567)
        p = self.node("p", r[63:0] * (r[95:32] ^ x))
        r <<= (p[95:0] ^ x.pad(96))[95:0]
        # The visible output depends only on the (shared) input, so when
        # every world sees the same x the narrow lanes stay identical and
        # divergence lives purely in the wide dict.
        self.o <<= x ^ self.lit(0xDEADBEEF, 64)


# -- reference runs ---------------------------------------------------------


def _reference_digest(design, seed, cycles, store="auto"):
    """One world's sequential reference: the shard-farm seed contract
    (sorted-input draws from ``random.Random(seed)``), scalar engine."""
    sim = Simulator(
        design.low, options=SessionOptions(store=store, fast=(store != "list"))
    )
    rng = random.Random(seed)
    compiled = sim.design
    inputs = sorted(
        n for n in compiled.top_inputs if n not in ("clock", "reset")
    )
    widths = {
        n: compiled.signals[compiled.top_inputs[n]].width for n in inputs
    }

    def stim(s, _c):
        for n in inputs:
            s.poke(n, rng.getrandbits(widths[n]))

    sim.reset(1)
    sim.run_cycles(cycles, stimulus=stim)
    return sim.state_digest()


def _manyworlds_digests(design, seeds, cycles):
    mw = ManyWorldsSimulator(design.low, len(seeds))
    mw.reset(1)
    mw.run_cycles(cycles, stimulus=make_sweep_stimulus(mw, seeds))
    return [mw.state_digest(k) for k in range(len(seeds))], mw


# -- parity -----------------------------------------------------------------


@pytest.mark.parametrize("store", BACKENDS)
@pytest.mark.parametrize("design_cls", [OpZoo, MemZoo])
def test_parity_vs_sequential_reference(design_cls, store):
    design = repro.compile(design_cls())
    seeds = [100 + k for k in range(4)]
    got, _mw = _manyworlds_digests(design, seeds, 120)
    for k, seed in enumerate(seeds):
        assert got[k] == _reference_digest(design, seed, 120, store), (
            f"world {k} diverged from the {store} reference"
        )


def test_opzoo_compiles_vectorized():
    design = repro.compile(OpZoo())
    _digests, mw = _manyworlds_digests(design, [1, 2], 5)
    assert mw.kernels.n_vector >= 24
    # Exactly two statements fall back to the per-world scalar loop: n17
    # and n18 slice a >64-bit intermediate (65-bit sum, 128-bit product)
    # that a uint64 lane cannot hold pre-mask.
    assert mw.kernels.n_scalar == 2


def test_distinct_seeds_distinct_worlds():
    design = repro.compile(OpZoo())
    digests, _mw = _manyworlds_digests(design, [5, 6, 7], 50)
    assert len(set(digests)) == 3


# -- per-world stop semantics ----------------------------------------------


def test_stop_finishes_only_fired_worlds():
    design = repro.compile(Stopper())
    # World k adds k+1 per cycle: the 0xA5 marker lands on different
    # cycles (and never, for steps that miss it within the budget).
    rates = [1, 5, 2, 11]
    mw = ManyWorldsSimulator(design.low, len(rates))
    mw.reset(1)
    mw.poke_worlds("x", rates)
    mw.step(400)

    expected = []
    for rate in rates:
        sim = Simulator(design.low)
        sim.reset(1)
        sim.poke("x", rate)
        ran = sim.run_cycles(400)
        expected.append(
            (sim.exit_code, ran if sim.finished else None, sim.state_digest())
        )

    for k, (code, tick, digest) in enumerate(expected):
        assert mw.exit_codes[k] == code
        assert mw.state_digest(k) == digest, f"world {k} diverged"
    finished = {k for k, (code, _t, _d) in enumerate(expected) if code is not None}
    assert finished, "scenario must finish at least one world"
    assert finished != set(range(len(rates))), (
        "scenario must leave at least one world running"
    )
    assert set(mw.active_worlds) == set(range(len(rates))) - finished

    # Finished worlds froze: more cycles must not move their archived state.
    before = [mw.state_digest(k) for k in finished]
    mw.step(25)
    assert [mw.state_digest(k) for k in finished] == before


def test_run_until_all_worlds_finish():
    design = repro.compile(Stopper())
    mw = ManyWorldsSimulator(design.low, 2)
    mw.reset(1)
    mw.poke_worlds("x", [0xA5, 55])  # world 0 hits on the first edge
    codes = mw.run(max_cycles=2000)
    assert codes == [3, 3]
    assert mw.finished
    assert mw.finish_ticks[0] is not None
    assert mw.finish_ticks[0] < mw.finish_ticks[1]


# -- poke/peek and error surfaces ------------------------------------------


def test_poke_peek_worlds():
    design = repro.compile(Accumulator())
    mw = ManyWorldsSimulator(design.low, 3)
    mw.reset(1)
    mw.poke("en", 1)
    mw.poke_worlds("d", [1, 10, 200])
    mw.step(3)
    assert mw.peek_worlds("total") == [3, 30, 600]
    assert mw.peek("total", world=2) == 600
    mw.poke_world("d", 1, 7)
    mw.step(1)
    assert mw.peek_worlds("total") == [4, 37, 800]


def test_world_index_and_seed_errors():
    design = repro.compile(Accumulator())
    mw = ManyWorldsSimulator(design.low, 2)
    with pytest.raises(SimulatorError):
        mw.peek("total", world=2)
    with pytest.raises(SimulatorError):
        mw.poke_world("d", -1, 5)
    with pytest.raises(SimulatorError):
        mw.poke_worlds("d", [1, 2, 3])  # wrong arity
    with pytest.raises(SimulatorError):
        make_sweep_stimulus(mw, [1, 2, 3])  # wrong seed count
    with pytest.raises(SimulatorError):
        ManyWorldsSimulator(design.low, 0)


# -- mask breakpoints and watchpoints --------------------------------------


def test_mask_breakpoint_reports_exact_world_subset():
    design = repro.compile(Accumulator())
    rates = [1, 5, 0, 9]  # world 2 never accumulates
    mw = ManyWorldsSimulator(design.low, len(rates))
    rec = HitRecorder()
    rt = make_runtime(design, mw, on_hit=rec)
    rt.attach()
    fn, line = line_of(design, "acc")
    rt.add_breakpoint(fn, line, condition="acc > 20")

    mw.reset(1)
    mw.poke("en", 1)
    mw.poke_worlds("d", rates)
    mw.step(6)

    assert rec.records, "the condition holds in some worlds by cycle 6"
    for r in rec.records:
        worlds = r["worlds"]
        # The exact set: conditions evaluate the pre-edge state, so at
        # recorded time t world k has accumulated rates[k] * (t - 1).
        expected = [
            k for k, rate in enumerate(rates) if rate * (r["time"] - 1) > 20
        ]
        assert worlds == expected
        # Strict subset: world 2 (rate 0) can never fire.
        assert 2 not in worlds
        assert worlds != list(range(len(rates)))
    assert mw.stats()["mask_hits"] > 0


def test_mask_watchpoint_carries_world_set():
    design = repro.compile(Accumulator())
    mw = ManyWorldsSimulator(design.low, 3)
    rec = HitRecorder()
    rt = make_runtime(design, mw, on_hit=rec)
    rt.attach()
    rt.add_watchpoint("acc", condition="new > 40")

    mw.reset(1)
    mw.poke("en", 1)
    mw.poke_worlds("d", [1, 25, 3])
    mw.step(4)

    assert rec.records
    first = rec.records[0]["watch"]
    assert first["worlds"] == [1], "only the fast world crossed 40 first"


def test_mask_breakpoint_can_pause_and_resume():
    """A hit handler sees per-world state and CONTINUE keeps all worlds
    advancing in lockstep (pausing is global: worlds share the clock)."""
    design = repro.compile(Accumulator())
    mw = ManyWorldsSimulator(design.low, 2)
    seen = []

    def on_hit(hit):
        seen.append((hit.time, hit.worlds, mw.peek_worlds("total")))
        return CONTINUE

    rt = make_runtime(design, mw, on_hit=on_hit)
    rt.attach()
    fn, line = line_of(design, "acc")
    rt.add_breakpoint(fn, line, condition="acc > 10")
    mw.reset(1)
    t0 = mw.get_time()
    mw.poke("en", 1)
    mw.poke_worlds("d", [3, 50])
    mw.step(5)
    assert seen
    _time0, worlds0, totals0 = seen[0]
    assert worlds0 == (1,)
    assert totals0[1] > 10
    assert mw.get_time() == t0 + 5  # CONTINUE never stalled the clock


# -- wide (>64-bit) signals under scenario batching ------------------------


@pytest.mark.parametrize("store", BACKENDS)
def test_wide_product_parity(store):
    design = repro.compile(WideWorlds())
    seeds = [31 + k for k in range(3)]
    got, mw = _manyworlds_digests(design, seeds, 80)
    assert mw.kernels.n_scalar > 0, "the wide product must fall back"
    for k, seed in enumerate(seeds):
        assert got[k] == _reference_digest(design, seed, 80, store)


def test_worlds_diverging_only_in_wide_dict():
    """Poke distinct x for one cycle, then identical x forever: the
    narrow matrix columns re-converge while the >64-bit register keeps
    the worlds distinct purely through the wide overflow dict."""
    design = repro.compile(WideWorlds())
    mw = ManyWorldsSimulator(design.low, 3)
    mw.reset(1)
    mw.poke_worlds("x", [10, 20, 30])
    mw.step(1)
    mw.poke("x", 12345)  # identical across worlds from now on
    mw.step(10)
    mw.flush()

    store = mw.store
    matrix = store.matrix
    for row in range(matrix.shape[0]):
        col0 = matrix[row, 0]
        assert all(matrix[row, k] == col0 for k in range(3)), (
            f"narrow row {row} diverged; divergence must be wide-only"
        )
    assert store.wide, "the wide dict carries the per-world state"
    digests = [mw.state_digest(k) for k in range(3)]
    assert len(set(digests)) == 3, "wide divergence must reach the digest"

    # And the wide values themselves are per-world visible.
    r_vals = mw.peek_worlds("r")
    assert len(set(r_vals)) == 3
    assert all(v < (1 << 96) for v in r_vals)


# -- timeline over the matrix store ----------------------------------------


def test_set_time_rewinds_every_world():
    """Rewind semantics match the scalar engine per world: registers and
    memories restore to the target cycle, and comb re-settles from the
    live input values (inputs are not state — the scalar engine does the
    same, so the parity contract covers rewinds too)."""
    design = repro.compile(OpZoo())
    seeds = [3, 4]
    mw = ManyWorldsSimulator(
        design.low, 2, options=SessionOptions(snapshots=64)
    )
    stim = make_sweep_stimulus(mw, seeds)
    mw.reset(1)
    mw.run_cycles(20, stimulus=stim)
    end = [mw.state_digest(k) for k in range(2)]
    t_end = mw.get_time()

    mw.set_time(t_end - 10)
    rewound = [mw.state_digest(k) for k in range(2)]
    assert rewound != end
    # Fast-forward within the retained window (the current cycle itself
    # is not retained — same as the scalar engine).
    mw.set_time(t_end - 1)
    forward = [mw.state_digest(k) for k in range(2)]

    # Per-world scalar reference: the same seeded run, the same jumps.
    for k, seed in enumerate(seeds):
        sim = Simulator(design.low, options=SessionOptions(snapshots=64))
        rng = random.Random(seed)
        compiled = sim.design
        inputs = sorted(
            n for n in compiled.top_inputs if n not in ("clock", "reset")
        )
        widths = {
            n: compiled.signals[compiled.top_inputs[n]].width for n in inputs
        }

        def stim_one(s, _c, rng=rng):
            for n in inputs:
                s.poke(n, rng.getrandbits(widths[n]))

        sim.reset(1)
        sim.run_cycles(20, stimulus=stim_one)
        sim.set_time(t_end - 10)
        assert sim.state_digest() == rewound[k], f"world {k} rewind diverged"
        sim.set_time(t_end - 1)
        assert sim.state_digest() == forward[k], f"world {k} replay diverged"


# -- options plumbing -------------------------------------------------------


def test_shared_session_options_record():
    """The same frozen SessionOptions record Simulator/hub/shard share
    configures the many-worlds front end; matrix-owned knobs are ignored."""
    design = repro.compile(Accumulator())
    mw = ManyWorldsSimulator(
        design.low, 2, options=SessionOptions(store="list", fast=False)
    )
    assert mw.store.kind == "matrix"  # store= is owned by the backend
    mw.reset(1)
    mw.poke("en", 1)
    mw.poke_worlds("d", [2, 3])
    mw.step(2)
    assert mw.peek_worlds("total") == [4, 6]
