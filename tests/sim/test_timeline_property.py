"""Property tests pinning the timeline codecs to the reference semantics.

The acceptance contract of the ``repro.sim.timeline`` refactor: under
randomized poke/tick/set_time schedules, a simulator whose history is
``rle``-encoded (with periodic keyframes) is bit-identical — signal for
signal, memory word for memory word, at every observation point — to one
using the ``raw`` codec and to the uncompressed full-comb reference
(``fast=False``), on every store backend, including rewinds that land
exactly on keyframe boundaries.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.sim import Simulator
from repro.sim.store import numpy_available
from tests.helpers import Accumulator, Counter, TwoLeaves

from tests.sim.test_fastpath_property import MemMixer

BACKENDS = ["list", "array"] + (["numpy"] if numpy_available() else [])
MODULES = [Counter, Accumulator, TwoLeaves, MemMixer]


def _state(sim):
    sim.flush()
    return (sim.values.as_list(), [list(m) for m in sim.mems], sim.get_time())


def _lanes(d, kind, snapshots=24):
    """One workload, three history representations: rle (periodic
    keyframes), raw (the seed ring), and the full-comb reference."""
    return [
        Simulator(d.low, snapshots=snapshots, store=kind, fast=True,
                  snapshot_codec="rle", keyframe_every=5),
        Simulator(d.low, snapshots=snapshots, store=kind, fast=True,
                  snapshot_codec="raw"),
        Simulator(d.low, snapshots=snapshots, store=kind, fast=False,
                  snapshot_codec="raw"),
    ]


@pytest.mark.parametrize("kind", BACKENDS)
@pytest.mark.parametrize("mod_cls", MODULES)
def test_rle_raw_reference_lockstep(kind, mod_cls):
    """Random pokes/steps/rewinds keep all three lanes bit-identical."""
    d = repro.compile(mod_cls())
    sims = _lanes(d, kind)
    rng = random.Random(hash((kind, mod_cls.__name__)) & 0xFFFF)
    inputs = sorted(n for n in sims[0].design.top_inputs if n != "clock")
    for sim in sims:
        sim.reset()

    for _ in range(90):
        r = rng.random()
        if r < 0.5 and inputs:
            name = rng.choice(inputs)
            width = sims[0].design.signals[
                sims[0].design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            for sim in sims:
                sim.poke(name, value)
        elif r < 0.8:
            cycles = rng.randint(1, 3)
            for sim in sims:
                sim.step(cycles)
        else:
            times = sims[0].timeline.times()
            if times:
                if rng.random() < 0.4:
                    # Land exactly on one of the rle lane's keyframe
                    # boundaries (head or periodic).
                    keys = [e.time for e in sims[0].timeline.entries
                            if e.values is not None]
                    t = rng.choice(keys)
                else:
                    t = rng.choice(times)
                for sim in sims:
                    sim.set_time(t)
        states = [_state(sim) for sim in sims]
        assert states[0] == states[1] == states[2]
        assert (sims[0].timeline.times() == sims[1].timeline.times()
                == sims[2].timeline.times())


@pytest.mark.parametrize("kind", BACKENDS)
def test_every_retained_cycle_restores_identically(kind):
    """Walk the full retained window of all three lanes in random order:
    every set_time target must reconstruct the same state everywhere,
    and re-execution after a keyframe-boundary rewind must too."""
    d = repro.compile(MemMixer())
    sims = _lanes(d, kind, snapshots=20)
    rng = random.Random(99)
    inputs = sorted(n for n in sims[0].design.top_inputs if n != "clock")
    for sim in sims:
        sim.reset()
    for _ in range(40):
        for name in inputs:
            width = sims[0].design.signals[
                sims[0].design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            for sim in sims:
                sim.poke(name, value)
        for sim in sims:
            sim.step(1)

    times = sims[0].timeline.times()
    rng.shuffle(times)
    for t in times:
        for sim in sims:
            sim.set_time(t)
        states = [_state(sim) for sim in sims]
        assert states[0] == states[1] == states[2], f"diverged at t={t}"

    # Rewind every lane onto the rle lane's oldest periodic keyframe,
    # diverge the stimulus, and check re-execution stays lockstep.
    keys = [e.time for e in sims[0].timeline.entries if e.values is not None]
    for sim in sims:
        sim.set_time(keys[-1])
        sim.poke(inputs[0], 1)
        sim.step(5)
    states = [_state(sim) for sim in sims]
    assert states[0] == states[1] == states[2]


@pytest.mark.parametrize("kind", BACKENDS)
def test_byte_budget_lockstep_with_entry_ring(kind):
    """A byte-budgeted rle timeline must agree with the entry-count raw
    ring on every cycle both retain."""
    d = repro.compile(Counter())
    budgeted = Simulator(d.low, snapshot_bytes=1 << 16, store=kind,
                         snapshot_codec="rle", keyframe_every=16)
    ring = Simulator(d.low, snapshots=64, store=kind)
    for sim in (budgeted, ring):
        sim.reset()
        sim.poke("en", 1)
        sim.step(120)
    common = sorted(
        set(budgeted.timeline.times()) & set(ring.timeline.times())
    )
    assert common  # the windows overlap
    for t in common[:: max(1, len(common) // 10)]:
        budgeted.set_time(t)
        ring.set_time(t)
        assert _state(budgeted) == _state(ring)
