"""Value-store backends: typed 64-bit lanes, wide overflow, parity.

The ``ValueStore`` layer (``repro.sim.store``) makes the value-table
representation pluggable; these tests pin every backend bit-identical to
the plain-list reference across the cases that stress the representation:

* >64-bit signals (the wide overflow dict, including wide registers);
* negative / oversized pokes (lane masking);
* snapshot rewinds across a keyframe boundary on typed buffers;
* backend selection (``store=`` argument and ``$REPRO_VALUE_STORE``);
* watchpoints and compiled breakpoint conditions reading wide signals;
* the raw-buffer state digest.
"""

from __future__ import annotations

import random

import pytest

import repro
import repro.hgf as hgf
from repro.sim import Simulator, SimulatorError
from repro.sim.store import (
    ListStore,
    NumpyStore,
    make_store,
    numpy_available,
    resolve_store_kind,
)
from tests.helpers import Accumulator, Counter, make_runtime

BACKENDS = ["list", "array"] + (["numpy"] if numpy_available() else [])


class WideMixer(hgf.Module):
    """>64-bit datapath: 96-bit input, a 128-bit product node, and a
    96-bit register, folded back down to a narrow output."""

    def __init__(self):
        super().__init__()
        self.a = self.input("a", 96)
        self.b = self.input("b", 64)
        self.en = self.input("en", 1)
        self.o = self.output("o", 32)
        prod = self.wire("prod", 128)
        prod <<= (self.a[63:0] * self.b)[127:0]
        acc = self.reg("acc", 96, init=0)
        with self.when(self.en == 1):
            acc <<= (acc + self.a + prod[95:0])[95:0]
        self.o <<= (acc[31:0] ^ acc[95:64] ^ prod[127:96])[31:0]


def _full_state(sim):
    sim.flush()
    return (sim.values.as_list(), [list(m) for m in sim.mems], sim.get_time())


def _rand_drive(sims, rng, cycles=60, rewind=True):
    inputs = sorted(n for n in sims[0].design.top_inputs if n != "clock")
    for _ in range(cycles):
        r = rng.random()
        if r < 0.5 and inputs:
            name = rng.choice(inputs)
            width = sims[0].design.signals[sims[0].design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            for sim in sims:
                sim.poke(name, value)
        elif r < 0.85 or not rewind:
            cyc = rng.randint(1, 3)
            for sim in sims:
                sim.step(cyc)
        else:
            times = sims[0].timeline.times()
            if times:
                t = rng.choice(times)
                for sim in sims:
                    sim.set_time(t)
        states = [_full_state(sim) for sim in sims]
        assert all(s == states[0] for s in states[1:])


# -- backend selection -------------------------------------------------------


def test_resolve_store_kind(monkeypatch):
    monkeypatch.delenv("REPRO_VALUE_STORE", raising=False)
    assert resolve_store_kind("list") == "list"
    assert resolve_store_kind("array") == "array"
    auto = resolve_store_kind("auto")
    assert auto == ("numpy" if numpy_available() else "array")
    assert resolve_store_kind(None) == auto
    with pytest.raises(SimulatorError):
        resolve_store_kind("rocksdb")


def test_env_override_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_VALUE_STORE", "list")
    d = repro.compile(Counter())
    assert Simulator(d.low).store.kind == "list"
    monkeypatch.setenv("REPRO_VALUE_STORE", "array")
    assert Simulator(d.low).store.kind == "array"
    # An explicit argument beats the environment.
    assert Simulator(d.low, store="list").store.kind == "list"


@pytest.mark.parametrize("kind", BACKENDS)
def test_store_sequence_protocol(kind):
    d = repro.compile(Counter())
    sim = Simulator(d.low, store=kind)
    store = sim.values
    assert store.kind == kind
    assert len(store) == len(sim.design.signals)
    assert list(store) == store.as_list()
    assert store[sim.design.clock_index] == 0


@pytest.mark.parametrize("kind", BACKENDS)
def test_store_negative_index_and_slice_cover_wide(kind):
    """list[int] semantics hold even for wide signals: negative indices
    and slices must not fall through to the unused narrow lane."""
    d = repro.compile(WideMixer())
    sim = Simulator(d.low, store=kind)
    sim.reset()
    sim.poke("a", 1 << 90)
    sim.poke("b", 3)
    sim.flush()
    store = sim.values
    vals = store.as_list()
    n = len(store)
    for i in sim.design.wide_indices:
        assert store[i - n] == store[i] == vals[i]
    assert store[:] == vals
    assert store[2:5] == vals[2:5]
    # Negative writes land in the right buffer too.
    a_idx = sim.design.signal_index["WideMixer.a"]
    store[a_idx - n] = 7
    assert store[a_idx] == 7


# -- cross-backend parity ----------------------------------------------------


@pytest.mark.parametrize("mod_cls", [Counter, Accumulator, WideMixer])
@pytest.mark.parametrize("seed", [0, 1])
def test_backend_parity_property(mod_cls, seed):
    """Random pokes/steps/rewinds leave every backend — and both the fast
    and reference paths on the typed backends — in bit-identical state."""
    d = repro.compile(mod_cls())
    sims = [
        Simulator(d.low, snapshots=16, store=kind, fast=fast)
        for kind in BACKENDS
        for fast in (True, False)
    ]
    for sim in sims:
        sim.reset()
    _rand_drive(sims, random.Random(seed))


# -- wide (>64-bit) signals --------------------------------------------------


@pytest.mark.parametrize("kind", BACKENDS)
def test_wide_signals_roundtrip(kind):
    d = repro.compile(WideMixer())
    sim = Simulator(d.low, store=kind)
    sim.reset()
    big = (1 << 95) | (1 << 70) | 12345
    sim.poke("a", big)
    sim.poke("b", (1 << 64) - 1)
    sim.poke("en", 1)
    assert sim.peek("a") == big
    prod_idx = sim.design.signal_index["WideMixer.prod"]
    assert prod_idx in sim.design.wide_indices
    sim.flush()
    assert sim.values[prod_idx] == (big & ((1 << 64) - 1)) * ((1 << 64) - 1)
    sim.step(3)
    # The wide register accumulated 96-bit values without truncation.
    acc = sim.peek("acc")
    assert acc >= 1 << 64


@pytest.mark.parametrize("kind", BACKENDS)
def test_wide_watchpoint_and_condition(kind):
    """Watchpoints and compiled breakpoint conditions bind the wide
    overflow dict for >64-bit signals."""
    from repro.core import CONTINUE

    d = repro.compile(WideMixer())
    sim = Simulator(d.low, store=kind)
    hits = []
    rt = make_runtime(
        d, sim, lambda h: (hits.append((h.time, h.watch["new"])), CONTINUE)[1]
    )
    rt.attach()
    sim.reset()
    rt.add_watchpoint("acc", condition=f"new > {1 << 70}")
    sim.poke("a", 1 << 80)
    sim.poke("b", 1)
    sim.poke("en", 1)
    sim.step(4)
    assert hits and all(new > 1 << 70 for _t, new in hits)
    assert not rt.warnings


# -- masking -----------------------------------------------------------------


@pytest.mark.parametrize("kind", BACKENDS)
def test_negative_poke_masks_to_width(kind):
    d = repro.compile(Accumulator())
    sim = Simulator(d.low, store=kind)
    sim.reset()
    sim.poke("d", -1)          # 8-bit input: stores 0xFF, not -1
    assert sim.peek("d") == 0xFF
    sim.poke("d", -2)
    assert sim.peek("d") == 0xFE
    sim.poke("d", 1 << 20)     # oversized: masked to low 8 bits
    assert sim.peek("d") == 0


@pytest.mark.parametrize("kind", BACKENDS)
def test_negative_poke_wide_signal(kind):
    d = repro.compile(WideMixer())
    sim = Simulator(d.low, store=kind)
    sim.reset()
    sim.poke("a", -1)
    assert sim.peek("a") == (1 << 96) - 1


# -- snapshots on typed stores -----------------------------------------------


@pytest.mark.parametrize("kind", BACKENDS)
@pytest.mark.parametrize("mod_cls", [Counter, WideMixer])
def test_rewind_across_keyframe_boundary(kind, mod_cls):
    """With a small ring, old keyframes are folded forward on eviction;
    rewinding to the oldest retained time must reconstruct exactly, then
    re-execution must reproduce the original run."""
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=4, store=kind)
    ref = Simulator(d.low, snapshots=0, store="list")
    rng = random.Random(3)
    inputs = sorted(n for n in sim.design.top_inputs if n != "clock")
    sim.reset()
    ref.reset()

    gold = {}
    for _ in range(20):
        for name in inputs:
            width = sim.design.signals[sim.design.top_inputs[name]].width
            value = rng.randrange(1 << width)
            sim.poke(name, value)
            ref.poke(name, value)
        sim.flush()
        gold[sim.get_time()] = _full_state(sim)[0]
        sim.step(1)
        ref.step(1)

    # Ring holds only the last 4 times; the oldest is a folded keyframe.
    times = sim.timeline.times()
    assert len(times) == 4
    assert sim.timeline.entries[0].values is not None  # keyframe at head
    for t in (times[0], times[-1], times[0]):
        sim.set_time(t)
        assert sim.values.as_list() == gold[t]
    # Re-execute from the folded keyframe: the ring restarts and later
    # rewinds reconstruct the new run's state exactly.
    sim.set_time(times[0])
    sim.flush()
    redo = {}
    for _ in range(3):
        sim.flush()
        redo[sim.get_time()] = sim.values.as_list()
        sim.step(1)
    for t, want in redo.items():
        sim.set_time(t)
        assert sim.values.as_list() == want


@pytest.mark.parametrize("kind", BACKENDS)
def test_snapshot_skips_mem_copy_when_no_memories(kind):
    """Bugfix: designs without memories must not pay for (empty) memory
    keyframes or the journaling tick variant."""
    d = repro.compile(Counter())
    sim = Simulator(d.low, snapshots=8, store=kind)
    assert sim.timeline.snap_mems is False
    sim.reset()
    sim.poke("en", 1)
    gold = {}
    for _ in range(6):
        gold[sim.get_time()] = sim.peek("out")
        sim.step(1)
    assert all(s.mem_copy is None for s in sim.timeline.entries)
    assert all(s.delta_mem is None for s in sim.timeline.entries)
    sim.set_time(3)
    assert sim.get_time() == 3
    assert sim.peek("out") == gold[3]
    sim.step(2)
    assert sim.peek("out") == gold[5]


# -- digests -----------------------------------------------------------------


def test_state_digest_backend_independent():
    d = repro.compile(Accumulator())
    digests = set()
    for kind in BACKENDS:
        sim = Simulator(d.low, store=kind)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 7)
        sim.step(5)
        digests.add(sim.state_digest())
    assert len(digests) == 1


def test_state_digest_distinguishes_states():
    d = repro.compile(Accumulator())
    a, b = Simulator(d.low), Simulator(d.low)
    for sim in (a, b):
        sim.reset()
        sim.poke("en", 1)
    a.poke("d", 7)
    b.poke("d", 9)
    a.step(3)
    b.step(3)
    assert a.state_digest() != b.state_digest()


def test_store_digest_bytes_uses_raw_buffer():
    d = repro.compile(Counter())
    for kind in BACKENDS:
        store = make_store(kind, Simulator(d.low, store=kind).design)
        blob = store.digest_bytes()
        assert isinstance(blob, bytes)
        assert len(blob) >= 8 * len(store)


# -- RLE codec: vectorized run detection vs the pure-python reference -------
#
# NumpyStore.encode_rle finds run breaks with one ``diff`` over the
# changed-index array; the ListStore codec walks the sorted dict.  These
# micro-tests pin the two against each other on the adversarial change
# patterns: every-signal (one maximal run), alternating (no two indices
# adjacent — worst case for run detection), and a single change.


def _rle_roundtrip(kind: str, n: int, changed: dict[int, int]):
    """Apply ``changed`` to a fresh store, capture its native delta, and
    return ``(store, delta, encoded)``."""
    cls = {"list": ListStore, "numpy": NumpyStore}[kind]
    store = cls(n, (), tuple(range(n)))
    base = store.capture_state()
    for i, v in changed.items():
        store[i] = v
    delta = store.state_delta(base)
    return store, delta, store.encode_rle(delta)


def _run_count(kind: str, encoded) -> int:
    runs, _values = encoded
    return len(runs) // 2


@pytest.mark.skipif(not numpy_available(), reason="needs the numpy codec")
@pytest.mark.parametrize(
    ("label", "changed", "runs"),
    [
        ("all-same", {i: 7 for i in range(64)}, 1),
        ("alternating", {i: i + 1 for i in range(0, 64, 2)}, 32),
        ("single-change", {17: 0xDEAD}, 1),
        ("two-runs", {**{i: 1 for i in range(4)},
                      **{i: 2 for i in range(40, 44)}}, 2),
        ("empty", {}, 0),
    ],
)
def test_encode_rle_vectorized_matches_reference(label, changed, runs):
    n = 64
    _ref_store, ref_delta, ref_enc = _rle_roundtrip("list", n, changed)
    np_store, np_delta, np_enc = _rle_roundtrip("numpy", n, changed)

    # Identical logical content, identical run structure.
    assert np_store.rle_pairs(np_enc) == ListStore.rle_pairs(ref_enc)
    assert np_store.rle_pairs(np_enc) == sorted(changed.items())
    assert _run_count("numpy", np_enc) == _run_count("list", ref_enc) == runs

    # And both replay onto a captured buffer to the same bytes.
    for store, enc in ((_ref_store, ref_enc), (np_store, np_enc)):
        saved = store.copy_narrow()
        for i in changed:
            saved[i] = 0  # scribble over the changed lanes
        store.apply_rle(saved, enc)
        assert list(saved) == list(store.narrow), label


@pytest.mark.skipif(not numpy_available(), reason="needs the numpy codec")
def test_encode_rle_random_patterns_match_reference():
    rng = random.Random(2024)
    n = 256
    for _trial in range(25):
        changed = {
            i: rng.getrandbits(64)
            for i in rng.sample(range(n), rng.randint(0, n))
        }
        _ls, _ld, ref_enc = _rle_roundtrip("list", n, changed)
        ns, _nd, np_enc = _rle_roundtrip("numpy", n, changed)
        assert ns.rle_pairs(np_enc) == ListStore.rle_pairs(ref_enc)
        assert _run_count("numpy", np_enc) == _run_count("list", ref_enc)
