"""repro.obs.metrics: instruments, registry, cross-process merge."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, merge_snapshots


class TestInstruments:
    def test_counter_inc_and_set_total(self):
        c = Counter("x_total", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set_total(42)  # collector pattern: mirror an always-on int
        assert c.value == 42
        wire = c.to_wire()
        assert wire["type"] == "counter" and wire["value"] == 42
        assert wire["help"] == "help text"

    def test_gauge_moves_both_ways(self):
        g = Gauge("bytes")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12
        assert g.to_wire()["type"] == "gauge"

    def test_histogram_bucket_placement(self):
        h = Histogram("lat", bounds=(0.1, 1.0))
        h.observe(0.05)  # le=0.1
        h.observe(0.1)   # le=0.1 (inclusive upper bound)
        h.observe(0.5)   # le=1.0
        h.observe(9.0)   # +Inf
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(9.65)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("lat", bounds=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("ticks_total")
        b = reg.counter("ticks_total")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_default_labels_merged_into_every_instrument(self):
        reg = MetricsRegistry(default_labels={"shard": "3"})
        c = reg.counter("x", labels={"kind": "a"})
        assert c.labels == {"shard": "3", "kind": "a"}

    def test_label_sets_keep_series_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels={"k": "1"})
        b = reg.counter("x", labels={"k": "2"})
        assert a is not b

    def test_collector_runs_at_snapshot_time(self):
        reg = MetricsRegistry()
        source = {"ticks": 0}
        reg.add_collector(
            lambda r: r.counter("ticks_total").set_total(source["ticks"])
        )
        source["ticks"] = 7
        snap = reg.snapshot()
        (m,) = snap["metrics"]
        assert m["value"] == 7
        source["ticks"] = 11  # a later snapshot sees the fresh total
        assert reg.snapshot()["metrics"][0]["value"] == 11

    def test_snapshot_is_json_safe_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.gauge("a_gauge").set(2)
        reg.histogram("c_seconds").observe(0.1)
        snap = reg.snapshot()
        json.dumps(snap)  # must round-trip the shard wire unchanged
        assert [m["name"] for m in snap["metrics"]] == [
            "a_gauge", "b_total", "c_seconds",
        ]


class TestMerge:
    def _snap(self, **totals):
        reg = MetricsRegistry()
        for name, v in totals.items():
            reg.counter(name).inc(v)
        return reg.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots([self._snap(x=1), self._snap(x=4)])
        (m,) = merged["metrics"]
        assert m["value"] == 5

    def test_gauges_keep_max(self):
        def gsnap(v):
            reg = MetricsRegistry()
            reg.gauge("g").set(v)
            return reg.snapshot()

        merged = merge_snapshots([gsnap(3), gsnap(9), gsnap(5)])
        assert merged["metrics"][0]["value"] == 9

    def test_histograms_sum_bucket_wise(self):
        def hsnap(*values):
            reg = MetricsRegistry()
            h = reg.histogram("h", bounds=(0.1, 1.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        merged = merge_snapshots([hsnap(0.05), hsnap(0.5, 9.0)])
        (m,) = merged["metrics"]
        assert m["counts"] == [1, 1, 1]
        assert m["count"] == 3
        assert m["sum"] == pytest.approx(9.55)

    def test_distinct_labels_stay_distinct(self):
        def lsnap(shard):
            reg = MetricsRegistry(default_labels={"shard": shard})
            reg.counter("x").inc()
            return reg.snapshot()

        merged = merge_snapshots([lsnap("0"), lsnap("1")])
        assert len(merged["metrics"]) == 2
        assert all(m["value"] == 1 for m in merged["metrics"])

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.gauge("x").set(1)
        with pytest.raises(ValueError, match="conflicting types"):
            merge_snapshots([self._snap(x=1), reg.snapshot()])

    def test_bound_mismatch_raises(self):
        def hsnap(bounds):
            reg = MetricsRegistry()
            reg.histogram("h", bounds=bounds).observe(0.5)
            return reg.snapshot()

        with pytest.raises(ValueError, match="bucket bounds"):
            merge_snapshots([hsnap((0.1, 1.0)), hsnap((0.2, 2.0))])

    def test_empty_and_none_snapshots_tolerated(self):
        merged = merge_snapshots([{}, self._snap(x=2)])
        assert merged["metrics"][0]["value"] == 2
