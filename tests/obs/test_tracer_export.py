"""repro.obs tracer and exporters: spans, Chrome trace JSON, Prometheus
text exposition, and the human-readable metric table."""

import json
import os

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    Tracer,
    format_metrics,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.tracer import NULL_SPAN


class TestTracer:
    def test_span_context_manager_records(self):
        t = Tracer(proc="test")
        with t.span("work", cycle=42):
            pass
        (s,) = t.spans
        assert s.name == "work"
        assert s.args == {"cycle": 42}
        assert s.dur >= 0.0
        assert s.pid == os.getpid()
        assert s.proc == "test"

    def test_record_span_with_identity_overrides(self):
        t = Tracer(proc="coordinator")
        t.record_span("attempt", wall=100.0, dur=0.5,
                      args={"shard": 1}, proc="shard 1", pid=999)
        (s,) = t.spans
        assert (s.proc, s.pid, s.wall, s.dur) == ("shard 1", 999, 100.0, 0.5)

    def test_wire_round_trip(self):
        t = Tracer(proc="p")
        with t.span("x"):
            pass
        wire = t.to_wire()
        json.dumps(wire)  # must ride the shard JSON-lines wire
        back = SpanRecord.from_wire(wire[0])
        assert back == t.spans[0]

    def test_null_span_is_a_shared_noop(self):
        with NULL_SPAN as s:
            assert s is NULL_SPAN


class TestChromeTrace:
    def _spans(self):
        return [
            SpanRecord("sweep", wall=10.0, dur=2.0, pid=1, proc="coordinator"),
            SpanRecord("run", wall=10.5, dur=1.0, pid=2, proc="shard 0"),
        ]

    def test_timestamps_normalized_to_earliest_wall(self):
        doc = to_chrome_trace(self._spans())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == 0.5e6  # µs
        assert xs[1]["dur"] == 1.0e6

    def test_process_metadata_per_pid(self):
        doc = to_chrome_trace(self._spans())
        meta = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert meta == {1: "coordinator", 2: "shard 0"}

    def test_accepts_wire_dicts(self):
        doc = to_chrome_trace([s.to_wire() for s in self._spans()])
        assert len(doc["traceEvents"]) == 4

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans())
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 4


class TestPrometheus:
    def _snapshot(self):
        reg = MetricsRegistry(default_labels={"shard": "0"})
        reg.counter("sim_ticks_total", "Clock ticks").inc(30)
        h = reg.histogram("rpc_request_seconds", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(9.0)
        return reg.snapshot()

    def test_exposition_format(self):
        text = to_prometheus(self._snapshot())
        assert "# HELP sim_ticks_total Clock ticks" in text
        assert "# TYPE sim_ticks_total counter" in text
        assert 'sim_ticks_total{shard="0"} 30' in text
        assert "# TYPE rpc_request_seconds histogram" in text
        # buckets are cumulative, with a closing +Inf
        assert 'rpc_request_seconds_bucket{shard="0",le="0.1"} 1' in text
        assert 'rpc_request_seconds_bucket{shard="0",le="1"} 2' in text
        assert 'rpc_request_seconds_bucket{shard="0",le="+Inf"} 3' in text
        assert 'rpc_request_seconds_count{shard="0"} 3' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry(default_labels={"name": 'a"b\\c'})
        reg.counter("x").inc()
        text = to_prometheus(reg.snapshot())
        assert 'x{name="a\\"b\\\\c"} 1' in text

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(path, self._snapshot())
        assert "sim_ticks_total" in path.read_text()

    def test_format_metrics_table(self):
        table = format_metrics(self._snapshot())
        assert 'sim_ticks_total{shard="0"}  30' in table
        assert "count=3" in table
