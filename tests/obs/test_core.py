"""Obs facade: mode resolution precedence and the off-mode fast path,
including bit-identical simulation with observability disabled."""

import pytest

import repro
from repro.obs import (
    NULL_OBS,
    OBS_ENV,
    Obs,
    configure,
    make_obs,
    resolve_mode,
)
from repro.obs.tracer import NULL_SPAN
from repro.shard import BreakpointSpec, ShardSpec
from repro.shard.worker import run_shard
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import Accumulator, line_of


@pytest.fixture(autouse=True)
def _clean_configure():
    yield
    configure(None)


class TestModeResolution:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV, raising=False)
        assert resolve_mode(None) == "off"

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "metrics")
        assert resolve_mode(None) == "metrics"
        monkeypatch.setenv(OBS_ENV, " TRACE ")  # trimmed + case-folded
        assert resolve_mode(None) == "trace"

    def test_configure_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "trace")
        configure("metrics")
        assert resolve_mode(None) == "metrics"

    def test_explicit_mode_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "trace")
        configure("metrics")
        assert resolve_mode("off") == "off"

    def test_unknown_modes_rejected(self):
        with pytest.raises(ValueError, match="unknown obs mode"):
            resolve_mode("verbose")
        with pytest.raises(ValueError, match="unknown obs mode"):
            configure("verbose")
        with pytest.raises(ValueError, match="unknown obs mode"):
            Obs("verbose")


class TestObsFacade:
    def test_depths_are_cumulative(self):
        off = make_obs("off")
        metrics = make_obs("metrics")
        trace = make_obs("trace")
        assert off.metrics is None and off.tracer is None
        assert metrics.metrics is not None and metrics.tracer is None
        assert trace.metrics is not None and trace.tracer is not None

    def test_off_returns_the_shared_null_singleton(self):
        assert make_obs("off") is NULL_OBS
        assert make_obs("off").span("x") is NULL_SPAN
        assert NULL_OBS.to_wire() is None
        assert not NULL_OBS.enabled

    def test_existing_obs_is_shared_not_copied(self):
        obs = make_obs("metrics", labels={"shard": "1"})
        assert make_obs(obs) is obs

    def test_to_wire_shape(self):
        obs = make_obs("trace", proc="p")
        with obs.span("x"):
            pass
        wire = obs.to_wire()
        assert set(wire) == {"metrics", "spans"}
        assert make_obs("metrics").to_wire().get("spans") is None


class TestOffModeParity:
    """Tier-1 guard: $REPRO_OBS=off must not perturb simulation."""

    def _run(self, obs):
        d = repro.compile(Accumulator())
        st = SQLiteSymbolTable(write_symbol_table(d))
        f, line = line_of(d, "acc")
        spec = ShardSpec(
            shard_id=0, seed=7, cycles=40,
            breakpoints=(BreakpointSpec(f, line),),
            overrides={"en": 1},
        )
        return run_shard(d.low, st, spec, obs=obs)

    def test_off_is_bit_identical_to_metrics_and_trace(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "off")
        base = self._run(None)  # resolves to off via the env var
        assert base.obs is None
        for mode in ("metrics", "trace"):
            got = self._run(mode)
            assert got.state_digest == base.state_digest
            assert got.hits == base.hits
            assert got.obs is not None

    def test_simulator_off_state_matches_enabled(self):
        def digest(mode):
            d = repro.compile(Accumulator())
            sim = Simulator(d.low, obs=mode)
            sim.poke("en", 1)
            sim.poke("d", 5)
            sim.reset()
            sim.step(50)
            return sim.state_digest()

        assert digest("off") == digest("metrics") == digest("trace")

    def test_stats_available_even_when_off(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)  # obs defaults to off
        sim.reset()
        sim.step(3)
        stats = sim.stats()
        assert stats["ticks"] == 4  # reset tick + 3 steps
        assert sim.obs is NULL_OBS
