"""VCD writer/parser round-trip tests plus parser robustness."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.sim import Simulator
from repro.trace import VcdParseError, VcdWriter, parse_vcd
from repro.trace.vcd import _ident
from tests.helpers import Counter, TwoLeaves


def _trace_counter(tmp_path, cycles=8):
    d = repro.compile(Counter())
    path = str(tmp_path / "c.vcd")
    w = VcdWriter(path)
    sim = Simulator(d.low, trace=w)
    sim.reset()
    sim.poke("en", 1)
    sim.step(cycles)
    w.close()
    return path, sim


class TestIdent:
    def test_unique_and_printable(self):
        ids = [_ident(i) for i in range(500)]
        assert len(set(ids)) == 500
        for s in ids:
            assert all(33 <= ord(c) <= 126 for c in s)


class TestWriter:
    def test_header_structure(self, tmp_path):
        path, _ = _trace_counter(tmp_path)
        text = open(path).read()
        assert "$scope module Counter $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_nested_scopes(self, tmp_path):
        d = repro.compile(TwoLeaves())
        path = str(tmp_path / "t.vcd")
        w = VcdWriter(path)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(2)
        w.close()
        text = open(path).read()
        assert text.count("$scope module") == 3

    def test_stream_target(self):
        buf = io.StringIO()
        d = repro.compile(Counter())
        w = VcdWriter(stream=buf)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(2)
        w.close()
        assert "$var" in buf.getvalue()

    def test_exclusive_args(self):
        with pytest.raises(ValueError):
            VcdWriter()
        with pytest.raises(ValueError):
            VcdWriter("x.vcd", io.StringIO())


class TestRoundTrip:
    def test_values_recoverable(self, tmp_path):
        path, sim = _trace_counter(tmp_path, cycles=10)
        vcd = parse_vcd(open(path).read())
        out = vcd.by_path["Counter.out"]
        # At VCD time 2k the stable pre-edge value of cycle k is dumped;
        # out == k - 1 for k >= 1 (reset consumed cycle 0).
        assert out.value_at(0) == 0
        assert out.value_at(2 * 5) == 4
        assert out.value_at(2 * 10) == 9

    def test_clock_edges_present(self, tmp_path):
        path, _ = _trace_counter(tmp_path, cycles=4)
        vcd = parse_vcd(open(path).read())
        clk = vcd.find_clock()
        assert clk is not None
        rising = [t for t, v in zip(clk.times, clk.values, strict=False) if v == 1]
        assert len(rising) == 5  # reset cycle + 4 steps

    def test_hierarchy_preserved(self, tmp_path):
        d = repro.compile(TwoLeaves())
        path = str(tmp_path / "t.vcd")
        w = VcdWriter(path)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(2)
        w.close()
        vcd = parse_vcd(open(path).read())
        assert "TwoLeaves.a.o" in vcd.by_path
        assert "TwoLeaves.b.i" in vcd.by_path


class TestParser:
    def test_x_z_read_as_zero(self):
        vcd = parse_vcd(
            "$var wire 4 ! sig $end\n$enddefinitions $end\n"
            "#0\nbx01z !\n#2\nb1111 !\n"
        )
        sig = vcd.signals["!"]
        assert sig.value_at(0) == 0b0010
        assert sig.value_at(2) == 0xF

    def test_scalar_changes(self):
        vcd = parse_vcd(
            "$var wire 1 ! clk $end\n$enddefinitions $end\n"
            "#0\n0!\n#1\n1!\n#2\n0!\n"
        )
        sig = vcd.signals["!"]
        assert sig.value_at(1) == 1
        assert sig.value_at(2) == 0

    def test_value_before_first_change_is_zero(self):
        vcd = parse_vcd(
            "$var wire 8 ! s $end\n$enddefinitions $end\n#5\nb101 !\n"
        )
        assert vcd.signals["!"].value_at(3) == 0
        assert vcd.signals["!"].value_at(5) == 5

    def test_unknown_ident_rejected(self):
        with pytest.raises(VcdParseError):
            parse_vcd("$enddefinitions $end\n#0\n1?\n")

    def test_alias_vars_share_signal(self):
        vcd = parse_vcd(
            "$scope module a $end\n$var wire 1 ! x $end\n$upscope $end\n"
            "$scope module b $end\n$var wire 1 ! y $end\n$upscope $end\n"
            "$enddefinitions $end\n#0\n1!\n"
        )
        assert vcd.by_path["a.x"] is vcd.by_path["b.y"]

    def test_end_time_tracked(self):
        vcd = parse_vcd("$enddefinitions $end\n#0\n#42\n")
        assert vcd.end_time == 42

    def test_same_time_overwrite(self):
        vcd = parse_vcd(
            "$var wire 4 ! s $end\n$enddefinitions $end\n#0\nb1 !\nb10 !\n"
        )
        assert vcd.signals["!"].value_at(0) == 2

    @given(values=st.lists(st.integers(0, 255), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_values_property(self, values):
        """Any change sequence written in VCD form parses back exactly."""
        lines = ["$var wire 8 ! s $end", "$enddefinitions $end"]
        for t, v in enumerate(values):
            lines.append(f"#{t}")
            lines.append(f"b{v:b} !")
        vcd = parse_vcd("\n".join(lines))
        sig = vcd.signals["!"]
        for t, v in enumerate(values):
            assert sig.value_at(t) == v
