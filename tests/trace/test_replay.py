"""Replay engine tests: the trace backend of the unified interface."""

import pytest

import repro
from repro.sim import Simulator, SimulatorError
from repro.trace import ReplayEngine, VcdWriter
from tests.helpers import Counter, TwoLeaves


@pytest.fixture()
def counter_trace(tmp_path):
    d = repro.compile(Counter())
    path = str(tmp_path / "c.vcd")
    w = VcdWriter(path)
    sim = Simulator(d.low, trace=w)
    sim.reset()
    sim.poke("en", 1)
    sim.step(10)
    sim.poke("en", 0)
    sim.step(2)
    w.close()
    return path


class TestReplayBasics:
    def test_cycle_count(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        assert rp.n_cycles == 13  # reset + 10 + 2

    def test_get_value_matches_live(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        rp.set_time(6)
        assert rp.get_value("Counter.out") == 5

    def test_random_access_both_directions(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        rp.set_time(9)
        v9 = rp.get_value("Counter.out")
        rp.set_time(3)
        v3 = rp.get_value("Counter.out")
        rp.set_time(9)
        assert rp.get_value("Counter.out") == v9
        assert v3 < v9

    def test_set_time_bounds(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        with pytest.raises(SimulatorError):
            rp.set_time(-1)
        with pytest.raises(SimulatorError):
            rp.set_time(999)

    def test_is_replay_flags(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        assert rp.is_replay
        assert rp.can_set_time
        assert not rp.can_set_value
        with pytest.raises(SimulatorError):
            rp.set_value("Counter.out", 1)

    def test_unknown_signal(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        with pytest.raises(SimulatorError):
            rp.get_value("Counter.bogus")


class TestReplayCallbacks:
    def test_callbacks_fire_per_cycle(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        hits = []
        rp.add_clock_callback(lambda s: hits.append(s.get_time()))
        rp.run(5)
        assert hits == [1, 2, 3, 4, 5]

    def test_run_to_end_sets_at_end(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        rp.run()
        assert rp.at_end

    def test_callback_removal(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        hits = []
        cb = rp.add_clock_callback(lambda s: hits.append(1))
        rp.step()
        rp.remove_clock_callback(cb)
        rp.step()
        assert len(hits) == 1


class TestReplayHierarchy:
    def test_hierarchy_from_scopes(self, tmp_path):
        d = repro.compile(TwoLeaves())
        path = str(tmp_path / "t.vcd")
        w = VcdWriter(path)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(2)
        w.close()
        rp = ReplayEngine.from_file(path)
        paths = [n.path for n in rp.hierarchy().walk()]
        assert paths == ["TwoLeaves", "TwoLeaves.a", "TwoLeaves.b"]

    def test_clock_name(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace)
        assert rp.clock_name() == "Counter.clock"

    def test_explicit_clock_path(self, counter_trace):
        rp = ReplayEngine.from_file(counter_trace, clock_path="Counter.clock")
        assert rp.n_cycles == 13

    def test_bad_clock_path(self, counter_trace):
        with pytest.raises(SimulatorError):
            ReplayEngine.from_file(counter_trace, clock_path="no.such.clock")


class TestLiveVsReplayEquivalence:
    def test_every_cycle_matches(self, tmp_path):
        """Replay must report exactly what the live simulator showed at
        each posedge — the contract that makes offline debugging sound."""
        d = repro.compile(Counter())
        path = str(tmp_path / "c.vcd")
        w = VcdWriter(path)
        sim = Simulator(d.low, trace=w)
        live: list[tuple[int, int]] = []
        sim.add_clock_callback(
            lambda s: live.append((s.get_time(), s.get_value("Counter.count")))
        )
        sim.reset()
        sim.poke("en", 1)
        sim.step(7)
        w.close()

        rp = ReplayEngine.from_file(path)
        for t, v in live:
            rp.set_time(t)
            assert rp.get_value("Counter.count") == v, f"cycle {t}"
