"""Symbol table tests: schema (Fig. 3), writer, and the four query
primitives of Sec. 3.4."""


import pytest

import repro
from repro.symtable import SQLiteSymbolTable, open_symbol_db, write_symbol_table
from tests.helpers import Accumulator, Counter, SumLoop, TwoLeaves, line_of


@pytest.fixture()
def two_leaves():
    d = repro.compile(TwoLeaves())
    return d, SQLiteSymbolTable(write_symbol_table(d))


class TestSchema:
    def test_tables_exist(self):
        conn = open_symbol_db()
        tables = {
            r[0]
            for r in conn.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        assert {
            "instance",
            "breakpoint",
            "variable",
            "scope_variable",
            "generator_variable",
            "attribute",
        } <= tables

    def test_indices_exist(self):
        conn = open_symbol_db()
        indices = {
            r[0]
            for r in conn.execute("SELECT name FROM sqlite_master WHERE type='index'")
        }
        assert "idx_bp_loc" in indices

    def test_reopen_does_not_recreate(self, tmp_path):
        path = str(tmp_path / "s.db")
        conn = open_symbol_db(path)
        conn.execute("INSERT INTO attribute(name, value) VALUES ('x', '1')")
        conn.commit()
        conn.close()
        conn2 = open_symbol_db(path)
        row = conn2.execute("SELECT value FROM attribute WHERE name='x'").fetchone()
        assert row["value"] == "1"

    def test_location_query_uses_index(self):
        conn = open_symbol_db()
        plan = conn.execute(
            "EXPLAIN QUERY PLAN SELECT * FROM breakpoint WHERE filename=? AND line_num=?",
            ("f", 1),
        ).fetchall()
        assert any("idx_bp_loc" in str(tuple(r)) for r in plan)


class TestWriter:
    def test_instances_enumerated(self, two_leaves):
        _d, st = two_leaves
        names = [i.name for i in st.instances()]
        assert names == ["TwoLeaves", "TwoLeaves.a", "TwoLeaves.b"]

    def test_top_attribute(self, two_leaves):
        _d, st = two_leaves
        assert st.top_name() == "TwoLeaves"
        assert st.attribute("debug_mode") == "0"

    def test_breakpoints_per_instance(self, two_leaves):
        """One source statement in a twice-instantiated module yields two
        breakpoints — the concurrent 'threads' of Fig. 4B."""
        d, st = two_leaves
        filename, line = line_of(d, "o")
        bps = st.breakpoints_at(filename, line)
        assert {b.instance_name for b in bps} == {"TwoLeaves.a", "TwoLeaves.b"}

    def test_debug_mode_flag(self):
        d = repro.compile(Counter(), debug=True)
        st = SQLiteSymbolTable(write_symbol_table(d))
        assert st.attribute("debug_mode") == "1"

    def test_file_backed(self, tmp_path):
        d = repro.compile(Counter())
        path = str(tmp_path / "sym.db")
        write_symbol_table(d, path)
        st = SQLiteSymbolTable(path)
        assert st.top_name() == "Counter"


class TestQueries:
    def test_breakpoints_at_unknown_location(self, two_leaves):
        _d, st = two_leaves
        assert st.breakpoints_at("nope.py", 1) == []

    def test_scope_variables(self, two_leaves):
        d, st = two_leaves
        filename, line = line_of(d, "o")
        bp = st.breakpoints_at(filename, line)[0]
        names = {v.name for v in st.scope_variables(bp.id)}
        assert {"i", "o"} <= names

    def test_resolve_scoped_var(self, two_leaves):
        d, st = two_leaves
        filename, line = line_of(d, "o")
        bp = st.breakpoints_at(filename, line)[0]
        assert st.resolve_scoped_var(bp.id, "i") == "i"
        assert st.resolve_scoped_var(bp.id, "nope") is None

    def test_resolve_instance_var(self, two_leaves):
        _d, st = two_leaves
        top = st.instances()[0]
        var = st.resolve_instance_var(top.id, "x")
        assert var is not None and var.is_rtl
        assert st.resolve_instance_var(top.id, "nope") is None

    def test_generator_variables_constants(self):
        d = repro.compile(Counter(width=5))
        st = SQLiteSymbolTable(write_symbol_table(d))
        top = st.instances()[0]
        gen = {v.name: v for v in st.generator_variables(top.id)}
        assert gen["width"].value == "5" and not gen["width"].is_rtl

    def test_all_breakpoints_ordered(self, two_leaves):
        _d, st = two_leaves
        bps = st.all_breakpoints()
        keys = [b.order_key() for b in bps]
        assert keys == sorted(keys)

    def test_breakpoint_lookup(self, two_leaves):
        _d, st = two_leaves
        bp = st.all_breakpoints()[0]
        again = st.breakpoint(bp.id)
        assert again is not None and again.id == bp.id
        assert st.breakpoint(99999) is None

    def test_filenames_and_lines(self, two_leaves):
        d, st = two_leaves
        files = st.filenames()
        assert len(files) == 1
        lines = st.breakpoint_lines(files[0])
        assert lines == sorted(lines) and len(lines) >= 3

    def test_ssa_var_map_stored(self):
        """The SSA context mapping of Listing 2 survives into SQL."""
        d = repro.compile(SumLoop(2), debug=True)
        st = SQLiteSymbolTable(write_symbol_table(d))
        sum_bps = [b for b in st.all_breakpoints() if b.sink == "sum"]
        assert len(sum_bps) == 3
        # Third version's scope maps `sum` to the previous SSA temp.
        third = sum_bps[2]
        assert st.resolve_scoped_var(third.id, "sum") == "sum_1"

    def test_enable_stored_for_conditionals(self):
        d = repro.compile(Accumulator())
        st = SQLiteSymbolTable(write_symbol_table(d))
        acc_bps = [b for b in st.all_breakpoints() if b.sink == "acc"]
        assert acc_bps and acc_bps[0].enable is not None
        assert acc_bps[0].enable_src == "(en == 1)"


class TestDebugVsOptimizedSize:
    def test_debug_tables_not_smaller(self):
        opt = repro.compile(SumLoop(4))
        dbg = repro.compile(SumLoop(4), debug=True)
        st_opt = SQLiteSymbolTable(write_symbol_table(opt))
        st_dbg = SQLiteSymbolTable(write_symbol_table(dbg))
        n_opt = len(st_opt.all_breakpoints())
        n_dbg = len(st_dbg.all_breakpoints())
        assert n_dbg >= n_opt
