"""RPC symbol table tests: native vs RPC answers must be identical
(paper Fig. 1: the symbol table is queried 'Native' or via 'RPC'),
and the wire protocol must survive malformed peers on both sides."""

import json
import socket
import socketserver
import threading

import pytest

import repro
from repro.symtable import (
    RPCSymbolTable,
    SQLiteSymbolTable,
    SymbolTableServer,
    write_symbol_table,
)
from tests.helpers import TwoLeaves, line_of


@pytest.fixture()
def served():
    d = repro.compile(TwoLeaves())
    st = SQLiteSymbolTable(write_symbol_table(d))
    server = SymbolTableServer(st)
    server.start()
    client = RPCSymbolTable(*server.address)
    yield d, st, client
    client.close()
    server.stop()


class TestParity:
    def test_top_name(self, served):
        _d, st, cli = served
        assert cli.top_name() == st.top_name()

    def test_instances(self, served):
        _d, st, cli = served
        assert cli.instances() == st.instances()

    def test_all_breakpoints(self, served):
        _d, st, cli = served
        assert cli.all_breakpoints() == st.all_breakpoints()

    def test_breakpoints_at(self, served):
        d, st, cli = served
        filename, line = line_of(d, "o")
        assert cli.breakpoints_at(filename, line) == st.breakpoints_at(filename, line)

    def test_scope_variables(self, served):
        d, st, cli = served
        bp = st.all_breakpoints()[0]
        assert cli.scope_variables(bp.id) == st.scope_variables(bp.id)

    def test_resolvers(self, served):
        d, st, cli = served
        filename, line = line_of(d, "o")
        bp = st.breakpoints_at(filename, line)[0]
        assert cli.resolve_scoped_var(bp.id, "i") == st.resolve_scoped_var(bp.id, "i")
        top = st.instances()[0]
        assert cli.resolve_instance_var(top.id, "x") == st.resolve_instance_var(top.id, "x")

    def test_filenames_lines(self, served):
        _d, st, cli = served
        assert cli.filenames() == st.filenames()
        f = st.filenames()[0]
        assert cli.breakpoint_lines(f) == st.breakpoint_lines(f)


class TestProtocol:
    def test_unknown_method_errors(self, served):
        _d, _st, cli = served
        with pytest.raises(RuntimeError, match="unknown method"):
            cli._call("drop_tables")

    def test_server_side_exception_propagates(self, served):
        _d, _st, cli = served
        with pytest.raises(RuntimeError):
            cli._call("breakpoints_at")  # missing params

    def test_runtime_accepts_rpc_table(self, served):
        """The hgdb runtime works identically over an RPC symbol table."""
        from repro.core import Runtime
        from repro.sim import Simulator

        d, _st, cli = served
        sim = Simulator(d.low)
        rt = Runtime(sim, cli)
        filename, line = line_of(d, "o")
        bps = rt.add_breakpoint(filename, line)
        assert len(bps) == 2

    def test_client_context_manager(self, served):
        _d, st, _cli = served
        with SymbolTableServer(st) as server:
            with RPCSymbolTable(*server.address) as cli:
                assert cli.top_name() == st.top_name()
            # closed: further calls fail cleanly
            with pytest.raises((ConnectionError, OSError, ValueError)):
                cli.top_name()


def _fake_server(responder):
    """A one-connection TCP server answering each request line with
    ``responder(request_dict) -> response_dict`` — for injecting protocol
    violations a well-behaved SymbolTableServer never produces."""

    class Handler(socketserver.StreamRequestHandler):
        def handle(self):
            for line in self.rfile:
                resp = responder(json.loads(line))
                self.wfile.write(json.dumps(resp).encode() + b"\n")
                self.wfile.flush()

    srv = socketserver.TCPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=srv.serve_forever, daemon=True).start()
    return srv


class TestProtocolEdgeCases:
    def test_response_id_mismatch_raises(self):
        srv = _fake_server(lambda req: {"id": req["id"] + 99, "result": "Top"})
        try:
            cli = RPCSymbolTable(*srv.server_address)
            with pytest.raises(RuntimeError, match="id mismatch"):
                cli._call("attribute", "top")
            cli.close()
        finally:
            srv.shutdown()
            srv.server_close()

    def test_empty_error_string_is_still_an_error(self):
        srv = _fake_server(lambda req: {"id": req["id"], "error": ""})
        try:
            cli = RPCSymbolTable(*srv.server_address)
            with pytest.raises(RuntimeError, match="RPC error"):
                cli._call("attribute", "top")
            cli.close()
        finally:
            srv.shutdown()
            srv.server_close()

    def test_malformed_line_gets_error_response_and_connection_survives(
        self, served
    ):
        """A non-JSON request line must produce {"id": null, "error": ...}
        — not kill the handler — and the connection keeps serving."""
        _d, st, _cli = served
        with SymbolTableServer(st) as server:
            sock = socket.create_connection(server.address, timeout=5)
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["id"] is None
            assert resp["error"]
            # same connection still answers a valid request
            f.write(
                json.dumps(
                    {"id": 7, "method": "attribute", "params": ["top"]}
                ).encode() + b"\n"
            )
            f.flush()
            resp = json.loads(f.readline())
            assert resp == {"id": 7, "result": st.attribute("top")}
            sock.close()

    def test_non_object_request_gets_error_response(self, served):
        _d, st, _cli = served
        with SymbolTableServer(st) as server:
            sock = socket.create_connection(server.address, timeout=5)
            f = sock.makefile("rwb")
            f.write(b"[1, 2, 3]\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["id"] is None
            assert "JSON object" in resp["error"]
            sock.close()

    def test_flaky_server_recovered_by_reconnect(self, served):
        """With the chaos injector delaying and dropping half of all
        responses, the hardened client must still answer every query —
        and identically to the native table."""
        from repro.faults import RPCFaultInjector

        d, st, _cli = served
        with SymbolTableServer(st) as server:
            server.faults = RPCFaultInjector(seed=1, rate=0.5, delay_s=0.02)
            cli = RPCSymbolTable(
                *server.address, timeout=5.0, max_reconnects=8,
                reconnect_backoff_s=0.01,
            )
            filename, line = line_of(d, "o")
            for _ in range(10):
                assert cli.top_name() == st.top_name()
                assert cli.instances() == st.instances()
                assert cli.breakpoints_at(filename, line) == st.breakpoints_at(
                    filename, line
                )
            cli.close()

    def test_delay_past_timeout_is_bounded(self, served):
        """Every response delayed past the per-request timeout: the
        client must give up after its reconnect budget, promptly."""
        import time as _time

        from repro.faults import RPCFaultInjector

        _d, st, _cli = served
        with SymbolTableServer(st) as server:
            server.faults = RPCFaultInjector(
                seed=0, rate=1.0, kinds=("delay",), delay_s=5.0,
            )
            cli = RPCSymbolTable(
                *server.address, timeout=0.2, max_reconnects=2,
                reconnect_backoff_s=0.01,
            )
            t0 = _time.monotonic()
            with pytest.raises(ConnectionError, match="after 2 reconnect"):
                cli.top_name()
            assert _time.monotonic() - t0 < 3
            cli.close()

    def test_total_drop_outage_exhausts_reconnects(self, served):
        from repro.faults import RPCFaultInjector

        _d, st, _cli = served
        with SymbolTableServer(st) as server:
            server.faults = RPCFaultInjector(seed=0, rate=1.0, kinds=("drop",))
            cli = RPCSymbolTable(
                *server.address, timeout=1.0, max_reconnects=2,
                reconnect_backoff_s=0.01,
            )
            with pytest.raises(ConnectionError, match="failed after"):
                cli.top_name()
            cli.close()

    def test_server_shutdown_mid_call(self):
        """The server side drops the connection before answering: the
        client must raise a ConnectionError, not hand back a bogus
        result."""

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                self.rfile.readline()   # swallow the request, answer nothing

        srv = socketserver.TCPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        try:
            cli = RPCSymbolTable(*srv.server_address)
            with pytest.raises((ConnectionError, OSError)):
                cli._call("attribute", "top")
            cli.close()
        finally:
            srv.shutdown()
            srv.server_close()
