"""RPC symbol table tests: native vs RPC answers must be identical
(paper Fig. 1: the symbol table is queried 'Native' or via 'RPC')."""

import pytest

import repro
from repro.symtable import (
    RPCSymbolTable,
    SQLiteSymbolTable,
    SymbolTableServer,
    write_symbol_table,
)
from tests.helpers import TwoLeaves, line_of


@pytest.fixture()
def served():
    d = repro.compile(TwoLeaves())
    st = SQLiteSymbolTable(write_symbol_table(d))
    server = SymbolTableServer(st)
    server.start()
    client = RPCSymbolTable(*server.address)
    yield d, st, client
    client.close()
    server.stop()


class TestParity:
    def test_top_name(self, served):
        _d, st, cli = served
        assert cli.top_name() == st.top_name()

    def test_instances(self, served):
        _d, st, cli = served
        assert cli.instances() == st.instances()

    def test_all_breakpoints(self, served):
        _d, st, cli = served
        assert cli.all_breakpoints() == st.all_breakpoints()

    def test_breakpoints_at(self, served):
        d, st, cli = served
        filename, line = line_of(d, "o")
        assert cli.breakpoints_at(filename, line) == st.breakpoints_at(filename, line)

    def test_scope_variables(self, served):
        d, st, cli = served
        bp = st.all_breakpoints()[0]
        assert cli.scope_variables(bp.id) == st.scope_variables(bp.id)

    def test_resolvers(self, served):
        d, st, cli = served
        filename, line = line_of(d, "o")
        bp = st.breakpoints_at(filename, line)[0]
        assert cli.resolve_scoped_var(bp.id, "i") == st.resolve_scoped_var(bp.id, "i")
        top = st.instances()[0]
        assert cli.resolve_instance_var(top.id, "x") == st.resolve_instance_var(top.id, "x")

    def test_filenames_lines(self, served):
        _d, st, cli = served
        assert cli.filenames() == st.filenames()
        f = st.filenames()[0]
        assert cli.breakpoint_lines(f) == st.breakpoint_lines(f)


class TestProtocol:
    def test_unknown_method_errors(self, served):
        _d, _st, cli = served
        with pytest.raises(RuntimeError, match="unknown method"):
            cli._call("drop_tables")

    def test_server_side_exception_propagates(self, served):
        _d, _st, cli = served
        with pytest.raises(RuntimeError):
            cli._call("breakpoints_at")  # missing params

    def test_runtime_accepts_rpc_table(self, served):
        """The hgdb runtime works identically over an RPC symbol table."""
        from repro.core import Runtime
        from repro.sim import Simulator

        d, _st, cli = served
        sim = Simulator(d.low)
        rt = Runtime(sim, cli)
        filename, line = line_of(d, "o")
        bps = rt.add_breakpoint(filename, line)
        assert len(bps) == 2
