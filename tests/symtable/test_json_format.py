"""JSON symbol table interchange tests: round trips and a hand-written
table driving the full debugger (framework independence)."""

import json

import pytest

import repro
from repro.core import CONTINUE, Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from repro.symtable.json_format import (
    JsonFormatError,
    dump_json,
    load_json,
)
from tests.helpers import Accumulator, TwoLeaves, line_of


@pytest.fixture()
def acc_table():
    d = repro.compile(Accumulator())
    return d, SQLiteSymbolTable(write_symbol_table(d))


class TestRoundTrip:
    def test_lossless(self, acc_table):
        _d, st = acc_table
        text = dump_json(st)
        st2 = load_json(text)
        assert st2.top_name() == st.top_name()
        assert st2.instances() == st.instances()
        bps1 = st.all_breakpoints()
        bps2 = st2.all_breakpoints()
        assert len(bps1) == len(bps2)
        for a, b in zip(bps1, bps2, strict=False):
            assert (a.filename, a.line, a.node, a.enable) == (
                b.filename, b.line, b.node, b.enable,
            )
            assert st.scope_variables(a.id) == st2.scope_variables(b.id)

    def test_generator_variables_survive(self, acc_table):
        _d, st = acc_table
        st2 = load_json(dump_json(st))
        top1 = st.instances()[0]
        top2 = st2.instances()[0]
        assert st.generator_variables(top1.id) == st2.generator_variables(top2.id)

    def test_multi_instance(self):
        d = repro.compile(TwoLeaves())
        st = SQLiteSymbolTable(write_symbol_table(d))
        st2 = load_json(dump_json(st))
        assert [i.name for i in st2.instances()] == [i.name for i in st.instances()]

    def test_json_is_valid_and_versioned(self, acc_table):
        _d, st = acc_table
        doc = json.loads(dump_json(st))
        assert doc["version"] == 1
        assert doc["top"] == "Accumulator"


class TestValidation:
    def test_bad_json_rejected(self):
        with pytest.raises(JsonFormatError, match="invalid JSON"):
            load_json("{nope")

    def test_missing_keys_rejected(self):
        with pytest.raises(JsonFormatError, match="required keys"):
            load_json('{"breakpoints": []}')

    def test_future_version_rejected(self):
        with pytest.raises(JsonFormatError, match="version"):
            load_json('{"version": 99, "top": "X", "instances": []}')

    def test_unknown_instance_rejected(self):
        doc = {
            "top": "X",
            "instances": [{"name": "X", "module": "X"}],
            "breakpoints": [
                {"filename": "f", "line": 1, "instance": "Y"}
            ],
        }
        with pytest.raises(JsonFormatError, match="unknown instance"):
            load_json(json.dumps(doc))


class TestHandWrittenTable:
    def test_external_framework_workflow(self):
        """A foreign HGF emits JSON debug info by hand; hgdb debugs the
        design with it — no SQLite, no repro.ir involvement."""
        design = repro.compile(Accumulator())
        native = SQLiteSymbolTable(write_symbol_table(design))
        _f, line = line_of(design, "acc")
        filename = native.filenames()[0]

        doc = {
            "top": "Accumulator",
            "instances": [
                {
                    "name": "Accumulator",
                    "module": "Accumulator",
                    "variables": [{"name": "kind", "value": "external", "rtl": False}],
                }
            ],
            "breakpoints": [
                {
                    "filename": filename,
                    "line": line,
                    "instance": "Accumulator",
                    "node": "_ssa_acc_0",
                    "sink": "acc",
                    "enable": "en",
                    "enable_src": "en asserted",
                    "scope": [
                        {"name": "acc", "value": "acc", "rtl": True},
                        {"name": "d", "value": "d", "rtl": True},
                    ],
                }
            ],
        }
        st = load_json(json.dumps(doc))

        sim = Simulator(design.low)
        hits = []
        rt = Runtime(sim, st, lambda h: (hits.append(h.frames[0].var("acc")), CONTINUE)[1])
        rt.attach()
        rt.add_breakpoint(filename, line)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 4)
        sim.step(3)
        assert hits == [0, 4, 8]
