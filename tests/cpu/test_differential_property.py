"""Property-based differential testing: the RTL core vs the golden ISS on
randomly generated programs with loops, memory traffic, and function calls.

This is the strongest correctness evidence for the CPU substrate: any
divergence in any instruction's semantics, hazard, or control-flow corner
shows up as a checksum mismatch.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cpu import RV32Core, assemble, run_program
from repro.sim import Simulator

_STORE = "li t6, 0x4000\nsw a0, 0(t6)\necall\n"


def _run_both(src: str, max_cycles: int = 60_000) -> tuple[int, int]:
    words = assemble(src).words
    iss = run_program(words)
    d = repro.compile(RV32Core(words, mem_words=8192))
    sim = Simulator(d.low)
    sim.reset()
    code = sim.run(max_cycles)
    assert code is not None, "RTL did not halt"
    return iss.tohost, sim.peek("tohost")


def _gen_loop_program(rng: random.Random) -> str:
    """A bounded loop with random body and a data-dependent exit."""
    n = rng.randrange(3, 12)
    ops = ["add", "sub", "xor", "or", "and", "sll", "srl", "sra", "mul"]
    body = []
    for _ in range(rng.randrange(2, 8)):
        op = rng.choice(ops)
        body.append(f"    {op} t2, t0, t1")
        body.append("    add s3, s3, t2")
        if rng.random() < 0.3:
            body.append(f"    addi t0, t0, {rng.randrange(-100, 100)}")
    return f"""
        li sp, 0x7FF0
        li s3, 0
        li t0, {rng.randrange(0, 1 << 20)}
        li t1, {rng.randrange(1, 1 << 10)}
        li s4, 0
    loop:
{chr(10).join(body)}
        addi s4, s4, 1
        li t3, {n}
        blt s4, t3, loop
        mv a0, s3
        {_STORE}
    """


def _gen_memory_program(rng: random.Random) -> str:
    """Random word stores and loads over a scratch region."""
    lines = ["li sp, 0x7FF0", "li s3, 0", "li s0, 0x5000"]
    slots = rng.randrange(4, 16)
    for _ in range(rng.randrange(5, 20)):
        slot = rng.randrange(slots) * 4
        if rng.random() < 0.5:
            lines.append(f"li t0, {rng.randrange(1 << 31)}")
            lines.append(f"sw t0, {slot}(s0)")
        else:
            lines.append(f"lw t1, {slot}(s0)")
            lines.append("add s3, s3, t1")
    lines += ["mv a0, s3", _STORE]
    return "\n".join(lines)


def _gen_call_program(rng: random.Random) -> str:
    """Nested function calls with stack usage."""
    depth = rng.randrange(2, 6)
    k = rng.randrange(1, 50)
    return f"""
        li sp, 0x7FF0
        li a0, {depth}
        call f
        {_STORE}
    f:
        beqz a0, base
        addi sp, sp, -8
        sw ra, 0(sp)
        sw a0, 4(sp)
        addi a0, a0, -1
        call f
        lw t0, 4(sp)
        lw ra, 0(sp)
        addi sp, sp, 8
        mul t0, t0, t0
        add a0, a0, t0
        ret
    base:
        li a0, {k}
        ret
    """


class TestDifferentialProperties:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_loop_programs(self, seed):
        src = _gen_loop_program(random.Random(seed))
        iss, rtl = _run_both(src)
        assert iss == rtl

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_memory_programs(self, seed):
        src = _gen_memory_program(random.Random(seed))
        iss, rtl = _run_both(src)
        assert iss == rtl

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_call_programs(self, seed):
        src = _gen_call_program(random.Random(seed))
        iss, rtl = _run_both(src)
        assert iss == rtl
