"""ISA encode/decode tests including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import isa
from repro.cpu.isa import EncodingError, decode


regs = st.integers(0, 31)


class TestEncodeDecodeRoundTrip:
    @given(rd=regs, rs1=regs, rs2=regs, name=st.sampled_from(sorted(isa.R_TYPE)))
    @settings(max_examples=60, deadline=None)
    def test_r_type(self, name, rd, rs1, rs2):
        word = isa.encode_r(name, rd, rs1, rs2)
        d = decode(word)
        opcode, f3, f7 = isa.R_TYPE[name]
        assert (d.opcode, d.funct3, d.funct7) == (opcode, f3, f7)
        assert (d.rd, d.rs1, d.rs2) == (rd, rs1, rs2)

    @given(
        rd=regs, rs1=regs,
        imm=st.integers(-2048, 2047),
        name=st.sampled_from(sorted(isa.I_TYPE)),
    )
    @settings(max_examples=60, deadline=None)
    def test_i_type(self, name, rd, rs1, imm):
        word = isa.encode_i(name, rd, rs1, imm)
        d = decode(word)
        assert d.imm_i == imm
        assert (d.rd, d.rs1) == (rd, rs1)

    @given(rs1=regs, rs2=regs, imm=st.integers(-2048, 2047))
    @settings(max_examples=60, deadline=None)
    def test_s_type(self, rs1, rs2, imm):
        word = isa.encode_s("sw", rs2, rs1, imm)
        d = decode(word)
        assert d.imm_s == imm
        assert (d.rs1, d.rs2) == (rs1, rs2)

    @given(
        rs1=regs, rs2=regs,
        offset=st.integers(-2048, 2047).map(lambda x: x * 2),
        name=st.sampled_from(sorted(isa.B_TYPE)),
    )
    @settings(max_examples=60, deadline=None)
    def test_b_type(self, name, rs1, rs2, offset):
        word = isa.encode_b(name, rs1, rs2, offset)
        d = decode(word)
        assert d.imm_b == offset

    @given(rd=regs, imm=st.integers(0, (1 << 20) - 1))
    @settings(max_examples=60, deadline=None)
    def test_u_type(self, rd, imm):
        word = isa.encode_u("lui", rd, imm)
        d = decode(word)
        assert d.imm_u == imm

    @given(rd=regs, offset=st.integers(-(1 << 19), (1 << 19) - 1).map(lambda x: x * 2))
    @settings(max_examples=60, deadline=None)
    def test_j_type(self, rd, offset):
        word = isa.encode_j(rd, offset)
        d = decode(word)
        assert d.imm_j == offset

    @given(rd=regs, rs1=regs, shamt=st.integers(0, 31), name=st.sampled_from(sorted(isa.SHIFT_IMM)))
    @settings(max_examples=40, deadline=None)
    def test_shift_imm(self, name, rd, rs1, shamt):
        word = isa.encode_shift(name, rd, rs1, shamt)
        d = decode(word)
        assert d.rs2 == shamt  # shamt occupies the rs2 field
        assert d.funct7 == isa.SHIFT_IMM[name][1]


class TestBounds:
    def test_register_range(self):
        with pytest.raises(EncodingError):
            isa.encode_r("add", 32, 0, 0)

    def test_imm_range(self):
        with pytest.raises(EncodingError):
            isa.encode_i("addi", 0, 0, 2048)
        with pytest.raises(EncodingError):
            isa.encode_i("addi", 0, 0, -2049)

    def test_branch_alignment(self):
        with pytest.raises(EncodingError):
            isa.encode_b("beq", 0, 0, 3)

    def test_shift_range(self):
        with pytest.raises(EncodingError):
            isa.encode_shift("slli", 0, 0, 32)

    def test_ecall_encoding(self):
        assert isa.encode_ecall() == 0x73
