"""Assembler tests: directives, pseudo-instructions, labels, errors."""

import pytest

from repro.cpu import assemble
from repro.cpu.assembler import AsmError
from repro.cpu.golden import run_program
from repro.cpu.isa import decode


def _run(src):
    return run_program(assemble(src).words)


class TestBasics:
    def test_simple_program(self):
        res = assemble("addi a0, zero, 5\necall\n")
        assert len(res.words) == 2

    def test_comments_stripped(self):
        res = assemble("addi a0, zero, 1  # comment\n// full line\necall")
        assert len(res.words) == 2

    def test_labels_resolve(self):
        res = assemble("start:\n  j start\n")
        d = decode(res.words[0])
        assert d.imm_j == 0

    def test_forward_label(self):
        res = assemble("  j end\n  nop\nend:\n  ecall\n")
        d = decode(res.words[0])
        assert d.imm_j == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop\n")

    def test_label_on_same_line(self):
        res = assemble("loop: addi a0, a0, 1\nj loop\n")
        assert len(res.words) == 2

    def test_word_directive(self):
        res = assemble(".word 1, 2, 0xFF\n")
        assert res.words == [1, 2, 0xFF]

    def test_word_with_label_value(self):
        res = assemble("a:\n.word b\nb:\n.word 0\n")
        assert res.words[0] == 4

    def test_space_directive(self):
        res = assemble(".space 12\n")
        assert res.words == [0, 0, 0]

    def test_error_has_line_context(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("nop\nbogus x, y\n")

    def test_unknown_register(self):
        with pytest.raises(AsmError, match="register"):
            assemble("addi q7, zero, 1\n")


class TestPseudoInstructions:
    def test_li_small(self):
        res = assemble("li a0, 100\n")
        assert len(res.words) == 1

    def test_li_large_pair(self):
        res = assemble("li a0, 0x12345\n")
        assert len(res.words) == 2

    def test_li_values_execute_correctly(self):
        for value in (0, 1, -1, 2047, -2048, 2048, 0x12345678, 0xFFFFF800, 0x7FF):
            src = f"""
                li a0, {value & 0xFFFFFFFF}
                li t0, 0x4000
                sw a0, 0(t0)
                ecall
            """
            st = _run(src)
            assert st.tohost == value & 0xFFFFFFFF, hex(value)

    def test_li_label_always_wide(self):
        # labels use the wide form even when their value is small
        res = assemble("li a0, data\ndata:\n.word 7\n")
        assert len(res.words) == 3

    def test_mv_j_ret_nop(self):
        src = """
            li a1, 42
            mv a0, a1
            j store
            nop
        store:
            li t0, 0x4000
            sw a0, 0(t0)
            ecall
        """
        assert _run(src).tohost == 42

    def test_call_ret(self):
        src = """
            li sp, 0x7FF0
            call f
            li t0, 0x4000
            sw a0, 0(t0)
            ecall
        f:
            li a0, 99
            ret
        """
        assert _run(src).tohost == 99

    def test_beqz_bnez(self):
        src = """
            li a0, 0
            beqz a0, yes
            li a1, 1
            j out
        yes:
            li a1, 2
        out:
            li t0, 0x4000
            sw a1, 0(t0)
            ecall
        """
        assert _run(src).tohost == 2

    def test_ble_bgt(self):
        src = """
            li a0, 3
            li a1, 5
            li a2, 0
            ble a0, a1, first     # 3 <= 5: taken
            j out
        first:
            addi a2, a2, 1
            bgt a1, a0, second    # 5 > 3: taken
            j out
        second:
            addi a2, a2, 1
        out:
            li t0, 0x4000
            sw a2, 0(t0)
            ecall
        """
        assert _run(src).tohost == 2

    def test_not_neg_seqz_snez(self):
        src = """
            li a0, 0
            seqz a1, a0     # 1
            li a2, 7
            snez a3, a2     # 1
            neg a4, a2      # -7
            not a5, a0      # ~0 = -1
            add a0, a1, a3
            add a0, a0, a4
            add a0, a0, a5
            li t0, 0x4000
            sw a0, 0(t0)
            ecall
        """
        assert _run(src).tohost == (1 + 1 - 7 - 1) & 0xFFFFFFFF


class TestMemoryOperands:
    def test_lw_sw_offsets(self):
        src = """
            li t0, 0x5000
            li a0, 11
            li a1, 22
            sw a0, 0(t0)
            sw a1, 4(t0)
            lw a2, 4(t0)
            lw a3, 0(t0)
            add a0, a2, a3
            li t0, 0x4000
            sw a0, 0(t0)
            ecall
        """
        assert _run(src).tohost == 33

    def test_negative_offset(self):
        src = """
            li t0, 0x5004
            li a0, 9
            sw a0, -4(t0)
            lw a1, -4(t0)
            li t0, 0x4000
            sw a1, 0(t0)
            ecall
        """
        assert _run(src).tohost == 9

    def test_bad_operand(self):
        with pytest.raises(AsmError):
            assemble("lw a0, [t0]\n")
