"""CPU tests: ISS unit behaviour, RTL differential testing, benchmarks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cpu import (
    RV32Core,
    assemble,
    build_suite,
    run_on_rtl,
    run_program,
    verify_benchmark,
)
from repro.cpu.golden import IssError
from repro.sim import Simulator


def _tohost_of(src: str) -> int:
    return run_program(assemble(src).words).tohost


def _rtl_tohost(src: str, max_cycles=50_000) -> int:
    words = assemble(src).words
    d = repro.compile(RV32Core(words, mem_words=8192))
    sim = Simulator(d.low)
    sim.reset()
    code = sim.run(max_cycles)
    assert code is not None, "RTL did not halt"
    return sim.peek("tohost")


_STORE = "li t6, 0x4000\nsw a0, 0(t6)\necall\n"


class TestIssInstructionSemantics:
    def test_arith(self):
        assert _tohost_of(f"li a0, 20\nli a1, 22\nadd a0, a0, a1\n{_STORE}") == 42
        assert _tohost_of(f"li a0, 5\nli a1, 7\nsub a0, a0, a1\n{_STORE}") == (5 - 7) & 0xFFFFFFFF

    def test_slt_signed_vs_unsigned(self):
        assert _tohost_of(f"li a1, -1\nli a2, 1\nslt a0, a1, a2\n{_STORE}") == 1
        assert _tohost_of(f"li a1, -1\nli a2, 1\nsltu a0, a1, a2\n{_STORE}") == 0

    def test_shifts(self):
        assert _tohost_of(f"li a1, 1\nslli a0, a1, 31\n{_STORE}") == 0x80000000
        assert _tohost_of(f"li a1, -8\nsrai a0, a1, 1\n{_STORE}") == 0xFFFFFFFC
        assert _tohost_of(f"li a1, -8\nsrli a0, a1, 1\n{_STORE}") == 0x7FFFFFFC

    def test_mul_div(self):
        assert _tohost_of(f"li a1, -3\nli a2, 5\nmul a0, a1, a2\n{_STORE}") == (-15) & 0xFFFFFFFF
        assert _tohost_of(f"li a1, -7\nli a2, 2\ndiv a0, a1, a2\n{_STORE}") == (-3) & 0xFFFFFFFF
        assert _tohost_of(f"li a1, -7\nli a2, 2\nrem a0, a1, a2\n{_STORE}") == (-1) & 0xFFFFFFFF

    def test_div_by_zero(self):
        assert _tohost_of(f"li a1, 5\nli a2, 0\ndiv a0, a1, a2\n{_STORE}") == 0xFFFFFFFF
        assert _tohost_of(f"li a1, 5\nli a2, 0\nrem a0, a1, a2\n{_STORE}") == 5
        assert _tohost_of(f"li a1, 5\nli a2, 0\ndivu a0, a1, a2\n{_STORE}") == 0xFFFFFFFF

    def test_div_overflow(self):
        src = f"li a1, 0x80000000\nli a2, -1\ndiv a0, a1, a2\n{_STORE}"
        assert _tohost_of(src) == 0x80000000

    def test_mulh_variants(self):
        assert _tohost_of(f"li a1, -1\nli a2, -1\nmulh a0, a1, a2\n{_STORE}") == 0
        assert _tohost_of(f"li a1, -1\nli a2, -1\nmulhu a0, a1, a2\n{_STORE}") == 0xFFFFFFFE
        assert _tohost_of(f"li a1, -1\nli a2, 2\nmulhsu a0, a1, a2\n{_STORE}") == 0xFFFFFFFF

    def test_jal_link(self):
        src = f"""
            jal ra, target
        target:
            mv a0, ra
            {_STORE}
        """
        assert _tohost_of(src) == 4

    def test_auipc(self):
        src = f"nop\nauipc a0, 1\n{_STORE}"
        assert _tohost_of(src) == 0x1004

    def test_x0_never_written(self):
        src = f"li a0, 7\naddi zero, a0, 1\nmv a0, zero\n{_STORE}"
        assert _tohost_of(src) == 0

    def test_runaway_detected(self):
        with pytest.raises(IssError, match="ecall"):
            run_program(assemble("loop: j loop\n").words, max_instructions=100)

    def test_misaligned_load_rejected(self):
        with pytest.raises(IssError, match="misaligned"):
            run_program(assemble("li t0, 2\nlw a0, 0(t0)\necall\n").words)


_ALU_OPS = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu",
]


class TestRtlDifferential:
    """RTL core vs golden-model ISS on generated programs."""

    @pytest.mark.parametrize("op", _ALU_OPS)
    def test_alu_op_matches_iss(self, op):
        cases = [(0, 0), (1, 2), (0xFFFFFFFF, 1), (0x80000000, 0xFFFFFFFF),
                 (123456789, 987654321), (0x7FFFFFFF, 2), (5, 0)]
        lines = ["li sp, 0x7FF0", "li s3, 0"]
        for a, b in cases:
            lines += [
                f"li a1, {a}",
                f"li a2, {b}",
                f"{op} a3, a1, a2",
                "add s3, s3, a3",
            ]
        lines += ["mv a0, s3", _STORE]
        src = "\n".join(lines)
        assert _rtl_tohost(src) == _tohost_of(src)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=8, deadline=None)
    def test_random_programs_match_iss(self, seed):
        """Random straight-line arithmetic programs with data-dependent
        branches: the RTL core must match the ISS checksum exactly."""
        import random

        rng = random.Random(seed)
        lines = ["li sp, 0x7FF0", "li s3, 0"]
        regs = ["t0", "t1", "t2", "a1", "a2", "a3"]
        for r in regs:
            lines.append(f"li {r}, {rng.randrange(0, 2**31)}")
        for i in range(30):
            op = rng.choice(_ALU_OPS)
            rd, rs1, rs2 = (rng.choice(regs) for _ in range(3))
            lines.append(f"{op} {rd}, {rs1}, {rs2}")
            if i % 7 == 3:
                # data-dependent forward skip
                lines.append(f"beq {rs1}, {rs2}, skip{i}")
                lines.append(f"addi s3, s3, {rng.randrange(1, 100)}")
                lines.append(f"skip{i}:")
            lines.append(f"add s3, s3, {rd}")
        lines += ["mv a0, s3", _STORE]
        src = "\n".join(lines)
        assert _rtl_tohost(src) == _tohost_of(src)

    def test_memory_program_matches(self):
        src = f"""
            li sp, 0x7FF0
            li t0, 0x5000
            li t1, 0
            li s3, 0
        fill:
            mul t2, t1, t1
            slli t3, t1, 2
            add t3, t0, t3
            sw t2, 0(t3)
            addi t1, t1, 1
            li t4, 20
            blt t1, t4, fill
            li t1, 0
        read:
            slli t3, t1, 2
            add t3, t0, t3
            lw t2, 0(t3)
            add s3, s3, t2
            addi t1, t1, 2
            li t4, 20
            blt t1, t4, read
            mv a0, s3
            {_STORE}
        """
        got = _rtl_tohost(src)
        assert got == _tohost_of(src)
        assert got == sum(i * i for i in range(0, 20, 2))

    def test_instret_matches_iss(self):
        src = f"li a0, 1\nli a1, 2\nadd a0, a0, a1\n{_STORE}"
        words = assemble(src).words
        iss = run_program(words)
        d = repro.compile(RV32Core(words, mem_words=1024))
        sim = Simulator(d.low)
        sim.reset()
        sim.run(100)
        # The RTL halts on ecall before updating instret that cycle, so it
        # reports one fewer retired instruction than the ISS (which counts
        # the ecall itself).
        assert sim.peek("instret") == iss.instret - 1


class TestBenchmarkSuite:
    def test_suite_has_paper_names(self):
        names = [b.name for b in build_suite()]
        assert names == [
            "multiply", "mm", "mt-matmul", "vvadd", "qsort",
            "dhrystone", "median", "towers", "spmv", "mt-vvadd",
        ]

    @pytest.mark.parametrize("name", [b.name for b in build_suite()])
    def test_benchmark_verifies(self, name):
        from repro.cpu import benchmark_by_name

        run = verify_benchmark(benchmark_by_name(name))
        assert run.exit_code == 0
        assert run.cycles > 100  # non-trivial workloads

    def test_debug_build_same_result(self):
        from repro.cpu import benchmark_by_name

        bench = benchmark_by_name("median")
        run = run_on_rtl(bench, debug=True)
        assert run.tohost == bench.expected
