"""FPU case-study substrate tests: golden model semantics and RTL parity."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.fpu import (
    FLAG_NV,
    FpuCmp,
    QNAN,
    RM_FEQ,
    RM_FLE,
    RM_FLT,
    SNAN,
    bits_to_float,
    compare_op,
    fcmp,
    float_to_bits,
    is_nan,
    is_signaling_nan,
)
from repro.sim import Simulator


class TestBitHelpers:
    def test_round_trip(self):
        # exactly representable in binary32
        for x in (0.0, 1.5, -2.25, 2.0**100, -(2.0**-100), 0.125):
            assert bits_to_float(float_to_bits(x)) == x

    def test_nan_classification(self):
        assert is_nan(QNAN) and not is_signaling_nan(QNAN)
        assert is_nan(SNAN) and is_signaling_nan(SNAN)
        assert not is_nan(float_to_bits(1.0))


class TestGoldenModel:
    @given(a=st.floats(allow_nan=False, allow_infinity=True, width=32),
           b=st.floats(allow_nan=False, allow_infinity=True, width=32))
    @settings(max_examples=120, deadline=None)
    def test_matches_python_ordering(self, a, b):
        r = fcmp(float_to_bits(a), float_to_bits(b), signaling=True)
        assert r.lt == int(a < b)
        assert r.eq == int(a == b)
        assert r.gt == int(a > b)
        assert r.flags == 0

    def test_zero_signs_equal(self):
        r = fcmp(float_to_bits(0.0), float_to_bits(-0.0), signaling=False)
        assert (r.lt, r.eq, r.gt) == (0, 1, 0)

    def test_quiet_nan_quiet_compare_no_flag(self):
        r = fcmp(QNAN, float_to_bits(1.0), signaling=False)
        assert (r.lt, r.eq, r.gt) == (0, 0, 0)
        assert r.flags == 0

    def test_quiet_nan_signaling_compare_flags(self):
        r = fcmp(QNAN, float_to_bits(1.0), signaling=True)
        assert r.flags == FLAG_NV

    def test_snan_always_flags(self):
        for signaling in (False, True):
            r = fcmp(SNAN, float_to_bits(1.0), signaling)
            assert r.flags == FLAG_NV

    def test_compare_op_selects(self):
        a, b = float_to_bits(1.0), float_to_bits(2.0)
        assert compare_op(a, b, RM_FLT) == (1, 0)
        assert compare_op(a, b, RM_FLE) == (1, 0)
        assert compare_op(a, a, RM_FEQ) == (1, 0)
        assert compare_op(b, a, RM_FLT) == (0, 0)

    def test_feq_quiet_semantics(self):
        # IEEE: feq on qNaN raises nothing; flt/fle raise invalid.
        assert compare_op(QNAN, QNAN, RM_FEQ) == (0, 0)
        assert compare_op(QNAN, QNAN, RM_FLT) == (0, FLAG_NV)
        assert compare_op(QNAN, QNAN, RM_FLE) == (0, FLAG_NV)


@pytest.fixture(scope="module")
def fixed_sim():
    d = repro.compile(FpuCmp(buggy=False))
    sim = Simulator(d.low)
    sim.reset()
    return sim


@pytest.fixture(scope="module")
def buggy_sim():
    d = repro.compile(FpuCmp(buggy=True))
    sim = Simulator(d.low)
    sim.reset()
    return sim


def _drive(sim, a, b, rm, wflags=1):
    sim.poke("in1", a)
    sim.poke("in2", b)
    sim.poke("rm", rm)
    sim.poke("wflags", wflags)
    return sim.peek("toint"), sim.peek("exc")


_INTERESTING = [
    float_to_bits(x)
    for x in (0.0, -0.0, 1.0, -1.0, 1.5, -2.25, 3.0, 1e30, -1e30, 1e-30,
              float("inf"), float("-inf"))
] + [QNAN, SNAN]


class TestRtlVsGolden:
    def test_fixed_matches_everywhere(self, fixed_sim):
        for a, b, rm in itertools.product(_INTERESTING, _INTERESTING, (0, 1, 2)):
            got = _drive(fixed_sim, a, b, rm)
            want = compare_op(a, b, rm)
            assert got == want, (hex(a), hex(b), rm)

    @given(a=st.floats(allow_nan=False, width=32), b=st.floats(allow_nan=False, width=32),
           rm=st.sampled_from([0, 1, 2]))
    @settings(max_examples=100, deadline=None)
    def test_fixed_matches_random(self, fixed_sim, a, b, rm):
        ab, bb = float_to_bits(a), float_to_bits(b)
        assert _drive(fixed_sim, ab, bb, rm) == compare_op(ab, bb, rm)

    def test_wflags_zero_gates_everything(self, fixed_sim):
        got = _drive(fixed_sim, SNAN, SNAN, RM_FLT, wflags=0)
        assert got == (0, 0)

    def test_buggy_mismatch_is_feq_qnan_only(self, buggy_sim):
        """The seeded bug's signature: spurious NV on quiet compares of
        quiet NaNs — exactly the paper's Sec. 4.2 scenario."""
        mismatches = []
        for a, b, rm in itertools.product(_INTERESTING, _INTERESTING, (0, 1, 2)):
            got = _drive(buggy_sim, a, b, rm)
            want = compare_op(a, b, rm)
            if got != want:
                mismatches.append((a, b, rm, got, want))
        assert mismatches, "bug must be observable"
        for a, b, rm, got, want in mismatches:
            assert rm == RM_FEQ
            assert is_nan(a) or is_nan(b)
            assert not (is_signaling_nan(a) or is_signaling_nan(b))
            assert got[0] == want[0]          # result value still correct
            assert got[1] == FLAG_NV != want[1]  # only the flags differ

    def test_signaling_stuck_high_in_rtl(self, buggy_sim, fixed_sim):
        """What the debugging session discovers: dcmp.io.signaling is
        permanently asserted in the buggy build."""
        for rm in (0, 1, 2):
            _drive(buggy_sim, float_to_bits(1.0), float_to_bits(2.0), rm)
            assert buggy_sim.get_value("FpuCmp.dcmp.io_signaling") == 1
        _drive(fixed_sim, float_to_bits(1.0), float_to_bits(2.0), RM_FEQ)
        assert fixed_sim.get_value("FpuCmp.dcmp.io_signaling") == 0
