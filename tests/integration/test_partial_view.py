"""Sec. 3.4 end to end: the generated IP sits inside a hand-written
testbench hierarchy the symbol table knows nothing about; hgdb locates it
and debugging works unchanged."""


import repro
from repro.core import CONTINUE, Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from tests.helpers import Accumulator, TwoLeaves, line_of


class TestWrappedDesign:
    def _wrapped(self, prefix):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low, top_path=prefix)
        st = SQLiteSymbolTable(write_symbol_table(d))
        return d, sim, st

    def test_breakpoints_hit_under_wrapper(self):
        d, sim, st = self._wrapped("TestHarness.soc.tile0.dut")
        hits = []

        def on_hit(h):
            hits.append((h.frames[0].instance_path, h.frames[0].var("acc")))
            return CONTINUE

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        sim.reset()
        sim.poke("TestHarness.soc.tile0.dut.en", 1)
        sim.poke("TestHarness.soc.tile0.dut.d", 3)
        sim.step(3)
        assert hits
        assert hits[0][0] == "TestHarness.soc.tile0.dut"
        assert [v for _p, v in hits] == [0, 3, 6]

    def test_instance_map_covers_children(self):
        d = repro.compile(TwoLeaves())
        sim = Simulator(d.low, top_path="TB.core")
        st = SQLiteSymbolTable(write_symbol_table(d))
        rt = Runtime(sim, st)
        assert rt.instance_map["TwoLeaves.a"] == "TB.core.a"
        assert rt.instance_map["TwoLeaves.b"] == "TB.core.b"

    def test_evaluate_respects_mapping(self):
        d, sim, st = self._wrapped("TB.dut")
        rt = Runtime(sim, st)
        sim.reset()
        sim.poke("TB.dut.d", 9)
        assert rt.evaluate("d * 2") == 18
