"""Trace-based reverse debugging end to end (paper Sec. 3.2/3.3):
capture a VCD from a live run, then debug it offline with full
reverse-continue across cycles."""

import pytest

import repro
from repro.core import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Runtime,
)
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from repro.trace import ReplayEngine, VcdWriter
from tests.helpers import Accumulator, line_of


@pytest.fixture()
def captured(tmp_path):
    d = repro.compile(Accumulator())
    path = str(tmp_path / "run.vcd")
    w = VcdWriter(path)
    sim = Simulator(d.low, trace=w)
    sim.reset()
    sim.poke("en", 1)
    sim.poke("d", 5)
    sim.step(10)
    w.close()
    st = SQLiteSymbolTable(write_symbol_table(d))
    return d, path, st


class TestOfflineDebugging:
    def test_breakpoints_on_replay(self, captured):
        d, path, st = captured
        rp = ReplayEngine.from_file(path)
        hits = []

        def on_hit(h):
            hits.append((h.time, h.frames[0].var("acc")))
            return CONTINUE

        rt = Runtime(rp, st, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        rp.run()
        # acc == 5*(t-1) for cycles 1..10 (en was high the whole run)
        assert hits[0] == (1, 0)
        assert hits[1] == (2, 5)
        assert all(v == 5 * (t - 1) for t, v in hits)

    def test_conditional_on_replay(self, captured):
        d, path, st = captured
        rp = ReplayEngine.from_file(path)
        hits = []
        rt = Runtime(rp, st, lambda h: (hits.append(h.time), CONTINUE)[1])
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line, condition="acc == 25")
        rp.run()
        assert hits == [6]

    def test_reverse_continue_over_trace(self, captured):
        d, path, st = captured
        rp = ReplayEngine.from_file(path)
        seq = []
        cmds = iter([CONTINUE, CONTINUE, REVERSE_CONTINUE, REVERSE_CONTINUE, DETACH])

        def on_hit(h):
            seq.append(h.time)
            return next(cmds, DETACH)

        rt = Runtime(rp, st, on_hit)
        rt.attach()
        _f, line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", line)
        rp.run()
        assert seq[:3] == [1, 2, 3]
        assert seq[3] == 2 and seq[4] == 1  # walked backwards through time

    def test_reverse_step_lands_on_previous_statement(self, captured):
        d, path, st = captured
        rp = ReplayEngine.from_file(path)
        seq = []
        cmds = iter([STEP, REVERSE_STEP, DETACH])

        def on_hit(h):
            seq.append((h.time, h.line))
            return next(cmds, DETACH)

        rt = Runtime(rp, st, on_hit)
        rt.attach()
        _f, acc_line = line_of(d, "acc")
        rt.add_breakpoint("helpers.py", acc_line)
        rp.run()
        assert seq[0][1] == acc_line
        assert seq[2] == seq[0]  # step forward then back returns exactly

    def test_set_value_rejected_on_replay(self, captured):
        d, path, st = captured
        rp = ReplayEngine.from_file(path)
        rt = Runtime(rp, st)
        from repro.sim import SimulatorError

        with pytest.raises(SimulatorError):
            rt.sim.set_value("Accumulator.d", 1)

    def test_values_identical_live_vs_replay(self, captured):
        """The invariant behind offline debugging: every frame the replay
        runtime reconstructs equals the live one."""
        d, path, st = captured
        # live reference
        live_hits = []
        sim = Simulator(d.low)
        rt_live = Runtime(sim, st, lambda h: (live_hits.append(h.frames[0].var("acc")), CONTINUE)[1])
        rt_live.attach()
        _f, line = line_of(d, "acc")
        rt_live.add_breakpoint("helpers.py", line)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(10)

        rp = ReplayEngine.from_file(path)
        replay_hits = []
        rt_rp = Runtime(rp, st, lambda h: (replay_hits.append(h.frames[0].var("acc")), CONTINUE)[1])
        rt_rp.attach()
        rt_rp.add_breakpoint("helpers.py", line)
        rp.run()
        assert replay_hits == live_hits
