"""Cross-cutting integration: Verilog export consistency and the complete
artifact set a release would ship (RTL + symbol table + trace)."""


import repro
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, dump_json, load_json, write_symbol_table
from repro.trace import ReplayEngine, VcdWriter
from repro.core import CONTINUE, Runtime
from tests.helpers import Accumulator, Counter, TwoLeaves, line_of


class TestShippableArtifacts:
    def test_full_artifact_flow(self, tmp_path):
        """Compile once; ship RTL (.v), symbols (.db + .json), and a trace
        (.vcd); an independent session debugs from disk artifacts alone."""
        design = repro.compile(Accumulator())

        v_path = tmp_path / "design.v"
        v_path.write_text(design.verilog())
        sym_path = str(tmp_path / "symbols.db")
        write_symbol_table(design, sym_path)
        json_path = tmp_path / "symbols.json"
        json_path.write_text(dump_json(SQLiteSymbolTable(sym_path)))

        vcd_path = str(tmp_path / "run.vcd")
        w = VcdWriter(vcd_path)
        sim = Simulator(design.low, trace=w)
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 3)
        sim.step(5)
        w.close()

        # Fresh session: everything from disk.
        st = load_json(json_path.read_text())
        replay = ReplayEngine.from_file(vcd_path)
        hits = []
        rt = Runtime(replay, st, lambda h: (hits.append(h.frames[0].var("acc")), CONTINUE)[1])
        rt.attach()
        filename = st.filenames()[0]
        _f, line = line_of(design, "acc")
        rt.add_breakpoint(filename, line)
        replay.run()
        assert hits == [0, 3, 6, 9, 12]

        verilog = v_path.read_text()
        assert "module Accumulator" in verilog

    def test_verilog_deterministic(self):
        """Two compiles of the same generator emit identical Verilog —
        required for diffable artifacts."""
        v1 = repro.compile(Counter()).verilog()
        v2 = repro.compile(Counter()).verilog()
        assert v1 == v2

    def test_symbol_table_deterministic(self):
        d1 = repro.compile(TwoLeaves())
        d2 = repro.compile(TwoLeaves())
        j1 = dump_json(SQLiteSymbolTable(write_symbol_table(d1)))
        j2 = dump_json(SQLiteSymbolTable(write_symbol_table(d2)))
        assert j1 == j2
