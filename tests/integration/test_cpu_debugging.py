"""Debugging the CPU substrate with hgdb: breakpoints in the CPU's own
generator source while it executes a RISC-V program — the RocketChip
debugging scenario at our scale."""

import pytest

import repro
from repro.core import CONTINUE, DETACH, Runtime
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


@pytest.fixture(scope="module")
def cpu_design():
    src = """
        li a0, 0
        li a1, 1
        li a2, 6
    loop:
        add a0, a0, a1
        addi a1, a1, 1
        blt a1, a2, loop
        li t0, 0x4000
        sw a0, 0(t0)
        ecall
    """
    words = assemble(src).words
    design = repro.compile(RV32Core(words, mem_words=1024))
    return design


class TestCpuBreakpoints:
    def test_break_on_store_statement(self, cpu_design):
        """Break where the CPU generator captures tohost stores."""
        entry = next(
            e for e in cpu_design.debug_info.all_entries() if e.sink == "tohost_r"
        )
        sim = Simulator(cpu_design.low)
        st = SQLiteSymbolTable(write_symbol_table(cpu_design))
        hits = []

        def on_hit(h):
            f = h.frames[0]
            hits.append((h.time, f.var("rs2_val")))
            return CONTINUE

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        rt.add_breakpoint(entry.info.filename, entry.info.line)
        sim.reset()
        sim.run(500)
        # tohost is stored exactly once, with the loop's sum 1+2+..+5 = 15
        assert len(hits) == 1
        assert hits[0][1] == 15

    def test_conditional_on_pc(self, cpu_design):
        """Conditional breakpoint on an architectural value (pc)."""
        entry = next(
            e for e in cpu_design.debug_info.all_entries() if e.sink == "pc"
        )
        sim = Simulator(cpu_design.low)
        st = SQLiteSymbolTable(write_symbol_table(cpu_design))
        hits = []
        rt = Runtime(sim, st, lambda h: (hits.append(h.frames[0].var("instr")), CONTINUE)[1])
        rt.attach()
        rt.add_breakpoint(
            entry.info.filename, entry.info.line, condition="pc == 12"
        )
        sim.reset()
        sim.run(500)
        # pc==12 is the `add a0, a0, a1` loop body: executed 5 times
        assert len(hits) == 5
        assert len(set(hits)) == 1  # same instruction word each visit

    def test_instance_threads_for_alu(self, cpu_design):
        """A breakpoint inside the Alu module reports the Alu instance."""
        alu_entries = [
            e for e in cpu_design.debug_info.all_entries() if e.module == "Alu"
        ]
        assert alu_entries
        sim = Simulator(cpu_design.low)
        st = SQLiteSymbolTable(write_symbol_table(cpu_design))
        seen = []

        def on_hit(h):
            seen.append(h.frames[0].instance_path)
            return DETACH

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        e = alu_entries[0]
        rt.add_breakpoint(e.info.filename, e.info.line)
        sim.reset()
        sim.run(100)
        assert seen and seen[0] == "RV32Core.alu"

    def test_benchmark_runs_with_idle_runtime(self):
        """Fig. 5 configuration: hgdb attached, no breakpoints — the
        benchmark result must be unaffected."""
        bench = benchmark_by_name("median")
        words = assemble(bench.source).words
        design = repro.compile(RV32Core(words, mem_words=8192))
        sim = Simulator(design.low)
        st = SQLiteSymbolTable(write_symbol_table(design))
        rt = Runtime(sim, st)
        rt.attach()
        sim.reset()
        code = sim.run(100_000)
        assert code == 0
        assert sim.peek("tohost") == bench.expected
        assert rt.stats_callbacks > 100
        assert rt.stats_bp_evals == 0
