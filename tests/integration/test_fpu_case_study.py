"""The paper's Sec. 4.2 case study as an integration test.

Script: the testbench notices the buggy FPU's output mismatching the
functional model on a floating-point comparison; the engineer sets a
breakpoint inside the ``when (in.wflags)`` block, inspects the ``dcmp.io``
bundle (reconstructed from flattened RTL signals), and discovers
``signaling`` permanently asserted.
"""

import pytest

import repro
from repro.client import ConsoleDebugger
from repro.core import DETACH, Runtime
from repro.fpu import FpuCmp, QNAN, RM_FEQ, compare_op, float_to_bits
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


def _mismatching_stimulus():
    """(a, b, rm) where the buggy FPU disagrees with the golden model."""
    return QNAN, float_to_bits(1.0), RM_FEQ


@pytest.fixture()
def buggy():
    design = repro.compile(FpuCmp(buggy=True))
    sim = Simulator(design.low, snapshots=16)
    st = SQLiteSymbolTable(write_symbol_table(design))
    return design, sim, st


class TestCaseStudy:
    def test_mismatch_detected_by_testbench(self, buggy):
        design, sim, _st = buggy
        a, b, rm = _mismatching_stimulus()
        sim.reset()
        sim.poke("in1", a)
        sim.poke("in2", b)
        sim.poke("rm", rm)
        sim.poke("wflags", 1)
        sim.step()
        got = (sim.peek("toint"), sim.peek("exc"))
        want = compare_op(a, b, rm)
        assert got != want, "testbench must observe the bug"
        assert got[0] == want[0]  # value fine; flags wrong (paper: 'the
        # final output toint seems to be correct but the exception flags
        # are incorrectly set')

    def test_breakpoint_in_wflags_block(self, buggy):
        design, sim, st = buggy
        hits = []

        def on_hit(h):
            hits.append(h)
            return DETACH

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        # The when(wflags) block: find the entry assigning `exc`.
        entry = next(
            e for e in design.debug_info.all_entries() if e.sink == "exc"
        )
        assert entry.enable_src == "(wflags == 1)"
        rt.add_breakpoint(entry.info.filename, entry.info.line)
        a, b, rm = _mismatching_stimulus()
        sim.poke("in1", a)
        sim.poke("in2", b)
        sim.poke("rm", rm)
        sim.poke("wflags", 1)
        sim.reset()
        sim.step(2)
        assert hits, "breakpoint inside when(wflags) must hit"

    def test_bundle_inspection_reveals_signaling(self, buggy):
        """hgdb 'has the ability to reconstruct structured variables from a
        list of flattened RTL signals' — dcmp.io shows signaling == 1."""
        design, sim, st = buggy
        found = {}

        def on_hit(h):
            # evaluate dcmp's io bundle in the FCmp child frame:
            fcmp_bp = [
                b for b in st.all_breakpoints()
                if b.instance_name == "FpuCmp.dcmp"
            ]
            frame = rt.frames.build(fcmp_bp[0], h.time)
            io = next(v for v in frame.local_vars if v.name == "io")
            found["io"] = {c.name: c.value for c in io.children}
            return DETACH

        rt = Runtime(sim, st, on_hit)
        rt.attach()
        entry = next(e for e in design.debug_info.all_entries() if e.sink == "exc")
        rt.add_breakpoint(entry.info.filename, entry.info.line)
        a, b, rm = _mismatching_stimulus()
        sim.poke("in1", a)
        sim.poke("in2", b)
        sim.poke("rm", rm)
        sim.poke("wflags", 1)
        sim.reset()
        sim.step(2)
        io = found["io"]
        # The smoking gun: quiet compare requested (rm==FEQ) yet signaling=1.
        assert io["signaling"] == 1
        assert io["a"] == a and io["b"] == b
        assert io["exceptionFlags"] == 0b10000

    def test_fix_eliminates_mismatch(self):
        """Correcting the signaling assignment fixes all stimuli — 'It can
        be easily fixed by correcting dcmp.io.signaling assignment.'"""
        design = repro.compile(FpuCmp(buggy=False))
        sim = Simulator(design.low)
        sim.reset()
        a, b, rm = _mismatching_stimulus()
        sim.poke("in1", a)
        sim.poke("in2", b)
        sim.poke("rm", rm)
        sim.poke("wflags", 1)
        sim.step()
        assert (sim.peek("toint"), sim.peek("exc")) == compare_op(a, b, rm)

    def test_full_console_walkthrough(self, buggy):
        """The complete IDE/console session of the case study."""
        design, sim, st = buggy
        entry = next(e for e in design.debug_info.all_entries() if e.sink == "exc")
        rt = Runtime(sim, st)
        dbg = ConsoleDebugger(
            rt,
            script=[
                "info threads",
                "locals",
                "p rm",
                "q",
            ],
        )
        rt.attach()
        a, b, rm = _mismatching_stimulus()
        sim.poke("in1", a)
        sim.poke("in2", b)
        sim.poke("rm", rm)
        sim.poke("wflags", 1)
        sim.reset()
        dbg.execute(f"b fcmp.py:{entry.info.line}")
        sim.step(2)
        joined = "\n".join(dbg.transcript)
        assert "stopped at fcmp.py" in joined
        assert "p rm" in joined and "rm = 2" in joined

    def test_generated_verilog_is_obscure(self, buggy):
        """Listing 4's point: the generated RTL hides the intent — muxes
        and SSA temporaries instead of the when-block structure."""
        design, _sim, _st = buggy
        verilog = design.verilog()
        assert "_ssa_" in verilog          # compiler temporaries
        assert "? " in verilog              # flattened control flow (muxes)
        assert "when" not in verilog        # source structure gone
