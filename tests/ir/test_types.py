"""Tests for the IR type system."""

import pytest

from repro.ir.types import (
    BundleType,
    ClockType,
    Field,
    ResetType,
    SIntType,
    UIntType,
    VecType,
    ground_like,
    is_signed,
    mask_for,
)


class TestGroundTypes:
    def test_uint_width(self):
        assert UIntType(8).bit_width() == 8
        assert UIntType(1).bit_width() == 1

    def test_sint_width(self):
        assert SIntType(16).bit_width() == 16

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            UIntType(0)
        with pytest.raises(ValueError):
            SIntType(-3)

    def test_ground_flags(self):
        assert UIntType(4).is_ground()
        assert SIntType(4).is_ground()
        assert ClockType().is_ground()
        assert ResetType().is_ground()

    def test_clock_reset_one_bit(self):
        assert ClockType().bit_width() == 1
        assert ResetType().bit_width() == 1

    def test_signedness(self):
        assert is_signed(SIntType(3))
        assert not is_signed(UIntType(3))
        assert not is_signed(ClockType())

    def test_equality_is_structural(self):
        assert UIntType(8) == UIntType(8)
        assert UIntType(8) != UIntType(9)
        assert UIntType(8) != SIntType(8)

    def test_str(self):
        assert str(UIntType(8)) == "UInt<8>"
        assert str(SIntType(2)) == "SInt<2>"


class TestAggregates:
    def test_bundle_field_lookup(self):
        b = BundleType((Field("a", UIntType(8)), Field("b", UIntType(1), flip=True)))
        assert b.field("a").typ == UIntType(8)
        assert b.field("b").flip
        assert b.has_field("a") and not b.has_field("c")

    def test_bundle_missing_field(self):
        b = BundleType((Field("a", UIntType(8)),))
        with pytest.raises(KeyError):
            b.field("nope")

    def test_bundle_width_sums(self):
        b = BundleType((Field("a", UIntType(8)), Field("b", UIntType(3))))
        assert b.bit_width() == 11

    def test_bundle_not_ground(self):
        b = BundleType((Field("a", UIntType(8)),))
        assert not b.is_ground()

    def test_vec_width(self):
        v = VecType(UIntType(8), 4)
        assert v.bit_width() == 32
        assert not v.is_ground()

    def test_vec_size_positive(self):
        with pytest.raises(ValueError):
            VecType(UIntType(8), 0)

    def test_nested_aggregate_width(self):
        inner = BundleType((Field("x", UIntType(4)), Field("y", SIntType(4))))
        outer = VecType(inner, 3)
        assert outer.bit_width() == 24


class TestHelpers:
    def test_ground_like_preserves_sign(self):
        assert ground_like(SIntType(4), 9) == SIntType(9)
        assert ground_like(UIntType(4), 9) == UIntType(9)

    def test_mask_for(self):
        assert mask_for(UIntType(4)) == 0xF
        assert mask_for(SIntType(8)) == 0xFF
