"""Reference-semantics tests, including hypothesis properties that pin the
evaluator to Python integer arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import expr as E
from repro.ir.eval import ExprInterpreter, eval_prim, interp, literal_raw, mask, to_signed
from repro.ir.types import SIntType, UIntType


class TestHelpers:
    def test_mask(self):
        assert mask(0x1FF, 8) == 0xFF
        assert mask(-1, 4) == 0xF

    def test_to_signed(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0x80, 8) == -128

    def test_interp(self):
        assert interp(0xFF, UIntType(8)) == 255
        assert interp(0xFF, SIntType(8)) == -1

    def test_literal_raw(self):
        assert literal_raw(E.sint(-1, 8)) == 0xFF
        assert literal_raw(E.uint(5, 8)) == 5


def _binop(op, a, b, wa, wb, signed=False):
    ta = SIntType(wa) if signed else UIntType(wa)
    tb = SIntType(wb) if signed else UIntType(wb)
    ctor = {
        "add": E.add, "sub": E.sub, "mul": E.mul, "div": E.div, "rem": E.rem,
        "and": E.and_, "or": E.or_, "xor": E.xor,
        "lt": E.lt, "leq": E.leq, "gt": E.gt, "geq": E.geq,
        "eq": E.eq, "neq": E.neq, "cat": E.cat,
    }[op]
    e = ctor(E.Ref("a", ta), E.Ref("b", tb))
    return eval_prim(op, e.params, (mask(a, wa), mask(b, wb)), (ta, tb), e.typ), e.typ


u8 = st.integers(min_value=0, max_value=255)
s8 = st.integers(min_value=-128, max_value=127)


class TestUnsignedSemantics:
    @given(u8, u8)
    def test_add(self, a, b):
        raw, typ = _binop("add", a, b, 8, 8)
        assert raw == a + b  # 9 bits never overflow for 8-bit operands

    @given(u8, u8)
    def test_sub_wraps(self, a, b):
        raw, typ = _binop("sub", a, b, 8, 8)
        assert raw == (a - b) & 0x1FF

    @given(u8, u8)
    def test_mul_exact(self, a, b):
        raw, _ = _binop("mul", a, b, 8, 8)
        assert raw == a * b

    @given(u8, u8)
    def test_div(self, a, b):
        raw, _ = _binop("div", a, b, 8, 8)
        assert raw == (a // b if b else 0)

    @given(u8, u8)
    def test_rem(self, a, b):
        raw, _ = _binop("rem", a, b, 8, 8)
        assert raw == (a % b if b else 0)

    @given(u8, u8)
    def test_comparisons(self, a, b):
        assert _binop("lt", a, b, 8, 8)[0] == int(a < b)
        assert _binop("geq", a, b, 8, 8)[0] == int(a >= b)
        assert _binop("eq", a, b, 8, 8)[0] == int(a == b)

    @given(u8, u8)
    def test_bitwise(self, a, b):
        assert _binop("and", a, b, 8, 8)[0] == a & b
        assert _binop("or", a, b, 8, 8)[0] == a | b
        assert _binop("xor", a, b, 8, 8)[0] == a ^ b

    @given(u8, u8)
    def test_cat(self, a, b):
        assert _binop("cat", a, b, 8, 8)[0] == (a << 8) | b


class TestSignedSemantics:
    @given(s8, s8)
    def test_add_signed(self, a, b):
        raw, typ = _binop("add", a, b, 8, 8, signed=True)
        assert to_signed(raw, 9) == a + b

    @given(s8, s8)
    def test_mul_signed(self, a, b):
        raw, _ = _binop("mul", a, b, 8, 8, signed=True)
        assert to_signed(raw, 16) == a * b

    @given(s8, s8)
    def test_div_truncates_toward_zero(self, a, b):
        raw, typ = _binop("div", a, b, 8, 8, signed=True)
        if b == 0:
            assert raw == 0
        else:
            import math

            expected = math.trunc(a / b)
            assert to_signed(raw, 9) == expected

    @given(s8, s8)
    def test_rem_sign_of_dividend(self, a, b):
        raw, _ = _binop("rem", a, b, 8, 8, signed=True)
        if b == 0:
            assert raw == 0
        else:
            # Python's math.fmod semantics: sign follows the dividend.
            import math

            assert to_signed(raw, 8) == int(math.fmod(a, b))

    @given(s8, s8)
    def test_signed_comparison(self, a, b):
        assert _binop("lt", a, b, 8, 8, signed=True)[0] == int(a < b)


class TestUnaryAndMisc:
    def test_not(self):
        t = UIntType(4)
        assert eval_prim("not", (), (0b1010,), (t,), t) == 0b0101

    def test_neg(self):
        t = UIntType(4)
        assert eval_prim("neg", (), (3,), (t,), SIntType(5)) == mask(-3, 5)

    def test_reductions(self):
        t = UIntType(4)
        one = UIntType(1)
        assert eval_prim("andr", (), (0xF,), (t,), one) == 1
        assert eval_prim("andr", (), (0xE,), (t,), one) == 0
        assert eval_prim("orr", (), (0,), (t,), one) == 0
        assert eval_prim("orr", (), (2,), (t,), one) == 1
        assert eval_prim("xorr", (), (0b1011,), (t,), one) == 1
        assert eval_prim("xorr", (), (0b1001,), (t,), one) == 0

    def test_bits(self):
        t = UIntType(8)
        assert eval_prim("bits", (5, 2), (0b10110100,), (t,), UIntType(4)) == 0b1101

    def test_pad_sign_extends(self):
        assert eval_prim("pad", (8,), (0xF,), (SIntType(4),), SIntType(8)) == 0xFF

    def test_pad_zero_extends(self):
        assert eval_prim("pad", (8,), (0xF,), (UIntType(4),), UIntType(8)) == 0x0F

    def test_static_shifts(self):
        t = UIntType(4)
        assert eval_prim("shl", (2,), (0b1011,), (t,), UIntType(6)) == 0b101100
        assert eval_prim("shr", (2,), (0b1011,), (t,), UIntType(2)) == 0b10

    def test_dynamic_shift_truncates(self):
        t = UIntType(4)
        assert eval_prim("dshl", (), (0b1011, 2), (t, UIntType(2)), t) == 0b1100

    def test_dshr_arithmetic_for_signed(self):
        t = SIntType(4)
        # -4 >> 1 == -2 arithmetic
        assert to_signed(eval_prim("dshr", (), (mask(-4, 4), 1), (t, UIntType(1)), t), 4) == -2

    def test_mux(self):
        t = UIntType(8)
        one = UIntType(1)
        assert eval_prim("mux", (), (1, 10, 20), (one, t, t), t) == 10
        assert eval_prim("mux", (), (0, 10, 20), (one, t, t), t) == 20

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            eval_prim("bogus", (), (), (), UIntType(1))


class TestExprInterpreter:
    def test_interprets_tree(self):
        env = {"a": 3, "b": 5}
        it = ExprInterpreter(lambda n: env[n])
        e = E.add(E.mul(E.Ref("a", UIntType(4)), E.Ref("b", UIntType(4))), E.uint(1, 8))
        assert it.eval(e) == 16

    def test_memread(self):
        mems = {"m": [10, 20, 30]}
        it = ExprInterpreter(lambda n: 2, lambda m, a: mems[m][a])
        e = E.MemRead("m", E.Ref("addr", UIntType(2)), UIntType(8))
        assert it.eval(e) == 30

    def test_memread_without_handler_raises(self):
        it = ExprInterpreter(lambda n: 0)
        e = E.MemRead("m", E.uint(0, 2), UIntType(8))
        with pytest.raises(ValueError):
            it.eval(e)
