"""Property-based check of ExpandWhens semantics.

Random nested when-trees with last-connect-wins assignments are compiled
and simulated; the result must match a direct Python interpretation of the
generator semantics.  This is the invariant everything else rests on: the
SSA transform must never change behaviour.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.hgf as hgf
from repro.sim import Simulator

# A program is a list of statements:
#   ("assign", value_index)
#   ("when", bit_index, then_program, else_program)
_VALUE_POOL = 6  # a, b, c, (a+b)&0xFF, a^c, 0x5A
_BIT_POOL = 3    # a[0], b[1], c[2]


def _statements(depth: int):
    assign = st.tuples(st.just("assign"), st.integers(0, _VALUE_POOL - 1))
    if depth == 0:
        return st.lists(assign, min_size=0, max_size=3)
    sub = _statements(depth - 1)
    when = st.tuples(
        st.just("when"), st.integers(0, _BIT_POOL - 1), sub, sub
    )
    return st.lists(st.one_of(assign, when), min_size=0, max_size=3)


def _values(a: int, b: int, c: int) -> list[int]:
    return [a, b, c, (a + b) & 0xFF, a ^ c, 0x5A]


def _bits(a: int, b: int, c: int) -> list[int]:
    return [a & 1, (b >> 1) & 1, (c >> 2) & 1]


def _interpret(program, a: int, b: int, c: int, current: int) -> int:
    """Reference semantics: sequential last-connect-wins under conditions."""
    values = _values(a, b, c)
    bits = _bits(a, b, c)
    for stmt in program:
        if stmt[0] == "assign":
            current = values[stmt[1]]
        else:
            _kind, bit, then_p, else_p = stmt
            branch = then_p if bits[bit] else else_p
            current = _interpret(branch, a, b, c, current)
    return current


def _build_module(program):
    class RandomWhens(hgf.Module):
        def __init__(self):
            super().__init__()
            self.a = self.input("a", 8)
            self.b = self.input("b", 8)
            self.c = self.input("c", 8)
            self.o = self.output("o", 8)
            values = [
                self.a, self.b, self.c,
                (self.a + self.b)[7:0], self.a ^ self.c, self.lit(0x5A, 8),
            ]
            bits = [self.a[0], self.b[1], self.c[2]]
            self.o <<= 0  # default; the reference starts from 0 too

            def emit(stmts):
                for stmt in stmts:
                    if stmt[0] == "assign":
                        self.o <<= values[stmt[1]]
                    else:
                        _kind, bit, then_p, else_p = stmt
                        with self.when(bits[bit] == 1):
                            emit(then_p)
                        with self.otherwise():
                            emit(else_p)

            emit(program)

    return RandomWhens()


class TestExpandWhensEquivalence:
    @given(
        program=_statements(depth=2),
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        c=st.integers(0, 255),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_when_trees(self, program, a, b, c):
        design = repro.compile(_build_module(program))
        sim = Simulator(design.low)
        sim.poke("a", a)
        sim.poke("b", b)
        sim.poke("c", c)
        expected = _interpret(program, a, b, c, current=0)
        assert sim.peek("o") == expected, program

    @given(program=_statements(depth=2))
    @settings(max_examples=30, deadline=None)
    def test_debug_and_optimized_agree(self, program):
        """Optimization must never change observable behaviour."""
        d_opt = repro.compile(_build_module(program))
        d_dbg = repro.compile(_build_module(program), debug=True)
        s_opt = Simulator(d_opt.low)
        s_dbg = Simulator(d_dbg.low)
        for a, b, c in [(0, 0, 0), (255, 255, 255), (0x35, 0xC2, 0x9D), (1, 2, 4)]:
            for s in (s_opt, s_dbg):
                s.poke("a", a)
                s.poke("b", b)
                s.poke("c", c)
            assert s_opt.peek("o") == s_dbg.peek("o"), (program, a, b, c)
