"""Verilog emission tests (structure, not simulation — our simulator
executes the IR directly; the emitter exists for interop and for the
Listing 4 readability contrast)."""

import re
import repro
import repro.hgf as hgf
from tests.helpers import AluLike, Counter, TwoLeaves


def _emit(mod, debug=False) -> str:
    return repro.compile(mod, debug=debug).verilog()


class TestModuleStructure:
    def test_module_ports(self):
        v = _emit(Counter())
        assert "module Counter (" in v
        assert "input clock" in v
        assert "output [7:0] out" in v
        assert v.strip().endswith("endmodule")

    def test_one_bit_ports_have_no_range(self):
        v = _emit(Counter())
        assert re.search(r"input en", v)
        assert "[0:0]" not in v

    def test_register_always_block(self):
        v = _emit(Counter())
        assert "always @(posedge clock)" in v
        assert "if (reset) count <= 8'h0;" in v

    def test_wire_assignments(self):
        v = _emit(AluLike())
        assert "assign res = " in v

    def test_instances_wired(self):
        v = _emit(TwoLeaves())
        # two child modules + instantiations with port maps
        assert v.count("module ") == 3
        assert ".i(" in v and ".o(" in v
        assert re.search(r"AluLeaf\w* a \(", v)

    def test_memory_decl_and_init(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 2)
                self.o = self.output("o", 8)
                rom = self.mem("rom", 8, 4, init=[1, 2, 3, 4])
                self.o <<= rom[self.a]

        v = _emit(M())
        assert "reg [7:0] rom [0:3];" in v
        assert "initial begin" in v
        assert "rom[2] = 8'h3;" in v

    def test_mem_write_in_always(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.en = self.input("en", 1)
                self.d = self.input("d", 8)
                self.o = self.output("o", 8)
                m = self.mem("m", 8, 4)
                m.write(self.lit(0, 2), self.d, self.en)
                self.o <<= m[0]

        v = _emit(M())
        assert re.search(r"if \(.*\) m\[.*\] <= ", v)

    def test_stop_emits_finish(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.go = self.input("go", 1)
                self.o = self.output("o", 1)
                self.o <<= 0
                self.stop(self.go == 1, 0)

        v = _emit(M())
        assert "$finish;" in v

    def test_printf_emits_display(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 8)
                self.o <<= self.a
                self.printf(self.a == 1, "a={}", self.a)

        v = _emit(M())
        assert '$display("a=%d"' in v


class TestExpressions:
    def test_signed_operands_wrapped(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", typ=hgf.SInt(8))
                self.b = self.input("b", typ=hgf.SInt(8))
                self.lt = self.output("lt", 1)
                self.lt <<= self.a < self.b

        v = _emit(M())
        assert "$signed" in v

    def test_literal_format(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                self.o <<= 0xAB

        v = _emit(M(), debug=True)  # keep the literal un-folded path visible
        assert "8'hab" in v

    def test_mux_ternary(self):
        v = _emit(AluLike())
        assert "?" in v and ":" in v

    def test_cat_braces(self):
        v = _emit(TwoLeaves())
        assert re.search(r"\{.*, .*\}", v)

    def test_listing4_contrast(self):
        """The debug build's Verilog is visibly generator output: SSA temps
        everywhere and no trace of the when-structure."""
        v = _emit(AluLike(), debug=True)
        assert v.count("_ssa_") >= 4
        assert "when" not in v
