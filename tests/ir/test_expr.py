"""Tests for IR expressions and width-inference rules."""

import pytest

from repro.ir import expr as E
from repro.ir.expr import Literal, PrimOp, Ref, expr_refs, map_expr, walk_expr
from repro.ir.types import BundleType, Field, SIntType, UIntType, VecType


def u(name, w):
    return Ref(name, UIntType(w))


def s(name, w):
    return Ref(name, SIntType(w))


class TestLiterals:
    def test_uint_range_checked(self):
        E.uint(255, 8)
        with pytest.raises(ValueError):
            E.uint(256, 8)
        with pytest.raises(ValueError):
            E.uint(-1, 8)

    def test_sint_range_checked(self):
        E.sint(-128, 8)
        E.sint(127, 8)
        with pytest.raises(ValueError):
            E.sint(128, 8)
        with pytest.raises(ValueError):
            E.sint(-129, 8)


class TestWidthInference:
    def test_add_width(self):
        assert E.add(u("a", 8), u("b", 4)).typ == UIntType(9)

    def test_add_signed_propagates(self):
        assert E.add(s("a", 8), u("b", 8)).typ == SIntType(9)

    def test_sub_width(self):
        assert E.sub(u("a", 3), u("b", 7)).typ == UIntType(8)

    def test_mul_width(self):
        assert E.mul(u("a", 8), u("b", 4)).typ == UIntType(12)

    def test_mul_signed(self):
        assert E.mul(s("a", 32), s("b", 32)).typ == SIntType(64)

    def test_div_width(self):
        assert E.div(u("a", 8), u("b", 4)).typ == UIntType(8)
        assert E.div(s("a", 8), s("b", 4)).typ == SIntType(9)

    def test_rem_width(self):
        assert E.rem(u("a", 8), u("b", 4)).typ == UIntType(4)

    def test_comparisons_one_bit(self):
        for op in (E.lt, E.leq, E.gt, E.geq, E.eq, E.neq):
            assert op(u("a", 8), s("b", 4)).typ == UIntType(1)

    def test_bitwise_max_width(self):
        assert E.and_(u("a", 8), u("b", 3)).typ == UIntType(8)
        assert E.xor(u("a", 2), u("b", 9)).typ == UIntType(9)

    def test_not_same_width_unsigned(self):
        assert E.not_(s("a", 5)).typ == UIntType(5)

    def test_neg_grows_signed(self):
        assert E.neg(u("a", 8)).typ == SIntType(9)

    def test_reductions(self):
        for op in (E.andr, E.orr, E.xorr):
            assert op(u("a", 9)).typ == UIntType(1)

    def test_cat_width(self):
        assert E.cat(u("a", 8), u("b", 3)).typ == UIntType(11)

    def test_bits(self):
        assert E.bits(u("a", 8), 6, 2).typ == UIntType(5)

    def test_bits_bounds_checked(self):
        with pytest.raises(ValueError):
            E.bits(u("a", 8), 8, 0)
        with pytest.raises(ValueError):
            E.bits(u("a", 8), 2, 3)

    def test_pad_grows_only(self):
        assert E.pad(u("a", 8), 16).typ == UIntType(16)
        assert E.pad(u("a", 8), 4).typ == UIntType(8)
        assert E.pad(s("a", 8), 16).typ == SIntType(16)

    def test_shl_shr(self):
        assert E.shl(u("a", 8), 3).typ == UIntType(11)
        assert E.shr(u("a", 8), 3).typ == UIntType(5)
        assert E.shr(u("a", 8), 10).typ == UIntType(1)

    def test_dynamic_shifts_keep_width(self):
        assert E.dshl(u("a", 8), u("b", 3)).typ == UIntType(8)
        assert E.dshr(s("a", 8), u("b", 3)).typ == SIntType(8)

    def test_mux_width(self):
        m = E.mux(u("c", 1), u("a", 8), u("b", 4))
        assert m.typ == UIntType(8)

    def test_mux_cond_must_be_one_bit(self):
        with pytest.raises(TypeError):
            E.mux(u("c", 2), u("a", 8), u("b", 8))

    def test_mux_sign_mismatch_rejected(self):
        with pytest.raises(TypeError):
            E.mux(u("c", 1), s("a", 8), u("b", 8))

    def test_casts(self):
        assert E.as_uint(s("a", 8)).typ == UIntType(8)
        assert E.as_sint(u("a", 8)).typ == SIntType(8)


class TestPathExpressions:
    def test_sub_field(self):
        b = BundleType((Field("x", UIntType(8)),))
        r = Ref("io", b)
        f = E.sub_field(r, "x")
        assert f.typ == UIntType(8)
        assert str(f) == "io.x"

    def test_sub_field_requires_bundle(self):
        with pytest.raises(TypeError):
            E.sub_field(u("a", 8), "x")

    def test_sub_index(self):
        v = Ref("v", VecType(UIntType(8), 4))
        i = E.sub_index(v, 2)
        assert i.typ == UIntType(8)

    def test_sub_index_bounds(self):
        v = Ref("v", VecType(UIntType(8), 4))
        with pytest.raises(IndexError):
            E.sub_index(v, 4)


class TestTraversal:
    def test_walk_expr_visits_all(self):
        e = E.add(E.mul(u("a", 4), u("b", 4)), E.uint(3, 8))
        kinds = [type(x).__name__ for x in walk_expr(e)]
        assert kinds.count("PrimOp") == 2
        assert kinds.count("Ref") == 2
        assert kinds.count("Literal") == 1

    def test_expr_refs(self):
        e = E.add(E.mul(u("a", 4), u("b", 4)), u("a", 8))
        assert expr_refs(e) == {"a", "b"}

    def test_expr_refs_includes_memories(self):
        e = E.MemRead("m", u("addr", 4), UIntType(8))
        assert expr_refs(e) == {"m", "addr"}

    def test_map_expr_identity_preserved(self):
        e = E.add(u("a", 4), u("b", 4))
        assert map_expr(e, lambda x: x) is e

    def test_map_expr_rebuilds(self):
        e = E.add(u("a", 4), u("b", 4))
        swapped = map_expr(e, lambda x: u("c", 4) if x.name == "a" else x)
        assert expr_refs(swapped) == {"b", "c"}
