"""Tests for LowerTypes, ExpandWhens, and the optimization passes."""


import repro
import repro.hgf as hgf
from repro.ir.debug import DebugInfo
from repro.ir.expr import Literal
from repro.ir.passes import (
    check_high_form,
    check_low_form,
    const_prop,
    cse,
    dce,
    expand_whens,
    lower_types,
)
from repro.ir.passes.inline_nodes import inline_nodes
from repro.ir.passes.lower_types import flat_name, type_leaves
from repro.ir.stmt import Connect, DefNode, DontTouch
from repro.ir.types import BundleType, Field, UIntType, VecType


class TestTypeLeaves:
    def test_ground_single_leaf(self):
        leaves = list(type_leaves(UIntType(8)))
        assert leaves == [((), UIntType(8), False)]

    def test_bundle_leaves_in_order(self):
        b = BundleType((Field("a", UIntType(8)), Field("b", UIntType(1), flip=True)))
        leaves = list(type_leaves(b))
        assert [(p, f) for p, _t, f in leaves] == [(("a",), False), (("b",), True)]

    def test_vec_leaves(self):
        v = VecType(UIntType(4), 3)
        assert [p for p, _t, _f in type_leaves(v)] == [("0",), ("1",), ("2",)]

    def test_nested_flip_xor(self):
        inner = BundleType((Field("x", UIntType(1), flip=True),))
        outer = BundleType((Field("f", inner, flip=True),))
        (_parts, _t, flipped), = type_leaves(outer)
        assert flipped is False  # double flip cancels

    def test_flat_name(self):
        assert flat_name("io", ("a", "b")) == "io_a_b"
        assert flat_name("io", ()) == "io"


class _BundleMod(hgf.Module):
    def __init__(self):
        super().__init__()
        self.io = self.input(
            "io",
            typ=hgf.Bundle(
                a=hgf.UInt(8),
                b=hgf.Bundle(lo=hgf.UInt(4), hi=hgf.UInt(4)),
                out=hgf.Flip(hgf.UInt(8)),
            ),
        )
        self.io.out <<= self.io.a + hgf.cat(self.io.b.hi, self.io.b.lo)


class TestLowerTypes:
    def test_bundle_ports_flattened(self):
        circuit = hgf.elaborate(_BundleMod())
        debug = DebugInfo()
        low = lower_types(circuit, debug)
        names = {p.name: p.direction for p in low.top.ports}
        assert names["io_a"] == "input"
        assert names["io_b_lo"] == "input"
        assert names["io_out"] == "output"  # flipped

    def test_rename_map_recorded(self):
        circuit = hgf.elaborate(_BundleMod())
        debug = DebugInfo()
        lower_types(circuit, debug)
        rm = debug.modules[circuit.main].rename_map
        assert rm["io_b_hi"] == "io.b.hi"
        assert rm["io_out"] == "io.out"

    def test_vec_ports(self):
        class VecMod(hgf.Module):
            def __init__(self):
                super().__init__()
                self.v = self.input("v", typ=hgf.Vec(3, hgf.UInt(8)))
                self.o = self.output("o", 8)
                self.o <<= self.v[1]

        circuit = hgf.elaborate(VecMod())
        low = lower_types(circuit, DebugInfo())
        names = [p.name for p in low.top.ports]
        assert "v_0" in names and "v_2" in names

    def test_bulk_connect_expands_with_flips(self):
        class Child(hgf.Module):
            def __init__(self):
                super().__init__()
                self.io = self.input(
                    "io", typ=hgf.Bundle(d=hgf.UInt(8), q=hgf.Flip(hgf.UInt(8)))
                )
                self.io.q <<= self.io.d

        class Parent(hgf.Module):
            def __init__(self):
                super().__init__()
                self.io = self.input(
                    "io", typ=hgf.Bundle(d=hgf.UInt(8), q=hgf.Flip(hgf.UInt(8)))
                )
                c = self.instance("c", Child())
                c.io <<= self.io  # bulk connect with a flipped field

        circuit = hgf.elaborate(Parent())
        low = lower_types(circuit, DebugInfo())
        # After lowering, parent drives c.io_d and reads c.io_q.
        targets = []
        for s in low.top.body:
            if isinstance(s, Connect):
                targets.append(str(s.loc))
        assert "c.io_d" in targets
        assert "io_q" in targets  # parent's own flipped output driven from child


class TestExpandWhens:
    def _compile(self, mod):
        circuit = hgf.elaborate(mod)
        debug = DebugInfo()
        low = lower_types(circuit, debug)
        low, lint = expand_whens(low, debug)
        return low, debug, lint

    def test_single_driver_per_sink(self):
        from tests.helpers import AluLike

        low, _debug, _ = self._compile(AluLike())
        check_low_form(low)

    def test_last_connect_wins(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                self.o <<= 1
                self.o <<= 2

        low, _d, _ = self._compile(M())
        final = [s for s in low.top.body if isinstance(s, Connect)]
        (conn,) = [c for c in final if str(c.loc) == "o"]
        # the driver chain resolves to the second ssa node
        assert "_ssa_o_1" in str(conn.expr)

    def test_enable_condition_recorded(self):
        from tests.helpers import Accumulator

        low, debug, _ = self._compile(Accumulator())
        entries = [e for e in debug.all_entries() if e.sink == "acc"]
        assert len(entries) == 1
        assert entries[0].enable is not None
        assert "(en == 1)" == entries[0].enable_src

    def test_else_branch_negated_enable(self):
        from tests.helpers import AluLeaf

        low, debug, _ = self._compile(AluLeaf())
        entries = [e for e in debug.all_entries() if e.sink == "o"]
        assert len(entries) == 2
        assert entries[0].enable_src == "(i > 2)"
        assert entries[1].enable_src == "!(i > 2)"

    def test_unconnected_wire_lints_and_defaults(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                w = self.wire("w", 8)
                self.o <<= w

        low, _d, lint = self._compile(M())
        assert any("never driven" in w for w in lint)
        check_low_form(low)

    def test_register_holds_without_connect(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.en = self.input("en", 1)
                self.o = self.output("o", 8)
                r = self.reg("r", 8, init=0)
                with self.when(self.en == 1):
                    r <<= r + 1
                self.o <<= r

        low, _d, _ = self._compile(M())
        # register's driver is a mux whose false branch is the register
        conns = {str(s.loc): s for s in low.top.body if isinstance(s, Connect)}
        assert "mux" in str(conns["r"].expr)

    def test_listing12_ssa_versions(self):
        """Paper Listings 1/2: the loop unrolls into versioned nodes with
        per-iteration enable conditions."""
        from tests.helpers import SumLoop

        low, debug, _ = self._compile(SumLoop(2))
        sums = [e for e in debug.all_entries() if e.sink == "sum"]
        # sum_0 (init), sum_1, sum_2 — one per unrolled iteration.
        assert len(sums) == 3
        nodes = [e.node for e in sums]
        assert nodes == ["sum_0", "sum_1", "sum_2"]
        # iterations carry the data[i] % 2 enable conditions
        assert "data[0]" in (sums[1].enable_src or "")
        assert "data[1]" in (sums[2].enable_src or "")

    def test_listing12_var_map_context(self):
        """At each statement, `sum` maps to the version *before* it."""
        from tests.helpers import SumLoop

        low, debug, _ = self._compile(SumLoop(2))
        sums = [e for e in debug.all_entries() if e.sink == "sum"]
        assert sums[1].var_map.get("sum") == "sum_0"
        assert sums[2].var_map.get("sum") == "sum_1"


class TestOptimizations:
    def _lowered(self, mod, annotations=None):
        circuit = hgf.elaborate(mod)
        debug = DebugInfo()
        low = lower_types(circuit, debug)
        low, _ = expand_whens(low, debug)
        if annotations:
            low.annotations.extend(annotations)
        return low, debug

    def test_const_prop_folds_literals(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                a = self.node("a", self.lit(3, 8))
                b = self.node("b", (a + 4)[7:0])
                self.o <<= b

        low, _ = self._lowered(M())
        low = const_prop(low)
        node_b = [s for s in low.top.body if isinstance(s, DefNode) and s.name == "b"]
        assert isinstance(node_b[0].value, Literal)
        assert node_b[0].value.value == 7

    def test_const_prop_respects_dont_touch(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                a = self.node("a", self.lit(3, 8))
                self.o <<= (a + 1)[7:0]

        low, _ = self._lowered(M())
        low.annotations.append(DontTouch(low.main, "a"))
        low = const_prop(low)
        # 'a' itself still exists and its use is not folded into a literal
        conns = [s for s in low.top.body if isinstance(s, Connect) and str(s.loc) == "o"]
        assert not isinstance(conns[0].expr, Literal)

    def test_cse_merges_duplicates(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o1 = self.output("o1", 9)
                self.o2 = self.output("o2", 9)
                x = self.node("x", self.a + 1)
                y = self.node("y", self.a + 1)
                self.o1 <<= x
                self.o2 <<= y

        low, _ = self._lowered(M())
        low, renames = cse(low)
        assert renames[low.main].get("y") == "x"
        names = [s.name for s in low.top.body if isinstance(s, DefNode)]
        assert "y" not in names

    def test_dce_removes_unused(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 8)
                self.node("dead", self.a + 1)
                self.o <<= self.a

        low, _ = self._lowered(M())
        low, alive = dce(low)
        names = [s.name for s in low.top.body if isinstance(s, DefNode)]
        assert "dead" not in names
        assert "dead" not in alive[low.main]

    def test_dce_keeps_dont_touch(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 8)
                self.node("dead", self.a + 1)
                self.o <<= self.a

        low, _ = self._lowered(M())
        low.annotations.append(DontTouch(low.main, "dead"))
        low, _alive = dce(low)
        names = [s.name for s in low.top.body if isinstance(s, DefNode)]
        assert "dead" in names

    def test_inline_single_use(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 9)
                x = self.node("x", self.a + 1)
                self.o <<= x

        low, _ = self._lowered(M())
        low = inline_nodes(low)
        names = {s.name for s in low.top.body if isinstance(s, DefNode)}
        assert all(n.startswith("_ssa") for n in names) or "x" not in names

    def test_inline_keeps_multi_use(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o1 = self.output("o1", 9)
                self.o2 = self.output("o2", 9)
                x = self.node("x", self.a + 1)
                self.o1 <<= x
                self.o2 <<= x

        low, _ = self._lowered(M())
        low = inline_nodes(low)
        names = {s.name for s in low.top.body if isinstance(s, DefNode)}
        assert "x" in names


class TestCompilePipeline:
    def test_debug_mode_keeps_more_entries(self):
        from tests.helpers import TwoLeaves

        opt = repro.compile(TwoLeaves())
        dbg = repro.compile(TwoLeaves(), debug=True)
        assert len(dbg.debug_info.all_entries()) >= len(opt.debug_info.all_entries())

    def test_optimized_drops_constant_statements(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                self.o <<= 42  # constant: optimized away in release mode

        opt = repro.compile(M())
        dbg = repro.compile(M(), debug=True)
        assert len(opt.debug_info.all_entries()) < len(dbg.debug_info.all_entries())

    def test_low_form_valid_both_modes(self):
        from tests.helpers import Counter

        for debug in (False, True):
            d = repro.compile(Counter(), debug=debug)
            check_low_form(d.low)

    def test_high_form_checked(self):
        from tests.helpers import Counter

        d = repro.compile(Counter())
        check_high_form(d.high)
