"""Diagnostic core: severity ordering, formatting, JSON schema, collector."""

import pytest

from repro.ir.source import UNKNOWN, SourceInfo
from repro.lint import (
    Diagnostic,
    DiagnosticCollector,
    Related,
    Severity,
    diagnostics_to_json,
    format_diagnostics,
    has_errors,
    worst_severity,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.WARNING, Severity.ERROR]) is Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARNING) == "warning"

    def test_parse_roundtrip(self):
        for s in Severity:
            assert Severity.parse(str(s)) is s
        assert Severity.parse(" ERROR ") is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


def _diag(line=10, rule="undriven", severity=Severity.WARNING, **kw):
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=kw.pop("message", "wire 'w' is never driven"),
        module=kw.pop("module", "Top"),
        location=SourceInfo("design.py", line, 0),
        **kw,
    )


class TestDiagnostic:
    def test_format_is_file_line_rule_message(self):
        text = _diag().format()
        assert text == (
            "design.py:10: warning: [undriven] wire 'w' is never driven "
            "(module Top)"
        )

    def test_format_unknown_location(self):
        d = Diagnostic("missing-main", Severity.ERROR, "main missing")
        assert d.format().startswith("<unknown>: error: [missing-main]")

    def test_format_renders_related(self):
        d = _diag(
            related=(Related(SourceInfo("design.py", 4, 0), "earlier"),)
        )
        lines = d.format().splitlines()
        assert lines[1] == "    related: design.py:4: earlier"

    def test_to_json_fields(self):
        doc = _diag().to_json()
        assert doc["rule"] == "undriven"
        assert doc["severity"] == "warning"
        assert doc["file"] == "design.py"
        assert doc["line"] == 10
        assert doc["related"] == []

    def test_sort_unknown_locations_last(self):
        known = _diag(line=50)
        unknown = Diagnostic("x", Severity.ERROR, "m", location=UNKNOWN)
        ordered = sorted([unknown, known], key=Diagnostic.sort_key)
        assert ordered == [known, unknown]

    def test_sort_by_location_then_severity(self):
        late = _diag(line=20)
        early_warn = _diag(line=5)
        early_err = _diag(line=5, severity=Severity.ERROR, rule="comb-cycle")
        ordered = sorted(
            [late, early_warn, early_err], key=Diagnostic.sort_key
        )
        assert ordered == [early_err, early_warn, late]


class TestCollector:
    def test_emit_levels_and_worst(self):
        out = DiagnosticCollector()
        out.info("a", "i")
        out.warning("b", "w")
        assert out.worst() is Severity.WARNING
        out.error("c", "e")
        assert out.worst() is Severity.ERROR
        assert len(out) == 3
        assert [d.rule for d in out] == ["a", "b", "c"]

    def test_empty_worst_is_none(self):
        assert DiagnosticCollector().worst() is None
        assert worst_severity([]) is None

    def test_has_errors(self):
        out = DiagnosticCollector()
        out.warning("a", "w")
        assert not has_errors(out)
        out.error("b", "e")
        assert has_errors(out)


class TestJsonDocument:
    def test_counts_and_order(self):
        doc = diagnostics_to_json(
            [_diag(line=9), _diag(line=2, severity=Severity.ERROR)],
            design="Top",
        )
        assert doc["version"] == 1
        assert doc["design"] == "Top"
        assert doc["counts"] == {"error": 1, "warning": 1}
        assert [d["line"] for d in doc["diagnostics"]] == [2, 9]

    def test_json_serializable(self):
        import json

        json.dumps(diagnostics_to_json([_diag()]))


def test_format_diagnostics_sorts_and_joins():
    text = format_diagnostics([_diag(line=30), _diag(line=3)])
    first, second = text.splitlines()
    assert first.startswith("design.py:3:")
    assert second.startswith("design.py:30:")
