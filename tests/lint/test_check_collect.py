"""Form checkers report every violation in one batch, not just the first."""

import pytest

import repro
import repro.hgf as hgf
from repro.ir.expr import Literal, Ref
from repro.ir.passes.check import (
    CheckError,
    check_high_form,
    check_low_form,
    high_form_diagnostics,
    low_form_diagnostics,
)
from repro.ir.source import SourceInfo
from repro.ir.stmt import Block, Circuit, Connect, DefWire, ModuleIR, Port
from repro.ir.types import UIntType
from repro.lint import Severity


def _broken_high() -> Circuit:
    """Two independent violations: a duplicate wire and an undeclared ref."""
    u4 = UIntType(4)
    m = ModuleIR(
        name="Top",
        ports=[Port("out", "output", u4)],
        body=Block(
            (
                DefWire("w", u4, SourceInfo("t.py", 3, 0)),
                DefWire("w", u4, SourceInfo("t.py", 4, 0)),
                Connect(
                    Ref("out", u4),
                    Ref("ghost", u4),
                    SourceInfo("t.py", 5, 0),
                ),
            )
        ),
    )
    return Circuit(name="Top", modules={"Top": m}, main="Top")


def _broken_low() -> Circuit:
    """Two drivers for the same sink plus a width-mismatched connect."""
    u4, u8 = UIntType(4), UIntType(8)
    m = ModuleIR(
        name="Top",
        ports=[Port("out", "output", u4)],
        body=Block(
            (
                Connect(Ref("out", u4), Literal(1, u4), SourceInfo("t.py", 2, 0)),
                Connect(Ref("out", u4), Literal(2, u4), SourceInfo("t.py", 3, 0)),
                DefWire("wide", u8, SourceInfo("t.py", 4, 0)),
                Connect(
                    Ref("wide", u8), Literal(1, u4), SourceInfo("t.py", 5, 0)
                ),
            )
        ),
    )
    return Circuit(name="Top", modules={"Top": m}, main="Top")


class TestHighFormCollectsAll:
    def test_all_violations_reported(self):
        diags = high_form_diagnostics(_broken_high())
        assert sorted(d.rule for d in diags) == ["duplicate-def", "undeclared-ref"]
        assert all(d.severity is Severity.ERROR for d in diags)
        assert all(d.module == "Top" for d in diags)

    def test_locations_point_at_the_statements(self):
        by_rule = {d.rule: d for d in high_form_diagnostics(_broken_high())}
        assert by_rule["duplicate-def"].location.line == 4
        assert by_rule["undeclared-ref"].location.line == 5

    def test_check_error_carries_the_batch(self):
        with pytest.raises(CheckError) as exc_info:
            check_high_form(_broken_high())
        err = exc_info.value
        assert len(err.diagnostics) == 2
        assert "2 form violations:" in str(err)
        assert "duplicate definition of 'w'" in str(err)
        assert "undeclared name 'ghost'" in str(err)

    def test_single_violation_keeps_bare_message(self):
        u4 = UIntType(4)
        m = ModuleIR(
            name="Top",
            ports=[Port("out", "output", u4)],
            body=Block((Connect(Ref("out", u4), Ref("nope", u4)),)),
        )
        circuit = Circuit(name="Top", modules={"Top": m}, main="Top")
        with pytest.raises(CheckError) as exc_info:
            check_high_form(circuit)
        assert "form violations" not in str(exc_info.value)
        assert "undeclared name 'nope'" in str(exc_info.value)


class TestLowFormCollectsAll:
    def test_all_violations_reported(self):
        rules = sorted(d.rule for d in low_form_diagnostics(_broken_low()))
        assert rules == ["connect-width-low", "multi-driver-low"]

    def test_check_error_lists_both(self):
        with pytest.raises(CheckError) as exc_info:
            check_low_form(_broken_low())
        msg = str(exc_info.value)
        assert "2 form violations:" in msg
        assert "multiple drivers for 'out'" in msg
        assert "width mismatch connecting 'wide'" in msg


class TestCleanCircuits:
    def test_compiled_design_passes_both_checkers(self):
        class Inc(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                out <<= (a + 1)[3:0]

        design = repro.compile(Inc())
        assert high_form_diagnostics(design.high) == []
        assert low_form_diagnostics(design.low) == []
        check_high_form(design.high)
        check_low_form(design.low)
