"""Golden-diagnostic tests: every built-in rule on a deliberately broken
design, asserting rule id, severity, and the exact source line.

Line numbers are not hardcoded: each offending DSL statement carries a
``# <-- tag`` marker comment and :func:`marker` looks the line up from this
file's own source, the same way breakpoint tests resolve lines via debug
info.
"""

from __future__ import annotations

import pytest

import repro.hgf as hgf
from repro.lint import Severity, lint_circuit

HERE = __file__


def marker(tag: str) -> int:
    """1-based line number of the ``# <-- tag`` marker in this file."""
    with open(HERE) as f:
        for n, line in enumerate(f, start=1):
            if line.rstrip().endswith(f"# <-- {tag}"):
                return n
    raise AssertionError(f"no marker {tag!r} in {HERE}")


def findings(module: hgf.Module, rule: str):
    circuit = hgf.elaborate(module)
    return [
        d for d in lint_circuit(circuit, form="high") if d.rule == rule
    ]


def check_one(diag, *, severity: Severity, tag: str, module: str):
    assert diag.severity is severity
    assert diag.module == module
    assert diag.location.filename.endswith("test_rules.py")
    assert diag.location.line == marker(tag)


class TestCombCycle:
    def test_wire_self_loop(self):
        class Loopy(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                w1 = self.wire("w1", 4)
                w2 = self.wire("w2", 4)
                w1 <<= (w2 + 1)[3:0]  # <-- loop-a
                w2 <<= (w1 + 1)[3:0]  # <-- loop-b
                out <<= w1

        found = findings(Loopy(), "comb-cycle")
        assert len(found) == 1
        d = found[0]
        assert d.severity is Severity.ERROR
        assert "w1" in d.message and "w2" in d.message
        assert d.location.line in (marker("loop-a"), marker("loop-b"))

    def test_cross_module_cycle(self):
        class Passthru(hgf.Module):
            def __init__(self):
                super().__init__()
                self.i = self.input("i", 4)
                self.o = self.output("o", 4)
                self.o <<= self.i

        class Parent(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                p = self.instance("p", Passthru())  # <-- xmod-inst
                p.i <<= p.o  # <-- xmod-loop
                out <<= p.o

        found = findings(Parent(), "comb-cycle")
        assert len(found) == 1
        d = found[0]
        assert d.severity is Severity.ERROR
        assert d.module == "Parent"
        assert "p.o" in d.message
        # Anchors somewhere on the cycle: either the instance that closes
        # it or the feedback connect.
        cycle_lines = {marker("xmod-inst"), marker("xmod-loop")}
        assert d.location.line in cycle_lines
        assert any(r.location.line in cycle_lines for r in d.related)

    def test_register_breaks_the_loop(self):
        class RegLoop(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                r = self.reg("r", 4, init=0)
                r <<= (r + 1)[3:0]
                out <<= r

        assert findings(RegLoop(), "comb-cycle") == []


class TestUndriven:
    def test_never_driven_wire(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                dead = self.wire("dead", 4)  # <-- undriven-wire
                out <<= dead

        found = findings(Top(), "undriven")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="undriven-wire",
            module="Top",
        )
        assert "'dead'" in found[0].message

    def test_undriven_output_port(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                self.output("out", 4)  # <-- undriven-out

        found = findings(Top(), "undriven")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="undriven-out",
            module="Top",
        )

    def test_conditionally_driven_counts_as_driven(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                en = self.input("en", 1)
                out = self.output("out", 4)
                w = self.wire("w", 4)
                with self.when(en == 1):
                    w <<= 3
                out <<= w

        assert findings(Top(), "undriven") == []


class TestUnusedSignal:
    def test_driven_but_never_read(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                scratch = self.wire("scratch", 4)  # <-- unused-wire
                scratch <<= a
                out <<= a

        found = findings(Top(), "unused-signal")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="unused-wire",
            module="Top",
        )
        assert "'scratch'" in found[0].message

    def test_register_kept_by_dce_is_still_flagged(self):
        # DCE never removes registers (cross-cycle state), so a dead
        # register silently survives to the netlist — lint must flag it.
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                ghost = self.reg("ghost", 4, init=0)  # <-- unused-reg
                ghost <<= (ghost + 1)[3:0]
                out <<= 7

        found = findings(Top(), "unused-signal")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="unused-reg",
            module="Top",
        )
        assert "register" in found[0].message

    def test_read_through_chain_is_alive(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                w = self.wire("w", 4)
                w <<= a
                r = self.reg("r", 4, init=0)
                r <<= w
                out <<= r

        assert findings(Top(), "unused-signal") == []


class TestWidthTrunc:
    def test_lossy_connect_flagged(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                out <<= a * a  # <-- trunc

        found = findings(Top(), "width-trunc")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="trunc", module="Top"
        )
        assert "8-bit" in found[0].message and "4-bit" in found[0].message

    def test_modular_increment_is_exempt(self):
        # `count <<= count + 1` drops only the carry bit: intentional
        # wraparound, not data loss.
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                count = self.reg("count", 4, init=0)
                count <<= count + 1
                out <<= count

        assert findings(Top(), "width-trunc") == []


class TestConstWhen:
    def test_always_false(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                out <<= 1
                with self.when(self.lit(0, 1)):  # <-- when-false
                    out <<= 2

        found = findings(Top(), "const-when")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="when-false",
            module="Top",
        )
        assert "always false" in found[0].message

    def test_constant_node_folds_through(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 4)
                out <<= 1
                mode = self.node("mode", self.lit(3, 2))
                with self.when(mode == 3):  # <-- when-true
                    out <<= 2

        found = findings(Top(), "const-when")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="when-true",
            module="Top",
        )
        assert "always true" in found[0].message


class TestMultiDriven:
    def test_same_scope_reconnect(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                out <<= a  # <-- md-first
                out <<= a + 1  # <-- md-second

        found = findings(Top(), "multi-driven")
        assert len(found) == 1
        d = found[0]
        check_one(
            d, severity=Severity.WARNING, tag="md-second", module="Top"
        )
        assert len(d.related) == 1
        assert d.related[0].location.line == marker("md-first")

    def test_conditional_override_not_flagged(self):
        # connect-then-refine-under-when is the canonical default+override
        # idiom; last-connect-wins across scopes is intentional.
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                en = self.input("en", 1)
                out = self.output("out", 4)
                out <<= 0
                with self.when(en == 1):
                    out <<= 5

        assert findings(Top(), "multi-driven") == []


class TestUninitReg:
    def test_read_uninitialized_register(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                d = self.input("d", 4)
                out = self.output("out", 4)
                r = self.reg("r", 4)  # <-- uninit
                r <<= d
                out <<= r

        found = findings(Top(), "uninit-reg")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="uninit", module="Top"
        )

    def test_init_register_is_fine(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                d = self.input("d", 4)
                out = self.output("out", 4)
                r = self.reg("r", 4, init=0)
                r <<= d
                out <<= r

        assert findings(Top(), "uninit-reg") == []


class TestConstStop:
    def test_always_true_stop(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 1)
                out <<= 1
                self.stop(self.lit(1, 1))  # <-- stop-true

        found = findings(Top(), "const-stop")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="stop-true",
            module="Top",
        )
        assert "always true" in found[0].message

    def test_never_firing_stop(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 1)
                out <<= 1
                self.stop(self.lit(0, 1))  # <-- stop-false

        found = findings(Top(), "const-stop")
        assert len(found) == 1
        assert "never fires" in found[0].message
        assert found[0].location.line == marker("stop-false")


class TestConstPrintf:
    def test_always_printing_is_info(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                out = self.output("out", 1)
                out <<= 1
                self.printf(self.lit(1, 1), "tick")  # <-- printf-true

        found = findings(Top(), "const-printf")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.INFO, tag="printf-true",
            module="Top",
        )


class TestConstMux:
    def test_constant_select(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                b = self.input("b", 4)
                out = self.output("out", 4)
                out <<= hgf.mux(self.lit(1, 1), a, b)  # <-- mux-const

        found = findings(Top(), "const-mux")
        assert len(found) == 1
        check_one(
            found[0], severity=Severity.WARNING, tag="mux-const",
            module="Top",
        )
        assert "false input is unreachable" in found[0].message

    def test_dynamic_select_is_fine(self):
        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                sel = self.input("sel", 1)
                a = self.input("a", 4)
                b = self.input("b", 4)
                out = self.output("out", 4)
                out <<= hgf.mux(sel == 1, a, b)

        assert findings(Top(), "const-mux") == []


class TestEveryDiagnosticHasSource:
    """Acceptance: every finding on hgf-built designs resolves to the DSL
    statement that caused it."""

    @pytest.mark.parametrize("rule_count", [1])
    def test_all_rules_point_at_this_file(self, rule_count):
        class Kitchen(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.input("a", 4)
                out = self.output("out", 4)
                dead = self.wire("dead", 4)
                scratch = self.wire("scratch", 4)
                scratch <<= a
                out <<= a * a
                with self.when(self.lit(0, 1)):
                    pass
                self.stop(self.lit(0, 1))
                r = self.reg("r", 4)
                r <<= dead
                out2 = self.output("out2", 4)
                out2 <<= r

        circuit = hgf.elaborate(Kitchen())
        diags = lint_circuit(circuit, form="high")
        assert len(diags) >= 5
        for d in diags:
            assert d.location.is_known(), d.format()
            assert d.location.filename.endswith("test_rules.py"), d.format()
