"""Lint wired into its entry points: the Simulator strict gate, the
``Design.lint()`` helper, the CLI subcommand, and the console command."""

import json

import pytest

import repro
from repro.cli import main
from repro.client import ConsoleDebugger
from repro.lint import LintError, LintWarning, Severity, resolve_gate
from repro.sim import Simulator
from tests.helpers import Counter, make_runtime
from tests.lint.broken_designs import Loopy, Sloppy


class TestResolveGate:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "error")
        assert resolve_gate(False) == "off"
        assert resolve_gate(True) == "error"

    def test_env_spellings(self, monkeypatch):
        for value, mode in [
            ("", "off"),
            ("off", "off"),
            ("0", "off"),
            ("warn", "warn"),
            ("1", "warn"),
            ("true", "warn"),
            ("error", "error"),
            ("strict", "error"),
        ]:
            monkeypatch.setenv("REPRO_LINT", value)
            assert resolve_gate(None) == mode, value

    def test_unset_env_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LINT", raising=False)
        assert resolve_gate(None) == "off"

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "loud")
        with pytest.raises(ValueError, match="REPRO_LINT"):
            resolve_gate(None)


class TestSimulatorGate:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LINT", raising=False)
        d = repro.compile(Sloppy())
        sim = Simulator(d.low)  # no warning, no raise
        sim.reset()

    def test_strict_true_raises_on_error_finding(self):
        d = repro.compile(Loopy())
        with pytest.raises(LintError) as exc_info:
            Simulator(d.low, strict=True)
        assert any(x.rule == "comb-cycle" for x in exc_info.value.diagnostics)

    def test_strict_true_passes_clean_design(self):
        d = repro.compile(Counter())
        Simulator(d.low, strict=True).reset()

    def test_strict_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "error")
        d = repro.compile(Sloppy())
        Simulator(d.low, strict=False).reset()

    def test_env_warn_emits_lint_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "warn")
        d = repro.compile(Sloppy())
        with pytest.warns(LintWarning, match="unused-signal"):
            sim = Simulator(d.low)
        sim.reset()  # warn mode never blocks simulation

    def test_env_error_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "error")
        d = repro.compile(Loopy())
        with pytest.raises(LintError):
            Simulator(d.low)


class TestDesignLint:
    def test_broken_design_reports_error(self):
        diags = repro.compile(Loopy()).lint()
        assert any(d.rule == "comb-cycle" for d in diags)

    def test_clean_design_reports_nothing(self):
        assert repro.compile(Counter()).lint() == []


class TestCliLint:
    def test_clean_factory_exits_zero(self, capsys):
        assert main(["lint", "tests.helpers:Counter"]) == 0
        assert "Counter: clean" in capsys.readouterr().out

    def test_error_finding_exits_one(self, capsys):
        assert main(["lint", "tests.lint.broken_designs:Loopy"]) == 1
        out = capsys.readouterr().out
        assert "comb-cycle" in out
        assert "broken_designs.py:" in out

    def test_warnings_only_exit_zero(self, capsys):
        assert main(["lint", "tests.lint.broken_designs:Sloppy"]) == 0
        out = capsys.readouterr().out
        assert "unused-signal" in out
        assert "width-trunc" in out

    def test_min_severity_hides_warnings(self, capsys):
        code = main(
            [
                "lint",
                "tests.lint.broken_designs:Sloppy",
                "--min-severity",
                "error",
            ]
        )
        assert code == 0
        assert "Sloppy: clean" in capsys.readouterr().out

    def test_exit_code_still_reflects_hidden_errors(self, capsys):
        # --min-severity only filters the report; an error finding must
        # fail the build even when the text is suppressed.
        code = main(
            [
                "lint",
                "tests.lint.broken_designs:Loopy",
                "--min-severity",
                "error",
            ]
        )
        assert code == 1
        assert "comb-cycle" in capsys.readouterr().out

    def test_bad_factory_spec_exits_two(self, capsys):
        assert main(["lint", "no.such.module:Thing"]) == 2
        assert "cannot load factory" in capsys.readouterr().err

    def test_non_module_factory_exits_two(self, capsys):
        code = main(["lint", "tests.lint.broken_designs:not_a_module"])
        assert code == 2
        assert "elaborating" in capsys.readouterr().err

    def test_bad_severity_exits_two(self, capsys):
        code = main(
            ["lint", "tests.helpers:Counter", "--min-severity", "loud"]
        )
        assert code == 2
        assert "unknown severity" in capsys.readouterr().err

    def test_json_single_design_document(self, capsys):
        assert main(["lint", "tests.lint.broken_designs:Loopy", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["design"] == "Loopy"
        assert doc["counts"].get("error", 0) >= 1
        first = doc["diagnostics"][0]
        assert {"rule", "severity", "message", "file", "line"} <= set(first)

    def test_json_multi_design_document(self, capsys):
        code = main(
            [
                "lint",
                "tests.helpers:Counter",
                "tests.lint.broken_designs:Sloppy",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        names = [d["design"] for d in doc["designs"]]
        assert names == ["Counter", "Sloppy"]


class TestConsoleLint:
    def _debugger(self, mod_cls):
        d = repro.compile(mod_cls())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        rt.attach()
        return dbg

    def test_clean_design(self):
        dbg = self._debugger(Counter)
        dbg.execute("lint")
        assert any("lint: clean" in l for l in dbg.transcript)

    def test_findings_listed(self):
        dbg = self._debugger(Sloppy)
        dbg.execute("lint")
        joined = "\n".join(dbg.transcript)
        assert "diagnostic(s)" in joined
        assert "unused-signal" in joined

    def test_severity_filter_argument(self):
        dbg = self._debugger(Sloppy)
        dbg.execute("lint error")
        assert any("lint: clean" in l for l in dbg.transcript)


def test_severity_threshold_semantics():
    # The CLI/console filters rely on IntEnum comparison; pin it down.
    assert Severity.WARNING >= Severity.parse("warning")
    assert not (Severity.INFO >= Severity.WARNING)
