"""Property: every shipped design lints error-clean.

Warnings are allowed (real designs legitimately carry info/warning
findings), but an error-severity diagnostic on a design that compiles and
simulates would mean a rule is wrong — this is the regression net for
false positives.
"""

import pytest

import repro
import repro.hgf as hgf
from examples.ide_session import Simd4
from examples.quickstart import PacketFilter
from examples.reverse_debugging import Fifo
from repro.cpu import RV32Core, assemble
from repro.cpu.cpu import Alu
from repro.fpu import FCmp, FpuCmp
from repro.lint import Severity, lint_circuit
from tests.helpers import (
    Accumulator,
    AluLike,
    Counter,
    SumLoop,
    TwoLeaves,
)

DESIGNS = [
    pytest.param(Counter, id="Counter"),
    pytest.param(Accumulator, id="Accumulator"),
    pytest.param(AluLike, id="AluLike"),
    pytest.param(SumLoop, id="SumLoop"),
    pytest.param(TwoLeaves, id="TwoLeaves"),
    pytest.param(PacketFilter, id="PacketFilter"),
    pytest.param(Fifo, id="Fifo"),
    pytest.param(Simd4, id="Simd4"),
    pytest.param(Alu, id="Alu"),
    pytest.param(FCmp, id="FCmp"),
    pytest.param(FpuCmp, id="FpuCmp"),
    pytest.param(
        lambda: RV32Core(assemble("addi x0, x0, 0").words, mem_words=64),
        id="RV32Core",
    ),
]


def _errors(diags):
    return [d for d in diags if d.severity >= Severity.ERROR]


@pytest.mark.parametrize("factory", DESIGNS)
def test_high_form_is_error_clean(factory):
    circuit = hgf.elaborate(factory())
    diags = lint_circuit(circuit, form="high")
    assert _errors(diags) == [], "\n".join(d.format() for d in _errors(diags))


@pytest.mark.parametrize("factory", DESIGNS)
def test_low_form_is_error_clean(factory):
    design = repro.compile(factory())
    diags = lint_circuit(design.low, form="low")
    assert _errors(diags) == [], "\n".join(d.format() for d in _errors(diags))


def test_design_lint_helper_matches_direct_call():
    design = repro.compile(Counter())
    via_helper = design.lint()
    direct = lint_circuit(design.high, form="high")
    assert [d.format() for d in via_helper] == [d.format() for d in direct]


def test_no_lowering_failures_on_shipped_designs():
    for param in DESIGNS:
        factory = param.values[0]
        diags = lint_circuit(hgf.elaborate(factory()), form="high")
        assert not any(d.rule == "lowering-failed" for d in diags)
        assert not any(d.rule == "lint-internal" for d in diags)
        assert not any(d.rule == "check-internal" for d in diags)
