"""Deliberately broken factories for CLI/gate integration tests.

Importable as ``tests.lint.broken_designs:NAME`` — the same factory-spec
syntax the ``hgdb-py lint`` and ``hgdb-py shard`` subcommands take.
"""

import repro.hgf as hgf


class Loopy(hgf.Module):
    """Combinational cycle through two wires: an error-severity finding."""

    def __init__(self):
        super().__init__()
        out = self.output("out", 4)
        w1 = self.wire("w1", 4)
        w2 = self.wire("w2", 4)
        w1 <<= (w2 + 1)[3:0]
        w2 <<= (w1 + 1)[3:0]
        out <<= w1


class Sloppy(hgf.Module):
    """Warning-only findings: an unused register and a lossy connect."""

    def __init__(self):
        super().__init__()
        a = self.input("a", 4)
        out = self.output("out", 4)
        ghost = self.reg("ghost", 4, init=0)
        ghost <<= (ghost + 1)[3:0]
        out <<= a * a


def not_a_module():
    return object()
