"""Scripted gdb-like console debugger tests."""


import pytest

import repro
from repro.client import ConsoleDebugger
from repro.sim import Simulator, numpy_available
from tests.helpers import Accumulator, TwoLeaves, line_of, make_runtime

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="many-worlds simulation needs numpy"
)


def _session(script, mod_cls=Accumulator, pokes=None, cycles=4, bp_sink="acc"):
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=32)
    rt = make_runtime(d, sim)
    dbg = ConsoleDebugger(rt, script=script)
    rt.attach()
    _f, line = line_of(d, bp_sink)
    for k, v in (pokes or {"en": 1, "d": 5}).items():
        sim.poke(k, v)
    sim.reset()
    dbg.execute(f"b helpers.py:{line}")
    sim.step(cycles)
    return dbg, sim


class TestCommands:
    def test_breakpoint_insertion_reported(self):
        dbg, _ = _session(["q"])
        assert any("breakpoint set" in l for l in dbg.transcript)
        assert any("(en == 1)" in l for l in dbg.transcript)

    def test_stop_banner(self):
        dbg, _ = _session(["q"])
        assert any(l.startswith("stopped at helpers.py:") for l in dbg.transcript)

    def test_locals(self):
        dbg, _ = _session(["locals", "q"])
        joined = "\n".join(dbg.transcript)
        assert "acc = 0" in joined
        assert "d = 5" in joined

    def test_print_expression(self):
        dbg, _ = _session(["p acc + d", "q"])
        assert any("acc + d = 5" in l for l in dbg.transcript)

    def test_gen_vars(self):
        dbg, _ = _session(["gen", "q"])
        joined = "\n".join(dbg.transcript)
        assert "width = 16" in joined

    def test_info_breakpoints(self):
        dbg, _ = _session(["info breakpoints", "q"])
        assert any("#" in l and "helpers.py" in l for l in dbg.transcript)

    def test_info_time_and_where(self):
        dbg, _ = _session(["info time", "where", "q"])
        joined = "\n".join(dbg.transcript)
        assert "cycle 1" in joined
        assert "@ cycle 1" in joined

    def test_step_and_reverse(self):
        dbg, _ = _session(["s", "rs", "c", "q"])
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert len(stops) >= 3
        # stop 1 and stop 3 are the same location (step then reverse-step)
        assert stops[0].split("@")[0] == stops[2].split("@")[0]

    def test_continue_until_next_hit(self):
        dbg, _ = _session(["c", "q"])
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert "cycle 1" in stops[0] and "cycle 2" in stops[1]

    def test_conditional_breakpoint_syntax(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=["q"])
        rt.attach()
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line} if acc >= 10")
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(4)
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert "cycle 3" in stops[0]  # acc reaches 10 at cycle 3

    def test_threads_listing(self):
        dbg, _ = _session(
            ["info threads", "frame 1", "locals", "q"],
            mod_cls=TwoLeaves,
            pokes={"x": 6},
            cycles=1,
            bp_sink="o",
        )
        joined = "\n".join(dbg.transcript)
        assert "thread 0: TwoLeaves.a" in joined
        assert "thread 1: TwoLeaves.b" in joined

    def test_delete_all(self):
        dbg, sim = _session(["delete", "c"], cycles=6)
        stops = [l for l in dbg.transcript if l.startswith("stopped")]
        assert len(stops) == 1  # deleted at first stop; continue runs free

    def test_error_reported_not_fatal(self):
        dbg, _ = _session(["p nonexistent_signal", "q"])
        assert any(l.startswith("error:") for l in dbg.transcript)

    def test_unknown_command_hint(self):
        dbg, _ = _session(["wat", "q"])
        assert any("unknown command" in l for l in dbg.transcript)

    def test_set_value(self):
        dbg, sim = _session(["set Accumulator.d 9", "c", "q"], cycles=3)
        assert any("Accumulator.d = 9" in l for l in dbg.transcript)


class TestShardCommand:
    def test_shard_sweep_from_console(self):
        """`shard N CYCLES` fans the live design out with the session's
        breakpoints and prints the aggregated report."""
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line}")
        dbg.execute("shard 3 20 100")
        joined = "\n".join(dbg.transcript)
        assert "3 shard(s)" in joined
        assert "hit histogram" in joined

    def test_shard_supervision_tokens(self):
        """`retries=`/`deadline=` trailing tokens tune the supervision
        layer without disturbing the positional args."""
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line}")
        dbg.execute("shard 2 15 7 retries=2 deadline=30")
        joined = "\n".join(dbg.transcript)
        assert "2 shard(s)" in joined

    def test_shard_bad_supervision_value(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        dbg.execute("shard 2 10 retries=lots")
        assert any("bad retries value" in l for l in dbg.transcript)

    def test_shard_requires_breakpoints(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        dbg.execute("shard 2 10")
        assert any("no breakpoints to sweep" in l for l in dbg.transcript)

    def test_shard_usage_message(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        dbg.execute("shard 2")
        assert any("usage: shard" in l for l in dbg.transcript)

    def test_shard_rejected_on_replay_backend(self, tmp_path):
        from repro.symtable import SQLiteSymbolTable, write_symbol_table
        from repro.trace import ReplayEngine, VcdWriter

        d = repro.compile(Accumulator())
        vcd = str(tmp_path / "run.vcd")
        w = VcdWriter(vcd)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(3)
        w.close()
        replay = ReplayEngine.from_file(vcd)
        from repro.core import Runtime

        rt = Runtime(replay, SQLiteSymbolTable(write_symbol_table(d)))
        dbg = ConsoleDebugger(rt)
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line}")
        dbg.execute("shard 2 10")
        assert any("live Simulator" in l for l in dbg.transcript)


class TestWorldsCommand:
    def test_worlds_on_scalar_backend(self):
        dbg, _ = _session(["worlds", "q"])
        assert any("scalar backend: one world" in l for l in dbg.transcript)

    @needs_numpy
    def test_worlds_hit_mask_at_stop(self):
        """At a mask-breakpoint stop, `worlds` renders the exact fired
        world subset as an X/. mask over the scenario axis."""
        from repro.sim.manyworlds import ManyWorldsSimulator

        d = repro.compile(Accumulator())
        mw = ManyWorldsSimulator(d.low, worlds=4)
        rt = make_runtime(d, mw)
        dbg = ConsoleDebugger(rt, script=["worlds", "q"])
        rt.attach()
        _f, line = line_of(d, "acc")
        dbg.execute(f"b helpers.py:{line} if acc > 20")
        mw.poke("en", 1)
        mw.reset()
        # Only world 3 crosses 20 on the first accumulation step.
        mw.poke_worlds("d", [1, 9, 0, 30])
        mw.step(5)
        joined = "\n".join(dbg.transcript)
        assert "hit mask  ...X  (1/4: world(s) 3)" in joined

    @needs_numpy
    def test_worlds_lists_finished_worlds(self):
        """Outside a stop, `worlds` reports which worlds already hit
        their Stop and with what exit code."""
        import repro.hgf as hgf
        from repro.sim.manyworlds import ManyWorldsSimulator

        class Stopper(hgf.Module):
            def __init__(self):
                super().__init__()
                x = self.input("x", 8)
                self.o = self.output("o", 16)
                acc = self.reg("acc", 16, init=0)
                acc <<= (acc + x.pad(16))[15:0]
                self.stop(acc[7:0] == self.lit(0xA5, 8), 3)
                self.o <<= acc

        d = repro.compile(Stopper())
        mw = ManyWorldsSimulator(d.low, worlds=3)
        rt = make_runtime(d, mw)
        dbg = ConsoleDebugger(rt)
        mw.reset()
        # Worlds 0 and 2 reach acc == 0xA5 inside the budget; world 1
        # (x = 0) never does.
        mw.poke_worlds("x", [0xA5, 0, 55])
        mw.run(max_cycles=20)
        dbg.execute("worlds")
        joined = "\n".join(dbg.transcript)
        assert "finished  X.X  (2/3)" in joined
        assert "world 0: exit 3 @ cycle" in joined
        assert "world 2: exit 3 @ cycle" in joined
        assert "world 1:" not in joined


class TestTimelineCommand:
    def _debugger(self, snapshots=16):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low, snapshots=snapshots)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        rt.attach()
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 2)
        sim.step(6)
        return dbg, sim

    def test_info_shows_window_and_cycle(self):
        dbg, sim = self._debugger()
        dbg.execute("timeline")
        joined = "\n".join(dbg.transcript)
        assert "timeline: cycles 0..6" in joined
        assert f"current cycle: {sim.get_time()}" in joined

    def test_goto_jumps_and_errors_stay_in_repl(self):
        dbg, sim = self._debugger()
        dbg.execute("timeline goto 3")
        assert sim.get_time() == 3
        assert any("now at cycle 3" in l for l in dbg.transcript)
        dbg.execute("timeline goto 9999")  # out of window: error, not crash
        assert any("retained window" in l for l in dbg.transcript)

    def test_history_resolves_local_names(self):
        dbg, sim = self._debugger()
        dbg.execute("timeline history acc 4")
        cycle_lines = [l for l in dbg.transcript if l.startswith("  cycle")]
        assert len(cycle_lines) == 4
        assert sim.get_time() == 7  # cursor restored after the walk

    def test_disabled_timeline_reports_hint(self):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt)
        dbg.execute("timeline")
        assert any("no timeline" in l for l in dbg.transcript)

    def test_timeline_on_replay_backend(self, tmp_path):
        from repro.core import Runtime
        from repro.symtable import SQLiteSymbolTable, write_symbol_table
        from repro.trace import ReplayEngine, VcdWriter

        d = repro.compile(Accumulator())
        vcd = str(tmp_path / "run.vcd")
        w = VcdWriter(vcd)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(5)
        w.close()
        replay = ReplayEngine.from_file(vcd)
        rt = Runtime(replay, SQLiteSymbolTable(write_symbol_table(d)))
        dbg = ConsoleDebugger(rt)
        dbg.execute("timeline")
        assert any("full VCD replay" in l for l in dbg.transcript)
        dbg.execute("timeline history total 3")
        assert any(l.startswith("  cycle") for l in dbg.transcript)


class TestStatsCommand:
    def _dbg(self, obs="off"):
        d = repro.compile(Accumulator())
        sim = Simulator(d.low, obs=obs, snapshots=16)
        rt = make_runtime(d, sim)
        dbg = ConsoleDebugger(rt, script=[])
        sim.poke("en", 1)
        sim.reset()
        sim.step(10)
        return dbg

    def test_counters_always_available(self):
        dbg = self._dbg()
        dbg.execute("stats")
        assert any(l.strip().startswith("ticks") for l in dbg.transcript)
        assert any("settle_seeds" in l for l in dbg.transcript)
        # obs is off: no metric catalog beyond the plain counters
        assert not any("sim_ticks_total" in l for l in dbg.transcript)

    def test_metric_catalog_when_obs_armed(self):
        dbg = self._dbg(obs="metrics")
        dbg.execute("stats")
        assert any("sim_ticks_total" in l for l in dbg.transcript)

    def test_replay_backend_reports_no_counters(self, tmp_path):
        from repro.core import Runtime
        from repro.symtable import SQLiteSymbolTable, write_symbol_table
        from repro.trace import ReplayEngine, VcdWriter

        d = repro.compile(Accumulator())
        vcd = str(tmp_path / "run.vcd")
        w = VcdWriter(vcd)
        sim = Simulator(d.low, trace=w)
        sim.reset()
        sim.step(5)
        w.close()
        rt = Runtime(
            ReplayEngine.from_file(vcd),
            SQLiteSymbolTable(write_symbol_table(d)),
        )
        dbg = ConsoleDebugger(rt)
        dbg.execute("stats")
        assert any("no counters" in l for l in dbg.transcript)
