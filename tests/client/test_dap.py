"""DAP adapter tests: the four Fig. 4 panels as protocol data."""


import repro
from repro.client import DapAdapter, ScriptedDapSession
from repro.sim import Simulator
from tests.helpers import Accumulator, TwoLeaves, line_of, make_runtime


def _adapter(mod_cls=Accumulator):
    d = repro.compile(mod_cls())
    sim = Simulator(d.low, snapshots=32)
    rt = make_runtime(d, sim)
    adapter = DapAdapter(rt)
    return d, sim, rt, adapter


class TestRequests:
    def test_initialize_capabilities(self):
        _d, _sim, _rt, ad = _adapter()
        resp = ad.handle({"command": "initialize", "seq": 1})
        assert resp["success"]
        assert resp["body"]["supportsStepBack"]
        assert resp["body"]["supportsConditionalBreakpoints"]

    def test_set_breakpoints_verified(self):
        d, _sim, rt, ad = _adapter()
        _f, line = line_of(d, "acc")
        resp = ad.handle(
            {
                "command": "setBreakpoints",
                "arguments": {
                    "source": {"path": "helpers.py"},
                    "breakpoints": [{"line": line}, {"line": 1}],
                },
            }
        )
        results = resp["body"]["breakpoints"]
        assert results[0]["verified"] is True
        assert results[1]["verified"] is False  # line 1 maps to nothing
        assert len(rt.list_breakpoints()) == 1

    def test_set_breakpoints_replaces(self):
        d, _sim, rt, ad = _adapter()
        _f, line = line_of(d, "acc")
        _f, line2 = line_of(d, "total")
        for l in (line, line2):
            ad.handle(
                {
                    "command": "setBreakpoints",
                    "arguments": {
                        "source": {"path": "helpers.py"},
                        "breakpoints": [{"line": l}],
                    },
                }
            )
        # second call replaced the first set
        assert {bp.rec.line for bp in rt.list_breakpoints()} == {line2}

    def test_unsupported_command(self):
        _d, _sim, _rt, ad = _adapter()
        resp = ad.handle({"command": "gotoTargets"})
        assert not resp["success"]


class TestStoppedSession:
    def _scripted(self, mod_cls, pokes, bp_sink, at_stop, controls, cycles=3):
        d = repro.compile(mod_cls())
        sim = Simulator(d.low, snapshots=32)
        rt = make_runtime(d, sim)
        ad = DapAdapter(rt)
        session = ScriptedDapSession(ad, at_stop, controls)
        rt.attach()
        _f, line = line_of(d, bp_sink)
        for k, v in pokes.items():
            sim.poke(k, v)
        sim.reset()
        ad.handle(
            {
                "command": "setBreakpoints",
                "arguments": {
                    "source": {"path": "helpers.py"},
                    "breakpoints": [{"line": line}],
                },
            }
        )
        sim.step(cycles)
        return ad, session

    def test_stopped_event_emitted(self):
        ad, session = self._scripted(
            Accumulator, {"en": 1, "d": 5}, "acc", [], ["continue", "continue", "continue"]
        )
        stopped = [e for e in ad.events if e["event"] == "stopped"]
        assert stopped and stopped[0]["body"]["reason"] == "breakpoint"
        assert stopped[0]["body"]["hgdbTime"] == 1

    def test_threads_panel_B(self):
        """Fig. 4B: concurrent hardware threads at one stop."""
        ad, session = self._scripted(
            TwoLeaves,
            {"x": 6},
            "o",
            [{"command": "threads"}],
            ["disconnect"],
            cycles=1,
        )
        threads = session.stops[0][0]["body"]["threads"]
        names = [t["name"] for t in threads]
        assert names == ["TwoLeaves.a", "TwoLeaves.b"]

    def test_variables_panel_A(self):
        """Fig. 4A: local and generator variables of the selected frame."""
        ad, session = self._scripted(
            Accumulator,
            {"en": 1, "d": 7},
            "acc",
            [
                {"command": "stackTrace", "arguments": {"threadId": 0}},
                {"command": "scopes", "arguments": {"frameId": 1}},
            ],
            ["disconnect"],
        )
        stack_resp, scopes_resp = session.stops[0]
        assert stack_resp["body"]["stackFrames"][0]["name"] == "Accumulator"
        scopes = scopes_resp["body"]["scopes"]
        assert [s["name"] for s in scopes] == ["Local", "Generator Variables"]
        local_ref = scopes[0]["variablesReference"]
        vars_resp = ad.handle(
            {"command": "variables", "arguments": {"variablesReference": local_ref}}
        )
        byname = {v["name"]: v["value"] for v in vars_resp["body"]["variables"]}
        assert byname["d"].startswith("7")

    def test_evaluate_at_stop(self):
        ad, session = self._scripted(
            Accumulator,
            {"en": 1, "d": 7},
            "acc",
            [{"command": "evaluate", "arguments": {"expression": "d * 2"}}],
            ["disconnect"],
        )
        assert session.stops[0][0]["body"]["result"] == "14"

    def test_step_back_panel_C(self):
        """Fig. 4C: reverse-step control."""
        ad, session = self._scripted(
            Accumulator,
            {"en": 1, "d": 5},
            "acc",
            [],
            ["next", "stepBack", "disconnect"],
        )
        stopped = [e["body"]["description"] for e in ad.events if e["event"] == "stopped"]
        # stop1 (acc line) -> next -> stop2 (total line) -> stepBack -> stop3 == stop1
        assert len(stopped) >= 3
        assert stopped[0] == stopped[2]

    def test_conditional_breakpoint_panel_D(self):
        """Fig. 4D: conditional breakpoints from the IDE."""
        d = repro.compile(Accumulator())
        sim = Simulator(d.low)
        rt = make_runtime(d, sim)
        ad = DapAdapter(rt)
        ScriptedDapSession(ad, [], ["disconnect"])  # installs its on_hit hook
        rt.attach()
        _f, line = line_of(d, "acc")
        ad.handle(
            {
                "command": "setBreakpoints",
                "arguments": {
                    "source": {"path": "helpers.py"},
                    "breakpoints": [{"line": line, "condition": "acc >= 10"}],
                },
            }
        )
        sim.reset()
        sim.poke("en", 1)
        sim.poke("d", 5)
        sim.step(4)
        stopped = [e for e in ad.events if e["event"] == "stopped"]
        assert stopped[0]["body"]["hgdbTime"] == 3  # acc first reaches 10
