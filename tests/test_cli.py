"""CLI tests: info, vcd-info, and scripted replay sessions."""

import pytest

import repro
from repro.cli import main
from repro.sim import Simulator
from repro.symtable import write_symbol_table
from repro.trace import VcdWriter
from tests.helpers import Accumulator, line_of


@pytest.fixture()
def artifacts(tmp_path):
    """A symbol table + VCD pair on disk, as a real workflow produces."""
    d = repro.compile(Accumulator())
    sym = str(tmp_path / "symbols.db")
    write_symbol_table(d, sym)
    vcd = str(tmp_path / "run.vcd")
    w = VcdWriter(vcd)
    sim = Simulator(d.low, trace=w)
    sim.reset()
    sim.poke("en", 1)
    sim.poke("d", 5)
    sim.step(6)
    w.close()
    return d, sym, vcd


class TestInfo:
    def test_symbol_table_summary(self, artifacts, capsys):
        _d, sym, _vcd = artifacts
        assert main(["info", sym]) == 0
        out = capsys.readouterr().out
        assert "top module : Accumulator" in out
        assert "breakpoints:" in out
        assert "helpers.py" in out

    def test_vcd_summary(self, artifacts, capsys):
        _d, _sym, vcd = artifacts
        assert main(["vcd-info", vcd]) == 0
        out = capsys.readouterr().out
        assert "clock    : Accumulator.clock" in out
        assert "scope Accumulator" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["vcd-info", str(tmp_path / "nope.vcd")]) == 1
        assert "error" in capsys.readouterr().err


class TestReplay:
    def test_scripted_session(self, artifacts, capsys):
        d, sym, vcd = artifacts
        _f, line = line_of(d, "acc")
        rc = main(
            [
                "replay", vcd, sym,
                "-b", f"helpers.py:{line}",
                "-c", "locals; c; p acc; q",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "stopped at helpers.py" in out
        assert "acc = " in out

    def test_no_breakpoints_runs_through(self, artifacts, capsys):
        _d, sym, vcd = artifacts
        assert main(["replay", vcd, sym, "-c", "q"]) == 0
        out = capsys.readouterr().out
        assert "replay finished" in out

    def test_explicit_clock(self, artifacts):
        _d, sym, vcd = artifacts
        assert main(["replay", vcd, sym, "--clock", "Accumulator.clock", "-c", "q"]) == 0


class TestShard:
    def test_shard_sweep(self, tmp_path, capsys):
        import json

        d = repro.compile(Accumulator())
        _f, line = line_of(d, "acc")
        out = str(tmp_path / "report.json")
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "3", "--workers", "2", "--cycles", "25",
                "-b", f"helpers.py:{line}",
                "-o", "en=1",
                "--json", out,
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "3 shard(s)" in text
        assert "hit histogram" in text
        with open(out) as f:
            report = json.load(f)
        assert report["ok"] and len(report["shards"]) == 3
        assert report["total_cycles"] == 75

    def test_shard_with_condition_and_inline_workers(self, capsys):
        d = repro.compile(Accumulator())
        _f, line = line_of(d, "acc")
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "2", "--workers", "0", "--cycles", "30",
                "-b", f"helpers.py:{line} if acc >= 100",
                "-o", "en=1",
            ]
        )
        assert rc == 0
        assert "first hits" in capsys.readouterr().out

    def test_shard_supervision_flags(self, tmp_path, capsys):
        """--retries/--deadline arm the supervision layer; a healthy
        sweep still completes on first attempts."""
        import json

        d = repro.compile(Accumulator())
        _f, line = line_of(d, "acc")
        out = str(tmp_path / "report.json")
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "2", "--workers", "2", "--cycles", "20",
                "--retries", "2", "--deadline", "60", "--timeout", "120",
                "-b", f"helpers.py:{line}",
                "-o", "en=1",
                "--json", out,
            ]
        )
        assert rc == 0
        with open(out) as f:
            report = json.load(f)
        assert report["ok"]
        assert report["total_attempts"] == 2
        assert report["retried"] == [] and report["failed"] == []

    def test_sweep_alias_with_worlds(self, tmp_path, capsys):
        """``sweep --worlds N`` packs shards into vectorized world groups
        (or falls back to sequential members without numpy) — either way
        the aggregated report is digest-identical to the plain run."""
        import json

        plain_out = str(tmp_path / "plain.json")
        grouped_out = str(tmp_path / "grouped.json")
        args = [
            "tests.helpers:Accumulator",
            "--shards", "4", "--workers", "0", "--cycles", "40",
            "-o", "en=1",
        ]
        assert main(["shard", *args, "--json", plain_out]) == 0
        assert main(["sweep", *args, "--worlds", "2", "--json", grouped_out]) == 0
        with open(plain_out) as f:
            plain = json.load(f)
        with open(grouped_out) as f:
            grouped = json.load(f)
        assert grouped["state_digests"] == plain["state_digests"]
        assert len(grouped["shards"]) == 4
        assert grouped["total_cycles"] == plain["total_cycles"]

    def test_shard_bad_factory(self, capsys):
        assert main(["shard", "tests.helpers"]) == 2
        assert main(["shard", "tests.helpers:NoSuchThing"]) == 2
        err = capsys.readouterr().err
        assert "factory" in err

    def test_shard_malformed_args_exit_cleanly(self, capsys):
        assert main(["shard", "tests.helpers:Accumulator", "-b", "helpers.py"]) == 2
        assert main(["shard", "tests.helpers:Accumulator", "-o", "en"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err


class TestTimelineFlags:
    def test_replay_prints_timeline_window(self, artifacts, capsys):
        _d, sym, vcd = artifacts
        assert main(["replay", vcd, sym, "-c", "q"]) == 0
        out = capsys.readouterr().out
        assert "timeline: cycles 0.." in out
        assert "full VCD replay" in out

    def test_shard_timeline_streaming(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "report.json")
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "2", "--workers", "0", "--cycles", "20",
                "--timeline", "8",
                "-o", "en=1",
                "--json", out,
            ]
        )
        assert rc == 0
        with open(out) as f:
            report = json.load(f)
        assert report["timeline_divergences"] == []
        for shard in report["shards"]:
            assert shard["timeline"]["codec"] == "rle"
            assert len(shard["timeline"]["entries"]) <= 8


class TestObservability:
    def test_shard_trace_out_and_prometheus(self, tmp_path, capsys):
        import json

        d = repro.compile(Accumulator())
        _f, line = line_of(d, "acc")
        trace = str(tmp_path / "sweep.trace.json")
        prom = str(tmp_path / "sweep.prom")
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "2", "--workers", "2", "--cycles", "20",
                "-b", f"helpers.py:{line}",
                "-o", "en=1",
                "--trace-out", trace, "--prometheus", prom,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability:" in out
        with open(trace) as f:
            doc = json.load(f)
        procs = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {"coordinator", "shard 0", "shard 1"}
        with open(prom) as f:
            text = f.read()
        assert "# TYPE sim_ticks_total counter" in text

    def test_shard_trace_out_conflicts_with_weaker_obs(self, tmp_path, capsys):
        rc = main(
            [
                "shard", "tests.helpers:Accumulator",
                "--shards", "2", "--cycles", "5",
                "--obs", "metrics",
                "--trace-out", str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "--trace-out needs --obs trace" in capsys.readouterr().err

    def test_stats_command(self, tmp_path, capsys):
        import json

        snap = str(tmp_path / "stats.json")
        prom = str(tmp_path / "stats.prom")
        trace = str(tmp_path / "stats.trace.json")
        rc = main(
            [
                "stats", "tests.helpers:Accumulator",
                "--cycles", "200", "--timeline", "16",
                "--json", snap, "--prometheus", prom, "--trace-out", trace,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "200 cycles in" in out
        assert "sim_ticks_total" in out
        with open(snap) as f:
            names = {m["name"] for m in json.load(f)["metrics"]}
        assert {
            "sim_ticks_total", "sim_timeline_entries", "shard_cycles_total",
        } <= names
        with open(prom) as f:
            assert "sim_ticks_total" in f.read()
        with open(trace) as f:
            doc = json.load(f)
        assert any(e["name"] == "shard.run" for e in doc["traceEvents"])

    def test_stats_bad_factory(self, capsys):
        assert main(["stats", "tests.helpers:NoSuchThing"]) == 2
