"""CLI tests: info, vcd-info, and scripted replay sessions."""

import pytest

import repro
from repro.cli import main
from repro.sim import Simulator
from repro.symtable import write_symbol_table
from repro.trace import VcdWriter
from tests.helpers import Accumulator, line_of


@pytest.fixture()
def artifacts(tmp_path):
    """A symbol table + VCD pair on disk, as a real workflow produces."""
    d = repro.compile(Accumulator())
    sym = str(tmp_path / "symbols.db")
    write_symbol_table(d, sym)
    vcd = str(tmp_path / "run.vcd")
    w = VcdWriter(vcd)
    sim = Simulator(d.low, trace=w)
    sim.reset()
    sim.poke("en", 1)
    sim.poke("d", 5)
    sim.step(6)
    w.close()
    return d, sym, vcd


class TestInfo:
    def test_symbol_table_summary(self, artifacts, capsys):
        _d, sym, _vcd = artifacts
        assert main(["info", sym]) == 0
        out = capsys.readouterr().out
        assert "top module : Accumulator" in out
        assert "breakpoints:" in out
        assert "helpers.py" in out

    def test_vcd_summary(self, artifacts, capsys):
        _d, _sym, vcd = artifacts
        assert main(["vcd-info", vcd]) == 0
        out = capsys.readouterr().out
        assert "clock    : Accumulator.clock" in out
        assert "scope Accumulator" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["vcd-info", str(tmp_path / "nope.vcd")]) == 1
        assert "error" in capsys.readouterr().err


class TestReplay:
    def test_scripted_session(self, artifacts, capsys):
        d, sym, vcd = artifacts
        _f, line = line_of(d, "acc")
        rc = main(
            [
                "replay", vcd, sym,
                "-b", f"helpers.py:{line}",
                "-c", "locals; c; p acc; q",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "stopped at helpers.py" in out
        assert "acc = " in out

    def test_no_breakpoints_runs_through(self, artifacts, capsys):
        _d, sym, vcd = artifacts
        assert main(["replay", vcd, sym, "-c", "q"]) == 0
        out = capsys.readouterr().out
        assert "replay finished" in out

    def test_explicit_clock(self, artifacts):
        _d, sym, vcd = artifacts
        assert main(["replay", vcd, sym, "--clock", "Accumulator.clock", "-c", "q"]) == 0
