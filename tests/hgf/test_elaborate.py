"""Tests for elaboration: naming, source locations, generator variables."""

import os

import pytest

import repro
import repro.hgf as hgf
from repro.hgf.module import HgfError
from repro.ir.stmt import GeneratorVar, NameHint


class TestNaming:
    def test_top_named_after_class(self):
        from tests.helpers import Counter

        circuit = hgf.elaborate(Counter())
        assert circuit.main == "Counter"

    def test_top_name_override(self):
        from tests.helpers import Counter

        circuit = hgf.elaborate(Counter(), name="DUT")
        assert circuit.main == "DUT"

    def test_sibling_instances_get_unique_module_names(self):
        from tests.helpers import TwoLeaves

        circuit = hgf.elaborate(TwoLeaves())
        assert "AluLeaf" in circuit.modules
        assert "AluLeaf_1" in circuit.modules

    def test_elaborate_requires_module(self):
        with pytest.raises(HgfError):
            hgf.elaborate(42)


class TestSourceLocations:
    def test_connects_carry_this_file(self):
        from tests.helpers import Counter

        d = repro.compile(Counter())
        entries = d.debug_info.all_entries()
        assert entries, "expected debug entries"
        helper_file = os.path.join(os.path.dirname(__file__), "..", "helpers.py")
        expected = os.path.abspath(helper_file)
        assert all(e.info.filename == expected for e in entries)

    def test_lines_ascend_with_statements(self):
        from tests.helpers import Counter, line_of

        d = repro.compile(Counter())
        _f, count_line = line_of(d, "count")
        _f, out_line = line_of(d, "out")
        assert out_line > count_line


class TestGeneratorVars:
    def test_scalar_params_recorded(self):
        from tests.helpers import Counter

        circuit = hgf.elaborate(Counter(width=6))
        gen = [a for a in circuit.annotations if isinstance(a, GeneratorVar)]
        widths = [a for a in gen if a.name == "width"]
        assert widths and widths[0].value == "6" and not widths[0].is_rtl

    def test_signal_attrs_recorded_as_rtl(self):
        from tests.helpers import Counter

        circuit = hgf.elaborate(Counter())
        gen = {a.name: a for a in circuit.annotations if isinstance(a, GeneratorVar)}
        assert gen["en"].is_rtl and gen["en"].value == "en"
        assert gen["out"].is_rtl

    def test_name_hints_for_vars(self):
        from tests.helpers import SumLoop

        circuit = hgf.elaborate(SumLoop(2))
        hints = [a for a in circuit.annotations if isinstance(a, NameHint)]
        assert {h.rtl_name for h in hints} >= {"sum_0", "sum_1", "sum_2"}
        assert all(h.source_name == "sum" for h in hints if h.rtl_name.startswith("sum"))

    def test_string_attr_recorded(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.mode = "fast"
                self.o = self.output("o", 1)
                self.o <<= 0

        circuit = hgf.elaborate(M())
        gen = {a.name: a.value for a in circuit.annotations if isinstance(a, GeneratorVar)}
        assert gen["mode"] == "fast"


class TestPostElaboration:
    def test_module_frozen_after_elaborate(self):
        from tests.helpers import Counter

        c = Counter()
        hgf.elaborate(c)
        with pytest.raises(HgfError):
            c.wire("late", 4)
