"""Tests for the Module construction API (when/var/mem/instance/errors)."""

import pytest

import repro
import repro.hgf as hgf
from repro.hgf.module import HgfError
from repro.sim import Simulator


def _simulate(mod, pokes, reads, cycles=1):
    d = repro.compile(mod)
    sim = Simulator(d.low)
    sim.reset()
    for k, v in pokes.items():
        sim.poke(k, v)
    sim.step(cycles)
    return {k: sim.peek(k) for k in reads}


class TestDeclarations:
    def test_width_or_typ_exclusive(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                with pytest.raises(HgfError):
                    self.input("a")
                with pytest.raises(HgfError):
                    self.input("b", 8, typ=hgf.UInt(8))
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())

    def test_duplicate_names_uniquified(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                a = self.wire("w", 8)
                b = self.wire("w", 8)
                self.o = self.output("o", 8)
                a <<= 1
                b <<= 2
                self.o <<= a + b[6:0]

        d = repro.compile(M())
        # both wires exist under distinct names
        from repro.ir.stmt import DefWire

        names = [s.name for s in d.high.top.body if isinstance(s, DefWire)]
        assert names == ["w", "w_1"]

    def test_invalid_name_rejected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                with pytest.raises(HgfError):
                    self.wire("bad name", 8)
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())

    def test_reg_init_resets(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                r = self.reg("r", 8, init=42)
                r <<= (r + 1)[7:0]
                self.o <<= r

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        assert sim.peek("o") == 42
        sim.step(3)
        assert sim.peek("o") == 45


class TestWhenChains:
    def test_when_elsewhen_otherwise(self):
        from tests.helpers import AluLike

        for op, expected in [(0, 30), (1, 10), (2, 20 & 10), (3, 20 ^ 10)]:
            out = _simulate(AluLike(), {"a": 20, "b": 10, "op": op}, ["res"])
            assert out["res"] == expected, f"op={op}"

    def test_nested_when(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 2)
                self.b = self.input("b", 2)
                self.o = self.output("o", 4)
                self.o <<= 0
                with self.when(self.a == 1):
                    with self.when(self.b == 1):
                        self.o <<= 3
                    with self.otherwise():
                        self.o <<= 5
                with self.elsewhen(self.a == 2):
                    self.o <<= 7

        m = M
        assert _simulate(m(), {"a": 1, "b": 1}, ["o"])["o"] == 3
        assert _simulate(m(), {"a": 1, "b": 0}, ["o"])["o"] == 5
        assert _simulate(m(), {"a": 2, "b": 0}, ["o"])["o"] == 7
        assert _simulate(m(), {"a": 0, "b": 0}, ["o"])["o"] == 0

    def test_elsewhen_without_when_rejected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 1)
                with pytest.raises(HgfError), self.elsewhen(self.a == 1):
                    pass
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())

    def test_otherwise_without_when_rejected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                with pytest.raises(HgfError), self.otherwise():
                    pass
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())

    def test_wide_condition_reduced(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 1)
                self.o <<= 0
                with self.when(self.a):  # non-1-bit: orr-reduced
                    self.o <<= 1

        assert _simulate(M(), {"a": 0}, ["o"])["o"] == 0
        assert _simulate(M(), {"a": 9}, ["o"])["o"] == 1


class TestVar:
    def test_var_accumulates(self):
        from tests.helpers import SumLoop

        out = _simulate(SumLoop(4), {"data_0": 3, "data_1": 4, "data_2": 5, "data_3": 7}, ["result"])
        assert out["result"] == 3 + 5 + 7  # odd elements only

    def test_var_unconditional_set(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 8)
                v = self.var("v", self.lit(1, 8))
                v.set((v.value + self.a)[7:0])
                v.set((v.value * 2)[7:0])
                self.o <<= v.value

        assert _simulate(M(), {"a": 5}, ["o"])["o"] == 12

    def test_var_arith_sugar(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 9)
                v = self.var("v", self.lit(2, 8))
                self.o <<= v + self.a

        assert _simulate(M(), {"a": 5}, ["o"])["o"] == 7


class TestMemories:
    def test_mem_write_read(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.waddr = self.input("waddr", 3)
                self.wdata = self.input("wdata", 8)
                self.wen = self.input("wen", 1)
                self.raddr = self.input("raddr", 3)
                self.rdata = self.output("rdata", 8)
                m = self.mem("m", 8, 8)
                m.write(self.waddr, self.wdata, self.wen)
                self.rdata <<= m[self.raddr]

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("wen", 1)
        sim.poke("waddr", 3)
        sim.poke("wdata", 99)
        sim.step()
        sim.poke("wen", 0)
        sim.poke("raddr", 3)
        assert sim.peek("rdata") == 99

    def test_mem_init(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.addr = self.input("addr", 2)
                self.data = self.output("data", 8)
                rom = self.mem("rom", 8, 4, init=[10, 20, 30, 40])
                self.data <<= rom[self.addr]

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        for i, v in enumerate([10, 20, 30, 40]):
            sim.poke("addr", i)
            assert sim.peek("data") == v

    def test_mem_write_in_when_qualified(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.en = self.input("en", 1)
                self.o = self.output("o", 8)
                m = self.mem("m", 8, 4)
                with self.when(self.en == 1):
                    m.write(self.lit(0, 2), self.lit(7, 8), self.lit(1, 1))
                self.o <<= m[0]

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("en", 0)
        sim.step()
        assert sim.peek("o") == 0
        sim.poke("en", 1)
        sim.step()
        assert sim.peek("o") == 7

    def test_mem_init_too_long_rejected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                with pytest.raises(HgfError):
                    self.mem("m", 8, 2, init=[1, 2, 3])
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())


class TestInstances:
    def test_child_auto_clocked(self):
        from tests.helpers import Counter

        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 8)
                c = self.instance("c", Counter())
                c.en <<= 1
                self.o <<= c.out

        d = repro.compile(Top())
        sim = Simulator(d.low)
        sim.reset()
        sim.step(5)
        assert sim.peek("o") == 5

    def test_unknown_port_rejected(self):
        from tests.helpers import Counter

        class Top(hgf.Module):
            def __init__(self):
                super().__init__()
                c = self.instance("c", Counter())
                with pytest.raises(AttributeError, match="ports"):
                    c.nope
                c.en <<= 0
                self.o = self.output("o", 8)
                self.o <<= c.out

        repro.compile(Top())

    def test_child_reuse_rejected(self):
        from tests.helpers import Counter

        child = Counter()

        class A(hgf.Module):
            def __init__(self):
                super().__init__()
                c = self.instance("c", child)
                c.en <<= 0
                self.o = self.output("o", 8)
                self.o <<= c.out

        repro.compile(A())

        class B(hgf.Module):
            def __init__(self):
                super().__init__()
                self.instance("c", child)

        with pytest.raises(HgfError):
            B()

    def test_self_instance_rejected(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                with pytest.raises(HgfError):
                    self.instance("me", self)
                self.o = self.output("o", 1)
                self.o <<= 0

        repro.compile(M())


class TestEffects:
    def test_stop_halts(self):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.o = self.output("o", 4)
                r = self.reg("r", 4, init=0)
                r <<= (r + 1)[3:0]
                self.o <<= r
                self.stop(r == 5, exit_code=3)

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        code = sim.run(100)
        assert code == 3
        assert sim.peek("o") == 5

    def test_printf(self, capsys):
        class M(hgf.Module):
            def __init__(self):
                super().__init__()
                self.a = self.input("a", 8)
                self.o = self.output("o", 8)
                self.o <<= self.a
                self.printf(self.a == 3, "a is {}", self.a)

        d = repro.compile(M())
        sim = Simulator(d.low)
        sim.reset()
        sim.poke("a", 3)
        sim.step()
        assert "a is 3" in sim.printf_output
