"""Tests for Value/Signal operator overloading and literal lifting."""

import pytest

import repro.hgf as hgf
from repro.ir.types import SIntType, UIntType


class _Scratch(hgf.Module):
    def __init__(self):
        super().__init__()
        self.a = self.input("a", 8)
        self.b = self.input("b", 8)
        self.s = self.input("s", typ=hgf.SInt(8))
        self.v = self.input("v", typ=hgf.Vec(4, hgf.UInt(8)))
        self.bun = self.input("bun", typ=hgf.Bundle(x=hgf.UInt(4), y=hgf.UInt(4)))


@pytest.fixture()
def m():
    return _Scratch()


class TestArithmetic:
    def test_add_width(self, m):
        assert (m.a + m.b).width == 9

    def test_add_int_literal(self, m):
        assert (m.a + 1).width == 9

    def test_radd(self, m):
        assert (1 + m.a).width == 9

    def test_sub_mul(self, m):
        assert (m.a - m.b).width == 9
        assert (m.a * m.b).width == 16

    def test_floordiv_mod(self, m):
        assert (m.a // m.b).width == 8
        assert (m.a % m.b).width == 8

    def test_neg(self, m):
        v = -m.a
        assert isinstance(v.typ, SIntType)
        assert v.width == 9

    def test_negative_literal_unsigned_rejected(self, m):
        with pytest.raises(ValueError):
            m.a + (-1)

    def test_negative_literal_signed_ok(self, m):
        assert (m.s + (-1)).width == 9


class TestComparisonsAndBitwise:
    def test_comparisons_one_bit(self, m):
        for e in (m.a < m.b, m.a <= 3, m.a > m.b, m.a >= 0, m.a == m.b, m.a != 7):
            assert e.width == 1

    def test_bitwise(self, m):
        assert (m.a & 0xF).width == 8
        assert (m.a | m.b).width == 8
        assert (m.a ^ m.b).width == 8
        assert (~m.a).width == 8

    def test_shifts_static(self, m):
        assert (m.a << 2).width == 10
        assert (m.a >> 2).width == 6

    def test_shifts_dynamic(self, m):
        assert (m.a << m.b[2:0]).width == 8
        assert (m.a >> m.b[2:0]).width == 8


class TestSlicingAndStructure:
    def test_single_bit(self, m):
        assert m.a[7].width == 1

    def test_slice(self, m):
        assert m.a[7:4].width == 4

    def test_slice_requires_hi_lo(self, m):
        with pytest.raises(ValueError):
            m.a[2:5]

    def test_slice_no_step(self, m):
        with pytest.raises(TypeError):
            m.a[7:0:2]

    def test_vec_index(self, m):
        assert m.v[2].width == 8

    def test_vec_dynamic_index_hint(self, m):
        with pytest.raises(TypeError, match="select"):
            m.v[m.a]

    def test_bundle_field(self, m):
        assert m.bun.x.width == 4

    def test_bundle_unknown_field(self, m):
        with pytest.raises(AttributeError, match="fields"):
            m.bun.nope


class TestMethods:
    def test_cat(self, m):
        assert m.a.cat(m.b).width == 16
        assert hgf.cat(m.a, m.b, m.bun.x).width == 20

    def test_cat_needs_two(self, m):
        with pytest.raises(ValueError):
            hgf.cat(m.a)

    def test_pad(self, m):
        assert m.a.pad(16).width == 16

    def test_reductions(self, m):
        assert m.a.andr().width == 1
        assert m.a.orr().width == 1
        assert m.a.xorr().width == 1

    def test_casts(self, m):
        assert isinstance(m.a.as_sint().typ, SIntType)
        assert isinstance(m.s.as_uint().typ, UIntType)

    def test_mux(self, m):
        v = hgf.mux(m.a[0], m.a, m.b)
        assert v.width == 8

    def test_mux_wide_condition_reduced(self, m):
        # A non-1-bit condition is orr-reduced; data literals lift to the
        # condition operand's width.
        v = hgf.mux(m.a, 1, 0)
        assert v.width == 8
        assert "orr" in str(v.expr)

    def test_select(self, m):
        v = hgf.select(m.v, m.a[1:0])
        assert v.width == 8

    def test_select_requires_vec(self, m):
        with pytest.raises(TypeError):
            hgf.select(m.a, m.b)

    def test_fill(self, m):
        assert hgf.fill(m.a[0], 8).width == 8


class TestGuards:
    def test_bool_raises(self, m):
        with pytest.raises(TypeError, match="when"):
            bool(m.a == 1)

    def test_cross_module_mixing_rejected(self, m):
        other = _Scratch()
        with pytest.raises(ValueError, match="modules"):
            m.a + other.a

    def test_repr_mentions_type(self, m):
        assert "UInt<8>" in repr(m.a)

    def test_attribute_assignment_rejected(self, m):
        with pytest.raises(AttributeError):
            m.bun.x = 5
