"""Shared test designs and utilities.

Breakpoint-oriented tests need stable source locations; instead of
hardcoding line numbers we look them up from debug info by sink name via
:func:`line_of`.
"""

from __future__ import annotations

import repro
import repro.hgf as hgf


class Counter(hgf.Module):
    """En-gated counter with an overflow flag."""

    def __init__(self, width: int = 8):
        super().__init__()
        self.width = width
        self.en = self.input("en", 1)
        self.out = self.output("out", width)
        self.wrapped = self.output("wrapped", 1)
        count = self.reg("count", width, init=0)
        with self.when(self.en == 1):
            count <<= count + 1
        self.out <<= count
        self.wrapped <<= count == (1 << width) - 1


class Accumulator(hgf.Module):
    """Conditional accumulator used by runtime/breakpoint tests."""

    def __init__(self, width: int = 16):
        super().__init__()
        self.width = width
        self.en = self.input("en", 1)
        self.d = self.input("d", 8)
        self.total = self.output("total", width)
        acc = self.reg("acc", width, init=0)
        with self.when(self.en == 1):
            acc <<= acc + self.d
        self.total <<= acc


class AluLike(hgf.Module):
    """Small comb block exercising when/elsewhen/otherwise chains."""

    def __init__(self):
        super().__init__()
        self.a = self.input("a", 8)
        self.b = self.input("b", 8)
        self.op = self.input("op", 2)
        self.res = self.output("res", 8)
        out = self.wire("out", 8)
        with self.when(self.op == 0):
            out <<= (self.a + self.b)[7:0]
        with self.elsewhen(self.op == 1):
            out <<= (self.a - self.b)[7:0]
        with self.elsewhen(self.op == 2):
            out <<= self.a & self.b
        with self.otherwise():
            out <<= self.a ^ self.b
        self.res <<= out


class TwoLeaves(hgf.Module):
    """Two instances of the same child: the concurrent-threads case."""

    def __init__(self):
        super().__init__()
        self.x = self.input("x", 4)
        self.y = self.output("y", 8)
        a = self.instance("a", AluLeaf())
        b = self.instance("b", AluLeaf())
        a.i <<= self.x
        b.i <<= self.x ^ 5
        self.y <<= hgf.cat(a.o, b.o)


class AluLeaf(hgf.Module):
    def __init__(self):
        super().__init__()
        self.i = self.input("i", 4)
        self.o = self.output("o", 4)
        with self.when(self.i > 2):
            self.o <<= self.i - 1
        with self.otherwise():
            self.o <<= self.i


class SumLoop(hgf.Module):
    """Paper Listing 1: a for-loop accumulating into ``sum`` under a
    hardware condition — the SSA multi-line-mapping example."""

    def __init__(self, n: int = 2):
        super().__init__()
        self.n = n
        self.data = self.input("data", typ=hgf.Vec(n, hgf.UInt(8)))
        self.result = self.output("result", 16)
        total = self.var("sum", self.lit(0, 16))
        for i in range(n):
            with self.when(self.data[i] % 2 != 0):
                total.set((total.value + self.data[i])[15:0])
        self.result <<= total.value


def line_of(design: repro.Design, sink: str, module: str | None = None) -> tuple[str, int]:
    """(filename, line) of the first debug entry assigning ``sink``."""
    for entry in design.debug_info.all_entries():
        if entry.sink == sink and (module is None or entry.module == module):
            return entry.info.filename, entry.info.line
    raise AssertionError(f"no debug entry for sink {sink!r}")


def make_runtime(design, sim, on_hit=None):
    from repro.core import Runtime
    from repro.symtable import SQLiteSymbolTable, write_symbol_table

    st = SQLiteSymbolTable(write_symbol_table(design))
    return Runtime(sim, st, on_hit)
