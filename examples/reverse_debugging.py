"""Reverse debugging from a captured trace (paper Sec. 3.2, Fig. 1 replay).

First run: simulate normally, dumping a VCD.  Second run: load the trace
into the replay engine — the same unified simulator interface — and debug
*backwards*: reverse-continue to earlier breakpoint hits, reverse-step
through statements, all without re-running the simulation.

Run:  python examples/reverse_debugging.py
"""

import os
import tempfile

import repro
import repro.hgf as hgf
from repro.client import ConsoleDebugger
from repro.core import Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table
from repro.trace import ReplayEngine, VcdWriter


class Fifo(hgf.Module):
    """A small FIFO whose occupancy bug we want to chase backwards."""

    def __init__(self, depth=4):
        super().__init__()
        self.depth = depth
        self.push = self.input("push", 1)
        self.pop = self.input("pop", 1)
        self.din = self.input("din", 8)
        self.count = self.output("count", 3)
        self.dout = self.output("dout", 8)

        mem = self.mem("store", 8, depth)
        wptr = self.reg("wptr", 2, init=0)
        rptr = self.reg("rptr", 2, init=0)
        occupancy = self.reg("occupancy", 3, init=0)

        do_push = self.node("do_push", (self.push == 1) & (occupancy < depth))
        do_pop = self.node("do_pop", (self.pop == 1) & (occupancy > 0))
        with self.when(do_push == 1):
            mem.write(wptr, self.din, self.lit(1, 1))
            wptr <<= (wptr + 1)[1:0]
        with self.when(do_pop == 1):
            rptr <<= (rptr + 1)[1:0]
        with self.when((do_push & ~do_pop) == 1):
            occupancy <<= (occupancy + 1)[2:0]
        with self.elsewhen((do_pop & ~do_push) == 1):
            occupancy <<= (occupancy - 1)[2:0]
        self.count <<= occupancy
        self.dout <<= mem[rptr]


def main() -> None:
    design = repro.compile(Fifo())
    vcd_path = os.path.join(tempfile.gettempdir(), "fifo_run.vcd")

    # --- capture phase: live simulation with VCD tracing -------------------
    writer = VcdWriter(vcd_path)
    sim = Simulator(design.low, trace=writer)
    sim.reset()
    stimulus = [
        dict(push=1, pop=0, din=d) for d in (10, 20, 30)
    ] + [dict(push=0, pop=1, din=0)] * 2 + [
        dict(push=1, pop=1, din=40),
        dict(push=1, pop=0, din=50),
    ]
    for txn in stimulus:
        for k, v in txn.items():
            sim.poke(k, v)
        sim.step()
    writer.close()
    print(f"captured {sim.get_time()} cycles into {vcd_path}")

    # --- replay phase: offline reverse debugging ----------------------------
    replay = ReplayEngine.from_file(vcd_path)
    symtable = SQLiteSymbolTable(write_symbol_table(design))
    runtime = Runtime(replay, symtable)

    occ_stmt = next(
        e for e in design.debug_info.all_entries()
        if e.sink == "occupancy"
    )
    debugger = ConsoleDebugger(
        runtime,
        script=[
            # ride forward to the last hit, then walk back through time
            "c", "c", "c",
            "p occupancy", "info time",
            "rc",                      # reverse-continue: previous hit
            "p occupancy", "info time",
            "rs",                      # reverse-step: previous statement
            "where",
            "q",
        ],
        echo=True,
    )
    runtime.attach()
    debugger.execute(f"b reverse_debugging.py:{occ_stmt.info.line}")
    replay.run()
    print("\nreplay cursor ended at cycle", replay.get_time())
    print("note: set_value is correctly rejected on traces:",
          not replay.can_set_value)


if __name__ == "__main__":
    main()
