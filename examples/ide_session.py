"""An IDE debugging session over the DAP-style adapter (paper Fig. 4).

Reproduces each panel of the paper's VSCode screenshot as protocol data:

* A — variables: local + generator variables of the selected frame
* B — threads: concurrent instances stopped on the same source line
* C — controls: continue / step over / reverse-step
* D — breakpoints: source + conditional breakpoints

Run:  python examples/ide_session.py
"""

import json

import repro
import repro.hgf as hgf
from repro.client import DapAdapter, ScriptedDapSession
from repro.core import Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


class Lane(hgf.Module):
    """One SIMD lane; the top instantiates four of these — so a breakpoint
    in Lane's source stops four concurrent hardware threads (Fig. 4B)."""

    def __init__(self, lane_id=0):
        super().__init__()
        self.lane_id = lane_id
        self.x = self.input("x", 8)
        self.y = self.output("y", 8)
        acc = self.reg("acc", 8, init=0)
        with self.when(self.x > 0):
            acc <<= (acc + self.x)[7:0]     # Fig. 4D breakpoint target
        self.y <<= acc


class Simd4(hgf.Module):
    def __init__(self):
        super().__init__()
        self.data = self.input("data", 32)
        self.out = self.output("out", 32)
        outs = []
        for i in range(4):
            lane = self.instance(f"lane{i}", Lane(lane_id=i))
            lane.x <<= self.data[8 * i + 7 : 8 * i]
            outs.append(lane.y)
        self.out <<= hgf.cat(*reversed(outs))


def main() -> None:
    design = repro.compile(Simd4())
    sim = Simulator(design.low, snapshots=32)
    runtime = Runtime(sim, SQLiteSymbolTable(write_symbol_table(design)))
    adapter = DapAdapter(runtime)

    init = adapter.handle({"command": "initialize", "seq": 1})
    print("capabilities:", json.dumps(init["body"], indent=2))

    # Panel D: set a conditional breakpoint in Lane's source.
    acc_stmt = next(e for e in design.debug_info.all_entries() if e.sink == "acc")
    resp = adapter.handle(
        {
            "command": "setBreakpoints",
            "arguments": {
                "source": {"path": "ide_session.py"},
                "breakpoints": [{"line": acc_stmt.info.line}],
            },
        }
    )
    print("breakpoints verified:", resp["body"]["breakpoints"])

    # At each stop: list threads (B), fetch the stack + variables (A);
    # controls (C): step over once, reverse-step back, then continue.
    session = ScriptedDapSession(
        adapter,
        at_stop=[
            {"command": "threads"},
            {"command": "stackTrace", "arguments": {"threadId": 0}},
            {"command": "scopes", "arguments": {"frameId": 1}},
        ],
        controls=["next", "stepBack", "continue", "disconnect"],
    )
    runtime.attach()
    sim.poke("data", 0x04030201)  # all four lanes active
    sim.reset()
    sim.step(3)

    print(f"\n{len(session.stops)} stops recorded")
    threads = session.stops[0][0]["body"]["threads"]
    print("Fig 4B — concurrent threads at stop 1:")
    for t in threads:
        print(f"   thread {t['id']}: {t['name']}")

    scopes = session.stops[0][2]["body"]["scopes"]
    _local_ref = scopes[0]["variablesReference"]
    # NOTE: variable references are per-stop; resolve panel A content from
    # the recorded responses of the first stop.
    print("\nFig 4A — scopes:", [s["name"] for s in scopes])

    events = [e["event"] for e in adapter.events]
    print("\nevent stream:", events)


if __name__ == "__main__":
    main()
