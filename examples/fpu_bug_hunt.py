"""The paper's Sec. 4.2 case study: hunting the RocketChip FPU bug.

A floating-point comparison unit disagrees with its functional model.
Instead of staring at generated RTL and waveforms (paper Listing 4), we set
a source-level breakpoint inside the ``when (in.wflags)`` block, inspect
the ``dcmp.io`` bundle, and find ``signaling`` permanently asserted.

Run:  python examples/fpu_bug_hunt.py
"""

import repro
from repro.client import ConsoleDebugger
from repro.core import Runtime
from repro.fpu import (
    FpuCmp,
    QNAN,
    RM_FEQ,
    compare_op,
    float_to_bits,
)
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


def main() -> None:
    # --- 1. the testbench notices a mismatch -----------------------------
    design = repro.compile(FpuCmp(buggy=True))
    sim = Simulator(design.low, snapshots=32)

    a, b, rm = QNAN, float_to_bits(1.0), RM_FEQ  # feq(qNaN, 1.0)
    sim.reset()
    sim.poke("in1", a)
    sim.poke("in2", b)
    sim.poke("rm", rm)
    sim.poke("wflags", 1)
    sim.step()

    got = (sim.peek("toint"), sim.peek("exc"))
    want = compare_op(a, b, rm)
    print(f"RTL:   toint={got[0]}, exc={got[1]:#07b}")
    print(f"model: toint={want[0]}, exc={want[1]:#07b}")
    assert got != want, "expected the seeded bug to be visible"
    print("=> toint is correct but the exception flags are wrong (NV set)\n")

    # --- 2. debug at source level ----------------------------------------
    symtable = SQLiteSymbolTable(write_symbol_table(design))
    runtime = Runtime(sim, symtable)

    # Breakpoint inside the `when (wflags)` block — the paper sets it on
    # the flag assignment, "since this is the condition where
    # floating-point comparison is enabled".
    exc_stmt = next(e for e in design.debug_info.all_entries() if e.sink == "exc")
    print(f"breakpoint target: fcmp.py:{exc_stmt.info.line}")
    print(f"enable condition:  {exc_stmt.enable_src}\n")

    debugger = ConsoleDebugger(
        runtime,
        script=[
            "info threads",
            "locals",      # shows rm == 2 (feq: a *quiet* compare)
            "q",
        ],
        echo=True,
    )
    runtime.attach()
    debugger.execute(f"b fcmp.py:{exc_stmt.info.line}")
    sim.step(2)  # re-trigger the comparison; the breakpoint hits

    # --- 3. inspect the dcmp instance's reconstructed bundle --------------
    dcmp_bp = [
        bp for bp in symtable.all_breakpoints() if bp.instance_name == "FpuCmp.dcmp"
    ][0]
    frame = runtime.frames.build(dcmp_bp, sim.get_time())
    io = next(v for v in frame.local_vars if v.name == "io")
    print("\ndcmp.io (reconstructed PortBundle, paper Sec. 4.2):")
    for field in io.children:
        print(f"    .{field.name} = {field.value}")

    signaling = io.child("signaling").value
    assert signaling == 1
    print(
        "\n=> dcmp.io.signaling is permanently asserted although rm==2 "
        "requested a quiet compare: the Listing 3 bug."
    )

    # --- 4. the fix --------------------------------------------------------
    fixed = repro.compile(FpuCmp(buggy=False))
    sim2 = Simulator(fixed.low)
    sim2.reset()
    sim2.poke("in1", a)
    sim2.poke("in2", b)
    sim2.poke("rm", rm)
    sim2.poke("wflags", 1)
    sim2.step()
    assert (sim2.peek("toint"), sim2.peek("exc")) == want
    print("fixed build matches the functional model. bug closed.")


if __name__ == "__main__":
    main()
