"""Quickstart: write a generator, simulate it, debug it at source level.

Run:  python examples/quickstart.py
"""

import repro
import repro.hgf as hgf
from repro.client import ConsoleDebugger
from repro.core import Runtime
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


class PacketFilter(hgf.Module):
    """Counts packets whose length falls inside a configured window."""

    def __init__(self, min_len=4, max_len=64):
        super().__init__()
        self.min_len = min_len          # generator variables: visible in
        self.max_len = max_len          # the debugger's variable panel
        self.valid = self.input("valid", 1)
        self.length = self.input("length", 8)
        self.accepted = self.output("accepted", 16)
        self.rejected = self.output("rejected", 16)

        n_ok = self.reg("n_ok", 16, init=0)
        n_bad = self.reg("n_bad", 16, init=0)
        in_window = self.node(
            "in_window", (self.length >= min_len) & (self.length <= max_len)
        )
        with self.when((self.valid & in_window) == 1):
            n_ok <<= (n_ok + 1)[15:0]               # <- set a breakpoint here
        with self.elsewhen(self.valid == 1):
            n_bad <<= (n_bad + 1)[15:0]
        self.accepted <<= n_ok
        self.rejected <<= n_bad


def main() -> None:
    # 1. Elaborate + compile.  This lowers the generator to RTL and builds
    #    the hgdb debug metadata (SSA temps, enable conditions, line table).
    design = repro.compile(PacketFilter())
    print("modules:", list(design.low.modules))

    # 2. The generated Verilog is what you'd otherwise debug (paper
    #    Listing 4) — flattened muxes and compiler temporaries:
    print("\n--- generated RTL (excerpt) ---")
    print("\n".join(design.verilog().splitlines()[:16]))

    # 3. Simulate with the hgdb runtime attached.
    sim = Simulator(design.low, snapshots=128)
    symtable = SQLiteSymbolTable(write_symbol_table(design))
    runtime = Runtime(sim, symtable)

    # 4. Source-level debugging: breakpoint on the accept statement, with a
    #    user condition.  Find the line of the `n_ok <<=` statement.
    accept = next(e for e in design.debug_info.all_entries() if e.sink == "n_ok")
    debugger = ConsoleDebugger(
        runtime,
        script=[
            "info threads",
            "locals",
            "gen",
            "p n_ok + 1",
            "c",
            "q",
        ],
        echo=True,
    )
    runtime.attach()
    debugger.execute(f"b quickstart.py:{accept.info.line} if length > 10")

    # 5. Drive stimulus (any testbench works — hgdb is orthogonal to it).
    sim.reset()
    for length in (2, 12, 80, 33, 5):
        sim.poke("valid", 1)
        sim.poke("length", length)
        sim.step()
    sim.poke("valid", 0)

    print("\naccepted:", sim.peek("accepted"), "rejected:", sim.peek("rejected"))


if __name__ == "__main__":
    main()
