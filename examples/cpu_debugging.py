"""Debugging a CPU running software — the RocketChip scenario at our scale.

The RV32 core executes a quicksort; we debug the *CPU generator's* source
while the program runs: break on the register-file writeback statement with
a condition over architectural state (pc), inspect decoded fields, and
single-step hardware statements.

Run:  python examples/cpu_debugging.py
"""

import repro
from repro.client import ConsoleDebugger
from repro.core import Runtime
from repro.cpu import RV32Core, assemble, benchmark_by_name
from repro.sim import Simulator
from repro.symtable import SQLiteSymbolTable, write_symbol_table


def main() -> None:
    bench = benchmark_by_name("qsort")
    words = assemble(bench.source).words
    print(f"program: {bench.name}, {len(words)} words, expecting checksum {bench.expected}")

    design = repro.compile(RV32Core(words, mem_words=8192))
    sim = Simulator(design.low)
    symtable = SQLiteSymbolTable(write_symbol_table(design))
    runtime = Runtime(sim, symtable)

    # Break on the writeback statement (`regs.write(...)` in cpu.py) the
    # first time the partition pivot register (s6 = x22) is loaded.
    wb = next(e for e in design.debug_info.all_entries() if e.sink == "regs")
    print(f"breakpoint: cpu.py:{wb.info.line} (enable: {wb.enable_src})")

    debugger = ConsoleDebugger(
        runtime,
        script=[
            "p pc",           # where in the program are we?
            "p instr",
            "p rd",           # destination register
            "p wb_val",       # the value being written back
            "s",              # step to the next hardware statement
            "where",
            "q",
        ],
        echo=True,
    )
    runtime.attach()
    debugger.execute(f"b cpu.py:{wb.info.line} if rd == 22")

    sim.reset()
    sim.run(100_000)
    assert sim.peek("tohost") == bench.expected
    print(f"\nqsort finished: tohost={sim.peek('tohost')} in {sim.get_time()} cycles")


if __name__ == "__main__":
    main()
