"""hgdb-py: source-level debugging for hardware generators.

Reproduction of "Bringing Source-Level Debugging Frameworks to Hardware
Generators" (Zhang, Asgar, Horowitz — DAC 2022).

Packages:
    repro.hgf       Chisel-like generator frontend (the HGF).
    repro.ir        FIRRTL-like IR, passes, Verilog emission.
    repro.sim       zero-delay RTL simulator with a VPI-like interface.
    repro.trace     VCD writer/parser and trace replay engine.
    repro.symtable  SQLite symbol table (schema, writer, queries, RPC).
    repro.core      the hgdb runtime: breakpoints, scheduler, frames, RPC.
    repro.client    gdb-like console debugger and DAP-style IDE adapter.
    repro.cpu       RV32I CPU substrate + assembler + benchmark programs.
    repro.fpu       FP comparison unit for the paper's bug case study.

Top-level helper::

    import repro
    design = repro.compile(MyModule())          # or debug=True for -O0
    sim = repro.sim.Simulator(design.low)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import hgf, ir
from .ir.compiler import CompileResult, compile_circuit


@dataclass(slots=True)
class Design:
    """A compiled design: everything the simulator and debugger need."""

    result: CompileResult
    name: str

    @property
    def high(self):
        return self.result.high

    @property
    def low(self):
        return self.result.low

    @property
    def debug_info(self):
        return self.result.debug

    @property
    def annotations(self):
        return self.result.high.annotations

    def verilog(self) -> str:
        """Emit the generated (Low-form) Verilog — the "assembly" a designer
        would otherwise debug (paper Listing 4)."""
        from .ir.verilog import emit_verilog

        return emit_verilog(self.result.low)

    def lint(self, *, rules=None):
        """Run the static-analysis engine (``repro.lint``) over the
        elaborated High form and return all diagnostics, sorted by source
        location.  See ``docs/lint.md`` for the rule catalog."""
        from .lint import lint_circuit

        return lint_circuit(self.high, rules=rules, form="high")


def compile(top: hgf.Module, debug: bool = False, name: str | None = None) -> Design:
    """Elaborate and compile a generator module down to executable RTL.

    ``debug=True`` is debug mode (paper Sec. 4.1): all signals are protected
    from optimization so the symbol table keeps every source-level variable.
    """
    circuit = hgf.elaborate(top, name)
    result = compile_circuit(circuit, debug_mode=debug)
    return Design(result=result, name=circuit.name)


__version__ = "0.1.0"
__all__ = ["Design", "compile", "compile_circuit", "hgf", "ir"]
