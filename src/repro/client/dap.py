"""A Debug Adapter Protocol (DAP) style adapter — the IDE integration.

The paper's second debugger is a VSCode extension (Fig. 4).  VSCode talks
DAP; this adapter translates DAP-shaped requests into session operations and
produces DAP-shaped events/responses, reproducing each panel of Fig. 4:

* **A** — ``scopes``/``variables``: local + generator variables per frame;
* **B** — ``threads``: one thread per concurrent instance at a stop;
* **C** — ``continue``/``next``/``stepBack``/``reverseContinue`` controls;
* **D** — ``setBreakpoints`` with optional per-line conditions.

Like the console, the adapter has two modes over one unified session API
(:class:`~repro.hub.api.SessionHandle`):

* **passive** — construct with a :class:`~repro.core.Runtime`; the
  embedding code owns the clock and the adapter answers requests inside
  the blocking hit callback (queue a control with ``continue``/``next``/…
  before the next hit, or use :class:`ScriptedDapSession`);
* **driving** — construct with any :class:`SessionHandle` (hub session or
  in-process :class:`~repro.hub.api.LocalSession`); control requests
  resume the session immediately and the custom ``hgdbRun`` request
  starts it, so a real IDE can sit on a hub connection.

The adapter is transport-agnostic: feed it request dicts and collect event
dicts (tests and ``examples/ide_session.py`` do exactly that; a real IDE
would frame them over stdin/stdout).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.frames import VariableView
from ..core.runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    HitGroup,
    Runtime,
)
from ..hub.api import LocalSession, SessionHandle, StopInfo
from .console import _frame_breakpoint_id, _frame_instance, _frame_vars

_CONTROLS = {
    "continue": CONTINUE,
    "next": STEP,
    "stepBack": REVERSE_STEP,
    "reverseContinue": REVERSE_CONTINUE,
    "disconnect": DETACH,
}


@dataclass(slots=True)
class DapEvent:
    event: str
    body: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"type": "event", "event": self.event, "body": self.body}


class DapAdapter:
    """In-process DAP-style debug adapter over the unified session API."""

    def __init__(
        self,
        runtime: Runtime | None = None,
        session: SessionHandle | None = None,
    ):
        if (runtime is None) == (session is None):
            raise ValueError(
                "DapAdapter needs a Runtime (passive mode) or a "
                "SessionHandle (driving mode), not both"
            )
        self.runtime = runtime
        if runtime is not None:
            runtime.on_hit = self._on_hit
            self.session: SessionHandle = LocalSession(runtime)
            self.driving = False
        else:
            self.session = session
            self.driving = True
        self.events: list[dict] = []
        self._seq = 0
        #: the current stop: a HitGroup (passive) or StopInfo (driving)
        self._stopped: HitGroup | StopInfo | None = None
        self._pending: Command | None = None
        self._var_refs: dict[int, list[VariableView]] = {}
        self._next_ref = 1
        self._frame_ids: dict[int, object] = {}

    # -- runtime side (passive mode) ----------------------------------------

    def _on_hit(self, hit: HitGroup) -> Command:
        self._stopped = hit
        self._var_refs.clear()
        self._frame_ids.clear()
        self._emit_stopped(hit.filename, hit.line, hit.time)
        # Scripted usage: the embedding client queues a control request
        # (continue/next/stepBack/...) before the simulation reaches the
        # next hit; with nothing queued the adapter auto-continues.  Use
        # ScriptedDapSession for per-stop interaction.
        cmd = self._pending or CONTINUE
        self._pending = None
        self._stopped = None
        self._emit("continued", {"threadId": 0, "allThreadsContinued": True})
        return cmd

    def _emit(self, event: str, body: dict) -> None:
        self.events.append(DapEvent(event, body).to_dict())

    def _emit_stopped(self, filename, line, time) -> None:
        self._emit(
            "stopped",
            {
                "reason": "breakpoint",
                "description": f"{filename}:{line}",
                "threadId": 0,
                "allThreadsStopped": True,
                "hgdbTime": time,
            },
        )

    # -- session side (driving mode) ----------------------------------------

    def _enter_stop(self, stop: StopInfo | None) -> None:
        self._var_refs.clear()
        self._frame_ids.clear()
        if stop is not None and stop.stopped:
            self._stopped = stop
            self._emit_stopped(stop.filename, stop.line, stop.time)
            return
        self._stopped = None
        if stop is None:
            return
        if stop.reason == "done":
            self._emit("terminated", {"hgdbTime": stop.time})
        elif stop.reason == "detached":
            self._emit("exited", {"exitCode": stop.exit_code or 0})
        elif stop.reason == "error":
            self._emit(
                "output", {"category": "stderr", "output": stop.message}
            )

    def _drive_control(self, command: str) -> dict:
        session = self.session
        self._emit("continued", {"threadId": 0, "allThreadsContinued": True})
        stop = {
            "continue": session.cont,
            "next": session.step,
            "stepBack": session.reverse_step,
            "reverseContinue": session.reverse_cont,
            "disconnect": session.detach,
        }[command]()
        self._enter_stop(stop)
        return {}

    # -- request handling ----------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Handle one DAP request dict, returning the response dict."""
        command = request.get("command")
        args = request.get("arguments", {})
        self._seq += 1
        try:
            body = self._dispatch(command, args)
            return {
                "type": "response",
                "request_seq": request.get("seq", self._seq),
                "command": command,
                "success": True,
                "body": body,
            }
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {
                "type": "response",
                "request_seq": request.get("seq", self._seq),
                "command": command,
                "success": False,
                "message": str(exc),
            }

    def _dispatch(self, command: str, args: dict) -> dict:
        if command == "initialize":
            return {
                "supportsConfigurationDoneRequest": True,
                # Intra-cycle reverse-step is always available; set_time
                # extends it across retained cycles.
                "supportsStepBack": self.session.can_set_time or True,
                "supportsConditionalBreakpoints": True,
                "supportsEvaluateForHovers": True,
            }
        if command == "setBreakpoints":
            source = args["source"]["path"]
            # DAP replaces the whole set for a file each time.
            resolved = self.session.resolve_file(source)
            for bp in self.session.breakpoints():
                if resolved and bp["filename"] == resolved:
                    self.session.remove_breakpoint(bp["id"])
            results = []
            for spec in args.get("breakpoints", []):
                try:
                    self.session.add_breakpoint(
                        source, spec["line"], condition=spec.get("condition")
                    )
                    results.append({"verified": True, "line": spec["line"]})
                except Exception as exc:  # noqa: BLE001
                    results.append(
                        {
                            "verified": False,
                            "line": spec["line"],
                            "message": str(exc),
                        }
                    )
            return {"breakpoints": results}
        if command == "threads":
            hit = self._require_stopped()
            return {
                "threads": [
                    {"id": i, "name": _frame_instance(f)}
                    for i, f in enumerate(hit.frames)
                ]
            }
        if command == "stackTrace":
            hit = self._require_stopped()
            tid = args.get("threadId", 0)
            frame = hit.frames[tid]
            frame_id = tid + 1
            self._frame_ids[frame_id] = frame
            return {
                "stackFrames": [
                    {
                        "id": frame_id,
                        "name": _frame_instance(frame),
                        "source": {"path": hit.filename},
                        "line": hit.line,
                        "column": hit.column,
                    }
                ],
                "totalFrames": 1,
            }
        if command == "scopes":
            frame = self._frame_ids[args["frameId"]]
            local_ref = self._register_vars(_frame_vars(frame, "local"))
            gen_ref = self._register_vars(_frame_vars(frame, "generator"))
            return {
                "scopes": [
                    {"name": "Local", "variablesReference": local_ref},
                    {
                        "name": "Generator Variables",
                        "variablesReference": gen_ref,
                    },
                ]
            }
        if command == "variables":
            views = self._var_refs.get(args["variablesReference"], [])
            out = []
            for v in views:
                if v.is_aggregate:
                    out.append(
                        {
                            "name": v.name,
                            "value": "{...}",
                            "variablesReference": self._register_vars(
                                v.children
                            ),
                        }
                    )
                else:
                    shown = (
                        f"{v.value} (0x{v.value:x})"
                        if isinstance(v.value, int)
                        else str(v.value)
                    )
                    out.append(
                        {
                            "name": v.name,
                            "value": shown,
                            "variablesReference": 0,
                        }
                    )
            return {"variables": out}
        if command == "evaluate":
            hit = self._stopped
            bp_id = None
            if hit is not None and hit.frames:
                bp_id = _frame_breakpoint_id(hit.frames[0])
            value = self.session.evaluate(
                args["expression"], breakpoint_id=bp_id
            )
            return {"result": str(value), "variablesReference": 0}
        if command in _CONTROLS:
            if self.driving:
                return self._drive_control(command)
            self._pending = _CONTROLS[command]
            return {}
        if command == "hgdbRun":
            # Custom request: start an attached session's run loop.
            if not self.driving:
                raise ValueError(
                    "hgdbRun requires an attached session (driving mode)"
                )
            self._enter_stop(self.session.run(args.get("cycles", 1_000_000)))
            return {"time": self.session.get_time()}
        if command == "configurationDone":
            return {}
        raise ValueError(f"unsupported DAP command {command!r}")

    # -- helpers -------------------------------------------------------------

    def _require_stopped(self):
        if self._stopped is None:
            raise ValueError("not stopped")
        return self._stopped

    def _register_vars(self, views: list[VariableView]) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._var_refs[ref] = views
        return ref


class ScriptedDapSession:
    """Drives a passive DapAdapter with a scripted list of per-stop requests.

    For each breakpoint stop, the session replays ``at_stop`` requests
    (recording responses), then issues the next control command from
    ``controls`` (default: continue).  This reproduces an IDE session
    without threads — suitable for tests and the Fig. 4 example.
    """

    def __init__(
        self, adapter: DapAdapter, at_stop: list[dict], controls: list[str]
    ):
        if adapter.runtime is None:
            raise ValueError(
                "ScriptedDapSession scripts the blocking hit callback; "
                "driving-mode adapters replay requests directly instead"
            )
        self.adapter = adapter
        self.at_stop = at_stop
        self.controls = list(controls)
        self.stops: list[list[dict]] = []
        adapter.runtime.on_hit = self._on_hit

    def _on_hit(self, hit: HitGroup) -> Command:
        self.adapter._stopped = hit
        self.adapter._var_refs.clear()
        self.adapter._frame_ids.clear()
        self.adapter._emit_stopped(hit.filename, hit.line, hit.time)
        responses = [self.adapter.handle(req) for req in self.at_stop]
        self.stops.append(responses)
        control = self.controls.pop(0) if self.controls else "continue"
        self.adapter._stopped = None
        return _CONTROLS[control]
