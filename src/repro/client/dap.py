"""A Debug Adapter Protocol (DAP) style adapter — the IDE integration.

The paper's second debugger is a VSCode extension (Fig. 4).  VSCode talks
DAP; this adapter translates DAP-shaped requests into runtime operations and
produces DAP-shaped events/responses, reproducing each panel of Fig. 4:

* **A** — ``scopes``/``variables``: local + generator variables per frame;
* **B** — ``threads``: one thread per concurrent instance at a stop;
* **C** — ``continue``/``next``/``stepBack``/``reverseContinue`` controls;
* **D** — ``setBreakpoints`` with optional per-line conditions.

The adapter is transport-agnostic: feed it request dicts and collect event
dicts (tests and ``examples/ide_session.py`` do exactly that; a real IDE
would frame them over stdin/stdout).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.frames import Frame, VariableView
from ..core.runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    HitGroup,
    Runtime,
)


@dataclass(slots=True)
class DapEvent:
    event: str
    body: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"type": "event", "event": self.event, "body": self.body}


class DapAdapter:
    """In-process DAP-style debug adapter over a :class:`Runtime`."""

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        runtime.on_hit = self._on_hit
        self.events: list[dict] = []
        self._seq = 0
        self._stopped: HitGroup | None = None
        self._pending: Command | None = None
        self._var_refs: dict[int, list[VariableView]] = {}
        self._next_ref = 1
        self._frame_ids: dict[int, Frame] = {}

    # -- runtime side ---------------------------------------------------------

    def _on_hit(self, hit: HitGroup) -> Command:
        self._stopped = hit
        self._var_refs.clear()
        self._frame_ids.clear()
        self._emit(
            "stopped",
            {
                "reason": "breakpoint",
                "description": f"{hit.filename}:{hit.line}",
                "threadId": 0,
                "allThreadsStopped": True,
                "hgdbTime": hit.time,
            },
        )
        # Scripted usage: the embedding client queues a control request
        # (continue/next/stepBack/...) before the simulation reaches the
        # next hit; with nothing queued the adapter auto-continues.  Use
        # ScriptedDapSession for per-stop interaction.
        cmd = self._pending or CONTINUE
        self._pending = None
        self._stopped = None
        self._emit("continued", {"threadId": 0, "allThreadsContinued": True})
        return cmd

    def _emit(self, event: str, body: dict) -> None:
        self.events.append(DapEvent(event, body).to_dict())

    # -- request handling ---------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Handle one DAP request dict, returning the response dict."""
        command = request.get("command")
        args = request.get("arguments", {})
        self._seq += 1
        try:
            body = self._dispatch(command, args)
            return {
                "type": "response",
                "request_seq": request.get("seq", self._seq),
                "command": command,
                "success": True,
                "body": body,
            }
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {
                "type": "response",
                "request_seq": request.get("seq", self._seq),
                "command": command,
                "success": False,
                "message": str(exc),
            }

    def _dispatch(self, command: str, args: dict) -> dict:
        rt = self.runtime
        if command == "initialize":
            return {
                "supportsConfigurationDoneRequest": True,
                "supportsStepBack": rt.sim.can_set_time or True,  # intra-cycle always
                "supportsConditionalBreakpoints": True,
                "supportsEvaluateForHovers": True,
            }
        if command == "setBreakpoints":
            source = args["source"]["path"]
            rt_bps = []
            # DAP replaces the whole set for a file each time.
            resolved = rt.resolve_filename(source)
            for bp in list(rt.list_breakpoints()):
                if resolved and bp.rec.filename == resolved:
                    rt.remove_breakpoint(bp.rec.id)
            results = []
            for spec in args.get("breakpoints", []):
                try:
                    inserted = rt.add_breakpoint(
                        source, spec["line"], condition=spec.get("condition")
                    )
                    rt_bps.extend(inserted)
                    results.append({"verified": True, "line": spec["line"]})
                except Exception as exc:  # noqa: BLE001
                    results.append(
                        {"verified": False, "line": spec["line"], "message": str(exc)}
                    )
            return {"breakpoints": results}
        if command == "threads":
            hit = self._require_stopped()
            return {
                "threads": [
                    {"id": i, "name": f.instance_path}
                    for i, f in enumerate(hit.frames)
                ]
            }
        if command == "stackTrace":
            hit = self._require_stopped()
            tid = args.get("threadId", 0)
            frame = hit.frames[tid]
            frame_id = tid + 1
            self._frame_ids[frame_id] = frame
            return {
                "stackFrames": [
                    {
                        "id": frame_id,
                        "name": frame.instance_path,
                        "source": {"path": hit.filename},
                        "line": hit.line,
                        "column": hit.column,
                    }
                ],
                "totalFrames": 1,
            }
        if command == "scopes":
            frame = self._frame_ids[args["frameId"]]
            local_ref = self._register_vars(frame.local_vars)
            gen_ref = self._register_vars(frame.generator_vars)
            return {
                "scopes": [
                    {"name": "Local", "variablesReference": local_ref},
                    {"name": "Generator Variables", "variablesReference": gen_ref},
                ]
            }
        if command == "variables":
            views = self._var_refs.get(args["variablesReference"], [])
            out = []
            for v in views:
                if v.is_aggregate:
                    out.append(
                        {
                            "name": v.name,
                            "value": "{...}",
                            "variablesReference": self._register_vars(v.children),
                        }
                    )
                else:
                    shown = (
                        f"{v.value} (0x{v.value:x})"
                        if isinstance(v.value, int)
                        else str(v.value)
                    )
                    out.append(
                        {"name": v.name, "value": shown, "variablesReference": 0}
                    )
            return {"variables": out}
        if command == "evaluate":
            hit = self._stopped
            bp = hit.frames[0].breakpoint if hit else None
            value = rt.evaluate(args["expression"], bp)
            return {"result": str(value), "variablesReference": 0}
        if command in ("continue", "next", "stepBack", "reverseContinue", "disconnect"):
            mapping = {
                "continue": CONTINUE,
                "next": STEP,
                "stepBack": REVERSE_STEP,
                "reverseContinue": REVERSE_CONTINUE,
                "disconnect": DETACH,
            }
            self._pending = mapping[command]
            return {}
        if command == "configurationDone":
            return {}
        raise ValueError(f"unsupported DAP command {command!r}")

    # -- helpers -----------------------------------------------------------------

    def _require_stopped(self) -> HitGroup:
        if self._stopped is None:
            raise ValueError("not stopped")
        return self._stopped

    def _register_vars(self, views: list[VariableView]) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._var_refs[ref] = views
        return ref


class ScriptedDapSession:
    """Drives a DapAdapter with a scripted list of per-stop requests.

    For each breakpoint stop, the session replays ``at_stop`` requests
    (recording responses), then issues the next control command from
    ``controls`` (default: continue).  This reproduces an IDE session
    without threads — suitable for tests and the Fig. 4 example.
    """

    def __init__(self, adapter: DapAdapter, at_stop: list[dict], controls: list[str]):
        self.adapter = adapter
        self.at_stop = at_stop
        self.controls = list(controls)
        self.stops: list[list[dict]] = []
        adapter.runtime.on_hit = self._on_hit

    def _on_hit(self, hit: HitGroup) -> Command:
        self.adapter._stopped = hit
        self.adapter._var_refs.clear()
        self.adapter._frame_ids.clear()
        self.adapter._emit(
            "stopped",
            {
                "reason": "breakpoint",
                "description": f"{hit.filename}:{hit.line}",
                "threadId": 0,
                "allThreadsStopped": True,
                "hgdbTime": hit.time,
            },
        )
        responses = [self.adapter.handle(req) for req in self.at_stop]
        self.stops.append(responses)
        control = self.controls.pop(0) if self.controls else "continue"
        self.adapter._stopped = None
        mapping = {
            "continue": CONTINUE,
            "next": STEP,
            "stepBack": REVERSE_STEP,
            "reverseContinue": REVERSE_CONTINUE,
            "disconnect": DETACH,
        }
        return mapping[control]
