"""A gdb-inspired console debugger (paper Sec. 3.5).

Works in-process against a :class:`repro.core.Runtime`: when a breakpoint
hits, the REPL runs inside the (blocking) clock callback, exactly like gdb
sitting on a ptrace stop.  Fully scriptable — pass ``script`` a list of
commands and read ``transcript`` — which is how the tests and the paper's
case study drive it.

Commands::

    b FILE:LINE [if COND]    insert breakpoint(s)
    watch NAME [if COND]     data breakpoint: stop when NAME changes
    ignore ID N              skip the next N hits of breakpoint ID
    delete [ID]              remove one or all breakpoints
    c / continue             resume until next breakpoint
    s / step                 stop at next source statement
    rs / reverse-step        step backwards (intra-cycle, then prior cycle)
    rc / reverse-continue    run backwards to the previous breakpoint hit
    p EXPR                   evaluate in the current frame's scope
    info threads|breakpoints|time|files|warnings
    frame [N]                select the N-th concurrent thread
    locals                   print the current frame's local variables
    gen                      print the current frame's generator variables
    set PATH VALUE           force a signal value (live simulation only)
    timeline                 show the retained time-travel window
    timeline goto T          jump to retained cycle T (set_time)
    timeline history NAME [N]  last N retained values of a signal
    lint [SEVERITY]          static analysis of the attached circuit
                             (findings at/above SEVERITY; docs/lint.md)
    stats                    simulator execution counters; full metric
                             catalog when observability is armed
                             (docs/observability.md)
    shard N CYCLES [SEED] [retries=K] [deadline=S]
                             parallel sweep: run N seeds of this design
                             with the current breakpoints, aggregate hits;
                             failed workers retry K times (deadline S
                             seconds per attempt) before running inline
    q / quit                 detach from the simulation
"""

from __future__ import annotations

from ..core.runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    DebuggerError,
    HitGroup,
    Runtime,
)
from ..core.frames import VariableView


class ConsoleDebugger:
    """Scriptable gdb-like front end."""

    def __init__(
        self,
        runtime: Runtime,
        script: list[str] | None = None,
        echo: bool = False,
    ):
        self.runtime = runtime
        runtime.on_hit = self._on_hit
        self.script = list(script) if script else None
        self.echo = echo
        self.transcript: list[str] = []
        self.current_hit: HitGroup | None = None
        self.current_frame = 0

    # -- I/O -----------------------------------------------------------------

    def _out(self, text: str) -> None:
        self.transcript.append(text)
        if self.echo:
            print(text)

    def _read(self) -> str:
        if self.script is not None:
            if not self.script:
                return "c"  # scripted session exhausted: keep running
            cmd = self.script.pop(0)
            self._out(f"(hgdb) {cmd}")
            return cmd
        return input("(hgdb) ")

    # -- hit handling -----------------------------------------------------------

    def _on_hit(self, hit: HitGroup) -> Command:
        self.current_hit = hit
        self.current_frame = 0
        if hit.watch is not None:
            w = hit.watch
            if "error" in w:
                self._out(
                    f"watchpoint #{w['id']} condition error: {w['error']}; "
                    f"watching unconditionally"
                )
            self._out(
                f"watchpoint #{w['id']} {w['label']}: {w['old']} -> {w['new']}"
                f" @ cycle {hit.time}"
            )
        else:
            short = hit.filename.rsplit("/", 1)[-1]
            self._out(
                f"stopped at {short}:{hit.line} @ cycle {hit.time} "
                f"[{len(hit.frames)} thread(s)]"
            )
        while True:
            cmd = self.execute(self._read())
            if cmd is not None:
                self.current_hit = None
                return cmd

    # -- command dispatch ------------------------------------------------------------

    def execute(self, line: str) -> Command | None:
        """Run one command.  Returns a control Command to resume, or None to
        stay paused / when not at a breakpoint."""
        line = line.strip()
        if not line:
            return None
        try:
            return self._dispatch(line)
        except Exception as exc:  # noqa: BLE001 - REPL surface
            self._out(f"error: {exc}")
            return None

    def _dispatch(self, line: str) -> Command | None:
        parts = line.split()
        cmd, args = parts[0], parts[1:]

        if cmd in ("c", "continue"):
            return CONTINUE
        if cmd in ("s", "step", "n", "next"):
            return STEP
        if cmd in ("rs", "reverse-step"):
            return REVERSE_STEP
        if cmd in ("rc", "reverse-continue"):
            return REVERSE_CONTINUE
        if cmd in ("q", "quit", "detach"):
            return DETACH

        if cmd == "b" or cmd == "break":
            self._cmd_break(args)
        elif cmd == "watch":
            condition = None
            if len(args) >= 3 and args[1] == "if":
                condition = " ".join(args[2:])
            wp = self.runtime.add_watchpoint(args[0], condition=condition)
            self._out(f"watchpoint #{wp.id} on {wp.path}")
        elif cmd == "ignore":
            bp = self.runtime.scheduler.inserted.get(int(args[0]))
            if bp is None:
                self._out(f"no breakpoint {args[0]}")
            else:
                bp.ignore_count = int(args[1])
                self._out(f"ignoring next {args[1]} hits of #{args[0]}")
        elif cmd == "delete":
            if args:
                ok = self.runtime.remove_breakpoint(int(args[0]))
                self._out("deleted" if ok else f"no breakpoint {args[0]}")
            else:
                self.runtime.clear_breakpoints()
                self._out("all breakpoints deleted")
        elif cmd == "p" or cmd == "print":
            self._cmd_print(" ".join(args))
        elif cmd == "info":
            self._cmd_info(args[0] if args else "time", args[1:])
        elif cmd == "frame":
            self._cmd_frame(args)
        elif cmd == "locals":
            self._print_vars(self._frame().local_vars)
        elif cmd == "gen":
            self._print_vars(self._frame().generator_vars)
        elif cmd == "where":
            hit = self.current_hit
            if hit is None:
                self._out("not stopped")
            else:
                self._out(f"{hit.filename}:{hit.line} @ cycle {hit.time}")
        elif cmd == "set":
            self.runtime.sim.set_value(args[0], int(args[1], 0))
            self._out(f"{args[0]} = {args[1]}")
        elif cmd == "timeline":
            self._cmd_timeline(args)
        elif cmd == "lint":
            self._cmd_lint(args)
        elif cmd == "shard":
            self._cmd_shard(args)
        elif cmd == "stats":
            self._cmd_stats(args)
        else:
            self._out(f"unknown command {cmd!r}; try c/s/rs/rc/b/p/info/q")
        return None

    # -- individual commands ----------------------------------------------------

    def _cmd_break(self, args: list[str]) -> None:
        if not args:
            self._out("usage: b FILE:LINE [if COND]")
            return
        location = args[0]
        condition = None
        if len(args) >= 3 and args[1] == "if":
            condition = " ".join(args[2:])
        filename, _, line_s = location.rpartition(":")
        bps = self.runtime.add_breakpoint(filename, int(line_s), condition=condition)
        self._out(
            f"breakpoint set: {len(bps)} emulated breakpoint(s) at "
            f"{location}" + (f" if {condition}" if condition else "")
        )
        for bp in bps:
            enable = bp.rec.enable_src or bp.rec.enable or "always"
            self._out(f"  #{bp.rec.id} {bp.rec.instance_name} [{enable}]")

    def _cmd_print(self, expr: str) -> None:
        if not expr:
            self._out("usage: p EXPR")
            return
        bp = None
        if self.current_hit is not None and self.current_hit.frames:
            bp = self._frame().breakpoint
        value = self.runtime.evaluate(expr, bp)
        self._out(f"{expr} = {value} (0x{value:x})" if isinstance(value, int) else f"{expr} = {value}")

    def _cmd_info(self, what: str, rest: list[str]) -> None:
        rt = self.runtime
        if what == "threads":
            hit = self.current_hit
            if hit is None:
                self._out("not stopped")
                return
            for i, f in enumerate(hit.frames):
                marker = "*" if i == self.current_frame else " "
                self._out(f"{marker} thread {i}: {f.instance_path}")
        elif what == "breakpoints":
            for bp in rt.list_breakpoints():
                cond = f" if {bp.condition_src}" if bp.condition_src else ""
                short = bp.rec.filename.rsplit("/", 1)[-1]
                self._out(
                    f"#{bp.rec.id} {short}:{bp.rec.line} {bp.rec.instance_name}"
                    f"{cond} (hits: {bp.hit_count})"
                )
            for wp in rt.watchpoints:
                self._out(f"watch #{wp.id} {wp.path} (hits: {wp.hit_count})")
            if not rt.list_breakpoints() and not len(rt.watchpoints):
                self._out("no breakpoints")
        elif what == "time":
            self._out(f"cycle {rt.sim.get_time()}")
        elif what == "files":
            for f in rt.symtable.filenames():
                self._out(f)
        elif what == "warnings":
            for w in rt.warnings:
                self._out(w)
            if not rt.warnings:
                self._out("no warnings")
        else:
            self._out(f"unknown info {what!r}")

    def _cmd_frame(self, args: list[str]) -> None:
        hit = self.current_hit
        if hit is None:
            self._out("not stopped")
            return
        if args:
            idx = int(args[0])
            if not 0 <= idx < len(hit.frames):
                self._out(f"no thread {idx}")
                return
            self.current_frame = idx
        f = hit.frames[self.current_frame]
        self._out(f"thread {self.current_frame}: {f.instance_path}")

    def _cmd_timeline(self, args: list[str]) -> None:
        """``timeline [info|goto T|history NAME [N]]``: inspect and use
        the backend's retained time-travel window.  One command serves
        both backends — the live simulator's compressed keyframe+delta
        timeline and the replay engine's full-trace window — because both
        expose the same ``TimelineView``/``history`` API."""
        sim = self.runtime.sim
        timeline = sim.timeline
        if timeline is None:
            self._out(
                "no timeline: this backend keeps no history (construct the "
                "simulator with snapshots=N or snapshot_bytes=N)"
            )
            return
        sub = args[0] if args else "info"
        if sub == "info":
            self._out(timeline.describe())
            self._out(f"current cycle: {sim.get_time()}")
        elif sub == "goto":
            if len(args) < 2:
                self._out("usage: timeline goto T")
                return
            sim.set_time(int(args[1], 0))
            self._out(f"now at cycle {sim.get_time()}")
        elif sub == "history":
            if len(args) < 2:
                self._out("usage: timeline history NAME [N]")
                return
            limit = int(args[2]) if len(args) > 2 else 16
            path = self.runtime._resolve_watch_path(args[1], None)
            # Bound the walk to the last N retained cycles up front: each
            # history sample is one set_time hop, and a replayed trace
            # can retain tens of thousands of cycles.
            times = timeline.times()
            start = times[-limit] if 0 < limit < len(times) else None
            series = sim.history(path, start=start)
            if not series:
                self._out(f"no retained history for {path}")
                return
            shown = series[-limit:]
            total = len(timeline)  # the walk may have retained "now" too
            if total > len(shown):
                self._out(f"{path}: last {len(shown)} of {total} retained")
            else:
                self._out(f"{path}: {len(shown)} retained cycle(s)")
            for t, v in shown:
                self._out(f"  cycle {t}: {v} (0x{v:x})")
        else:
            self._out(f"unknown timeline subcommand {sub!r}; "
                      f"try info/goto/history")

    def _cmd_lint(self, args: list[str]) -> None:
        """``lint [error|warning|info]``: statically analyze the attached
        circuit (the lowered form the simulator executes) and print every
        diagnostic at or above the given severity (default: all).  See
        ``docs/lint.md`` for the rule catalog."""
        from ..lint import Severity, format_diagnostics, lint_circuit

        design = getattr(self.runtime.sim, "design", None)
        circuit = getattr(design, "circuit", None)
        if circuit is None:
            self._out("lint: no circuit attached (trace replay session)")
            return
        diags = lint_circuit(circuit, form="low")
        if args:
            threshold = Severity.parse(args[0])
            diags = [d for d in diags if d.severity >= threshold]
        if not diags:
            self._out("lint: clean")
            return
        self._out(f"lint: {len(diags)} diagnostic(s)")
        for line in format_diagnostics(diags).splitlines():
            self._out(f"  {line}")

    def _cmd_shard(self, args: list[str]) -> None:
        """``shard N CYCLES [SEED_BASE] [retries=K] [deadline=S]``: fan
        the current design out to a parallel seed sweep, re-arming this
        session's breakpoints and watchpoints in every shard, and print
        the aggregated report.  ``retries``/``deadline`` tune the
        supervision layer (attempts per shard, per-attempt wall-clock
        budget)."""
        from ..shard import (
            BreakpointSpec,
            RetryPolicy,
            ShardSession,
            WatchSpec,
            make_sweep,
        )

        retries = None
        deadline = None
        positional = []
        for arg in args:
            key, eq, value = arg.partition("=")
            if eq and key in ("retries", "deadline"):
                try:
                    if key == "retries":
                        retries = max(1, int(value))
                    else:
                        deadline = float(value)
                except ValueError:
                    self._out(f"bad {key} value {value!r}")
                    return
            else:
                positional.append(arg)
        args = positional
        if len(args) < 2:
            self._out("usage: shard N CYCLES [SEED] [retries=K] [deadline=S]")
            return
        shards, cycles = int(args[0]), int(args[1])
        seed_base = int(args[2]) if len(args) > 2 else 0
        design = getattr(self.runtime.sim, "design", None)
        circuit = getattr(design, "circuit", None)
        if circuit is None:
            self._out("shard requires a live Simulator backend")
            return
        seen: set[tuple] = set()
        breakpoints = []
        for bp in self.runtime.list_breakpoints():
            key = (bp.rec.filename, bp.rec.line, bp.condition_src)
            if key not in seen:
                seen.add(key)
                breakpoints.append(
                    BreakpointSpec(
                        bp.rec.filename, bp.rec.line, condition=bp.condition_src
                    )
                )
        watchpoints = [
            WatchSpec(wp.label, condition=wp.condition_src)
            for wp in self.runtime.watchpoints
        ]
        if not breakpoints and not watchpoints:
            self._out("no breakpoints to sweep; insert some first (b/watch)")
            return
        # Reuse the session's already-compiled design: forked workers
        # inherit it copy-on-write (same top_path, no recompilation).
        # Without fork, shards run inline in this process and must not
        # share the live simulator's design (printf plumbing and cone
        # caches live on it) — recompile instead.
        import multiprocessing

        can_fork = "fork" in multiprocessing.get_all_start_methods()
        with ShardSession(
            circuit, self.runtime.symtable,
            compiled=design if can_fork else None,
        ) as session:
            report = session.run(
                make_sweep(
                    shards, cycles, seed_base=seed_base,
                    breakpoints=breakpoints, watchpoints=watchpoints,
                ),
                retry=(
                    RetryPolicy(max_attempts=retries)
                    if retries is not None else None
                ),
                deadline=deadline,
            )
        for line in report.summary().splitlines():
            self._out(line)

    def _cmd_stats(self, args: list[str]) -> None:
        """``stats``: print the attached simulator's execution counters
        (ticks, settle passes, cone-cache traffic, timeline retention),
        plus the full metric catalog when the session was started with
        observability armed (``$REPRO_OBS`` / ``Simulator(obs=...)``)."""
        stats_fn = getattr(self.runtime.sim, "stats", None)
        if stats_fn is None:
            self._out("stats: no counters on this backend (trace replay session)")
            return
        for key, value in stats_fn().items():
            self._out(f"  {key:<24} {value}")
        obs = getattr(self.runtime.sim, "obs", None)
        if obs is not None and getattr(obs, "metrics", None) is not None:
            from ..obs import format_metrics

            for line in format_metrics(obs.metrics.snapshot()).splitlines():
                self._out(line)

    def _frame(self):
        if self.current_hit is None:
            raise DebuggerError("not stopped at a breakpoint")
        if not self.current_hit.frames:
            raise DebuggerError("watchpoint stop has no source frame")
        return self.current_hit.frames[self.current_frame]

    def _print_vars(self, views: list[VariableView], indent: str = "  ") -> None:
        def rec(v: VariableView, pad: str) -> None:
            if v.is_aggregate:
                self._out(f"{pad}{v.name}:")
                for c in v.children:
                    rec(c, pad + "  ")
            else:
                val = v.value
                shown = f"{val} (0x{val:x})" if isinstance(val, int) else str(val)
                self._out(f"{pad}{v.name} = {shown}")

        for v in views:
            rec(v, indent)
