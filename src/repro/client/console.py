"""A gdb-inspired console debugger (paper Sec. 3.5).

Two ways to drive a session, one command surface:

* **passive** (the classic shape): construct with a
  :class:`repro.core.Runtime`; when a breakpoint hits, the REPL runs
  inside the (blocking) clock callback, exactly like gdb sitting on a
  ptrace stop.  The embedding code owns the clock (``sim.step(...)``).
* **driving**: construct with any
  :class:`~repro.hub.api.SessionHandle` — a hub session
  (:class:`~repro.hub.client.HubSession`) or an in-process
  :class:`~repro.hub.api.LocalSession` — and call :meth:`drive`; the
  console owns the run loop and every control command resumes the
  session.  This is ``hgdb-py hub attach``.

In both modes, every data command goes through the unified session API
(:class:`~repro.hub.api.SessionHandle`), so the console never touches a
concrete engine class.  Fully scriptable — pass ``script`` a list of
commands and read ``transcript`` — which is how the tests and the
paper's case study drive it.

Commands are declared in a registry (:func:`register_command`): name,
aliases, usage, help, handler.  ``help`` output is generated from the
registry, and embedders add commands by registering specs instead of
patching the dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.frames import VariableView
from ..core.runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    DebuggerError,
    HitGroup,
    Runtime,
)
from ..hub.api import LocalSession, SessionError, SessionHandle, StopInfo

# -- the command registry ---------------------------------------------------


@dataclass(frozen=True, slots=True)
class CommandSpec:
    """One console command: how it's named, parsed, documented, run."""

    name: str                 # canonical name ("continue")
    handler: object           # fn(dbg, args: list[str]) -> Command | None
    aliases: tuple = ()       # short forms ("c",)
    usage: str = ""           # one-line syntax, shown by `help`
    help: str = ""            # one-line description, shown by `help`


#: Default commands every ConsoleDebugger starts with, in `help` order.
_REGISTRY: dict[str, CommandSpec] = {}


def register_command(name: str, *, aliases=(), usage: str = "",
                     help: str = ""):
    """Declare a console command.  Used as a decorator on a handler
    ``fn(dbg, args)``; the spec lands in the default registry that every
    new :class:`ConsoleDebugger` copies (instances can also
    :meth:`~ConsoleDebugger.register` their own)."""

    def deco(fn):
        _REGISTRY[name] = CommandSpec(
            name, fn, tuple(aliases), usage or name, help
        )
        return fn

    return deco


# -- frame normalization ----------------------------------------------------
# A stop's frames are core.frames.Frame objects in passive mode and
# Frame.to_dict() records when they crossed the hub wire; these helpers
# give every command one shape to render.


def _frame_instance(frame) -> str:
    return frame["instance"] if isinstance(frame, dict) else frame.instance_path


def _frame_breakpoint_id(frame) -> int:
    if isinstance(frame, dict):
        return frame["breakpoint_id"]
    return frame.breakpoint.id


def _frame_vars(frame, kind: str) -> list[VariableView]:
    if isinstance(frame, dict):
        return [VariableView.from_dict(v) for v in frame.get(kind, [])]
    return frame.local_vars if kind == "local" else frame.generator_vars


class ConsoleDebugger:
    """Scriptable gdb-like front end over the unified session API."""

    def __init__(
        self,
        runtime: Runtime | None = None,
        script: list[str] | None = None,
        echo: bool = False,
        session: SessionHandle | None = None,
    ):
        if (runtime is None) == (session is None):
            raise ValueError(
                "ConsoleDebugger needs a Runtime (passive mode) or a "
                "SessionHandle (driving mode), not both"
            )
        self.runtime = runtime
        if runtime is not None:
            runtime.on_hit = self._on_hit
            self.session: SessionHandle = LocalSession(runtime)
            self.driving = False
        else:
            self.session = session
            self.driving = True
        self.script = list(script) if script else None
        self.echo = echo
        self.transcript: list[str] = []
        #: the current stop: a HitGroup (passive) or StopInfo (driving)
        self.current_hit: HitGroup | StopInfo | None = None
        self.current_frame = 0
        self.last_stop: StopInfo | None = None
        self.commands: dict[str, CommandSpec] = dict(_REGISTRY)

    def register(self, spec: CommandSpec) -> None:
        """Add (or replace) a command on this console instance."""
        self.commands[spec.name] = spec

    # -- I/O -----------------------------------------------------------------

    def _out(self, text: str) -> None:
        self.transcript.append(text)
        if self.echo:
            print(text)

    def _read(self) -> str:
        if self.script is not None:
            if not self.script:
                # Scripted session exhausted: keep running (passive) or
                # detach (driving — nobody is left to answer the REPL).
                return "q" if self.driving else "c"
            cmd = self.script.pop(0)
            self._out(f"(hgdb) {cmd}")
            return cmd
        return input("(hgdb) ")

    # -- hit handling (passive mode) -----------------------------------------

    def _on_hit(self, hit: HitGroup) -> Command:
        self.current_hit = hit
        self.current_frame = 0
        self._print_stop_banner(hit)
        while True:
            cmd = self.execute(self._read())
            if cmd is not None:
                self.current_hit = None
                return cmd

    def _print_stop_banner(self, hit) -> None:
        """The stop banner; ``hit`` is a HitGroup or a stopped StopInfo
        (both carry time/filename/line/frames/watch)."""
        watch = hit.watch if not isinstance(hit, dict) else None
        if watch is not None:
            if "error" in watch:
                self._out(
                    f"watchpoint #{watch['id']} condition error: "
                    f"{watch['error']}; watching unconditionally"
                )
            self._out(
                f"watchpoint #{watch['id']} {watch['label']}: "
                f"{watch['old']} -> {watch['new']} @ cycle {hit.time}"
            )
        else:
            short = hit.filename.rsplit("/", 1)[-1]
            self._out(
                f"stopped at {short}:{hit.line} @ cycle {hit.time} "
                f"[{len(hit.frames)} thread(s)]"
            )

    # -- driving mode ---------------------------------------------------------

    def drive(self, cycles: int = 1_000_000) -> StopInfo | None:
        """Own the run loop of an attached session: run up to ``cycles``
        cycles, serve the REPL at every stop, resume on control commands,
        and return the final :class:`StopInfo` (done/detached/error)."""
        self._enter_stop(self.session.run(cycles))
        while self.last_stop is not None and self.last_stop.stopped:
            self.execute(self._read())
        return self.last_stop

    def _enter_stop(self, stop: StopInfo | None) -> None:
        self.last_stop = stop
        self.current_frame = 0
        if stop is None:
            self.current_hit = None
            return
        if stop.stopped:
            self.current_hit = stop
            self._print_stop_banner(stop)
            return
        self.current_hit = None
        if stop.reason == "done":
            if stop.exit_code is not None:
                self._out(
                    f"finished @ cycle {stop.time} (exit {stop.exit_code})"
                )
            else:
                self._out(
                    f"ran {stop.cycles} cycle(s); now at cycle {stop.time}"
                )
        elif stop.reason == "detached":
            self._out(f"detached @ cycle {stop.time}")
        elif stop.reason == "error":
            self._out(f"error: {stop.message}")

    def _control(self, command: Command) -> Command | None:
        """Passive mode: bubble the Command to the runtime's scan loop.
        Driving mode: apply it to the session here and show the stop."""
        if not self.driving:
            return command
        session = self.session
        if command is DETACH:
            self._enter_stop(session.detach())
        elif command is CONTINUE:
            self._enter_stop(session.cont())
        elif command is STEP:
            self._enter_stop(session.step())
        elif command is REVERSE_STEP:
            self._enter_stop(session.reverse_step())
        elif command is REVERSE_CONTINUE:
            self._enter_stop(session.reverse_cont())
        return None

    # -- command dispatch ------------------------------------------------------

    def execute(self, line: str) -> Command | None:
        """Run one command.  Returns a control Command to resume, or None to
        stay paused / when not at a breakpoint."""
        line = line.strip()
        if not line:
            return None
        try:
            return self._dispatch(line)
        except SessionError as exc:
            # Session errors are user-facing statements, not failures —
            # they arrive pre-worded ("no timeline: ...", "stats: no
            # counters ...", "shard requires a live Simulator backend").
            self._out(str(exc))
            return None
        except Exception as exc:  # noqa: BLE001 - REPL surface
            self._out(f"error: {exc}")
            return None

    def _dispatch(self, line: str) -> Command | None:
        parts = line.split()
        cmd, args = parts[0], parts[1:]
        spec = self.commands.get(cmd)
        if spec is None:
            for candidate in self.commands.values():
                if cmd in candidate.aliases:
                    spec = candidate
                    break
        if spec is None:
            self._out(f"unknown command {cmd!r}; try c/s/rs/rc/b/p/info/q")
            return None
        return spec.handler(self, args)

    # -- shared helpers ----------------------------------------------------

    def _frame(self):
        if self.current_hit is None:
            raise DebuggerError("not stopped at a breakpoint")
        if not self.current_hit.frames:
            raise DebuggerError("watchpoint stop has no source frame")
        return self.current_hit.frames[self.current_frame]

    def _print_vars(self, views: list[VariableView], indent: str = "  ") -> None:
        def rec(v: VariableView, pad: str) -> None:
            if v.is_aggregate:
                self._out(f"{pad}{v.name}:")
                for c in v.children:
                    rec(c, pad + "  ")
            else:
                val = v.value
                shown = f"{val} (0x{val:x})" if isinstance(val, int) else str(val)
                self._out(f"{pad}{v.name} = {shown}")

        for v in views:
            rec(v, indent)


# -- control commands -------------------------------------------------------


@register_command("continue", aliases=("c",),
                  help="resume until next breakpoint")
def _cmd_continue(dbg: ConsoleDebugger, args) -> Command | None:
    return dbg._control(CONTINUE)


@register_command("step", aliases=("s", "n", "next"),
                  help="stop at next source statement")
def _cmd_step(dbg: ConsoleDebugger, args) -> Command | None:
    return dbg._control(STEP)


@register_command("reverse-step", aliases=("rs",),
                  help="step backwards (intra-cycle, then prior cycle)")
def _cmd_reverse_step(dbg: ConsoleDebugger, args) -> Command | None:
    return dbg._control(REVERSE_STEP)


@register_command("reverse-continue", aliases=("rc",),
                  help="run backwards to the previous breakpoint hit")
def _cmd_reverse_continue(dbg: ConsoleDebugger, args) -> Command | None:
    return dbg._control(REVERSE_CONTINUE)


@register_command("quit", aliases=("q", "detach"),
                  help="detach from the simulation")
def _cmd_quit(dbg: ConsoleDebugger, args) -> Command | None:
    return dbg._control(DETACH)


@register_command("run", usage="run [CYCLES]",
                  help="run an attached session (driving mode only)")
def _cmd_run(dbg: ConsoleDebugger, args) -> None:
    if not dbg.driving:
        dbg._out("run: the embedding code owns the clock in passive mode")
        return
    cycles = int(args[0]) if args else 1_000_000
    dbg._enter_stop(dbg.session.run(cycles))


# -- breakpoints ------------------------------------------------------------


@register_command("break", aliases=("b",), usage="b FILE:LINE [if COND]",
                  help="insert breakpoint(s)")
def _cmd_break(dbg: ConsoleDebugger, args) -> None:
    if not args:
        dbg._out("usage: b FILE:LINE [if COND]")
        return
    location = args[0]
    condition = None
    if len(args) >= 3 and args[1] == "if":
        condition = " ".join(args[2:])
    filename, _, line_s = location.rpartition(":")
    bps = dbg.session.add_breakpoint(filename, int(line_s), condition=condition)
    dbg._out(
        f"breakpoint set: {len(bps)} emulated breakpoint(s) at "
        f"{location}" + (f" if {condition}" if condition else "")
    )
    for bp in bps:
        dbg._out(f"  #{bp['id']} {bp['instance']} [{bp['enable']}]")


@register_command("watch", usage="watch NAME [if COND]",
                  help="data breakpoint: stop when NAME changes")
def _cmd_watch(dbg: ConsoleDebugger, args) -> None:
    condition = None
    if len(args) >= 3 and args[1] == "if":
        condition = " ".join(args[2:])
    wp = dbg.session.add_watchpoint(args[0], condition=condition)
    dbg._out(f"watchpoint #{wp['id']} on {wp['path']}")


@register_command("ignore", usage="ignore ID N",
                  help="skip the next N hits of breakpoint ID")
def _cmd_ignore(dbg: ConsoleDebugger, args) -> None:
    if dbg.session.ignore(int(args[0]), int(args[1])):
        dbg._out(f"ignoring next {args[1]} hits of #{args[0]}")
    else:
        dbg._out(f"no breakpoint {args[0]}")


@register_command("delete", usage="delete [ID]",
                  help="remove one or all breakpoints")
def _cmd_delete(dbg: ConsoleDebugger, args) -> None:
    if args:
        ok = dbg.session.remove_breakpoint(int(args[0]))
        dbg._out("deleted" if ok else f"no breakpoint {args[0]}")
    else:
        dbg.session.clear_breakpoints()
        dbg._out("all breakpoints deleted")


# -- inspection -------------------------------------------------------------


@register_command("print", aliases=("p",), usage="p EXPR",
                  help="evaluate in the current frame's scope")
def _cmd_print(dbg: ConsoleDebugger, args) -> None:
    expr = " ".join(args)
    if not expr:
        dbg._out("usage: p EXPR")
        return
    bp_id = None
    if dbg.current_hit is not None and dbg.current_hit.frames:
        bp_id = _frame_breakpoint_id(dbg._frame())
    value = dbg.session.evaluate(expr, breakpoint_id=bp_id)
    dbg._out(
        f"{expr} = {value} (0x{value:x})"
        if isinstance(value, int)
        else f"{expr} = {value}"
    )


@register_command("info", usage="info threads|breakpoints|time|files|warnings",
                  help="session facts")
def _cmd_info(dbg: ConsoleDebugger, args) -> None:
    what = args[0] if args else "time"
    if what == "threads":
        hit = dbg.current_hit
        if hit is None:
            dbg._out("not stopped")
            return
        for i, f in enumerate(hit.frames):
            marker = "*" if i == dbg.current_frame else " "
            dbg._out(f"{marker} thread {i}: {_frame_instance(f)}")
    elif what == "breakpoints":
        bps = dbg.session.breakpoints()
        wps = dbg.session.watchpoints()
        for bp in bps:
            cond = f" if {bp['condition']}" if bp["condition"] else ""
            short = bp["filename"].rsplit("/", 1)[-1]
            dbg._out(
                f"#{bp['id']} {short}:{bp['line']} {bp['instance']}"
                f"{cond} (hits: {bp['hits']})"
            )
        for wp in wps:
            dbg._out(f"watch #{wp['id']} {wp['path']} (hits: {wp['hits']})")
        if not bps and not wps:
            dbg._out("no breakpoints")
    elif what == "time":
        dbg._out(f"cycle {dbg.session.get_time()}")
    elif what == "files":
        for f in dbg.session.files():
            dbg._out(f)
    elif what == "warnings":
        warnings = dbg.session.warnings()
        for w in warnings:
            dbg._out(w)
        if not warnings:
            dbg._out("no warnings")
    else:
        dbg._out(f"unknown info {what!r}")


@register_command("frame", usage="frame [N]",
                  help="select the N-th concurrent thread")
def _cmd_frame(dbg: ConsoleDebugger, args) -> None:
    hit = dbg.current_hit
    if hit is None:
        dbg._out("not stopped")
        return
    if args:
        idx = int(args[0])
        if not 0 <= idx < len(hit.frames):
            dbg._out(f"no thread {idx}")
            return
        dbg.current_frame = idx
    f = hit.frames[dbg.current_frame]
    dbg._out(f"thread {dbg.current_frame}: {_frame_instance(f)}")


@register_command("locals", help="print the current frame's local variables")
def _cmd_locals(dbg: ConsoleDebugger, args) -> None:
    dbg._print_vars(_frame_vars(dbg._frame(), "local"))


@register_command("gen", help="print the current frame's generator variables")
def _cmd_gen(dbg: ConsoleDebugger, args) -> None:
    dbg._print_vars(_frame_vars(dbg._frame(), "generator"))


@register_command("where", help="current stop location")
def _cmd_where(dbg: ConsoleDebugger, args) -> None:
    hit = dbg.current_hit
    if hit is None:
        dbg._out("not stopped")
    else:
        dbg._out(f"{hit.filename}:{hit.line} @ cycle {hit.time}")


@register_command("set", usage="set PATH VALUE",
                  help="force a signal value (live simulation only)")
def _cmd_set(dbg: ConsoleDebugger, args) -> None:
    dbg.session.poke(args[0], int(args[1], 0))
    dbg._out(f"{args[0]} = {args[1]}")


# -- subsystem commands -----------------------------------------------------


@register_command("timeline", usage="timeline [info|goto T|history NAME [N]]",
                  help="inspect/use the retained time-travel window")
def _cmd_timeline(dbg: ConsoleDebugger, args) -> None:
    """One command serves every backend — the live simulator's compressed
    keyframe+delta timeline, the replay engine's full-trace window, and a
    remote hub session — because all expose the same session API."""
    info = dbg.session.timeline_info()
    if info is None:
        dbg._out(
            "no timeline: this backend keeps no history (construct the "
            "simulator with snapshots=N or snapshot_bytes=N)"
        )
        return
    sub = args[0] if args else "info"
    if sub == "info":
        dbg._out(info["describe"])
        dbg._out(f"current cycle: {info['time']}")
    elif sub == "goto":
        if len(args) < 2:
            dbg._out("usage: timeline goto T")
            return
        dbg.session.set_time(int(args[1], 0))
        dbg._out(f"now at cycle {dbg.session.get_time()}")
    elif sub == "history":
        if len(args) < 2:
            dbg._out("usage: timeline history NAME [N]")
            return
        limit = int(args[2]) if len(args) > 2 else 16
        series = dbg.session.history(args[1], limit=limit)
        path, samples, total = series["path"], series["samples"], series["total"]
        if not samples:
            dbg._out(f"no retained history for {path}")
            return
        if total > len(samples):
            dbg._out(f"{path}: last {len(samples)} of {total} retained")
        else:
            dbg._out(f"{path}: {len(samples)} retained cycle(s)")
        for t, v in samples:
            dbg._out(f"  cycle {t}: {v} (0x{v:x})")
    else:
        dbg._out(f"unknown timeline subcommand {sub!r}; "
                 f"try info/goto/history")


@register_command("lint", usage="lint [SEVERITY]",
                  help="static analysis of the attached circuit "
                       "(docs/lint.md)")
def _cmd_lint(dbg: ConsoleDebugger, args) -> None:
    result = dbg.session.lint(args[0] if args else None)
    if not result["count"]:
        dbg._out("lint: clean")
        return
    dbg._out(f"lint: {result['count']} diagnostic(s)")
    for line in result["text"].splitlines():
        dbg._out(f"  {line}")


@register_command(
    "shard",
    usage="shard N CYCLES [SEED] [retries=K] [deadline=S]",
    help="parallel sweep: N seeds of this design with the current "
         "breakpoints, hits aggregated (docs/sharding.md)",
)
def _cmd_shard(dbg: ConsoleDebugger, args) -> None:
    retries = None
    deadline = None
    positional = []
    for arg in args:
        key, eq, value = arg.partition("=")
        if eq and key in ("retries", "deadline"):
            try:
                if key == "retries":
                    retries = max(1, int(value))
                else:
                    deadline = float(value)
            except ValueError:
                dbg._out(f"bad {key} value {value!r}")
                return
        else:
            positional.append(arg)
    args = positional
    if len(args) < 2:
        dbg._out("usage: shard N CYCLES [SEED] [retries=K] [deadline=S]")
        return
    report = dbg.session.shard_sweep(
        int(args[0]),
        int(args[1]),
        seed_base=int(args[2]) if len(args) > 2 else 0,
        retries=retries,
        deadline=deadline,
    )
    for line in report["summary"].splitlines():
        dbg._out(line)


@register_command(
    "worlds",
    help="many-worlds status: hit mask of the current stop plus per-world "
         "run state (docs/manyworlds.md)",
)
def _cmd_worlds(dbg: ConsoleDebugger, args) -> None:
    sim = dbg.runtime.sim if dbg.runtime is not None else None
    n = getattr(sim, "worlds", None)
    hit = dbg.current_hit
    fired = None
    if hit is not None:
        fired = getattr(hit, "worlds", None)
        watch = getattr(hit, "watch", None)
        if fired is None and watch:
            fired = watch.get("worlds")
    if n is None and fired is None:
        dbg._out("scalar backend: one world (docs/manyworlds.md)")
        return
    if n is None:
        n = max(fired) + 1
    if fired is not None:
        hits = set(fired)
        mask = "".join("X" if k in hits else "." for k in range(n))
        worlds = ", ".join(str(k) for k in sorted(hits))
        dbg._out(f"hit mask  {mask}  ({len(hits)}/{n}: world(s) {worlds})")
    elif hit is not None:
        dbg._out("current stop carries no world mask")
    codes = getattr(sim, "exit_codes", None)
    if codes is not None:
        ticks = sim.finish_ticks
        active = set(sim.active_worlds)
        alive = "".join("." if k in active else "X" for k in range(n))
        dbg._out(f"finished  {alive}  ({n - len(active)}/{n})")
        for k in sorted(set(range(n)) - active):
            dbg._out(
                f"  world {k}: exit {codes[k]} @ cycle {ticks[k]}"
            )


@register_command("stats",
                  help="simulator execution counters; full metric catalog "
                       "when observability is armed (docs/observability.md)")
def _cmd_stats(dbg: ConsoleDebugger, args) -> None:
    for key, value in dbg.session.stats().items():
        dbg._out(f"  {key:<24} {value}")
    snapshot = dbg.session.metrics()
    if snapshot is not None:
        from ..obs import format_metrics

        for line in format_metrics(snapshot).splitlines():
            dbg._out(line)


@register_command("help", aliases=("h", "?"),
                  help="this command list (generated from the registry)")
def _cmd_help(dbg: ConsoleDebugger, args) -> None:
    for spec in dbg.commands.values():
        names = "/".join((spec.name,) + spec.aliases)
        syntax = spec.usage if spec.usage != spec.name else names
        dbg._out(f"  {syntax:<42} {spec.help}")
