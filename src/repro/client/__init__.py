"""repro.client — debugger front ends (paper Sec. 3.5).

``ConsoleDebugger`` is the gdb-inspired debugger; ``DapAdapter`` is the
IDE (VSCode / Debug Adapter Protocol) integration of paper Fig. 4.
"""

from .console import ConsoleDebugger
from .dap import DapAdapter, ScriptedDapSession

__all__ = ["ConsoleDebugger", "DapAdapter", "ScriptedDapSession"]
