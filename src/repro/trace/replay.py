"""Trace-based replay: the paper Fig. 1 "Replay tool".

``ReplayEngine`` implements the unified simulator interface over a parsed
VCD, so the hgdb runtime debugs a finished simulation exactly like a live
one — except ``set_value`` is unavailable ("not possible when interfacing
with a trace file", Sec. 3.3) and ``set_time`` is cheap in both directions,
unlocking full reverse debugging (Sec. 3.2).
"""

from __future__ import annotations

from ..sim.interface import (
    HierNode,
    SignalInfo,
    SimulatorError,
    SimulatorInterface,
)
from ..sim.timeline import FullTraceTimeline, TimelineError
from .parser import VcdFile, VcdScope, parse_vcd_file


class ReplayEngine(SimulatorInterface):
    """Replay a VCD trace through the unified simulator interface.

    Cycles are derived from the clock's rising edges.  ``get_time`` /
    ``set_time`` are in cycles, matching the live simulator's convention.

    Time travel rides the same :mod:`repro.sim.timeline` API as the live
    simulator: ``timeline`` is a :class:`FullTraceTimeline` (a trace
    retains every cycle at zero extra cost), ``set_time`` goes through
    the shared interface template (so set-time callbacks — watchpoint
    re-priming — fire identically), and out-of-window jumps raise the
    same :class:`TimelineError` naming the retained window.
    """

    def __init__(self, vcd: VcdFile, clock_path: str | None = None):
        self.vcd = vcd
        if clock_path is not None:
            clock = vcd.by_path.get(clock_path)
            if clock is None:
                raise SimulatorError(f"no clock signal {clock_path!r} in trace")
        else:
            clock = vcd.find_clock()
            if clock is None:
                raise SimulatorError("could not locate a clock in the trace")
        self._clock = clock
        self._posedges = [
            t for t, v in zip(clock.times, clock.values, strict=False) if v == 1
        ]
        if not self._posedges:
            raise SimulatorError("trace contains no clock rising edges")
        self._cycle = 0
        self._callbacks: dict[int, object] = {}
        self._next_cb_id = 1
        self._hierarchy = _scopes_to_hierarchy(vcd)
        self.timeline = FullTraceTimeline(len(self._posedges), label="VCD replay")

    @classmethod
    def from_file(cls, path: str, clock_path: str | None = None) -> ReplayEngine:
        return cls(parse_vcd_file(path), clock_path)

    # -- replay control ----------------------------------------------------

    @property
    def n_cycles(self) -> int:
        return len(self._posedges)

    def step(self, cycles: int = 1) -> None:
        """Advance the replay cursor, firing clock callbacks per cycle."""
        for _ in range(cycles):
            if self._cycle + 1 >= len(self._posedges):
                return
            self._cycle += 1
            for fn in list(self._callbacks.values()):
                fn(self)

    def run(self, max_cycles: int | None = None) -> None:
        """Replay to the end of the trace (or ``max_cycles``)."""
        budget = max_cycles if max_cycles is not None else len(self._posedges)
        while budget > 0 and self._cycle + 1 < len(self._posedges):
            self.step()
            budget -= 1

    @property
    def at_end(self) -> bool:
        return self._cycle + 1 >= len(self._posedges)

    # -- SimulatorInterface ---------------------------------------------------

    def get_value(self, path: str) -> int:
        sig = self.vcd.by_path.get(path)
        if sig is None:
            raise SimulatorError(f"no such signal {path!r} in trace")
        return sig.value_at(self._posedges[self._cycle])

    def hierarchy(self) -> HierNode:
        return self._hierarchy

    def clock_name(self) -> str:
        return self._clock.path

    def add_clock_callback(self, fn) -> int:
        cb_id = self._next_cb_id
        self._next_cb_id += 1
        self._callbacks[cb_id] = fn
        return cb_id

    def remove_clock_callback(self, cb_id: int) -> None:
        self._callbacks.pop(cb_id, None)

    def get_time(self) -> int:
        return self._cycle

    def _apply_set_time(self, time: int) -> None:
        if time not in self.timeline:
            raise TimelineError(
                f"cannot rewind to cycle {time}: trace retains cycles "
                f"0..{len(self._posedges) - 1}"
            )
        self._cycle = time

    @property
    def can_set_time(self) -> bool:
        return True

    @property
    def is_replay(self) -> bool:
        return True


def _scopes_to_hierarchy(vcd: VcdFile) -> HierNode:
    """Convert VCD scopes into the interface's HierNode tree."""

    def convert(scope: VcdScope) -> HierNode:
        node = HierNode(scope.name, scope.path, scope.name)
        for sig in scope.signals:
            node.signals.append(
                SignalInfo(sig.name, sig.path, sig.width, sig.kind)
            )
        for child in scope.children:
            node.children.append(convert(child))
        return node

    if len(vcd.root_scopes) == 1:
        return convert(vcd.root_scopes[0])
    root = HierNode("", "", "")
    for scope in vcd.root_scopes:
        root.children.append(convert(scope))
    return root
