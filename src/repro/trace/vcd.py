"""VCD (Value Change Dump) writing.

The writer attaches to a live simulator and samples every signal at each
clock posedge (while values are stable), emitting standard VCD that any
waveform viewer opens and that :class:`repro.trace.ReplayEngine` replays
for offline reverse debugging.

Time mapping: simulation cycle ``k`` dumps at VCD time ``2k`` with the
clock rising there and falling at ``2k + 1``.
"""

from __future__ import annotations

import io

_ID_FIRST = 33  # '!'
_ID_LAST = 126  # '~'
_ID_RANGE = _ID_LAST - _ID_FIRST + 1


def _ident(n: int) -> str:
    """The n-th VCD short identifier."""
    out = []
    n += 1
    while n > 0:
        n -= 1
        out.append(chr(_ID_FIRST + n % _ID_RANGE))
        n //= _ID_RANGE
    return "".join(out)


class VcdWriter:
    """Write a VCD file from a live :class:`repro.sim.Simulator`.

    Use via the simulator's ``trace=`` argument::

        writer = VcdWriter("dump.vcd")
        sim = Simulator(design.low, trace=writer)
        ... simulate ...
        writer.close()
    """

    def __init__(self, path: str | None = None, stream: io.TextIOBase | None = None):
        if (path is None) == (stream is None):
            raise ValueError("provide exactly one of path or stream")
        self._own = stream is None
        self._f = open(path, "w") if path else stream
        self._ids: dict[int, str] = {}       # signal index -> vcd id
        self._last: dict[int, int] = {}      # signal index -> last dumped value
        self._clock_id: str | None = None
        self._clock_index: int | None = None
        self._header_done = False
        self._closed = False
        self._narrow = None                  # value-store raw buffers,
        self._wide: dict | None = None       # bound once in begin()

    # -- trace-sink protocol (engine calls these) ---------------------------

    def begin(self, sim) -> None:
        design = sim.design
        # Sampling reads every traced signal each cycle: bind the value
        # store's raw buffers once (narrow 64-bit lanes + the wide
        # overflow dict) instead of dispatching per read.
        store = sim.store
        self._narrow = store.narrow
        self._wide = store.wide
        f = self._f
        f.write("$date\n    repro.trace\n$end\n")
        f.write("$version\n    hgdb-py VCD writer\n$end\n")
        f.write("$timescale 1ns $end\n")
        self._write_scope(sim, design.hierarchy)
        f.write("$enddefinitions $end\n")
        f.write("#0\n$dumpvars\n")
        wide = self._wide
        for idx, vid in self._ids.items():
            value = wide[idx] if idx in wide else self._narrow[idx]
            width = design.signals[idx].width
            self._last[idx] = value
            f.write(self._format(value, width, vid))
        f.write("$end\n")
        self._header_done = True
        self._clock_index = design.clock_index

    def _write_scope(self, sim, node) -> None:
        f = self._f
        f.write(f"$scope module {node.name} $end\n")
        for siginfo in node.signals:
            idx = sim.design.signal_index[siginfo.path]
            vid = _ident(len(self._ids))
            self._ids[idx] = vid
            kind = "reg" if siginfo.kind == "reg" else "wire"
            f.write(f"$var {kind} {siginfo.width} {vid} {siginfo.name} $end\n")
            if idx == sim.design.clock_index:
                self._clock_id = vid
        for child in node.children:
            self._write_scope(sim, child)
        f.write("$upscope $end\n")

    def sample(self, sim) -> None:
        """Dump changed values at the current (stable, pre-edge) cycle."""
        f = self._f
        t = sim.get_time()
        lines: list[str] = []
        narrow, wide = self._narrow, self._wide
        for idx, vid in self._ids.items():
            value = wide[idx] if idx in wide else narrow[idx]
            if self._last.get(idx) != value:
                self._last[idx] = value
                lines.append(self._format(value, sim.design.signals[idx].width, vid))
        f.write(f"#{2 * t}\n")
        if self._clock_id is not None:
            f.write(f"1{self._clock_id}\n")
        f.writelines(lines)
        f.write(f"#{2 * t + 1}\n")
        if self._clock_id is not None:
            f.write(f"0{self._clock_id}\n")

    @staticmethod
    def _format(value: int, width: int, vid: str) -> str:
        if width == 1:
            return f"{int(value)}{vid}\n"
        return f"b{value:b} {vid}\n"

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._f.flush()
            if self._own:
                self._f.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
