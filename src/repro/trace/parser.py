"""VCD parsing.

A small but honest VCD reader: handles ``$scope``/``$var`` hierarchies,
``$dumpvars`` initialization, scalar and vector value changes, and treats
``x``/``z`` bits as 0 (2-state semantics, matching the simulator).

The parsed form keeps, per signal, a sorted list of ``(time, value)``
changes for O(log n) random access — the property that makes trace-based
reverse debugging cheap (paper Sec. 3.2).
"""

from __future__ import annotations

import io
from bisect import bisect_right
from dataclasses import dataclass, field


class VcdParseError(Exception):
    """Raised on malformed VCD input."""


@dataclass(slots=True)
class VcdSignal:
    """One declared signal and its change history."""

    ident: str
    name: str
    width: int
    path: str
    kind: str = "wire"
    times: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)

    def value_at(self, time: int) -> int:
        """The signal's value at ``time`` (last change <= time; 0 before)."""
        i = bisect_right(self.times, time)
        if i == 0:
            return 0
        return self.values[i - 1]

    def record(self, time: int, value: int) -> None:
        if self.times and self.times[-1] == time:
            self.values[-1] = value
            return
        self.times.append(time)
        self.values.append(value)


@dataclass(slots=True)
class VcdScope:
    """A ``$scope`` block: instance-like node in the trace hierarchy."""

    name: str
    path: str
    children: list[VcdScope] = field(default_factory=list)
    signals: list[VcdSignal] = field(default_factory=list)


@dataclass(slots=True)
class VcdFile:
    """A fully parsed VCD."""

    root_scopes: list[VcdScope]
    signals: dict[str, VcdSignal]          # ident -> signal
    by_path: dict[str, VcdSignal]          # full path -> signal
    end_time: int = 0

    def find_clock(self) -> VcdSignal | None:
        """Heuristic clock detection: a 1-bit signal named clock/clk with
        the most transitions."""
        candidates = [
            s for s in self.by_path.values()
            if s.width == 1 and s.name.lower() in ("clock", "clk")
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda s: len(s.times))


def _parse_value(token: str) -> int:
    """Binary string with x/z treated as 0."""
    cleaned = token.lower().replace("x", "0").replace("z", "0")
    return int(cleaned, 2) if cleaned else 0


def parse_vcd(source: str | io.TextIOBase) -> VcdFile:
    """Parse VCD text (a path-less string or an open file object)."""
    stream = io.StringIO(source) if isinstance(source, str) else source

    tokens = _tokenize(stream)
    root_scopes: list[VcdScope] = []
    scope_stack: list[VcdScope] = []
    signals: dict[str, VcdSignal] = {}
    by_path: dict[str, VcdSignal] = {}
    time = 0
    end_time = 0
    in_defs = True

    it = iter(tokens)
    for tok in it:
        if in_defs:
            if tok == "$scope":
                _kind = next(it)
                name = next(it)
                _skip_to_end(it)
                path = ".".join([s.name for s in scope_stack] + [name])
                scope = VcdScope(name, path)
                if scope_stack:
                    scope_stack[-1].children.append(scope)
                else:
                    root_scopes.append(scope)
                scope_stack.append(scope)
            elif tok == "$upscope":
                _skip_to_end(it)
                if scope_stack:
                    scope_stack.pop()
            elif tok == "$var":
                kind = next(it)
                width = int(next(it))
                ident = next(it)
                name = next(it)
                # optional bit range token before $end
                _skip_to_end(it)
                prefix = ".".join(s.name for s in scope_stack)
                path = f"{prefix}.{name}" if prefix else name
                if ident in signals:
                    # Aliased declaration: same ident, another path.
                    by_path[path] = signals[ident]
                    continue
                sig = VcdSignal(ident, name, width, path, kind)
                signals[ident] = sig
                by_path[path] = sig
                if scope_stack:
                    scope_stack[-1].signals.append(sig)
            elif tok in ("$date", "$version", "$comment", "$timescale"):
                _skip_to_end(it)
            elif tok == "$enddefinitions":
                _skip_to_end(it)
                in_defs = False
            continue

        # Value-change section.
        if tok.startswith("#"):
            time = int(tok[1:])
            end_time = max(end_time, time)
        elif tok in ("$dumpvars", "$dumpall", "$dumpon", "$dumpoff", "$end"):
            continue
        elif tok.startswith(("b", "B")):
            value = _parse_value(tok[1:])
            ident = next(it)
            sig = signals.get(ident)
            if sig is None:
                raise VcdParseError(f"value change for unknown id {ident!r}")
            sig.record(time, value)
        elif tok.startswith(("r", "R")):
            next(it)  # real values unsupported; skip ident
        elif tok[0] in "01xXzZ":
            ident = tok[1:]
            sig = signals.get(ident)
            if sig is None:
                raise VcdParseError(f"value change for unknown id {ident!r}")
            sig.record(time, _parse_value(tok[0]))
        else:
            raise VcdParseError(f"unexpected token {tok!r}")

    return VcdFile(root_scopes, signals, by_path, end_time)


def parse_vcd_file(path: str) -> VcdFile:
    """Parse a VCD file from disk."""
    with open(path) as f:
        return parse_vcd(f)


def _tokenize(stream: io.TextIOBase):
    for line in stream:
        yield from line.split()


def _skip_to_end(it) -> None:
    for tok in it:
        if tok == "$end":
            return
    raise VcdParseError("unterminated $-block")
