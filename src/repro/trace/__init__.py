"""repro.trace — VCD writing, parsing, and trace replay.

The replay engine implements the same unified simulator interface as the
live simulator, enabling offline debugging and full reverse debugging from
captured traces (paper Fig. 1 "Replay tool").
"""

from .parser import VcdFile, VcdParseError, VcdScope, VcdSignal, parse_vcd, parse_vcd_file
from .replay import ReplayEngine
from .vcd import VcdWriter

__all__ = [
    "ReplayEngine",
    "VcdFile",
    "VcdParseError",
    "VcdScope",
    "VcdSignal",
    "VcdWriter",
    "parse_vcd",
    "parse_vcd_file",
]
