"""Metric primitives: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Zero hot-path cost.**  The per-cycle simulator loop never calls into
   this module.  Hot objects keep always-on plain-int counters (a bare
   ``self._stat_ticks += 1`` is cheaper than any enabled-check), and a
   *collector* callback registered on the owning registry folds them into
   proper metrics only when :meth:`MetricsRegistry.snapshot` runs.
2. **Zero dependencies.**  Snapshots are plain dicts of JSON types so
   they can ride the shard farm's JSON-lines wire unchanged.
3. **Mergeable.**  :func:`merge_snapshots` sums counters and
   bucket-compatible histograms across processes, which is how per-shard
   metrics aggregate into one ``ShardReport`` view.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping

SNAPSHOT_VERSION = 1

# Default histogram bounds: latency-flavored, seconds.  Callers with a
# different unit (bytes, counts) pass explicit bounds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


def _labels_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count.

    ``set_total`` exists for the collector pattern: a collector reads an
    always-on plain int from a hot object and *sets* the counter to it,
    rather than the hot path incrementing the counter directly.
    """

    __slots__ = ("name", "help", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set_total(self, total: float) -> None:
        # Monotonicity is the *source's* job; collectors mirror totals.
        self.value = total

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": self.labels,
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (bytes held, workers live)."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": self.labels,
            "value": self.value,
        }


class Histogram:
    """Fixed-bound cumulative-bucket histogram (Prometheus semantics).

    ``bounds`` are the upper bounds of the finite buckets; an implicit
    ``+Inf`` bucket catches the rest.  ``counts`` stores *per-bucket*
    (non-cumulative) counts internally; the wire/exposition formats
    cumulate on the way out.
    """

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": self.labels,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Registry of metric instruments plus lazy collectors.

    ``default_labels`` (e.g. ``{"shard": "3"}``) are merged into every
    instrument created through the registry, which is how per-shard
    identity stays attached through wire transit and aggregation.
    """

    __slots__ = ("default_labels", "_metrics", "_collectors")

    def __init__(self, default_labels: Mapping[str, str] | None = None):
        self.default_labels = dict(default_labels or {})
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []

    # -- instrument accessors (get-or-create, keyed by name+labels) --------

    def _get(self, cls, name: str, help: str, labels: Mapping[str, str] | None, **kw):
        merged = dict(self.default_labels)
        merged.update(labels or {})
        key = (name, _labels_key(merged))
        inst = self._metrics.get(key)
        if inst is None:
            inst = cls(name, help=help, labels=merged, **kw)
            self._metrics[key] = inst
        elif type(inst) is not cls:
            raise TypeError(f"metric {name!r} already registered as {type(inst).__name__}")
        return inst

    def counter(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, bounds=bounds)

    # -- collectors --------------------------------------------------------

    def add_collector(self, fn: Callable[[MetricsRegistry], None]) -> None:
        """Register a callback run at snapshot time.

        Collectors are how hot objects expose always-on plain-int stats
        without ever touching the registry from a hot loop.
        """
        self._collectors.append(fn)

    def snapshot(self) -> dict:
        """Run collectors, then return a JSON-safe snapshot of everything."""
        for fn in list(self._collectors):
            fn(self)
        metrics = [m.to_wire() for m in self._metrics.values()]  # type: ignore[attr-defined]
        metrics.sort(key=lambda m: (m["name"], sorted(m["labels"].items())))
        return {"v": SNAPSHOT_VERSION, "metrics": metrics}


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge snapshots from several processes into one.

    Counters sum; gauges keep the max (the only aggregate that is
    meaningful without a timeline); histograms with identical bounds sum
    bucket-wise.  Label sets are preserved, so per-shard series stay
    distinct unless the shards emitted identical labels.
    """
    merged: dict[tuple, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for m in snap.get("metrics", ()):
            key = (m["name"], _labels_key(m.get("labels")))
            prev = merged.get(key)
            if prev is None:
                merged[key] = {k: (list(v) if isinstance(v, list) else v) for k, v in m.items()}
                continue
            if prev.get("type") != m.get("type"):
                raise ValueError(f"metric {m['name']!r} has conflicting types across snapshots")
            if m["type"] == "counter":
                prev["value"] += m["value"]
            elif m["type"] == "gauge":
                prev["value"] = max(prev["value"], m["value"])
            elif m["type"] == "histogram":
                if prev["bounds"] != m["bounds"]:
                    raise ValueError(
                        f"histogram {m['name']!r} has conflicting bucket bounds across snapshots"
                    )
                prev["counts"] = [a + b for a, b in zip(prev["counts"], m["counts"])]
                prev["sum"] += m["sum"]
                prev["count"] += m["count"]
    out = sorted(merged.values(), key=lambda m: (m["name"], sorted(m["labels"].items())))
    return {"v": SNAPSHOT_VERSION, "metrics": out}
