"""Span-based tracing with cross-process merge support.

Every span records *two* clocks:

- ``wall`` (``time.time()``) anchors the span on a timeline shared by
  every process — it is what lets coordinator and forked-worker spans
  interleave correctly in one Chrome trace.
- ``dur`` is measured with ``time.monotonic()`` so a wall-clock step
  (NTP, suspend) cannot produce negative or inflated durations.

Spans also carry the process identity (``pid``, a human ``proc`` name
like ``"coordinator"`` or ``"shard 3"``) so the Chrome exporter can put
each process on its own track.  Worker tracers are created *after* fork,
so the pid is genuinely distinct per worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass(slots=True)
class SpanRecord:
    """One completed span.  ``wall``/``dur`` in seconds."""

    name: str
    wall: float
    dur: float
    pid: int
    proc: str
    args: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "wall": self.wall,
            "dur": self.dur,
            "pid": self.pid,
            "proc": self.proc,
            "args": self.args,
        }

    @classmethod
    def from_wire(cls, d: dict) -> SpanRecord:
        return cls(
            name=d["name"],
            wall=d["wall"],
            dur=d["dur"],
            pid=d["pid"],
            proc=d.get("proc", ""),
            args=d.get("args", {}),
        )


class _Span:
    """Context manager that records a SpanRecord on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_wall", "_mono")

    def __init__(self, tracer: Tracer, name: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> _Span:
        self._wall = time.time()
        self._mono = time.monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.record_span(
            self._name,
            wall=self._wall,
            dur=time.monotonic() - self._mono,
            args=self._args,
        )
        return False


class _NullSpan:
    """Shared no-op context manager for the tracing-off path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects SpanRecords for one process/shard."""

    __slots__ = ("proc", "pid", "spans")

    def __init__(self, proc: str = "main"):
        self.proc = proc
        self.pid = os.getpid()
        self.spans: list[SpanRecord] = []

    def span(self, name: str, **args):
        """``with tracer.span("sim.settle", cycle=42): ...``"""
        return _Span(self, name, args)

    def record_span(
        self,
        name: str,
        *,
        wall: float,
        dur: float,
        args: dict | None = None,
        proc: str | None = None,
        pid: int | None = None,
    ) -> SpanRecord:
        """Record an already-timed span.

        Event loops (the shard coordinator) time attempts themselves and
        call this with explicit start/duration; ``proc``/``pid`` override
        the tracer identity when recording on behalf of another process.
        """
        rec = SpanRecord(
            name=name,
            wall=wall,
            dur=dur,
            pid=self.pid if pid is None else pid,
            proc=self.proc if proc is None else proc,
            args=dict(args or {}),
        )
        self.spans.append(rec)
        return rec

    def to_wire(self) -> list[dict]:
        return [s.to_wire() for s in self.spans]
