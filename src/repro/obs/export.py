"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Chrome trace-event format (the JSON Array / Object format consumed by
Perfetto and chrome://tracing): each span becomes a complete event
(``"ph": "X"``) with microsecond timestamps.  Wall-clock times are
normalized to the earliest span across *all* processes, so coordinator
and worker spans line up on one timeline; ``pid`` keys the per-process
tracks and ``"M"`` metadata events give them human names ("coordinator",
"shard 3").

Prometheus text exposition: ``# HELP``/``# TYPE`` headers, cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` for histograms.
"""

from __future__ import annotations

import json
from collections.abc import Iterable


def _span_dicts(spans: Iterable) -> list[dict]:
    out = []
    for s in spans:
        out.append(s if isinstance(s, dict) else s.to_wire())
    return out


def to_chrome_trace(spans: Iterable) -> dict:
    """Build a Chrome trace-event document from spans (records or dicts)."""
    spans = _span_dicts(spans)
    events: list[dict] = []
    t0 = min((s["wall"] for s in spans), default=0.0)
    seen_procs: dict[int, str] = {}
    for s in spans:
        pid = int(s["pid"])
        if pid not in seen_procs:
            seen_procs[pid] = s.get("proc") or f"pid {pid}"
        events.append(
            {
                "name": s["name"],
                "ph": "X",
                "ts": (s["wall"] - t0) * 1e6,
                "dur": s["dur"] * 1e6,
                "pid": pid,
                "tid": 1,
                "args": s.get("args", {}),
            }
        )
    for pid, proc in sorted(seen_procs.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": proc},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: Iterable) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(spans), fh)
        fh.write("\n")


def _esc(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_esc(v)}"' for k, v in pairs) + "}"


def _fmt_num(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def to_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus text exposition format."""
    lines: list[str] = []
    headered: set[str] = set()
    for m in snapshot.get("metrics", ()):
        name, kind, labels = m["name"], m["type"], m.get("labels", {})
        if name not in headered:
            headered.add(name)
            if m.get("help"):
                lines.append(f"# HELP {name} {_esc(m['help'])}")
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_str(labels)} {_fmt_num(m['value'])}")
        elif kind == "histogram":
            cum = 0
            for bound, cnt in zip(m["bounds"], m["counts"]):
                cum += cnt
                le = _fmt_num(float(bound))
                lines.append(f"{name}_bucket{_label_str(labels, (('le', le),))} {cum}")
            cum += m["counts"][len(m["bounds"])]
            lines.append(f"{name}_bucket{_label_str(labels, (('le', '+Inf'),))} {cum}")
            lines.append(f"{name}_sum{_label_str(labels)} {_fmt_num(m['sum'])}")
            lines.append(f"{name}_count{_label_str(labels)} {m['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, snapshot: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(snapshot))


def format_metrics(snapshot: dict) -> str:
    """Human-readable one-line-per-series table for consoles and CLIs."""
    lines: list[str] = []
    for m in snapshot.get("metrics", ()):
        label = _label_str(m.get("labels", {}))
        if m["type"] == "histogram":
            count = m["count"]
            mean = (m["sum"] / count) if count else 0.0
            lines.append(f"  {m['name']}{label}  count={count} sum={m['sum']:.6g} mean={mean:.6g}")
        else:
            lines.append(f"  {m['name']}{label}  {_fmt_num(m['value'])}")
    return "\n".join(lines)
