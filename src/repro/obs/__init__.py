"""repro.obs: zero-dependency observability for the whole stack.

The debugging framework's own runtime — compiled simulation, the shard
farm, the RPC symbol table — was the last opaque layer of the repo.  This
package makes it inspectable without adding a dependency or taxing the
per-cycle hot path:

``MetricsRegistry``
    counters, gauges, and fixed-bucket histograms with label sets, plus
    *collectors* — callbacks that lazily fold always-on plain-int counters
    (kept on hot objects like the simulator and the compiled design) into
    the registry only when a snapshot is taken.

``Tracer``
    span-based tracing.  Every span carries a wall-clock timestamp (for
    cross-process merging), a monotonic duration, and a process/shard
    identity, so coordinator and forked-worker spans land on one Perfetto
    timeline.

``Obs``
    the facade the instrumented layers hold.  Depth is selected by
    ``$REPRO_OBS=off|metrics|trace``, ``configure(mode)``, or an explicit
    ``Simulator(obs=...)`` / ``ShardSession(obs=...)`` argument.  The
    disabled mode is a true no-op fast path: hot loops increment plain
    Python ints unconditionally (cheaper than any guard) and everything
    else is an attribute check against the ``NULL_OBS`` singleton.

Exporters (``repro.obs.export``) emit Chrome trace-event JSON (loadable
in Perfetto / chrome://tracing) and Prometheus text exposition.  See
``docs/observability.md`` for the metric catalog and span naming scheme.
"""

from __future__ import annotations

from .core import (
    MODES,
    NULL_OBS,
    OBS_ENV,
    Obs,
    configure,
    configured_mode,
    make_obs,
    resolve_mode,
)
from .export import (
    format_metrics,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_snapshots
from .tracer import SpanRecord, Tracer

__all__ = [
    "MODES",
    "NULL_OBS",
    "OBS_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "SpanRecord",
    "Tracer",
    "configure",
    "configured_mode",
    "format_metrics",
    "make_obs",
    "merge_snapshots",
    "resolve_mode",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_prometheus",
]
