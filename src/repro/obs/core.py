"""The Obs facade: mode resolution and the no-op fast path.

Three depths, cumulative:

``off``      nothing is collected.  Hot objects still bump their plain
             ints (cheaper than a guard); everything registry- or
             tracer-shaped short-circuits on ``NULL_OBS``.
``metrics``  counters/gauges/histograms collected; no spans.
``trace``    metrics plus spans.

Resolution order for an unspecified mode: the process-wide value set by
:func:`configure` (used by the CLI so forked shard workers inherit it),
then ``$REPRO_OBS``, then ``off``.
"""

from __future__ import annotations

import os

from .metrics import MetricsRegistry
from .tracer import NULL_SPAN, Tracer

OBS_ENV = "REPRO_OBS"
MODES = ("off", "metrics", "trace")

_configured: str | None = None


def configure(mode: str | None) -> None:
    """Set the process-wide default mode (overrides ``$REPRO_OBS``)."""
    global _configured
    if mode is not None and mode not in MODES:
        raise ValueError(f"unknown obs mode {mode!r}; expected one of {MODES}")
    _configured = mode


def configured_mode() -> str | None:
    return _configured


def resolve_mode(mode: str | None = None) -> str:
    """Resolve an explicit/None mode to one of ``MODES``."""
    if mode is None:
        mode = _configured
    if mode is None:
        mode = os.environ.get(OBS_ENV, "off").strip().lower() or "off"
    if mode not in MODES:
        raise ValueError(f"unknown obs mode {mode!r}; expected one of {MODES}")
    return mode


class Obs:
    """What instrumented layers hold: a mode, a registry, maybe a tracer.

    ``metrics`` is ``None`` in off mode and ``tracer`` is ``None`` unless
    mode is ``trace`` — instrumentation sites test those attributes (an
    attribute load plus an ``is None`` check) rather than calling through
    virtual no-ops, keeping the disabled path flat.
    """

    __slots__ = ("mode", "metrics", "tracer")

    def __init__(self, mode: str, proc: str = "main", labels: dict | None = None):
        if mode not in MODES:
            raise ValueError(f"unknown obs mode {mode!r}; expected one of {MODES}")
        self.mode = mode
        self.metrics = MetricsRegistry(default_labels=labels) if mode != "off" else None
        self.tracer = Tracer(proc=proc) if mode == "trace" else None

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def span(self, name: str, **args):
        """Span context manager; a shared no-op when tracing is off."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **args)

    def to_wire(self) -> dict | None:
        """JSON-safe dump: metrics snapshot + spans (rides the shard wire)."""
        if self.metrics is None:
            return None
        out: dict = {"metrics": self.metrics.snapshot()}
        if self.tracer is not None:
            out["spans"] = self.tracer.to_wire()
        return out


class _NullObs(Obs):
    """The off-mode singleton.  Never collects; safe to share globally."""

    __slots__ = ()

    def __init__(self):
        super().__init__("off")


NULL_OBS = _NullObs()


def make_obs(
    obs: Obs | str | None = None,
    *,
    proc: str = "main",
    labels: dict | None = None,
) -> Obs:
    """Coerce an ``obs=`` argument (Obs | mode-string | None) to an Obs.

    Passing an existing :class:`Obs` shares it (the simulator inside a
    shard worker reports into the shard's registry); a string or None
    builds a fresh one with the resolved mode.  Off always returns the
    shared ``NULL_OBS`` so disabled paths stay allocation-free.
    """
    if isinstance(obs, Obs):
        return obs
    mode = resolve_mode(obs)
    if mode == "off":
        return NULL_OBS
    return Obs(mode, proc=proc, labels=labels)
