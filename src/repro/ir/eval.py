"""Reference evaluation semantics for IR primitive operations.

Signal values are stored as unsigned masked integers in ``[0, 2**width)``.
SInt-typed values are *interpreted* as two's complement when an operation is
arithmetic.  Division/remainder by zero evaluate to 0 (defined semantics so
simulation is total, as in most RTL simulators' 2-state mode).

Both the constant-propagation pass and the compiled simulator must agree
with these functions; property-based tests enforce that.
"""

from __future__ import annotations

from .expr import Expr, Literal, MemRead, PrimOp, Ref, SubField, SubIndex
from .types import SIntType, Type


def mask(value: int, width: int) -> int:
    """Truncate to ``width`` bits (unsigned representation)."""
    return value & ((1 << width) - 1)


def to_signed(raw: int, width: int) -> int:
    """Interpret a masked value as two's complement."""
    if raw & (1 << (width - 1)):
        return raw - (1 << width)
    return raw


def interp(raw: int, typ: Type) -> int:
    """Interpret a raw masked value according to its type."""
    if isinstance(typ, SIntType):
        return to_signed(raw, typ.bit_width())
    return raw


def literal_raw(lit: Literal) -> int:
    """The unsigned-masked storage representation of a literal."""
    return mask(lit.value, lit.typ.bit_width())


def eval_prim(
    op: str,
    params: tuple[int, ...],
    raw_args: tuple[int, ...],
    arg_types: tuple[Type, ...],
    result_type: Type,
) -> int:
    """Evaluate one primitive op over raw (masked) argument values.

    Returns the raw masked result.
    """
    rw = result_type.bit_width()
    vals = tuple(interp(r, t) for r, t in zip(raw_args, arg_types, strict=False))

    if op == "add":
        return mask(vals[0] + vals[1], rw)
    if op == "sub":
        return mask(vals[0] - vals[1], rw)
    if op == "mul":
        return mask(vals[0] * vals[1], rw)
    if op == "div":
        if vals[1] == 0:
            return 0
        q = abs(vals[0]) // abs(vals[1])
        if (vals[0] < 0) != (vals[1] < 0):
            q = -q
        return mask(q, rw)
    if op == "rem":
        if vals[1] == 0:
            return 0
        r = abs(vals[0]) % abs(vals[1])
        if vals[0] < 0:
            r = -r
        return mask(r, rw)
    if op == "lt":
        return int(vals[0] < vals[1])
    if op == "leq":
        return int(vals[0] <= vals[1])
    if op == "gt":
        return int(vals[0] > vals[1])
    if op == "geq":
        return int(vals[0] >= vals[1])
    if op == "eq":
        return int(vals[0] == vals[1])
    if op == "neq":
        return int(vals[0] != vals[1])
    if op == "and":
        return mask(vals[0] & vals[1], rw)
    if op == "or":
        return mask(vals[0] | vals[1], rw)
    if op == "xor":
        return mask(vals[0] ^ vals[1], rw)
    if op == "not":
        return mask(~vals[0], rw)
    if op == "neg":
        return mask(-vals[0], rw)
    if op == "andr":
        w = arg_types[0].bit_width()
        return int(raw_args[0] == (1 << w) - 1)
    if op == "orr":
        return int(raw_args[0] != 0)
    if op == "xorr":
        return bin(raw_args[0]).count("1") & 1
    if op == "cat":
        wb = arg_types[1].bit_width()
        return (raw_args[0] << wb) | raw_args[1]
    if op == "bits":
        hi, lo = params
        return (raw_args[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == "pad":
        return mask(vals[0], rw)
    if op == "shl":
        return mask(vals[0] << params[0], rw)
    if op == "shr":
        return mask(vals[0] >> params[0], rw)
    if op == "dshl":
        # Shift amounts are unsigned (FIRRTL requires UInt), so use the raw
        # value even when the operand happens to be SInt-typed.
        return mask(vals[0] << min(raw_args[1], 256), rw)
    if op == "dshr":
        return mask(vals[0] >> min(raw_args[1], 256), rw)
    if op == "mux":
        return mask(vals[1] if raw_args[0] else vals[2], rw)
    if op == "as_uint":
        return raw_args[0]
    if op == "as_sint":
        return raw_args[0]
    raise ValueError(f"unknown primitive op {op!r}")


class ExprInterpreter:
    """Interpret IR expressions against an environment of raw signal values.

    Used by the High-form reference interpreter in tests and by the debug
    runtime's enable-condition fallback; the production simulator compiles
    expressions to Python source for speed instead (``repro.sim.compiler``).
    """

    def __init__(self, read_ref, read_mem=None):
        self._read_ref = read_ref
        self._read_mem = read_mem

    def eval(self, e: Expr) -> int:
        if isinstance(e, Literal):
            return literal_raw(e)
        if isinstance(e, Ref):
            return self._read_ref(e.name)
        if isinstance(e, SubField):
            # Only instance port access survives to evaluation; reads use
            # the dotted path.
            return self._read_ref(f"{_path_of(e)}")
        if isinstance(e, SubIndex):
            return self._read_ref(f"{_path_of(e)}")
        if isinstance(e, MemRead):
            if self._read_mem is None:
                raise ValueError("memory reads not supported here")
            return self._read_mem(e.mem, self.eval(e.addr))
        if isinstance(e, PrimOp):
            raw_args = tuple(self.eval(a) for a in e.args)
            arg_types = tuple(a.typ for a in e.args)
            return eval_prim(e.op, e.params, raw_args, arg_types, e.typ)
        raise TypeError(f"cannot evaluate {e!r}")


def _path_of(e: Expr) -> str:
    if isinstance(e, Ref):
        return e.name
    if isinstance(e, SubField):
        return f"{_path_of(e.expr)}.{e.name}"
    if isinstance(e, SubIndex):
        return f"{_path_of(e.expr)}[{e.index}]"
    raise TypeError(f"not a path expression: {e!r}")
