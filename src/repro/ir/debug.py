"""Debug metadata produced by the compilation pipeline (paper Algorithm 1).

The first pass (on the High form, inside ``ExpandWhens``) annotates every
statement of interest with its source locator, its SSA value node, and its
*enable condition* node.  The second pass (``collect_debug_info``, after
optimization on the Low form) keeps only the entries whose nodes survived
optimization — "a behavior consistent with software compilers" (Sec. 4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .source import SourceInfo

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _rename_tokens(expr: str, renames: dict[str, str]) -> str:
    """Substitute identifiers in an expression string."""
    return _IDENT.sub(lambda m: renames.get(m.group(0), m.group(0)), expr)


@dataclass(slots=True)
class DebugEntry:
    """One emulatable breakpoint: a statement in generator source code.

    Attributes:
        module: IR module name the statement elaborated into.
        info: generator source location.
        node: RTL signal (SSA temp) holding the statement's computed value.
        enable: RTL signal name of the enable condition, or ``None`` when
            the statement executes unconditionally.
        sink: original (pre-lowering, dotted) name of the assigned target.
        var_map: source-level variable name -> RTL signal name *valid at
            this statement* (the SSA context mapping of paper Listing 2).
        enable_src: the enable condition rendered in source-level terms
            (e.g. ``data[0] % 2`` in paper Listing 2), for display.
    """

    module: str
    info: SourceInfo
    node: str
    enable: str | None
    sink: str
    var_map: dict[str, str] = field(default_factory=dict)
    enable_src: str | None = None


@dataclass(slots=True)
class ModuleDebugInfo:
    """Per-module debug metadata."""

    module: str
    entries: list[DebugEntry] = field(default_factory=list)
    #: flattened RTL name -> original dotted source name (from LowerTypes)
    rename_map: dict[str, str] = field(default_factory=dict)
    #: declared source-level variables (original dotted name -> RTL name)
    variables: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class DebugInfo:
    """Whole-circuit debug metadata threaded through the pass pipeline."""

    modules: dict[str, ModuleDebugInfo] = field(default_factory=dict)

    def module(self, name: str) -> ModuleDebugInfo:
        if name not in self.modules:
            self.modules[name] = ModuleDebugInfo(name)
        return self.modules[name]

    def all_entries(self) -> list[DebugEntry]:
        out: list[DebugEntry] = []
        for m in self.modules.values():
            out.extend(m.entries)
        return out

    def apply_renames(self, module: str, renames: dict[str, str]) -> None:
        """Remap entry node names after a pass renamed signals (CSE)."""
        if module not in self.modules or not renames:
            return
        for entry in self.modules[module].entries:
            entry.node = renames.get(entry.node, entry.node)
            if entry.enable is not None:
                # ``enable`` is an expression string: rename token-wise.
                entry.enable = _rename_tokens(entry.enable, renames)
            entry.var_map = {
                k: renames.get(v, v) for k, v in entry.var_map.items()
            }
        mi = self.modules[module]
        mi.variables = {k: renames.get(v, v) for k, v in mi.variables.items()}

    def prune_dead(self, module: str, alive: set[str]) -> int:
        """Second pass of Algorithm 1: drop entries whose value node was
        optimized away.  Returns the number of surviving entries."""
        if module not in self.modules:
            return 0
        mi = self.modules[module]
        kept: list[DebugEntry] = []
        for entry in mi.entries:
            if entry.node not in alive:
                continue
            # ``enable`` is an expression string over RTL names, not a
            # signal; the runtime tolerates references that were optimized
            # away (falls back to unconditional with a warning).
            entry.var_map = {
                k: v for k, v in entry.var_map.items() if v in alive
            }
            kept.append(entry)
        mi.entries = kept
        mi.variables = {k: v for k, v in mi.variables.items() if v in alive}
        return len(kept)
