"""Source locators attached to IR nodes.

Hardware generator frameworks record, for every statement they emit, the
location in the *generator* source code (the Scala file for Chisel, the
Python file for our eDSL) that produced it.  This is the raw material from
which the symbol table is built (paper Sec. 2: "line number mapping").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceInfo:
    """A (filename, line, column) locator in generator source code."""

    filename: str
    line: int
    column: int = 0

    def is_known(self) -> bool:
        return bool(self.filename) and self.line > 0

    def __str__(self) -> str:
        if not self.is_known():
            return "<unknown>"
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"

    def order_key(self) -> tuple[str, int, int]:
        """Total ordering used by the breakpoint scheduler (paper Sec. 3.2:
        breakpoints are ordered by lexical order — line and column)."""
        return (self.filename, self.line, self.column)


#: Sentinel for IR nodes with no known source location.
UNKNOWN = SourceInfo("", 0, 0)
