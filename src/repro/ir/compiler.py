"""The IR compilation pipeline.

``compile_circuit`` takes an elaborated High-form circuit and produces the
Low form the simulator executes, together with the debug metadata
(Algorithm 1) the symbol table is generated from:

    CheckHighForm -> LowerTypes -> ExpandWhens (SSA, Alg.1 pass 1)
        -> [ConstProp -> CSE -> InlineNodes -> DCE]   (skipped names in debug mode)
        -> collect debug info (Alg.1 pass 2) -> CheckLowForm

``debug_mode=True`` is the ``-O0`` analog (paper Sec. 4.1): every named
signal receives a DontTouch annotation, optimization becomes a no-op for
them, and the symbol table retains all source information at the cost of a
larger netlist and slower simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .debug import DebugInfo
from .passes import (
    check_high_form,
    check_low_form,
    const_prop,
    cse,
    dce,
    expand_whens,
    lower_types,
)
from .stmt import (
    Circuit,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    DontTouch,
    walk_stmts,
)


@dataclass(slots=True)
class CompileResult:
    """Everything downstream tools need."""

    high: Circuit
    low: Circuit
    debug: DebugInfo
    lint: list[str] = field(default_factory=list)
    debug_mode: bool = False


def _protect_everything(circuit: Circuit) -> None:
    """Debug mode: DontTouch every named signal (paper Sec. 4.1)."""
    for name, m in circuit.modules.items():
        for s in walk_stmts(m.body):
            if isinstance(s, (DefWire, DefRegister, DefNode, DefMemory)):
                circuit.annotations.append(DontTouch(name, s.name))


def _defined_names(circuit: Circuit) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for name, m in circuit.modules.items():
        names = {p.name for p in m.ports}
        for s in m.body:
            if isinstance(s, (DefWire, DefRegister, DefNode, DefMemory)):
                names.add(s.name)
        out[name] = names
    return out


def compile_circuit(
    high: Circuit,
    debug_mode: bool = False,
    optimize: bool = True,
) -> CompileResult:
    """Lower a High-form circuit to the executable Low form.

    Args:
        high: the elaborated circuit (from ``repro.hgf.elaborate``).
        debug_mode: protect all signals from optimization (``-O0`` analog).
        optimize: run ConstProp/CSE/Inline/DCE at all.  ``debug_mode`` with
            ``optimize=True`` still runs the passes — they simply cannot
            touch protected names, exactly like FIRRTL with DontTouch.
    """
    check_high_form(high)
    debug = DebugInfo()

    low = lower_types(high, debug)
    if debug_mode:
        _protect_everything(low)
    low, lint = expand_whens(low, debug)
    if debug_mode:
        # SSA temps and enable nodes created by ExpandWhens must survive too.
        _protect_everything(low)

    if optimize:
        low = const_prop(low)
        low, renames = cse(low)
        for module, table in renames.items():
            debug.apply_renames(module, table)
        # Note: inline_nodes (FIRRTL's emit-time expression folding) is NOT
        # part of the default pipeline — like FIRRTL, named nodes survive to
        # the netlist so the optimized build remains debuggable; see
        # benchmarks/bench_sec41_symtable_size.py for its effect.
        low, _alive = dce(low)

    # Algorithm 1, second pass: keep only entries whose nodes survived.
    for module, names in _defined_names(low).items():
        debug.prune_dead(module, names)

    check_low_form(low)
    return CompileResult(high=high, low=low, debug=debug, lint=lint, debug_mode=debug_mode)
