"""FIRRTL-like intermediate representation.

High form: aggregate types, ``when`` blocks, last-connect-wins.
Low form: ground types, SSA nodes + single driver per sink.

See ``repro.ir.compiler.compile_circuit`` for the pass pipeline and
``repro.ir.debug`` for the debug metadata it produces (paper Algorithm 1).
"""

from . import expr
from .compiler import CompileResult, compile_circuit
from .debug import DebugEntry, DebugInfo, ModuleDebugInfo
from .eval import ExprInterpreter, eval_prim, interp, mask, to_signed
from .expr import (
    Expr,
    Literal,
    MemRead,
    PrimOp,
    Ref,
    SubField,
    SubIndex,
    sint,
    uint,
)
from .source import UNKNOWN, SourceInfo
from .stmt import (
    Block,
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    DontTouch,
    GeneratorVar,
    MemWrite,
    ModuleIR,
    Port,
    Printf,
    Stop,
)
from .types import (
    BundleType,
    ClockType,
    Field,
    ResetType,
    SIntType,
    Type,
    UIntType,
    VecType,
)
from .verilog import emit_verilog

__all__ = [
    "Block", "BundleType", "Circuit", "ClockType", "CompileResult",
    "Conditionally", "Connect", "DebugEntry", "DebugInfo", "DefInstance",
    "DefMemory", "DefNode", "DefRegister", "DefWire", "DontTouch", "Expr",
    "ExprInterpreter", "Field", "GeneratorVar", "Literal", "MemRead",
    "MemWrite", "ModuleDebugInfo", "ModuleIR", "Port", "PrimOp", "Printf",
    "Ref", "ResetType", "SIntType", "SourceInfo", "Stop", "SubField",
    "SubIndex", "Type", "UIntType", "UNKNOWN", "VecType", "compile_circuit",
    "emit_verilog", "eval_prim", "expr", "interp", "mask", "sint",
    "to_signed", "uint",
]
