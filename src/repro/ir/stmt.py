"""IR statements, modules, and circuits.

The High form may contain :class:`Conditionally` (``when``) blocks, bundle
and vec typed declarations, and multiple last-connect-wins ``Connect``
statements per sink.  The Low form — produced by ``LowerTypes`` +
``ExpandWhens`` — contains only ground types and exactly one driving
expression per sink, which is what the simulator compiles and the Verilog
emitter prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .expr import Expr, Ref, SubField, SubIndex
from .source import UNKNOWN, SourceInfo
from .types import Type


class Stmt:
    """Base class of all IR statements."""

    info: SourceInfo


@dataclass(frozen=True, slots=True)
class DefWire(Stmt):
    """Declare a combinational wire."""

    name: str
    typ: Type
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class DefRegister(Stmt):
    """Declare a register clocked by ``clock``.

    If ``reset`` is given, the register synchronously loads ``init`` while
    reset is asserted at the clock edge.
    """

    name: str
    typ: Type
    clock: Expr
    reset: Expr | None = None
    init: Expr | None = None
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class DefNode(Stmt):
    """Declare a named immutable intermediate value (FIRRTL ``node``)."""

    name: str
    value: Expr
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class DefMemory(Stmt):
    """Declare a memory with combinational read and synchronous write.

    ``init`` optionally preloads contents (used for instruction ROMs).
    """

    name: str
    typ: Type  # element type, must be ground
    depth: int
    init: tuple[int, ...] | None = None
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class DefInstance(Stmt):
    """Instantiate child module ``module`` under the name ``name``."""

    name: str
    module: str
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class Connect(Stmt):
    """Drive ``loc`` with ``expr``.  Last connect wins within a scope; a
    connect under a ``when`` only applies when the condition holds."""

    loc: Expr
    expr: Expr
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class MemWrite(Stmt):
    """Synchronous memory write, qualified by enable ``en``."""

    mem: str
    addr: Expr
    data: Expr
    en: Expr
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class Stop(Stmt):
    """Halt simulation with ``exit_code`` when ``cond`` holds at a clock
    edge (like Verilog ``$finish`` guarded by a condition)."""

    cond: Expr
    exit_code: int = 0
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class Printf(Stmt):
    """Print at clock edge when ``cond`` holds; ``fmt`` uses ``{}`` holes
    filled with ``args`` values."""

    cond: Expr
    fmt: str
    args: tuple[Expr, ...] = ()
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class Conditionally(Stmt):
    """A ``when (pred) { conseq } otherwise { alt }`` block (High form only)."""

    pred: Expr
    conseq: Block
    alt: Block
    info: SourceInfo = UNKNOWN


@dataclass(frozen=True, slots=True)
class Block:
    """An ordered sequence of statements."""

    stmts: tuple[Stmt, ...] = ()

    def __iter__(self):
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


@dataclass(frozen=True, slots=True)
class Port:
    """A module port."""

    name: str
    direction: str  # "input" | "output"
    typ: Type
    info: SourceInfo = UNKNOWN

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise ValueError(f"bad port direction {self.direction!r}")


@dataclass(slots=True)
class ModuleIR:
    """A module definition: ports plus a body block."""

    name: str
    ports: list[Port]
    body: Block
    info: SourceInfo = UNKNOWN

    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"module {self.name} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return any(p.name == name for p in self.ports)


@dataclass(frozen=True, slots=True)
class DontTouch:
    """Annotation protecting ``(module, name)`` from optimization — the
    debug-mode analog of gcc ``-O0`` described in paper Sec. 4.1."""

    module: str
    name: str


@dataclass(frozen=True, slots=True)
class NameHint:
    """Annotation mapping an RTL signal name to its source-level variable
    name — emitted by the generator frontend for versioned ``var`` bindings
    (``sum_0``/``sum_1`` -> ``sum`` in paper Listing 2)."""

    module: str
    rtl_name: str
    source_name: str


@dataclass(frozen=True, slots=True)
class GeneratorVar:
    """Annotation recording a generator-level (elaboration-time) variable of
    a module: a Python attribute such as a parameter.  ``value`` is either a
    constant rendered as text or an RTL signal name within the module."""

    module: str
    name: str
    value: str
    is_rtl: bool


@dataclass(slots=True)
class Circuit:
    """A set of modules with a designated ``main`` (top) module."""

    name: str
    modules: dict[str, ModuleIR]
    main: str
    annotations: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.main not in self.modules:
            raise ValueError(f"main module {self.main!r} not in circuit")

    @property
    def top(self) -> ModuleIR:
        return self.modules[self.main]

    def dont_touched(self, module: str) -> set[str]:
        return {
            a.name for a in self.annotations
            if isinstance(a, DontTouch) and a.module == module
        }


def root_ref(loc: Expr) -> Ref:
    """The underlying Ref of a connect target (peels SubField/SubIndex)."""
    e = loc
    while isinstance(e, (SubField, SubIndex)):
        e = e.expr
    if not isinstance(e, Ref):
        raise TypeError(f"connect target does not root at a Ref: {loc}")
    return e


def walk_stmts(block: Block):
    """Yield every statement in a block, recursing into Conditionally."""
    for s in block:
        yield s
        if isinstance(s, Conditionally):
            yield from walk_stmts(s.conseq)
            yield from walk_stmts(s.alt)


def map_blocks(stmt: Stmt, fn) -> Stmt:
    """Rebuild a Conditionally with ``fn`` applied to its sub-blocks."""
    if isinstance(stmt, Conditionally):
        return replace(stmt, conseq=fn(stmt.conseq), alt=fn(stmt.alt))
    return stmt
