"""Hardware types for the IR.

The type system mirrors FIRRTL's: ground types (``UIntType``, ``SIntType``,
``ClockType``, ``ResetType``) and aggregate types (``BundleType``,
``VecType``).  The High form of the IR may use aggregates freely; the
``LowerTypes`` pass flattens them so that the Low form — what the simulator
executes and what Verilog emission sees — contains only ground types.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class of all hardware types."""

    def is_ground(self) -> bool:
        return False

    def bit_width(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class UIntType(Type):
    """Unsigned integer of a fixed bit width."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"UInt width must be positive, got {self.width}")

    def is_ground(self) -> bool:
        return True

    def bit_width(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"UInt<{self.width}>"


@dataclass(frozen=True, slots=True)
class SIntType(Type):
    """Signed (two's complement) integer of a fixed bit width."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"SInt width must be positive, got {self.width}")

    def is_ground(self) -> bool:
        return True

    def bit_width(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"SInt<{self.width}>"


@dataclass(frozen=True, slots=True)
class ClockType(Type):
    """A clock signal (1 bit, not usable in arithmetic)."""

    def is_ground(self) -> bool:
        return True

    def bit_width(self) -> int:
        return 1

    def __str__(self) -> str:
        return "Clock"


@dataclass(frozen=True, slots=True)
class ResetType(Type):
    """A reset signal (1 bit, synchronous in this implementation)."""

    def is_ground(self) -> bool:
        return True

    def bit_width(self) -> int:
        return 1

    def __str__(self) -> str:
        return "Reset"


@dataclass(frozen=True, slots=True)
class Field:
    """A named member of a :class:`BundleType`.

    ``flip`` reverses the direction of the field relative to the bundle,
    exactly like FIRRTL's ``flip`` — used for ready/valid style interfaces
    and for modelling instance ports.
    """

    name: str
    typ: Type
    flip: bool = False


@dataclass(frozen=True, slots=True)
class BundleType(Type):
    """A record of named fields, possibly nested."""

    fields: tuple[Field, ...]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"bundle has no field {name!r}: {self}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def bit_width(self) -> int:
        return sum(f.typ.bit_width() for f in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(
            ("flip " if f.flip else "") + f"{f.name}: {f.typ}" for f in self.fields
        )
        return "{" + inner + "}"


@dataclass(frozen=True, slots=True)
class VecType(Type):
    """A fixed-size homogeneous array."""

    elem: Type
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"Vec size must be positive, got {self.size}")

    def bit_width(self) -> int:
        return self.elem.bit_width() * self.size

    def __str__(self) -> str:
        return f"{self.elem}[{self.size}]"


def is_signed(typ: Type) -> bool:
    return isinstance(typ, SIntType)


def ground_like(typ: Type, width: int) -> Type:
    """Return a ground type of ``width`` preserving signedness of ``typ``."""
    if isinstance(typ, SIntType):
        return SIntType(width)
    return UIntType(width)


def mask_for(typ: Type) -> int:
    """All-ones mask covering the bit width of a ground type."""
    return (1 << typ.bit_width()) - 1
