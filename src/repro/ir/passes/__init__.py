"""IR transformation passes.

The pipeline (``repro.ir.compiler``) runs, in order: ``CheckHighForm`` →
``LowerTypes`` → ``ExpandWhens`` (SSA + enable conditions, Algorithm 1 pass
1) → optimization (``ConstProp`` → ``CSE`` → ``DCE``, skipped for
DontTouch'd names) → ``collect_debug_info`` (Algorithm 1 pass 2) →
``CheckLowForm``.
"""

from .check import CheckError, check_high_form, check_low_form
from .const_prop import const_prop
from .cse import cse
from .dce import dce
from .expand_whens import expand_whens
from .lower_types import lower_types

__all__ = [
    "CheckError",
    "check_high_form",
    "check_low_form",
    "const_prop",
    "cse",
    "dce",
    "expand_whens",
    "lower_types",
]
