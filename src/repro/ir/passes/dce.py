"""Dead code elimination.

Computes liveness over the module's def-use graph.  Roots are: connects to
output ports and instance ports, memory writes, registers, stops and
printfs.  Unreferenced nodes and wires (and their drivers) are removed
unless protected by DontTouch.  "If the compiler optimization removes a
variable, we will not see it in the Low form ... the generated symbol table
will not contain the variable optimized away" (paper Sec. 4.1) — the
returned alive-set feeds :meth:`DebugInfo.prune_dead`.
"""

from __future__ import annotations

from ..expr import Ref, SubField, expr_refs
from ..stmt import (
    Block,
    Circuit,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
)


def _connect_target(s: Connect) -> tuple[str, bool]:
    """Return (name, is_instance_port) for a Low-form connect target."""
    if isinstance(s.loc, Ref):
        return s.loc.name, False
    if isinstance(s.loc, SubField) and isinstance(s.loc.expr, Ref):
        return s.loc.expr.name, True
    raise ValueError(f"unexpected Low-form connect target {s.loc}")


def _dce_module(m: ModuleIR, protected: set[str]) -> tuple[ModuleIR, set[str]]:
    port_names = {p.name for p in m.ports}
    out_ports = {p.name for p in m.ports if p.direction == "output"}

    drivers: dict[str, set[str]] = {}  # name -> names its driver reads
    defs: dict[str, Stmt] = {}
    root_uses: set[str] = set()

    for s in m.body:
        if isinstance(s, (DefWire, DefRegister, DefMemory)):
            defs[s.name] = s
            if isinstance(s, DefRegister):
                extra = expr_refs(s.clock)
                if s.reset is not None:
                    extra |= expr_refs(s.reset)
                if s.init is not None:
                    extra |= expr_refs(s.init)
                drivers.setdefault(s.name, set()).update(extra)
        elif isinstance(s, DefNode):
            defs[s.name] = s
            drivers.setdefault(s.name, set()).update(expr_refs(s.value))
        elif isinstance(s, DefInstance):
            defs[s.name] = s
        elif isinstance(s, Connect):
            target, is_inst = _connect_target(s)
            reads = expr_refs(s.expr)
            if is_inst or target in out_ports:
                root_uses |= reads
                if is_inst:
                    root_uses.add(target)
            else:
                drivers.setdefault(target, set()).update(reads)
        elif isinstance(s, MemWrite):
            root_uses |= expr_refs(s.addr) | expr_refs(s.data) | expr_refs(s.en)
            root_uses.add(s.mem)
        elif isinstance(s, (Stop, Printf)):
            root_uses |= expr_refs(s.cond)
            if isinstance(s, Printf):
                for a in s.args:
                    root_uses |= expr_refs(a)

    alive: set[str] = set()
    work = list(root_uses | protected | out_ports)
    # Registers, memories, and instances are always roots: their behaviour
    # is observable across cycles / hierarchy.
    for name, d in defs.items():
        if isinstance(d, (DefRegister, DefMemory, DefInstance)):
            work.append(name)
    while work:
        name = work.pop()
        if name in alive:
            continue
        alive.add(name)
        work.extend(drivers.get(name, ()))

    body: list[Stmt] = []
    for s in m.body:
        if isinstance(s, (DefWire, DefNode)):
            if s.name in alive:
                body.append(s)
        elif isinstance(s, Connect):
            target, is_inst = _connect_target(s)
            if is_inst or target in out_ports or target in alive:
                body.append(s)
        else:
            body.append(s)

    alive |= port_names
    return ModuleIR(m.name, m.ports, Block(tuple(body)), m.info), alive


def dce(circuit: Circuit) -> tuple[Circuit, dict[str, set[str]]]:
    """Run DCE on every module.  Returns (circuit, per-module alive sets)."""
    modules: dict[str, ModuleIR] = {}
    alive: dict[str, set[str]] = {}
    for name, m in circuit.modules.items():
        modules[name], alive[name] = _dce_module(m, circuit.dont_touched(name))
    return (
        Circuit(circuit.name, modules, circuit.main, list(circuit.annotations)),
        alive,
    )
