"""LowerTypes: flatten aggregate (bundle/vec) types to ground signals.

Mirrors FIRRTL's LowerTypes pass.  A port ``io: {a: UInt<8>, flip b:
UInt<8>}`` becomes two ports ``io_a`` (same direction) and ``io_b``
(flipped).  Bulk connects between same-shaped aggregates expand field-wise,
honoring flips.  The pass records a per-module *rename map* (flat RTL name →
original dotted name) which the symbol table later uses to reconstruct
structured variables from flattened RTL signals (paper Sec. 4.2: "hgdb has
the ability to reconstruct structured variables from a list of flattened RTL
signals").
"""

from __future__ import annotations

from ..debug import DebugInfo
from ..expr import (
    Expr,
    Literal,
    MemRead,
    PrimOp,
    Ref,
    SubField,
    SubIndex,
)
from ..stmt import (
    Block,
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Port,
    Printf,
    Stmt,
    Stop,
    walk_stmts,
)
from ..types import BundleType, Type, VecType


class LowerTypesError(Exception):
    """Raised on malformed aggregate usage."""


def type_leaves(typ: Type, flip: bool = False):
    """Yield ``(suffix_parts, ground_type, flipped)`` for every ground leaf
    of a type, depth-first in declaration order."""
    if typ.is_ground():
        yield (), typ, flip
        return
    if isinstance(typ, BundleType):
        for f in typ.fields:
            for parts, gt, fl in type_leaves(f.typ, flip ^ f.flip):
                yield (f.name, *parts), gt, fl
        return
    if isinstance(typ, VecType):
        for i in range(typ.size):
            for parts, gt, fl in type_leaves(typ.elem, flip):
                yield (str(i), *parts), gt, fl
        return
    raise LowerTypesError(f"cannot lower type {typ}")


def flat_name(root: str, parts: tuple[str, ...]) -> str:
    return "_".join((root, *parts)) if parts else root


def dotted_name(root: str, parts: tuple[str, ...]) -> str:
    out = root
    for p in parts:
        out += f"[{p}]" if p.isdigit() else f".{p}"
    return out


def _path_parts(e: Expr) -> tuple[str, tuple[str, ...]]:
    """Decompose a path expression into (root name, suffix parts)."""
    parts: list[str] = []
    cur = e
    while True:
        if isinstance(cur, Ref):
            return cur.name, tuple(reversed(parts))
        if isinstance(cur, SubField):
            parts.append(cur.name)
            cur = cur.expr
        elif isinstance(cur, SubIndex):
            parts.append(str(cur.index))
            cur = cur.expr
        else:
            raise LowerTypesError(f"not a path expression: {e}")


def _is_path(e: Expr) -> bool:
    while isinstance(e, (SubField, SubIndex)):
        e = e.expr
    return isinstance(e, Ref)


class _ModuleLowerer:
    """Lowers one module given the already-lowered ports of child modules."""

    def __init__(
        self,
        module: ModuleIR,
        child_ports: dict[str, list[Port]],
        debug: DebugInfo,
    ):
        self.module = module
        self.child_ports = child_ports
        self.debug = debug.module(module.name)
        # name -> ("port"|"wire"|"reg"|"node"|"mem"|"inst", original type)
        self.decls: dict[str, tuple[str, Type]] = {}
        # instance name -> child module name
        self.instances: dict[str, str] = {}
        self._scan_decls()

    def _scan_decls(self) -> None:
        for p in self.module.ports:
            self.decls[p.name] = ("port", p.typ)
        for s in walk_stmts(self.module.body):
            if isinstance(s, DefWire):
                self.decls[s.name] = ("wire", s.typ)
            elif isinstance(s, DefRegister):
                self.decls[s.name] = ("reg", s.typ)
            elif isinstance(s, DefNode):
                self.decls[s.name] = ("node", s.value.typ)
            elif isinstance(s, DefMemory):
                self.decls[s.name] = ("mem", s.typ)
            elif isinstance(s, DefInstance):
                self.instances[s.name] = s.module
                self.decls[s.name] = ("inst", self._instance_type(s.module))

    def _instance_type(self, child_module: str) -> BundleType:
        from ..types import Field

        ports = self.child_ports[child_module]
        return BundleType(
            tuple(
                Field(p.name, p.typ, flip=(p.direction == "input"))
                for p in ports
            )
        )

    # -- expression lowering -------------------------------------------

    def lower_expr(self, e: Expr) -> Expr:
        if isinstance(e, Literal):
            return e
        if isinstance(e, (Ref, SubField, SubIndex)) and _is_path(e):
            return self._lower_path(e)
        if isinstance(e, PrimOp):
            return PrimOp(e.op, tuple(self.lower_expr(a) for a in e.args), e.params, e.typ)
        if isinstance(e, MemRead):
            return MemRead(e.mem, self.lower_expr(e.addr), e.typ)
        raise LowerTypesError(f"cannot lower expression {e!r}")

    def _lower_path(self, e: Expr) -> Expr:
        root, parts = _path_parts(e)
        if root in self.instances:
            # inst.port.sub -> SubField(Ref(inst), "port_sub")
            if not parts:
                raise LowerTypesError(f"raw instance reference {root!r}")
            inst_typ = self._instance_type(self.instances[root])
            port = "_".join(parts)
            return SubField(Ref(root, inst_typ), port, inst_typ.field(port).typ)
        if not parts:
            kind, typ = self.decls.get(root, (None, None))
            if typ is None:
                raise LowerTypesError(
                    f"unknown name {root!r} in module {self.module.name}"
                )
            return Ref(root, typ)
        return Ref(flat_name(root, parts), e.typ)

    # -- statement lowering --------------------------------------------

    def lower_module(self) -> ModuleIR:
        ports = self._lower_ports()
        body = self._lower_block(self.module.body)
        return ModuleIR(self.module.name, ports, body, self.module.info)

    def _lower_ports(self) -> list[Port]:
        out: list[Port] = []
        for p in self.module.ports:
            for parts, gt, flipped in type_leaves(p.typ):
                direction = p.direction
                if flipped:
                    direction = "output" if direction == "input" else "input"
                fname = flat_name(p.name, parts)
                out.append(Port(fname, direction, gt, p.info))
                self._record_rename(fname, dotted_name(p.name, parts))
        return out

    def _record_rename(self, flat: str, dotted: str) -> None:
        self.debug.rename_map[flat] = dotted
        self.debug.variables[dotted] = flat

    def _lower_block(self, block: Block) -> Block:
        out: list[Stmt] = []
        for s in block:
            out.extend(self._lower_stmt(s))
        return Block(tuple(out))

    def _lower_stmt(self, s: Stmt) -> list[Stmt]:
        if isinstance(s, DefWire):
            return [
                self._record_and(
                    DefWire(flat_name(s.name, parts), gt, s.info),
                    dotted_name(s.name, parts),
                )
                for parts, gt, _fl in type_leaves(s.typ)
            ]
        if isinstance(s, DefRegister):
            clock = self.lower_expr(s.clock)
            reset = self.lower_expr(s.reset) if s.reset is not None else None
            leaves = list(type_leaves(s.typ))
            if (
                len(leaves) > 1
                and s.init is not None
                and not (isinstance(s.init, Literal) and s.init.value == 0)
            ):
                raise LowerTypesError(
                    f"aggregate register {s.name!r} init must be literal 0"
                )
            out = []
            for parts, gt, _fl in leaves:
                init = None
                if s.init is not None:
                    init = (
                        Literal(0, gt)
                        if len(leaves) > 1
                        else self.lower_expr(s.init)
                    )
                out.append(
                    self._record_and(
                        DefRegister(flat_name(s.name, parts), gt, clock, reset, init, s.info),
                        dotted_name(s.name, parts),
                    )
                )
            return out
        if isinstance(s, DefNode):
            if not s.value.typ.is_ground():
                raise LowerTypesError(f"node {s.name!r} must be ground-typed")
            self._record_rename(s.name, s.name)
            return [DefNode(s.name, self.lower_expr(s.value), s.info)]
        if isinstance(s, DefMemory):
            if not s.typ.is_ground():
                raise LowerTypesError(f"memory {s.name!r} must have ground element type")
            self._record_rename(s.name, s.name)
            return [s]
        if isinstance(s, DefInstance):
            return [s]
        if isinstance(s, Connect):
            return self._lower_connect(s)
        if isinstance(s, Conditionally):
            return [
                Conditionally(
                    self.lower_expr(s.pred),
                    self._lower_block(s.conseq),
                    self._lower_block(s.alt),
                    s.info,
                )
            ]
        if isinstance(s, MemWrite):
            return [
                MemWrite(
                    s.mem,
                    self.lower_expr(s.addr),
                    self.lower_expr(s.data),
                    self.lower_expr(s.en),
                    s.info,
                )
            ]
        if isinstance(s, Stop):
            return [Stop(self.lower_expr(s.cond), s.exit_code, s.info)]
        if isinstance(s, Printf):
            return [
                Printf(
                    self.lower_expr(s.cond),
                    s.fmt,
                    tuple(self.lower_expr(a) for a in s.args),
                    s.info,
                )
            ]
        raise LowerTypesError(f"cannot lower statement {s!r}")

    def _record_and(self, stmt, dotted: str):
        self._record_rename(stmt.name, dotted)
        return stmt

    def _lower_connect(self, s: Connect) -> list[Stmt]:
        if s.loc.typ.is_ground():
            return [Connect(self.lower_expr(s.loc), self.lower_expr(s.expr), s.info)]
        # Bulk connect: both sides must be path expressions of the same shape.
        if not _is_path(s.loc) or not _is_path(s.expr):
            raise LowerTypesError(f"bulk connect requires path expressions: {s.loc} <= {s.expr}")
        out: list[Stmt] = []
        for parts, gt, flipped in type_leaves(s.loc.typ):
            lhs = self._extend_path(s.loc, parts, gt)
            rhs = self._extend_path(s.expr, parts, gt)
            if flipped:
                lhs, rhs = rhs, lhs
            out.append(Connect(self.lower_expr(lhs), self.lower_expr(rhs), s.info))
        return out

    def _extend_path(self, base: Expr, parts: tuple[str, ...], gt: Type) -> Expr:
        cur = base
        for i, p in enumerate(parts):
            last = i == len(parts) - 1
            typ = gt if last else _peel_type(cur.typ, p)
            cur = (
                SubIndex(cur, int(p), typ)
                if p.isdigit() and isinstance(cur.typ, VecType)
                else SubField(cur, p, typ)
            )
        return cur


def _peel_type(typ: Type, part: str) -> Type:
    if isinstance(typ, BundleType):
        return typ.field(part).typ
    if isinstance(typ, VecType):
        return typ.elem
    raise LowerTypesError(f"cannot select {part!r} from {typ}")


def _module_deps(m: ModuleIR) -> set[str]:
    return {
        s.module for s in walk_stmts(m.body) if isinstance(s, DefInstance)
    }


def lower_types(circuit: Circuit, debug: DebugInfo) -> Circuit:
    """Flatten aggregates across the whole circuit (children first)."""
    order: list[str] = []
    visited: set[str] = set()

    def visit(name: str) -> None:
        if name in visited:
            return
        visited.add(name)
        for dep in _module_deps(circuit.modules[name]):
            visit(dep)
        order.append(name)

    for name in circuit.modules:
        visit(name)

    lowered: dict[str, ModuleIR] = {}
    child_ports: dict[str, list[Port]] = {}
    for name in order:
        lo = _ModuleLowerer(circuit.modules[name], child_ports, debug)
        m = lo.lower_module()
        lowered[name] = m
        child_ports[name] = m.ports

    # Absorb frontend name hints (versioned `var` bindings) so ExpandWhens
    # and the symbol table can map RTL node names back to source variables.
    from ..stmt import NameHint

    for a in circuit.annotations:
        if isinstance(a, NameHint):
            mi = debug.module(a.module)
            mi.rename_map[a.rtl_name] = a.source_name
            mi.variables[a.source_name] = a.rtl_name

    # Preserve original module ordering.
    result = {name: lowered[name] for name in circuit.modules}
    return Circuit(circuit.name, result, circuit.main, list(circuit.annotations))
