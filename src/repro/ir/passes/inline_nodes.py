"""Inline single-use nodes.

FIRRTL aggressively folds intermediate expressions when emitting RTL, which
is precisely why generated Verilog is hard to read (paper Listing 4) and why
optimized builds lose source-level symbols.  This pass models that: a node
referenced exactly once (and not DontTouch'd) is substituted into its use
and its definition removed.  In debug mode every named signal is protected,
so nothing is inlined — the ``-O0`` analog.
"""

from __future__ import annotations

from collections import Counter

from ..expr import Expr, Literal, MemRead, PrimOp, Ref, SubField, SubIndex, expr_refs
from ..stmt import (
    Block,
    Circuit,
    Connect,
    DefNode,
    DefRegister,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
)

_MAX_ROUNDS = 10


def _stmt_reads(s: Stmt) -> list[str]:
    out: list[str] = []
    if isinstance(s, DefNode):
        out.extend(expr_refs(s.value))
    elif isinstance(s, Connect):
        out.extend(expr_refs(s.expr))
    elif isinstance(s, MemWrite):
        out.extend(expr_refs(s.addr))
        out.extend(expr_refs(s.data))
        out.extend(expr_refs(s.en))
    elif isinstance(s, (Stop, Printf)):
        out.extend(expr_refs(s.cond))
        if isinstance(s, Printf):
            for a in s.args:
                out.extend(expr_refs(a))
    elif isinstance(s, DefRegister):
        out.extend(expr_refs(s.clock))
        if s.reset is not None:
            out.extend(expr_refs(s.reset))
        if s.init is not None:
            out.extend(expr_refs(s.init))
    return out


def _subst(e: Expr, table: dict[str, Expr]) -> Expr:
    if isinstance(e, Ref):
        repl = table.get(e.name)
        return repl if repl is not None and repl.typ == e.typ else e
    if isinstance(e, Literal):
        return e
    if isinstance(e, SubField):
        inner = _subst(e.expr, table)
        return e if inner is e.expr else SubField(inner, e.name, e.typ)
    if isinstance(e, SubIndex):
        inner = _subst(e.expr, table)
        return e if inner is e.expr else SubIndex(inner, e.index, e.typ)
    if isinstance(e, MemRead):
        addr = _subst(e.addr, table)
        return e if addr is e.addr else MemRead(e.mem, addr, e.typ)
    if isinstance(e, PrimOp):
        args = tuple(_subst(a, table) for a in e.args)
        return e if args == e.args else PrimOp(e.op, args, e.params, e.typ)
    return e


def _rewrite(s: Stmt, table: dict[str, Expr]) -> Stmt:
    if isinstance(s, DefNode):
        return DefNode(s.name, _subst(s.value, table), s.info)
    if isinstance(s, Connect):
        return Connect(s.loc, _subst(s.expr, table), s.info)
    if isinstance(s, MemWrite):
        return MemWrite(
            s.mem,
            _subst(s.addr, table),
            _subst(s.data, table),
            _subst(s.en, table),
            s.info,
        )
    if isinstance(s, Stop):
        return Stop(_subst(s.cond, table), s.exit_code, s.info)
    if isinstance(s, Printf):
        return Printf(
            _subst(s.cond, table),
            s.fmt,
            tuple(_subst(a, table) for a in s.args),
            s.info,
        )
    if isinstance(s, DefRegister) and s.init is not None:
        return DefRegister(
            s.name, s.typ, s.clock, s.reset, _subst(s.init, table), s.info
        )
    return s


def _inline_module(m: ModuleIR, protected: set[str]) -> ModuleIR:
    body = list(m.body)
    for _ in range(_MAX_ROUNDS):
        uses: Counter[str] = Counter()
        for s in body:
            uses.update(_stmt_reads(s))
        table: dict[str, Expr] = {}
        for s in body:
            if (
                isinstance(s, DefNode)
                and s.name not in protected
                and uses[s.name] == 1
            ):
                table[s.name] = s.value
        if not table:
            break
        # Resolve chains (a -> expr-using-b where b also inlines) so no
        # substituted expression references a definition removed this round.
        for name in list(table):
            expr = table[name]
            while True:
                new = _subst(expr, table)
                if new is expr:
                    break
                expr = new
            table[name] = expr
        new_body: list[Stmt] = []
        for s in body:
            if isinstance(s, DefNode) and s.name in table:
                continue
            new_body.append(_rewrite(s, table))
        body = new_body
    return ModuleIR(m.name, m.ports, Block(tuple(body)), m.info)


def inline_nodes(circuit: Circuit) -> Circuit:
    """Inline single-use unprotected nodes in every module."""
    modules = {
        name: _inline_module(m, circuit.dont_touched(name))
        for name, m in circuit.modules.items()
    }
    return Circuit(circuit.name, modules, circuit.main, list(circuit.annotations))
