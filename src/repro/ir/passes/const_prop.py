"""Constant propagation.

Folds primitive operations whose arguments are all literals (using the
shared reference semantics in ``repro.ir.eval`` so the pass can never
disagree with the simulator), propagates literal-valued nodes into their
uses, and folds muxes with constant selects.  Names carrying a
``DontTouch`` annotation are never propagated away — that is how debug
mode (paper Sec. 4.1) keeps the full symbol table at the cost of a larger
netlist.
"""

from __future__ import annotations

from ..eval import eval_prim, literal_raw, to_signed
from ..expr import Expr, Literal, MemRead, PrimOp, Ref, SubField, SubIndex
from ..stmt import (
    Block,
    Circuit,
    Connect,
    DefNode,
    DefRegister,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
)
from ..types import SIntType, Type

_MAX_ITERATIONS = 50


def make_literal(raw: int, typ: Type) -> Literal:
    """Build a literal from a raw masked value, reinterpreting for SInt."""
    if isinstance(typ, SIntType):
        return Literal(to_signed(raw, typ.bit_width()), typ)
    return Literal(raw, typ)


def fold_expr(e: Expr, env: dict[str, Literal]) -> Expr:
    """Rewrite ``e`` bottom-up: substitute literal nodes and fold ops."""
    if isinstance(e, Ref):
        lit = env.get(e.name)
        if lit is not None and lit.typ == e.typ:
            return lit
        return e
    if isinstance(e, Literal):
        return e
    if isinstance(e, SubField):
        inner = fold_expr(e.expr, env)
        return e if inner is e.expr else SubField(inner, e.name, e.typ)
    if isinstance(e, SubIndex):
        inner = fold_expr(e.expr, env)
        return e if inner is e.expr else SubIndex(inner, e.index, e.typ)
    if isinstance(e, MemRead):
        addr = fold_expr(e.addr, env)
        return e if addr is e.addr else MemRead(e.mem, addr, e.typ)
    if isinstance(e, PrimOp):
        args = tuple(fold_expr(a, env) for a in e.args)
        if all(isinstance(a, Literal) for a in args):
            raw = eval_prim(
                e.op,
                e.params,
                tuple(literal_raw(a) for a in args),
                tuple(a.typ for a in args),
                e.typ,
            )
            return make_literal(raw, e.typ)
        if e.op == "mux" and isinstance(args[0], Literal):
            from .expand_whens import fit_to

            chosen = args[1] if literal_raw(args[0]) else args[2]
            return fit_to(chosen, e.typ)
        if args == e.args:
            return e
        return PrimOp(e.op, args, e.params, e.typ)
    return e


def _fold_stmt(s: Stmt, env: dict[str, Literal]) -> Stmt:
    if isinstance(s, DefNode):
        return DefNode(s.name, fold_expr(s.value, env), s.info)
    if isinstance(s, Connect):
        return Connect(s.loc, fold_expr(s.expr, env), s.info)
    if isinstance(s, MemWrite):
        return MemWrite(
            s.mem,
            fold_expr(s.addr, env),
            fold_expr(s.data, env),
            fold_expr(s.en, env),
            s.info,
        )
    if isinstance(s, Stop):
        return Stop(fold_expr(s.cond, env), s.exit_code, s.info)
    if isinstance(s, Printf):
        return Printf(
            fold_expr(s.cond, env),
            s.fmt,
            tuple(fold_expr(a, env) for a in s.args),
            s.info,
        )
    if isinstance(s, DefRegister):
        init = fold_expr(s.init, env) if s.init is not None else None
        return DefRegister(s.name, s.typ, s.clock, s.reset, init, s.info)
    return s


def _const_prop_module(m: ModuleIR, protected: set[str]) -> ModuleIR:
    body = list(m.body)
    for _ in range(_MAX_ITERATIONS):
        env: dict[str, Literal] = {}
        for s in body:
            if (
                isinstance(s, DefNode)
                and isinstance(s.value, Literal)
                and s.name not in protected
            ):
                env[s.name] = s.value
        new_body = [_fold_stmt(s, env) for s in body]
        if new_body == body:
            break
        body = new_body
    return ModuleIR(m.name, m.ports, Block(tuple(body)), m.info)


def const_prop(circuit: Circuit) -> Circuit:
    """Run constant propagation on every module (Low form)."""
    modules = {
        name: _const_prop_module(m, circuit.dont_touched(name))
        for name, m in circuit.modules.items()
    }
    return Circuit(circuit.name, modules, circuit.main, list(circuit.annotations))
