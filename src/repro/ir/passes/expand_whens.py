"""ExpandWhens: the SSA transform with enable-condition extraction.

This is the pass at the heart of breakpoint emulation (paper Sec. 3.1):

* every ``Connect`` under ``when`` conditions becomes a *named SSA node*
  (``_ssa_<sink>_<k>``) holding the statement's value — the ``sum0``/
  ``sum1`` temporaries of paper Listing 2;
* the conjunction of the enclosing ``when`` predicates is materialized as
  an *enable node* (``_en_<k>``) — the "enable condition" obtained "by
  AND-reduction on the SSA transform condition stack";
* each sink ends up with exactly one driving ``Connect`` whose value is a
  mux tree over the branch values (last-connect-wins semantics);
* a :class:`~repro.ir.debug.DebugEntry` is recorded per statement, carrying
  the source locator, SSA node, enable node, and the variable mapping valid
  at that statement.

Registers hold their value on paths with no connect; unconnected wires and
outputs default to zero (collected as lint warnings).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..debug import DebugEntry, DebugInfo
from ..expr import (
    Expr,
    Literal,
    Ref,
    SubField,
    and_,
    as_sint,
    as_uint,
    bits,
    mux,
    not_,
    pad,
)
from ..source import UNKNOWN, SourceInfo
from ..stmt import (
    Block,
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
    walk_stmts,
)
from ..types import SIntType, Type, UIntType, is_signed


class ExpandWhensError(Exception):
    """Raised on malformed conditional structure."""


def fit_to(e: Expr, typ: Type) -> Expr:
    """Coerce ``e`` to the width/signedness of ground type ``typ``."""
    if e.typ == typ:
        return e
    tw = typ.bit_width()
    ew = e.width()
    if ew < tw:
        e = pad(e, tw)
    elif ew > tw:
        e = bits(e, tw - 1, 0)
    target_signed = isinstance(typ, SIntType)
    if target_signed and not is_signed(e.typ):
        e = as_sint(e)
    elif not target_signed and is_signed(e.typ):
        e = as_uint(e)
    return e


def render_expr(e: Expr, rename: dict[str, str] | None = None) -> str:
    """Render an expression using source-level (dotted) names when a rename
    map is available — used to display enable conditions to the user."""
    rename = rename or {}

    def r(x: Expr) -> str:
        if isinstance(x, Ref):
            return rename.get(x.name, x.name)
        if isinstance(x, SubField):
            return f"{r(x.expr)}.{x.name}"
        if isinstance(x, Literal):
            return str(x.value)
        from ..expr import MemRead, PrimOp, SubIndex

        if isinstance(x, SubIndex):
            return f"{r(x.expr)}[{x.index}]"
        if isinstance(x, MemRead):
            return f"{x.mem}[{r(x.addr)}]"
        if isinstance(x, PrimOp):
            infix = {
                "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
                "lt": "<", "leq": "<=", "gt": ">", "geq": ">=",
                "eq": "==", "neq": "!=", "and": "&", "or": "|", "xor": "^",
                "dshl": "<<", "dshr": ">>",
            }
            if x.op in infix and len(x.args) == 2:
                return f"({r(x.args[0])} {infix[x.op]} {r(x.args[1])})"
            if x.op == "not":
                return f"(~{r(x.args[0])})"
            if x.op == "neg":
                return f"(-{r(x.args[0])})"
            if x.op == "mux":
                return f"({r(x.args[0])} ? {r(x.args[1])} : {r(x.args[2])})"
            if x.op == "bits":
                return f"{r(x.args[0])}[{x.params[0]}:{x.params[1]}]"
            if x.op in ("pad", "as_uint", "as_sint", "shl", "shr"):
                return r(x.args[0])
            parts = [r(a) for a in x.args] + [str(p) for p in x.params]
            return f"{x.op}({', '.join(parts)})"
        return str(x)

    return r(e)


@dataclass(slots=True)
class _Sink:
    key: str            # env key ("name" or "inst.port")
    flat: str           # identifier-safe name for SSA temps
    typ: Type
    kind: str           # "wire" | "reg" | "output" | "instport"
    loc: Expr           # the connect target expression
    dotted: str         # source-level display name


@dataclass(slots=True)
class _EnableCtx:
    """A level of the when-condition stack.

    The enable condition is *not* materialized as extra RTL logic — hgdb
    "avoids inserting additional RTL logic into the design" (Sec. 2).  It is
    stored as an expression string over RTL signal names (the ``enable``
    TEXT column of the Fig. 3 schema) which the debugger runtime evaluates
    with its own expression evaluator at breakpoint time.
    """

    expr: Expr | None       # conjunction expression (None = always)
    rtl: str | None         # expression string over flat RTL names
    src: str | None         # source-level rendering of the conjunction


class _ModuleExpander:
    def __init__(self, module: ModuleIR, circuit: Circuit, debug: DebugInfo):
        self.module = module
        self.circuit = circuit
        self.debug = debug.module(module.name)
        self.out_decls: list[Stmt] = []
        self.out_nodes: list[Stmt] = []
        self.out_effects: list[Stmt] = []
        self.env: dict[str, Expr] = {}
        self.sinks: dict[str, _Sink] = {}
        self.latest: dict[str, str] = {}
        self.node_types: dict[str, Type] = {}
        self.registers: dict[str, DefRegister] = {}
        self.lint: list[str] = []
        self._ssa_counts: dict[str, int] = {}
        self._en_count = 0
        self._declare_sinks()

    # -- sink discovery --------------------------------------------------

    def _declare_sinks(self) -> None:
        for p in self.module.ports:
            if p.direction == "output":
                dotted = self.debug.rename_map.get(p.name, p.name)
                self.sinks[p.name] = _Sink(
                    p.name, p.name, p.typ, "output", Ref(p.name, p.typ), dotted
                )
        for s in walk_stmts(self.module.body):
            if isinstance(s, DefWire):
                dotted = self.debug.rename_map.get(s.name, s.name)
                self.sinks[s.name] = _Sink(
                    s.name, s.name, s.typ, "wire", Ref(s.name, s.typ), dotted
                )
            elif isinstance(s, DefRegister):
                dotted = self.debug.rename_map.get(s.name, s.name)
                self.sinks[s.name] = _Sink(
                    s.name, s.name, s.typ, "reg", Ref(s.name, s.typ), dotted
                )
                self.registers[s.name] = s
            elif isinstance(s, DefInstance):
                child = self.circuit.modules[s.module]
                for p in child.ports:
                    if p.direction != "input":
                        continue
                    key = f"{s.name}.{p.name}"
                    flat = f"{s.name}_{p.name}"
                    loc = SubField(
                        Ref(s.name, UIntType(1)), p.name, p.typ
                    )  # Ref type placeholder; loc typ is what matters
                    self.sinks[key] = _Sink(
                        key, flat, p.typ, "instport", loc, key
                    )

    # -- naming helpers ---------------------------------------------------

    def _ssa_name(self, flat: str) -> str:
        k = self._ssa_counts.get(flat, 0)
        self._ssa_counts[flat] = k + 1
        return f"_ssa_{flat}_{k}"

    def _emit_node(self, name: str, value: Expr, info: SourceInfo = UNKNOWN) -> Ref:
        self.out_nodes.append(DefNode(name, value, info))
        self.node_types[name] = value.typ
        return Ref(name, value.typ)

    def _materialize(self, e: Expr, prefix: str) -> tuple[str, Ref]:
        """Ensure ``e`` is available as a named signal; returns (name, ref)."""
        if isinstance(e, Ref):
            return e.name, e
        self._en_count += 1
        name = f"_{prefix}_{self._en_count}"
        ref = self._emit_node(name, e)
        return name, ref

    # -- main walk ----------------------------------------------------------

    def expand(self) -> tuple[ModuleIR, list[str]]:
        for s in self.module.body:
            self._keep_decl(s)
        root = _EnableCtx(None, None, None)
        self._walk_block(self.module.body, root)
        final = self._final_connects()
        body = Block(
            tuple(self.out_decls) + tuple(self.out_nodes) + tuple(final)
            + tuple(self.out_effects)
        )
        return ModuleIR(self.module.name, self.module.ports, body, self.module.info), self.lint

    def _keep_decl(self, s: Stmt) -> None:
        if isinstance(s, (DefWire, DefRegister, DefMemory, DefInstance)):
            self.out_decls.append(s)
        elif isinstance(s, Conditionally):
            for sub in (*s.conseq, *s.alt):
                self._keep_decl(sub)

    def _walk_block(self, block: Block, en: _EnableCtx) -> None:
        for s in block:
            self._walk_stmt(s, en)

    def _walk_stmt(self, s: Stmt, en: _EnableCtx) -> None:
        if isinstance(s, (DefWire, DefRegister, DefMemory, DefInstance)):
            return  # already kept
        if isinstance(s, DefNode):
            self._handle_node(s, en)
        elif isinstance(s, Connect):
            self._handle_connect(s, en)
        elif isinstance(s, Conditionally):
            self._handle_when(s, en)
        elif isinstance(s, MemWrite):
            self._handle_memwrite(s, en)
        elif isinstance(s, Stop):
            self.out_effects.append(
                Stop(self._qualify(s.cond, en), s.exit_code, s.info)
            )
        elif isinstance(s, Printf):
            self.out_effects.append(
                Printf(self._qualify(s.cond, en), s.fmt, s.args, s.info)
            )
        else:
            raise ExpandWhensError(f"unexpected statement {s!r}")

    def _qualify(self, cond: Expr, en: _EnableCtx) -> Expr:
        if en.expr is None:
            return cond
        return and_(en.expr, cond)

    def _handle_node(self, s: DefNode, en: _EnableCtx) -> None:
        self.out_nodes.append(s)
        self.node_types[s.name] = s.value.typ
        source_name = self.debug.rename_map.get(s.name, s.name)
        if s.info.is_known():
            self.debug.entries.append(
                DebugEntry(
                    module=self.module.name,
                    info=s.info,
                    node=s.name,
                    enable=en.rtl,
                    sink=source_name,
                    var_map=dict(self.latest),
                    enable_src=en.src,
                )
            )
        self.latest[source_name] = s.name

    def _handle_connect(self, s: Connect, en: _EnableCtx) -> None:
        key = self._sink_key(s.loc)
        sink = self.sinks.get(key)
        if sink is None:
            raise ExpandWhensError(
                f"connect to unknown sink {key!r} in {self.module.name}"
            )
        value = fit_to(s.expr, _ground(sink.typ))
        name = self._ssa_name(sink.flat)
        if s.info.is_known():
            self.debug.entries.append(
                DebugEntry(
                    module=self.module.name,
                    info=s.info,
                    node=name,
                    enable=en.rtl,
                    sink=sink.dotted,
                    var_map=dict(self.latest),
                    enable_src=en.src,
                )
            )
        ref = self._emit_node(name, value, s.info)
        self.env[key] = ref
        # The SSA context mapping (paper Listing 2) tracks *combinational*
        # reuse.  A register read always yields the current (pre-edge)
        # value, so its SSA temp — which holds the register's NEXT value —
        # must not shadow the variable.
        if s.info.is_known() and sink.kind != "reg":
            self.latest[sink.dotted] = name

    def _handle_memwrite(self, s: MemWrite, en: _EnableCtx) -> None:
        data_name = self._ssa_name(f"{s.mem}_wdata")
        if s.info.is_known():
            self.debug.entries.append(
                DebugEntry(
                    module=self.module.name,
                    info=s.info,
                    node=data_name,
                    enable=en.rtl,
                    sink=s.mem,
                    var_map=dict(self.latest),
                    enable_src=en.src,
                )
            )
        data_ref = self._emit_node(data_name, s.data, s.info)
        self.out_effects.append(
            MemWrite(s.mem, s.addr, data_ref, self._qualify(s.en, en), s.info)
        )

    def _handle_when(self, s: Conditionally, en: _EnableCtx) -> None:
        pred_name, pred_ref = self._materialize(s.pred, "cond")
        pred_src = render_expr(s.pred, self.debug.rename_map)

        then_en = self._child_enable(en, pred_ref, pred_src, negate=False)
        else_en = self._child_enable(en, pred_ref, pred_src, negate=True)

        # ``env`` is branch-scoped (values merge through muxes below), but
        # ``latest`` — the per-statement variable mapping — accumulates
        # *lexically*, exactly like the paper's Listing 2 where ``sum``
        # maps to ``sum1`` at the (lexically later) Line 6.
        saved_env = dict(self.env)

        self._walk_block(s.conseq, then_en)
        env_t = self.env
        self.env = dict(saved_env)

        self._walk_block(s.alt, else_en)
        env_f = self.env
        self.env = saved_env

        for key in set(env_t) | set(env_f):
            base = saved_env.get(key)
            tv = env_t.get(key, base)
            fv = env_f.get(key, base)
            if tv is None and fv is None:
                continue
            if tv is fv:
                # Untouched by either branch (carried over from the outer
                # scope): no mux needed.
                self.env[key] = tv
                continue
            sink = self.sinks[key]
            styp = _ground(sink.typ)
            tvx = fit_to(tv, styp) if tv is not None else self._default_for(sink)
            fvx = fit_to(fv, styp) if fv is not None else self._default_for(sink)
            self.env[key] = mux(pred_ref, tvx, fvx)

    def _child_enable(
        self, en: _EnableCtx, pred_ref: Ref, pred_src: str, negate: bool
    ) -> _EnableCtx:
        term: Expr = bits(not_(pred_ref), 0, 0) if negate else pred_ref
        term_src = f"!{pred_src}" if negate else pred_src
        term_rtl = f"!{pred_ref.name}" if negate else pred_ref.name
        if en.expr is None:
            combined: Expr = term
            combined_src = term_src
            combined_rtl = term_rtl
        else:
            combined = and_(en.expr, term)
            combined_src = f"{en.src} && {term_src}"
            combined_rtl = f"{en.rtl} && {term_rtl}"
        return _EnableCtx(combined, combined_rtl, combined_src)

    def _default_for(self, sink: _Sink) -> Expr:
        if sink.kind == "reg":
            return Ref(sink.key, _ground(sink.typ))
        return fit_to(Literal(0, UIntType(1)), _ground(sink.typ))

    def _sink_key(self, loc: Expr) -> str:
        if isinstance(loc, Ref):
            return loc.name
        if isinstance(loc, SubField) and isinstance(loc.expr, Ref):
            return f"{loc.expr.name}.{loc.name}"
        raise ExpandWhensError(f"unsupported connect target {loc}")

    def _final_connects(self) -> list[Stmt]:
        out: list[Stmt] = []
        for key, sink in self.sinks.items():
            styp = _ground(sink.typ)
            value = self.env.get(key)
            if value is None:
                if sink.kind == "reg":
                    continue  # register holds its value; no driver needed
                if sink.kind in ("wire", "output", "instport"):
                    self.lint.append(
                        f"{self.module.name}: {sink.dotted} is never driven; "
                        "defaulting to 0"
                    )
                    value = fit_to(Literal(0, UIntType(1)), styp)
            loc = self._make_loc(sink)
            out.append(Connect(loc, fit_to(value, styp)))
        return out

    def _make_loc(self, sink: _Sink) -> Expr:
        if sink.kind == "instport":
            inst, port = sink.key.split(".", 1)
            return SubField(Ref(inst, UIntType(1)), port, sink.typ)
        return Ref(sink.key, sink.typ)


def _ground(typ: Type) -> Type:
    """Connect-compatible ground type: clock/reset behave as UInt<1>."""
    if isinstance(typ, (UIntType, SIntType)):
        return typ
    return UIntType(typ.bit_width())


def expand_whens(circuit: Circuit, debug: DebugInfo) -> tuple[Circuit, list[str]]:
    """Run ExpandWhens on every module.  Returns (circuit, lint warnings)."""
    modules: dict[str, ModuleIR] = {}
    lint: list[str] = []
    for name, m in circuit.modules.items():
        expander = _ModuleExpander(m, circuit, debug)
        modules[name], warns = expander.expand()
        lint.extend(warns)
    return Circuit(circuit.name, modules, circuit.main, list(circuit.annotations)), lint
