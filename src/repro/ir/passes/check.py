"""Structural checkers for the High and Low IR forms.

``check_high_form`` validates a freshly elaborated circuit (before
lowering); ``check_low_form`` validates the invariants the simulator and
Verilog emitter rely on: ground types only, no ``when`` blocks, and at most
one driving connect per sink.
"""

from __future__ import annotations

from ..expr import Expr, MemRead, PrimOp, Ref, SubField, walk_expr
from ..stmt import (
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stop,
    walk_stmts,
)


class CheckError(Exception):
    """Raised when a circuit violates form invariants."""


def _stmt_exprs(s) -> list[Expr]:
    if isinstance(s, DefNode):
        return [s.value]
    if isinstance(s, Connect):
        return [s.loc, s.expr]
    if isinstance(s, Conditionally):
        return [s.pred]
    if isinstance(s, MemWrite):
        return [s.addr, s.data, s.en]
    if isinstance(s, Stop):
        return [s.cond]
    if isinstance(s, Printf):
        return [s.cond, *s.args]
    if isinstance(s, DefRegister):
        out = [s.clock]
        if s.reset is not None:
            out.append(s.reset)
        if s.init is not None:
            out.append(s.init)
        return out
    return []


def _declared_names(m: ModuleIR) -> dict[str, str]:
    names: dict[str, str] = {}

    def declare(name: str, kind: str) -> None:
        if name in names:
            raise CheckError(f"{m.name}: duplicate definition of {name!r}")
        names[name] = kind

    for p in m.ports:
        declare(p.name, "port")
    for s in walk_stmts(m.body):
        if isinstance(s, DefWire):
            declare(s.name, "wire")
        elif isinstance(s, DefRegister):
            declare(s.name, "reg")
        elif isinstance(s, DefNode):
            declare(s.name, "node")
        elif isinstance(s, DefMemory):
            declare(s.name, "mem")
        elif isinstance(s, DefInstance):
            declare(s.name, "inst")
    return names


def _check_refs(m: ModuleIR, names: dict[str, str], circuit: Circuit) -> None:
    instances = {
        s.name: s.module for s in walk_stmts(m.body) if isinstance(s, DefInstance)
    }
    for inst, mod in instances.items():
        if mod not in circuit.modules:
            raise CheckError(f"{m.name}: instance {inst!r} of unknown module {mod!r}")
    for s in walk_stmts(m.body):
        for e in _stmt_exprs(s):
            for node in walk_expr(e):
                if isinstance(node, Ref) and node.name not in names:
                    raise CheckError(
                        f"{m.name}: reference to undeclared name {node.name!r}"
                    )
                if isinstance(node, MemRead) and names.get(node.mem) != "mem":
                    raise CheckError(
                        f"{m.name}: memory read of non-memory {node.mem!r}"
                    )
                if isinstance(node, PrimOp) and node.op == "mux":
                    if node.args[0].width() != 1:
                        raise CheckError(f"{m.name}: mux condition must be 1 bit")


def check_high_form(circuit: Circuit) -> None:
    """Validate an elaborated (pre-lowering) circuit."""
    if circuit.main not in circuit.modules:
        raise CheckError(f"main module {circuit.main!r} missing")
    for m in circuit.modules.values():
        names = _declared_names(m)
        _check_refs(m, names, circuit)
        for s in walk_stmts(m.body):
            if isinstance(s, Conditionally) and s.pred.typ.bit_width() != 1:
                raise CheckError(
                    f"{m.name}: when predicate must be 1 bit, got {s.pred.typ}"
                )


def check_low_form(circuit: Circuit) -> None:
    """Validate the Low form invariants assumed by the simulator."""
    for m in circuit.modules.values():
        names = _declared_names(m)
        _check_refs(m, names, circuit)
        driven: set[str] = set()
        for s in m.body:
            if isinstance(s, Conditionally):
                raise CheckError(f"{m.name}: when block in Low form")
            if isinstance(s, (DefWire, DefRegister, DefNode)):
                typ = s.typ if not isinstance(s, DefNode) else s.value.typ
                if not typ.is_ground():
                    raise CheckError(
                        f"{m.name}: aggregate type {typ} on {s.name!r} in Low form"
                    )
            if isinstance(s, Connect):
                if isinstance(s.loc, Ref):
                    key = s.loc.name
                elif isinstance(s.loc, SubField) and isinstance(s.loc.expr, Ref):
                    key = f"{s.loc.expr.name}.{s.loc.name}"
                else:
                    raise CheckError(f"{m.name}: bad Low-form connect target {s.loc}")
                if key in driven:
                    raise CheckError(f"{m.name}: multiple drivers for {key!r}")
                driven.add(key)
                lw = s.loc.typ.bit_width()
                ew = s.expr.typ.bit_width()
                if lw != ew:
                    raise CheckError(
                        f"{m.name}: width mismatch connecting {key!r}: {lw} vs {ew}"
                    )
