"""Structural checkers for the High and Low IR forms.

``check_high_form`` validates a freshly elaborated circuit (before
lowering); ``check_low_form`` validates the invariants the simulator and
Verilog emitter rely on: ground types only, no ``when`` blocks, and at most
one driving connect per sink.

Both checkers emit through the structured diagnostic engine
(:mod:`repro.lint.diagnostic`): ``high_form_diagnostics`` /
``low_form_diagnostics`` return *every* violation as an error-severity
:class:`~repro.lint.diagnostic.Diagnostic`, and the raising entry points
escalate the whole batch into one :class:`CheckError` naming each finding —
instead of dying on the first.  ``repro.lint.Linter`` runs the same
functions, so form violations and lint findings share one reporting path.
"""

from __future__ import annotations

from ...lint.diagnostic import Diagnostic, DiagnosticCollector, format_diagnostics
from ..expr import Expr, MemRead, PrimOp, Ref, SubField, walk_expr
from ..source import UNKNOWN, SourceInfo
from ..stmt import (
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
    walk_stmts,
)


class CheckError(Exception):
    """Raised when a circuit violates form invariants.

    Carries the full batch of violations: ``diagnostics`` holds every
    structured finding, and the message lists all of them.
    """

    def __init__(self, message: str, diagnostics: tuple[Diagnostic, ...] = ()):
        super().__init__(message)
        self.diagnostics = diagnostics

    @classmethod
    def from_diagnostics(cls, diagnostics) -> CheckError:
        batch = tuple(diagnostics)
        if len(batch) == 1:
            return cls(batch[0].message, batch)
        lines = [f"{len(batch)} form violations:"]
        lines.extend(f"  {d.message}" for d in batch)
        return cls("\n".join(lines), batch)


def _stmt_exprs(s: Stmt) -> list[Expr]:
    if isinstance(s, DefNode):
        return [s.value]
    if isinstance(s, Connect):
        return [s.loc, s.expr]
    if isinstance(s, Conditionally):
        return [s.pred]
    if isinstance(s, MemWrite):
        return [s.addr, s.data, s.en]
    if isinstance(s, Stop):
        return [s.cond]
    if isinstance(s, Printf):
        return [s.cond, *s.args]
    if isinstance(s, DefRegister):
        out = [s.clock]
        if s.reset is not None:
            out.append(s.reset)
        if s.init is not None:
            out.append(s.init)
        return out
    return []


def _stmt_info(s: Stmt) -> SourceInfo:
    return getattr(s, "info", UNKNOWN)


def _declared_names(
    m: ModuleIR, out: DiagnosticCollector
) -> dict[str, str]:
    names: dict[str, str] = {}

    def declare(name: str, kind: str, info: SourceInfo) -> None:
        if name in names:
            out.error(
                "duplicate-def",
                f"{m.name}: duplicate definition of {name!r}",
                module=m.name,
                location=info,
            )
            return
        names[name] = kind

    for p in m.ports:
        declare(p.name, "port", p.info)
    for s in walk_stmts(m.body):
        if isinstance(s, DefWire):
            declare(s.name, "wire", s.info)
        elif isinstance(s, DefRegister):
            declare(s.name, "reg", s.info)
        elif isinstance(s, DefNode):
            declare(s.name, "node", s.info)
        elif isinstance(s, DefMemory):
            declare(s.name, "mem", s.info)
        elif isinstance(s, DefInstance):
            declare(s.name, "inst", s.info)
    return names


def _check_refs(
    m: ModuleIR,
    names: dict[str, str],
    circuit: Circuit,
    out: DiagnosticCollector,
) -> None:
    instances = {
        s.name: (s.module, s.info)
        for s in walk_stmts(m.body)
        if isinstance(s, DefInstance)
    }
    for inst, (mod, info) in instances.items():
        if mod not in circuit.modules:
            out.error(
                "unknown-module",
                f"{m.name}: instance {inst!r} of unknown module {mod!r}",
                module=m.name,
                location=info,
            )
    for s in walk_stmts(m.body):
        info = _stmt_info(s)
        for e in _stmt_exprs(s):
            for node in walk_expr(e):
                if isinstance(node, Ref) and node.name not in names:
                    out.error(
                        "undeclared-ref",
                        f"{m.name}: reference to undeclared name "
                        f"{node.name!r}",
                        module=m.name,
                        location=info,
                    )
                if isinstance(node, MemRead) and names.get(node.mem) != "mem":
                    out.error(
                        "non-memory-read",
                        f"{m.name}: memory read of non-memory {node.mem!r}",
                        module=m.name,
                        location=info,
                    )
                if (
                    isinstance(node, PrimOp)
                    and node.op == "mux"
                    and node.args[0].width() != 1
                ):
                    out.error(
                        "mux-width",
                        f"{m.name}: mux condition must be 1 bit",
                        module=m.name,
                        location=info,
                    )


def high_form_diagnostics(circuit: Circuit) -> list[Diagnostic]:
    """Every High-form violation in ``circuit``, as structured diagnostics."""
    out = DiagnosticCollector()
    if circuit.main not in circuit.modules:
        out.error("missing-main", f"main module {circuit.main!r} missing")
        return out.diagnostics
    for m in circuit.modules.values():
        names = _declared_names(m, out)
        _check_refs(m, names, circuit, out)
        for s in walk_stmts(m.body):
            if isinstance(s, Conditionally) and s.pred.typ.bit_width() != 1:
                out.error(
                    "when-pred-width",
                    f"{m.name}: when predicate must be 1 bit, "
                    f"got {s.pred.typ}",
                    module=m.name,
                    location=s.info,
                )
    return out.diagnostics


def low_form_diagnostics(circuit: Circuit) -> list[Diagnostic]:
    """Every Low-form violation in ``circuit``, as structured diagnostics."""
    out = DiagnosticCollector()
    for m in circuit.modules.values():
        names = _declared_names(m, out)
        _check_refs(m, names, circuit, out)
        driven: set[str] = set()
        for s in m.body:
            if isinstance(s, Conditionally):
                out.error(
                    "when-in-low",
                    f"{m.name}: when block in Low form",
                    module=m.name,
                    location=s.info,
                )
                continue
            if isinstance(s, (DefWire, DefRegister, DefNode)):
                typ = s.typ if not isinstance(s, DefNode) else s.value.typ
                if not typ.is_ground():
                    out.error(
                        "aggregate-in-low",
                        f"{m.name}: aggregate type {typ} on {s.name!r} "
                        f"in Low form",
                        module=m.name,
                        location=s.info,
                    )
            if isinstance(s, Connect):
                if isinstance(s.loc, Ref):
                    key = s.loc.name
                elif isinstance(s.loc, SubField) and isinstance(s.loc.expr, Ref):
                    key = f"{s.loc.expr.name}.{s.loc.name}"
                else:
                    out.error(
                        "bad-connect-target",
                        f"{m.name}: bad Low-form connect target {s.loc}",
                        module=m.name,
                        location=s.info,
                    )
                    continue
                if key in driven:
                    out.error(
                        "multi-driver-low",
                        f"{m.name}: multiple drivers for {key!r}",
                        module=m.name,
                        location=s.info,
                    )
                driven.add(key)
                lw = s.loc.typ.bit_width()
                ew = s.expr.typ.bit_width()
                if lw != ew:
                    out.error(
                        "connect-width-low",
                        f"{m.name}: width mismatch connecting {key!r}: "
                        f"{lw} vs {ew}",
                        module=m.name,
                        location=s.info,
                    )
    return out.diagnostics


def _raise_if_any(diagnostics: list[Diagnostic]) -> None:
    if diagnostics:
        raise CheckError.from_diagnostics(diagnostics)


def check_high_form(circuit: Circuit) -> None:
    """Validate an elaborated (pre-lowering) circuit.

    Raises one :class:`CheckError` listing *all* violations (the historical
    fail-fast behavior reported only the first).
    """
    _raise_if_any(high_form_diagnostics(circuit))


def check_low_form(circuit: Circuit) -> None:
    """Validate the Low form invariants assumed by the simulator.

    Raises one :class:`CheckError` listing *all* violations.
    """
    _raise_if_any(low_form_diagnostics(circuit))


__all__ = [
    "CheckError",
    "check_high_form",
    "check_low_form",
    "format_diagnostics",
    "high_form_diagnostics",
    "low_form_diagnostics",
]
