"""Common sub-expression elimination over named nodes.

Two nodes computing structurally identical expressions (after canonicalizing
through earlier aliases) are merged; the later definition is dropped and all
its uses are redirected to the earlier one.  DontTouch'd nodes are never
dropped (debug mode), though other nodes may still alias *to* them.

Returns the rename map (dropped name -> canonical name) so the debug info
can follow merged SSA temps (Algorithm 1, second pass).
"""

from __future__ import annotations

from ..expr import Expr, Literal, MemRead, PrimOp, Ref, SubField, SubIndex
from ..stmt import (
    Block,
    Circuit,
    Connect,
    DefNode,
    DefRegister,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
)


def _subst_refs(e: Expr, alias: dict[str, str]) -> Expr:
    if isinstance(e, Ref):
        new = alias.get(e.name)
        return Ref(new, e.typ) if new is not None else e
    if isinstance(e, Literal):
        return e
    if isinstance(e, SubField):
        inner = _subst_refs(e.expr, alias)
        return e if inner is e.expr else SubField(inner, e.name, e.typ)
    if isinstance(e, SubIndex):
        inner = _subst_refs(e.expr, alias)
        return e if inner is e.expr else SubIndex(inner, e.index, e.typ)
    if isinstance(e, MemRead):
        addr = _subst_refs(e.addr, alias)
        return e if addr is e.addr else MemRead(e.mem, addr, e.typ)
    if isinstance(e, PrimOp):
        args = tuple(_subst_refs(a, alias) for a in e.args)
        return e if args == e.args else PrimOp(e.op, args, e.params, e.typ)
    return e


def _expr_key(e: Expr) -> str:
    """A structural key; str() rendering is deterministic and includes
    literal types, op names, and static params."""
    return f"{type(e).__name__}:{e}:{e.typ}"


def _rewrite_stmt(s: Stmt, alias: dict[str, str]) -> Stmt:
    if isinstance(s, DefNode):
        return DefNode(s.name, _subst_refs(s.value, alias), s.info)
    if isinstance(s, Connect):
        return Connect(s.loc, _subst_refs(s.expr, alias), s.info)
    if isinstance(s, MemWrite):
        return MemWrite(
            s.mem,
            _subst_refs(s.addr, alias),
            _subst_refs(s.data, alias),
            _subst_refs(s.en, alias),
            s.info,
        )
    if isinstance(s, Stop):
        return Stop(_subst_refs(s.cond, alias), s.exit_code, s.info)
    if isinstance(s, Printf):
        return Printf(
            _subst_refs(s.cond, alias),
            s.fmt,
            tuple(_subst_refs(a, alias) for a in s.args),
            s.info,
        )
    if isinstance(s, DefRegister) and s.init is not None:
        return DefRegister(
            s.name, s.typ, s.clock, s.reset, _subst_refs(s.init, alias), s.info
        )
    return s


def _cse_module(m: ModuleIR, protected: set[str]) -> tuple[ModuleIR, dict[str, str]]:
    alias: dict[str, str] = {}
    seen: dict[str, str] = {}  # expr key -> canonical node name
    body: list[Stmt] = []
    for s in m.body:
        if isinstance(s, DefNode):
            value = _subst_refs(s.value, alias)
            key = _expr_key(value)
            canonical = seen.get(key)
            if canonical is not None and s.name not in protected:
                alias[s.name] = canonical
                continue  # drop duplicate definition
            if canonical is None:
                seen[key] = s.name
            body.append(DefNode(s.name, value, s.info))
        else:
            body.append(_rewrite_stmt(s, alias))
    return ModuleIR(m.name, m.ports, Block(tuple(body)), m.info), alias


def cse(circuit: Circuit) -> tuple[Circuit, dict[str, dict[str, str]]]:
    """Run CSE on every module.  Returns (circuit, per-module renames)."""
    modules: dict[str, ModuleIR] = {}
    renames: dict[str, dict[str, str]] = {}
    for name, m in circuit.modules.items():
        modules[name], renames[name] = _cse_module(m, circuit.dont_touched(name))
    return (
        Circuit(circuit.name, modules, circuit.main, list(circuit.annotations)),
        renames,
    )
