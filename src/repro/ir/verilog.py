"""Verilog emission from the Low form.

The output is the "generated RTL" hardware designers would otherwise have to
debug by hand (paper Listing 4): flattened names, mux chains, and compiler
temporaries.  Our simulator executes the IR directly, so this emitter exists
for interoperability and for demonstrating the readability gap that
motivates source-level debugging.
"""

from __future__ import annotations

from .expr import Expr, Literal, MemRead, PrimOp, Ref, SubField
from .stmt import (
    Circuit,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stop,
)
from .types import SIntType


def _width_decl(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


class _ModuleEmitter:
    def __init__(self, m: ModuleIR, circuit: Circuit):
        self.m = m
        self.circuit = circuit
        self.lines: list[str] = []
        self.instances = {
            s.name: s.module for s in m.body if isinstance(s, DefInstance)
        }
        # connects to instance inputs: inst -> port -> expr
        self.inst_inputs: dict[str, dict[str, Expr]] = {}
        # wires created for instance outputs: (inst, port) -> wire name
        self.inst_outputs: dict[tuple[str, str], str] = {}

    def emit(self) -> str:
        self._collect_instance_connects()
        header = ",\n".join(
            f"  {p.direction} {_signed_kw(p.typ)}{_width_decl(p.typ.bit_width())}{p.name}"
            for p in self.m.ports
        )
        self.lines.append(f"module {self.m.name} (")
        self.lines.append(header)
        self.lines.append(");")
        for s in self.m.body:
            self._emit_stmt(s)
        self._emit_instances()
        self._emit_sequential()
        self.lines.append("endmodule")
        return "\n".join(self.lines)

    def _collect_instance_connects(self) -> None:
        for s in self.m.body:
            if isinstance(s, Connect) and isinstance(s.loc, SubField):
                inst = s.loc.expr.name  # type: ignore[union-attr]
                self.inst_inputs.setdefault(inst, {})[s.loc.name] = s.expr
        for inst, mod in self.instances.items():
            child = self.circuit.modules[mod]
            for p in child.ports:
                if p.direction == "output":
                    self.inst_outputs[(inst, p.name)] = f"{inst}_{p.name}"

    def _emit_stmt(self, s) -> None:
        if isinstance(s, DefWire):
            w = s.typ.bit_width()
            self.lines.append(f"  wire {_signed_kw(s.typ)}{_width_decl(w)}{s.name};")
        elif isinstance(s, DefNode):
            w = s.value.typ.bit_width()
            self.lines.append(
                f"  wire {_signed_kw(s.value.typ)}{_width_decl(w)}{s.name} = "
                f"{self._expr(s.value)};"
            )
        elif isinstance(s, DefRegister):
            w = s.typ.bit_width()
            self.lines.append(f"  reg {_signed_kw(s.typ)}{_width_decl(w)}{s.name};")
        elif isinstance(s, DefMemory):
            w = s.typ.bit_width()
            self.lines.append(
                f"  reg {_width_decl(w)}{s.name} [0:{s.depth - 1}];"
            )
            if s.init:
                self.lines.append("  initial begin")
                for i, v in enumerate(s.init):
                    self.lines.append(f"    {s.name}[{i}] = {w}'h{v:x};")
                self.lines.append("  end")
        elif isinstance(s, Connect):
            if isinstance(s.loc, SubField):
                return  # instance input: handled at instantiation
            target = s.loc.name  # type: ignore[union-attr]
            if target in self._reg_names():
                return  # register next-value: handled in always block
            self.lines.append(f"  assign {target} = {self._expr(s.expr)};")
        # DefInstance / MemWrite / Stop / Printf handled separately

    def _reg_names(self) -> set[str]:
        return {s.name for s in self.m.body if isinstance(s, DefRegister)}

    def _emit_instances(self) -> None:
        for inst, mod in self.instances.items():
            child = self.circuit.modules[mod]
            for (i, p), wire in self.inst_outputs.items():
                if i == inst:
                    w = child.port(p).typ.bit_width()
                    self.lines.append(f"  wire {_width_decl(w)}{wire};")
            ports = []
            for p in child.ports:
                if p.direction == "input":
                    expr = self.inst_inputs.get(inst, {}).get(p.name)
                    value = self._expr(expr) if expr is not None else ""
                else:
                    value = self.inst_outputs[(inst, p.name)]
                ports.append(f"    .{p.name}({value})")
            self.lines.append(f"  {mod} {inst} (")
            self.lines.append(",\n".join(ports))
            self.lines.append("  );")

    def _emit_sequential(self) -> None:
        regs = {s.name: s for s in self.m.body if isinstance(s, DefRegister)}
        reg_next: dict[str, Expr] = {}
        for s in self.m.body:
            if isinstance(s, Connect) and isinstance(s.loc, Ref) and s.loc.name in regs:
                reg_next[s.loc.name] = s.expr
        mem_writes = [s for s in self.m.body if isinstance(s, MemWrite)]
        stops = [s for s in self.m.body if isinstance(s, Stop)]
        prints = [s for s in self.m.body if isinstance(s, Printf)]
        if not (regs or mem_writes or stops or prints):
            return
        self.lines.append("  always @(posedge clock) begin")
        for name, reg in regs.items():
            nxt = reg_next.get(name)
            nxt_s = self._expr(nxt) if nxt is not None else name
            if reg.reset is not None and reg.init is not None:
                self.lines.append(
                    f"    if ({self._expr(reg.reset)}) {name} <= "
                    f"{self._expr(reg.init)}; else {name} <= {nxt_s};"
                )
            else:
                self.lines.append(f"    {name} <= {nxt_s};")
        for mw in mem_writes:
            self.lines.append(
                f"    if ({self._expr(mw.en)}) {mw.mem}[{self._expr(mw.addr)}] "
                f"<= {self._expr(mw.data)};"
            )
        for st in stops:
            self.lines.append(f"    if ({self._expr(st.cond)}) $finish;")
        for pf in prints:
            fmt = pf.fmt.replace("{}", "%d")
            args = "".join(f", {self._expr(a)}" for a in pf.args)
            self.lines.append(f'    if ({self._expr(pf.cond)}) $display("{fmt}"{args});')
        self.lines.append("  end")

    # -- expressions ------------------------------------------------------

    def _expr(self, e: Expr) -> str:
        if isinstance(e, Ref):
            return e.name
        if isinstance(e, Literal):
            w = e.typ.bit_width()
            if e.value < 0:
                return f"-{w}'sd{-e.value}"
            return f"{w}'h{e.value:x}"
        if isinstance(e, SubField):
            inst = e.expr.name  # type: ignore[union-attr]
            wire = self.inst_outputs.get((inst, e.name))
            if wire is None:
                raise ValueError(f"read of instance input {inst}.{e.name}")
            return wire
        if isinstance(e, MemRead):
            return f"{e.mem}[{self._expr(e.addr)}]"
        if isinstance(e, PrimOp):
            return self._prim(e)
        raise ValueError(f"cannot emit {e!r}")

    def _prim(self, e: PrimOp) -> str:
        infix = {
            "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
            "lt": "<", "leq": "<=", "gt": ">", "geq": ">=",
            "eq": "==", "neq": "!=", "and": "&", "or": "|", "xor": "^",
            "dshl": "<<", "dshr": ">>",
        }
        a = [self._wrap(x) for x in e.args]
        if e.op in infix:
            op = infix[e.op]
            if e.op == "dshr" and isinstance(e.args[0].typ, SIntType):
                op = ">>>"
            return f"({a[0]} {op} {a[1]})"
        if e.op == "mux":
            return f"({a[0]} ? {a[1]} : {a[2]})"
        if e.op == "not":
            return f"(~{a[0]})"
        if e.op == "neg":
            return f"(-{a[0]})"
        if e.op == "andr":
            return f"(&{a[0]})"
        if e.op == "orr":
            return f"(|{a[0]})"
        if e.op == "xorr":
            return f"(^{a[0]})"
        if e.op == "cat":
            return f"{{{a[0]}, {a[1]}}}"
        if e.op == "bits":
            hi, lo = e.params
            if e.args[0].width() == 1 and hi == 0 and lo == 0:
                return a[0]
            return f"{self._bits_operand(e.args[0])}[{hi}:{lo}]" if hi != lo else (
                f"{self._bits_operand(e.args[0])}[{hi}]"
            )
        if e.op == "pad":
            return a[0]
        if e.op in ("shl",):
            return f"({a[0]} << {e.params[0]})"
        if e.op in ("shr",):
            return f"({a[0]} >> {e.params[0]})"
        if e.op == "as_uint":
            return f"$unsigned({a[0]})"
        if e.op == "as_sint":
            return f"$signed({a[0]})"
        raise ValueError(f"cannot emit op {e.op}")

    def _bits_operand(self, e: Expr) -> str:
        # Verilog cannot slice an arbitrary expression; name it if needed.
        if isinstance(e, (Ref, MemRead)):
            return self._expr(e)
        if isinstance(e, SubField):
            return self._expr(e)
        # Fall back to a concatenation trick valid on expressions.
        return f"{{{self._expr(e)}}}"

    def _wrap(self, e: Expr) -> str:
        s = self._expr(e)
        if isinstance(e.typ, SIntType) and not s.startswith("$signed"):
            return f"$signed({s})"
        return s


def _signed_kw(typ) -> str:
    return "signed " if isinstance(typ, SIntType) else ""


def emit_verilog(circuit: Circuit) -> str:
    """Emit the whole circuit as a single Verilog source string."""
    parts = [_ModuleEmitter(m, circuit).emit() for m in circuit.modules.values()]
    return "\n\n".join(parts) + "\n"
