"""IR expressions.

Expressions are immutable trees.  ``Ref`` / ``SubField`` / ``SubIndex``
reference declared signals; ``Literal`` is a constant; ``PrimOp`` covers the
primitive operator set; ``MemRead`` is a combinational memory read port.

Smart constructors (``add``, ``mux``, ``bits``, ...) implement the width
inference rules so that passes and the generator frontend never hand-compute
result types.  The rules follow FIRRTL's, with one simplification: the
dynamic shifts ``dshl``/``dshr`` keep the width of their first operand
(documented divergence; the simulator and Verilog emitter agree with it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import (
    BundleType,
    ClockType,
    ResetType,
    SIntType,
    Type,
    UIntType,
    VecType,
    ground_like,
    is_signed,
)


class Expr:
    """Base class of all IR expressions. Every expression carries a type."""

    typ: Type

    def width(self) -> int:
        return self.typ.bit_width()


@dataclass(frozen=True, slots=True)
class Ref(Expr):
    """Reference to a declared signal (port, wire, register, node, instance)."""

    name: str
    typ: Type

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SubField(Expr):
    """Select a named field of a bundle-typed expression."""

    expr: Expr
    name: str
    typ: Type

    def __str__(self) -> str:
        return f"{self.expr}.{self.name}"


@dataclass(frozen=True, slots=True)
class SubIndex(Expr):
    """Select a constant index of a vec-typed expression."""

    expr: Expr
    index: int
    typ: Type

    def __str__(self) -> str:
        return f"{self.expr}[{self.index}]"


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """An integer constant.  ``value`` is stored unsigned-masked for UInt and
    as a Python int (possibly negative) for SInt."""

    value: int
    typ: Type

    def __post_init__(self) -> None:
        w = self.typ.bit_width()
        if isinstance(self.typ, UIntType):
            if not 0 <= self.value < (1 << w):
                raise ValueError(f"literal {self.value} does not fit UInt<{w}>")
        elif isinstance(self.typ, SIntType) and not (
            -(1 << (w - 1)) <= self.value < (1 << (w - 1))
        ):
            raise ValueError(f"literal {self.value} does not fit SInt<{w}>")

    def __str__(self) -> str:
        return f"{self.typ}({self.value})"


@dataclass(frozen=True, slots=True)
class PrimOp(Expr):
    """A primitive operation.

    ``op`` is one of :data:`PRIM_OPS`; ``params`` holds static integer
    parameters (e.g. the hi/lo of ``bits`` or the amount of ``shl``).
    """

    op: str
    args: tuple[Expr, ...]
    params: tuple[int, ...]
    typ: Type

    def __str__(self) -> str:
        parts = [str(a) for a in self.args] + [str(p) for p in self.params]
        return f"{self.op}({', '.join(parts)})"


@dataclass(frozen=True, slots=True)
class MemRead(Expr):
    """Combinational read of memory ``mem`` at ``addr``.

    Memories in this IR have combinational read ports and synchronous write
    ports, which is what the CPU substrate needs (register file, data
    memory) and keeps the zero-delay cycle semantics simple.
    """

    mem: str
    addr: Expr
    typ: Type

    def __str__(self) -> str:
        return f"{self.mem}[{self.addr}]"


#: All primitive operation names understood by the simulator and emitter.
PRIM_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "rem",
        "lt", "leq", "gt", "geq", "eq", "neq",
        "and", "or", "xor", "not", "neg",
        "andr", "orr", "xorr",
        "cat", "bits", "pad",
        "shl", "shr", "dshl", "dshr",
        "mux", "as_uint", "as_sint",
    }
)

_BINARY_ARITH = {"add", "sub", "mul", "div", "rem"}
_COMPARISONS = {"lt", "leq", "gt", "geq", "eq", "neq"}
_BITWISE = {"and", "or", "xor"}
_REDUCTIONS = {"andr", "orr", "xorr"}


def _require_ground(e: Expr, what: str) -> None:
    if not e.typ.is_ground():
        raise TypeError(f"{what} requires a ground-typed operand, got {e.typ}")


def _arith_result(op: str, a: Expr, b: Expr) -> Type:
    wa, wb = a.width(), b.width()
    signed = is_signed(a.typ) or is_signed(b.typ)
    if op in ("add", "sub"):
        w = max(wa, wb) + 1
    elif op == "mul":
        w = wa + wb
    elif op == "div":
        w = wa + (1 if signed else 0)
    elif op == "rem":
        w = min(wa, wb)
    else:  # pragma: no cover - guarded by caller
        raise AssertionError(op)
    return SIntType(w) if signed else UIntType(w)


def binop(op: str, a: Expr, b: Expr) -> PrimOp:
    """Build a binary arithmetic / comparison / bitwise PrimOp with the
    inferred result type."""
    _require_ground(a, op)
    _require_ground(b, op)
    if op in _BINARY_ARITH:
        typ: Type = _arith_result(op, a, b)
    elif op in _COMPARISONS:
        typ = UIntType(1)
    elif op in _BITWISE:
        typ = UIntType(max(a.width(), b.width()))
    else:
        raise ValueError(f"unknown binary op {op!r}")
    return PrimOp(op, (a, b), (), typ)


def add(a: Expr, b: Expr) -> PrimOp:
    return binop("add", a, b)


def sub(a: Expr, b: Expr) -> PrimOp:
    return binop("sub", a, b)


def mul(a: Expr, b: Expr) -> PrimOp:
    return binop("mul", a, b)


def div(a: Expr, b: Expr) -> PrimOp:
    return binop("div", a, b)


def rem(a: Expr, b: Expr) -> PrimOp:
    return binop("rem", a, b)


def lt(a: Expr, b: Expr) -> PrimOp:
    return binop("lt", a, b)


def leq(a: Expr, b: Expr) -> PrimOp:
    return binop("leq", a, b)


def gt(a: Expr, b: Expr) -> PrimOp:
    return binop("gt", a, b)


def geq(a: Expr, b: Expr) -> PrimOp:
    return binop("geq", a, b)


def eq(a: Expr, b: Expr) -> PrimOp:
    return binop("eq", a, b)


def neq(a: Expr, b: Expr) -> PrimOp:
    return binop("neq", a, b)


def and_(a: Expr, b: Expr) -> PrimOp:
    return binop("and", a, b)


def or_(a: Expr, b: Expr) -> PrimOp:
    return binop("or", a, b)


def xor(a: Expr, b: Expr) -> PrimOp:
    return binop("xor", a, b)


def not_(a: Expr) -> PrimOp:
    """Bitwise complement; result is UInt of the same width."""
    _require_ground(a, "not")
    return PrimOp("not", (a,), (), UIntType(a.width()))


def neg(a: Expr) -> PrimOp:
    """Arithmetic negation; result is SInt one bit wider."""
    _require_ground(a, "neg")
    return PrimOp("neg", (a,), (), SIntType(a.width() + 1))


def reduce_op(op: str, a: Expr) -> PrimOp:
    if op not in _REDUCTIONS:
        raise ValueError(f"unknown reduction {op!r}")
    _require_ground(a, op)
    return PrimOp(op, (a,), (), UIntType(1))


def andr(a: Expr) -> PrimOp:
    return reduce_op("andr", a)


def orr(a: Expr) -> PrimOp:
    return reduce_op("orr", a)


def xorr(a: Expr) -> PrimOp:
    return reduce_op("xorr", a)


def cat(a: Expr, b: Expr) -> PrimOp:
    """Concatenation; ``a`` becomes the high bits."""
    _require_ground(a, "cat")
    _require_ground(b, "cat")
    return PrimOp("cat", (a, b), (), UIntType(a.width() + b.width()))


def bits(a: Expr, hi: int, lo: int) -> PrimOp:
    """Static bit slice ``a[hi:lo]`` (inclusive); result is UInt."""
    _require_ground(a, "bits")
    if not 0 <= lo <= hi < a.width():
        raise ValueError(f"bits({hi},{lo}) out of range for width {a.width()}")
    return PrimOp("bits", (a,), (hi, lo), UIntType(hi - lo + 1))


def pad(a: Expr, width: int) -> PrimOp:
    """Pad (zero- or sign-extend) to at least ``width`` bits."""
    _require_ground(a, "pad")
    w = max(a.width(), width)
    return PrimOp("pad", (a,), (width,), ground_like(a.typ, w))


def shl(a: Expr, amount: int) -> PrimOp:
    _require_ground(a, "shl")
    if amount < 0:
        raise ValueError("shl amount must be non-negative")
    return PrimOp("shl", (a,), (amount,), ground_like(a.typ, a.width() + amount))


def shr(a: Expr, amount: int) -> PrimOp:
    _require_ground(a, "shr")
    if amount < 0:
        raise ValueError("shr amount must be non-negative")
    return PrimOp("shr", (a,), (amount,), ground_like(a.typ, max(a.width() - amount, 1)))


def dshl(a: Expr, b: Expr) -> PrimOp:
    """Dynamic left shift; result keeps the width of ``a`` (truncating)."""
    _require_ground(a, "dshl")
    _require_ground(b, "dshl")
    return PrimOp("dshl", (a, b), (), ground_like(a.typ, a.width()))


def dshr(a: Expr, b: Expr) -> PrimOp:
    """Dynamic right shift (arithmetic for SInt); width of ``a``."""
    _require_ground(a, "dshr")
    _require_ground(b, "dshr")
    return PrimOp("dshr", (a, b), (), ground_like(a.typ, a.width()))


def mux(cond: Expr, tval: Expr, fval: Expr) -> PrimOp:
    """2:1 multiplexer.  Operand types must agree in signedness; the result
    width is the max of the two data operands."""
    _require_ground(cond, "mux")
    _require_ground(tval, "mux")
    _require_ground(fval, "mux")
    if cond.width() != 1:
        raise TypeError(f"mux condition must be 1 bit, got {cond.typ}")
    if is_signed(tval.typ) != is_signed(fval.typ):
        raise TypeError(f"mux operand signedness mismatch: {tval.typ} vs {fval.typ}")
    typ = ground_like(tval.typ, max(tval.width(), fval.width()))
    return PrimOp("mux", (cond, tval, fval), (), typ)


def as_uint(a: Expr) -> PrimOp:
    _require_ground(a, "as_uint")
    return PrimOp("as_uint", (a,), (), UIntType(a.width()))


def as_sint(a: Expr) -> PrimOp:
    _require_ground(a, "as_sint")
    return PrimOp("as_sint", (a,), (), SIntType(a.width()))


def uint(value: int, width: int) -> Literal:
    return Literal(value, UIntType(width))


def sint(value: int, width: int) -> Literal:
    return Literal(value, SIntType(width))


def sub_field(expr: Expr, name: str) -> SubField:
    if not isinstance(expr.typ, BundleType):
        raise TypeError(f"subfield on non-bundle type {expr.typ}")
    return SubField(expr, name, expr.typ.field(name).typ)


def sub_index(expr: Expr, index: int) -> SubIndex:
    if not isinstance(expr.typ, VecType):
        raise TypeError(f"subindex on non-vec type {expr.typ}")
    if not 0 <= index < expr.typ.size:
        raise IndexError(f"index {index} out of range for {expr.typ}")
    return SubIndex(expr, index, expr.typ.elem)


def is_clockish(typ: Type) -> bool:
    """Clock and reset types may connect to UInt<1> and vice versa."""
    return isinstance(typ, (ClockType, ResetType))


def map_expr(e: Expr, fn) -> Expr:
    """Rebuild ``e`` with ``fn`` applied to each *child* expression.

    ``fn`` is applied bottom-up by callers that recurse; this helper only
    handles one level, preserving node identity when nothing changed.
    """
    if isinstance(e, PrimOp):
        new_args = tuple(fn(a) for a in e.args)
        if new_args == e.args:
            return e
        return PrimOp(e.op, new_args, e.params, e.typ)
    if isinstance(e, SubField):
        new = fn(e.expr)
        return e if new is e.expr else SubField(new, e.name, e.typ)
    if isinstance(e, SubIndex):
        new = fn(e.expr)
        return e if new is e.expr else SubIndex(new, e.index, e.typ)
    if isinstance(e, MemRead):
        new = fn(e.addr)
        return e if new is e.addr else MemRead(e.mem, new, e.typ)
    return e


def walk_expr(e: Expr):
    """Yield ``e`` and all sub-expressions, pre-order."""
    yield e
    if isinstance(e, PrimOp):
        for a in e.args:
            yield from walk_expr(a)
    elif isinstance(e, (SubField, SubIndex)):
        yield from walk_expr(e.expr)
    elif isinstance(e, MemRead):
        yield from walk_expr(e.addr)


def expr_refs(e: Expr) -> set[str]:
    """Names of all Refs (and memories) an expression reads."""
    out: set[str] = set()
    for node in walk_expr(e):
        if isinstance(node, Ref):
            out.add(node.name)
        elif isinstance(node, MemRead):
            out.add(node.mem)
    return out
