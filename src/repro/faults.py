"""Deterministic fault injection for the shard farm (``repro.faults``).

The supervision layer in ``repro.shard`` (retries, deadlines, heartbeat
monitoring, kill escalation, inline fallback) only earns trust if its
failure paths are exercised on every CI run — so faults are injected
*deterministically*: a :class:`FaultPlan` is seeded, and the decision
"does shard S fail on attempt A, how, and when" is a pure function of
``(plan seed, shard_id, attempt)``.  Re-running a chaos sweep with the
same plan replays the same kills, hangs, and corrupted wire lines.

Fault kinds, and where they bite:

* ``"kill"`` — the worker process exits abruptly (``os._exit``) at a
  chosen cycle: the coordinator sees pipe EOF without a ``done`` event
  (failure class ``crash``).
* ``"hang"`` — the worker stops making progress at a chosen cycle (it
  sleeps): heartbeats stop, the coordinator's deadline/heartbeat monitor
  terminates it (failure class ``hang``).  A ``stubborn`` hang also
  ignores ``SIGTERM``, forcing the coordinator's terminate→kill
  escalation.
* ``"corrupt"`` — from a chosen cycle on, every line the worker writes
  to its event pipe is garbled, including the final ``done`` line: the
  coordinator sees undecodable events and then EOF without a result
  (failure class ``corrupt``).
* RPC response faults (``"delay"``/``"drop"``) — injected in the symbol
  table server (:class:`RPCFaultInjector`): a response is delayed past
  the client's per-request timeout, or the connection is dropped before
  answering.  These are *recoverable within one attempt*: the hardened
  ``RPCSymbolTable`` client times out, reconnects with bounded backoff,
  and retries the (read-only) request.

Shard faults are schedule-independent: the plan is consulted per
``(shard_id, attempt)``, so retried attempts re-roll and a bounded fault
rate converges to a fault-free attempt.  RPC faults are decided per
request *index*; request arrival order depends on thread scheduling, so
RPC injection is rate-deterministic rather than trace-deterministic —
which is fine, because RPC recovery is transparent to shard results.

Everything round-trips through plain JSON dicts (``to_wire`` /
``from_wire``) so plans can travel to remote workers over the same
JSON-lines framing the rest of the farm speaks.
"""

from __future__ import annotations

import itertools
import os
import random
import signal
import threading
import time
from dataclasses import dataclass

#: Fault kinds a worker attempt can be assigned.
WORKER_FAULT_KINDS = ("kill", "hang", "corrupt")

#: Fault kinds an RPC response can be assigned.
RPC_FAULT_KINDS = ("delay", "drop")


class FaultError(Exception):
    """Raised on an invalid fault plan or fault spec."""


@dataclass(frozen=True, slots=True)
class ShardFault:
    """One concrete fault assigned to one worker attempt."""

    kind: str                 # "kill" | "hang" | "corrupt"
    at_cycle: int             # stimulus cycle at which the fault fires
    exit_code: int = 57       # "kill": the abrupt exit status
    hang_s: float = 600.0     # "hang": how long the worker stalls
    stubborn: bool = False    # "hang": also ignore SIGTERM (forces SIGKILL)

    def __post_init__(self):
        if self.kind not in WORKER_FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.at_cycle < 0:
            raise FaultError("fault cycle must be >= 0")

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "at_cycle": self.at_cycle,
            "exit_code": self.exit_code,
            "hang_s": self.hang_s,
            "stubborn": self.stubborn,
        }

    @classmethod
    def from_wire(cls, d: dict) -> ShardFault:
        return cls(
            kind=d["kind"],
            at_cycle=d["at_cycle"],
            exit_code=d.get("exit_code", 57),
            hang_s=d.get("hang_s", 600.0),
            stubborn=d.get("stubborn", False),
        )


class FaultPlan:
    """A seeded, replayable assignment of faults to worker attempts.

    Args:
        seed: the plan seed; same seed, same faults, every run.
        rate: probability that a given ``(shard, attempt)`` is faulted.
        kinds: worker fault kinds to draw from (``WORKER_FAULT_KINDS``).
        only_shards: restrict injection to these shard ids (None: all).
        at_cycle: pin every fault to this cycle (None: drawn per fault
            from ``[0, cycles)``).
        max_faulty_attempts: attempts numbered above this are never
            faulted — a convergence guarantee for tests that must finish
            within a fixed retry budget (None: every attempt re-rolls).
        hang_s / stubborn / exit_code: forwarded into each
            :class:`ShardFault` drawn.
        rpc_rate / rpc_kinds / rpc_delay_s: RPC response fault knobs,
            consumed server-side via :meth:`rpc_injector`.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.2,
        kinds: tuple = WORKER_FAULT_KINDS,
        only_shards: tuple | None = None,
        at_cycle: int | None = None,
        max_faulty_attempts: int | None = None,
        hang_s: float = 600.0,
        stubborn: bool = False,
        exit_code: int = 57,
        rpc_rate: float = 0.0,
        rpc_kinds: tuple = RPC_FAULT_KINDS,
        rpc_delay_s: float = 0.05,
    ):
        if not 0.0 <= rate <= 1.0 or not 0.0 <= rpc_rate <= 1.0:
            raise FaultError("fault rates must be within [0, 1]")
        for kind in kinds:
            if kind not in WORKER_FAULT_KINDS:
                raise FaultError(f"unknown fault kind {kind!r}")
        for kind in rpc_kinds:
            if kind not in RPC_FAULT_KINDS:
                raise FaultError(f"unknown RPC fault kind {kind!r}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.only_shards = tuple(only_shards) if only_shards is not None else None
        self.at_cycle = at_cycle
        self.max_faulty_attempts = max_faulty_attempts
        self.hang_s = hang_s
        self.stubborn = stubborn
        self.exit_code = exit_code
        self.rpc_rate = rpc_rate
        self.rpc_kinds = tuple(rpc_kinds)
        self.rpc_delay_s = rpc_delay_s

    def fault_for(
        self, shard_id: int, attempt: int, cycles: int
    ) -> ShardFault | None:
        """The fault (or None) for one worker attempt — a pure function
        of ``(plan seed, shard_id, attempt)``; attempts are 1-based."""
        if self.only_shards is not None and shard_id not in self.only_shards:
            return None
        if (
            self.max_faulty_attempts is not None
            and attempt > self.max_faulty_attempts
        ):
            return None
        # String seeding hashes via SHA-512, so the draw is stable across
        # processes and interpreter runs (never hash-randomized).
        rng = random.Random(f"{self.seed}:{shard_id}:{attempt}")
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        at = (
            self.at_cycle
            if self.at_cycle is not None
            else rng.randrange(max(1, cycles))
        )
        return ShardFault(
            kind=kind,
            at_cycle=at,
            exit_code=self.exit_code,
            hang_s=self.hang_s,
            stubborn=self.stubborn,
        )

    def rpc_injector(self) -> RPCFaultInjector | None:
        """The server-side RPC response injector this plan asks for, or
        None when ``rpc_rate`` is 0."""
        if self.rpc_rate <= 0.0:
            return None
        return RPCFaultInjector(
            seed=self.seed,
            rate=self.rpc_rate,
            kinds=self.rpc_kinds,
            delay_s=self.rpc_delay_s,
        )

    def to_wire(self) -> dict:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "only_shards": (
                list(self.only_shards) if self.only_shards is not None else None
            ),
            "at_cycle": self.at_cycle,
            "max_faulty_attempts": self.max_faulty_attempts,
            "hang_s": self.hang_s,
            "stubborn": self.stubborn,
            "exit_code": self.exit_code,
            "rpc_rate": self.rpc_rate,
            "rpc_kinds": list(self.rpc_kinds),
            "rpc_delay_s": self.rpc_delay_s,
        }

    @classmethod
    def from_wire(cls, d: dict) -> FaultPlan:
        return cls(
            seed=d["seed"],
            rate=d["rate"],
            kinds=tuple(d.get("kinds", WORKER_FAULT_KINDS)),
            only_shards=(
                tuple(d["only_shards"]) if d.get("only_shards") is not None
                else None
            ),
            at_cycle=d.get("at_cycle"),
            max_faulty_attempts=d.get("max_faulty_attempts"),
            hang_s=d.get("hang_s", 600.0),
            stubborn=d.get("stubborn", False),
            exit_code=d.get("exit_code", 57),
            rpc_rate=d.get("rpc_rate", 0.0),
            rpc_kinds=tuple(d.get("rpc_kinds", RPC_FAULT_KINDS)),
            rpc_delay_s=d.get("rpc_delay_s", 0.05),
        )


def corrupt_line(data: bytes) -> bytes:
    """Garble one wire line so it cannot decode, deterministically.

    The leading ``0xFF`` byte is invalid UTF-8, so ``json.loads`` always
    fails; the payload is XOR-scrambled so no recognizable JSON survives;
    newlines are stripped so the result stays a single framing unit.
    """
    body = bytes(b ^ 0x5A for b in data.rstrip(b"\n"))
    return b"\xff" + body.replace(b"\n", b"\x00") + b"\n"


class FaultInjector:
    """Worker-side executor of one :class:`ShardFault`.

    ``on_cycle`` is hooked into the worker's stimulus loop (cycle
    accurate); ``corrupting`` tells the worker's emit path to garble
    outgoing lines (:func:`corrupt_line`).  With ``fault=None`` the
    injector is inert and costs nothing — the worker only installs the
    per-cycle hook when a fault is actually armed.
    """

    def __init__(self, fault: ShardFault | None):
        self.fault = fault
        self.corrupting = False
        self._fired = False

    def on_cycle(self, cycle: int) -> None:
        f = self.fault
        if f is None or self._fired or cycle < f.at_cycle:
            return
        self._fired = True
        if f.kind == "kill":
            # Abrupt death: no cleanup, no `done` event, immediate EOF.
            os._exit(f.exit_code)
        elif f.kind == "hang":
            if f.stubborn:
                # Shrug off SIGTERM so only the coordinator's SIGKILL
                # escalation can reap this worker.
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(f.hang_s)
            # A hang that nobody killed resolves into "very slow": the
            # worker continues and may still finish legitimately.
        elif f.kind == "corrupt":
            self.corrupting = True


class RPCFaultInjector:
    """Server-side RPC response faults: delay or drop, per request.

    Decisions are drawn per request *index* from the plan seed; the
    index is a shared counter, so the injected fraction is deterministic
    while the exact victim requests depend on arrival order (see module
    docstring).  Thread-safe: the symbol table server handles
    connections concurrently.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.1,
        kinds: tuple = RPC_FAULT_KINDS,
        delay_s: float = 0.05,
    ):
        if not 0.0 <= rate <= 1.0:
            raise FaultError("RPC fault rate must be within [0, 1]")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.delay_s = delay_s
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def decide(self) -> tuple[str, float] | None:
        """``("delay", seconds)``, ``("drop", 0.0)``, or None."""
        with self._lock:
            n = next(self._counter)
        rng = random.Random(f"rpc:{self.seed}:{n}")
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        return (kind, self.delay_s if kind == "delay" else 0.0)
