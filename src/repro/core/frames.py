"""Stack frame reconstruction (paper Sec. 3.2 step 3, Fig. 4A).

When a breakpoint hits, hgdb rebuilds a source-level frame per concurrent
instance ("thread"): local variables from the breakpoint's scope (with the
SSA context mapping applied), generator variables from the instance, and
structured variables reassembled from flattened RTL signals — "the IO ports
are represented as a Chisel PortBundle, as one would expect from the source
code" (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.interface import SimulatorError, SimulatorInterface
from ..symtable.query import BreakpointRec, SymbolTableInterface


@dataclass(slots=True)
class VariableView:
    """One variable in a frame; aggregates carry children instead of a
    value."""

    name: str
    value: int | str | None = None
    rtl: str | None = None
    children: list[VariableView] = field(default_factory=list)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.children)

    def flatten(self, prefix: str = "") -> list[tuple[str, int | str | None]]:
        """(dotted name, value) pairs for display/testing."""
        label = f"{prefix}.{self.name}" if prefix else self.name
        if not self.children:
            return [(label, self.value)]
        out = []
        for c in self.children:
            out.extend(c.flatten(label))
        return out

    def child(self, name: str) -> VariableView | None:
        for c in self.children:
            if c.name == name:
                return c
        return None

    def to_dict(self) -> dict:
        if self.children:
            return {
                "name": self.name,
                "children": [c.to_dict() for c in self.children],
            }
        return {"name": self.name, "value": self.value, "rtl": self.rtl}

    @classmethod
    def from_dict(cls, rec: dict) -> VariableView:
        """Rebuild a view from its :meth:`to_dict` form — how debugger
        front ends render frames that crossed the hub wire."""
        if "children" in rec:
            return cls(
                rec["name"],
                children=[cls.from_dict(c) for c in rec["children"]],
            )
        return cls(rec["name"], value=rec.get("value"), rtl=rec.get("rtl"))


@dataclass(slots=True)
class Frame:
    """A reconstructed stack frame for one instance at one breakpoint."""

    breakpoint: BreakpointRec
    instance_path: str            # full simulator path of the instance
    time: int
    local_vars: list[VariableView] = field(default_factory=list)
    generator_vars: list[VariableView] = field(default_factory=list)

    def var(self, dotted: str) -> int | str | None:
        """Look up a (possibly nested) local variable value by dotted name."""
        parts = _split_dotted(dotted)
        pool = self.local_vars
        node: VariableView | None = None
        for p in parts:
            node = next((v for v in pool if v.name == p), None)
            if node is None:
                return None
            pool = node.children
        return node.value if node else None

    def to_dict(self) -> dict:
        return {
            "breakpoint_id": self.breakpoint.id,
            "instance": self.instance_path,
            "filename": self.breakpoint.filename,
            "line": self.breakpoint.line,
            "time": self.time,
            "local": [v.to_dict() for v in self.local_vars],
            "generator": [v.to_dict() for v in self.generator_vars],
        }


def _split_dotted(name: str) -> list[str]:
    """Split ``a.b[2].c`` into ``["a", "b", "[2]", "c"]``."""
    parts: list[str] = []
    for chunk in name.split("."):
        while "[" in chunk:
            head, _, rest = chunk.partition("[")
            idx, _, chunk = rest.partition("]")
            if head:
                parts.append(head)
            parts.append(f"[{idx}]")
            if not chunk:
                break
        else:
            if chunk:
                parts.append(chunk)
    return parts


def build_variable_tree(
    bindings: list[tuple[str, int | str | None, str | None]]
) -> list[VariableView]:
    """Reassemble structured variables from flattened bindings.

    ``bindings`` is a list of (dotted name, value, rtl path).  Dotted names
    sharing prefixes become nested :class:`VariableView` aggregates — the
    bundle reconstruction of paper Sec. 4.2.
    """
    roots: list[VariableView] = []

    def get_child(pool: list[VariableView], name: str) -> VariableView:
        for v in pool:
            if v.name == name:
                return v
        v = VariableView(name)
        pool.append(v)
        return v

    for dotted, value, rtl in bindings:
        parts = _split_dotted(dotted)
        pool = roots
        for p in parts[:-1]:
            node = get_child(pool, p)
            pool = node.children
        leaf = get_child(pool, parts[-1])
        leaf.value = value
        leaf.rtl = rtl
    return roots


class FrameBuilder:
    """Builds frames by joining symbol table scope info with live values."""

    def __init__(
        self,
        symtable: SymbolTableInterface,
        sim: SimulatorInterface,
        instance_map: dict[str, str],
    ):
        self.symtable = symtable
        self.sim = sim
        self.instance_map = instance_map

    def rtl_path(self, instance_name: str, local: str) -> str:
        base = self.instance_map.get(instance_name, instance_name)
        return f"{base}.{local}"

    def read(self, instance_name: str, local: str) -> int | None:
        try:
            return self.sim.get_value(self.rtl_path(instance_name, local))
        except SimulatorError:
            return None

    def build(self, bp: BreakpointRec, time: int) -> Frame:
        locals_raw: list[tuple[str, int | str | None, str | None]] = []
        for var in self.symtable.scope_variables(bp.id):
            if var.is_rtl:
                value = self.read(bp.instance_name, var.value)
                locals_raw.append((var.name, value, var.value))
            else:
                locals_raw.append((var.name, var.value, None))

        gen_raw: list[tuple[str, int | str | None, str | None]] = []
        for var in self.symtable.generator_variables(bp.instance_id):
            if var.is_rtl:
                value = self.read(bp.instance_name, var.value)
                gen_raw.append((var.name, value, var.value))
            else:
                gen_raw.append((var.name, var.value, None))

        return Frame(
            breakpoint=bp,
            instance_path=self.instance_map.get(bp.instance_name, bp.instance_name),
            time=time,
            local_vars=build_variable_tree(locals_raw),
            generator_vars=build_variable_tree(gen_raw),
        )
