"""repro.core — the hgdb debugger runtime (the paper's primary contribution).

``Runtime`` bridges a simulation backend and a symbol table, emulating
breakpoints at clock edges with SSA-derived enable conditions, scheduling
them in lexical order (forward or reverse), reconstructing source-level
stack frames, and serving debugger clients over an RPC protocol.
"""

from .expr_eval import ExprError, evaluate_str, parse
from .frames import Frame, FrameBuilder, VariableView, build_variable_tree
from .matching import MatchError, locate_instance
from .protocol import DebugClient, DebugServer
from .runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    CommandKind,
    DebuggerError,
    HitGroup,
    HitRecorder,
    Runtime,
)
from .scheduler import Group, InsertedBreakpoint, Scheduler

__all__ = [
    "CONTINUE",
    "Command",
    "CommandKind",
    "DETACH",
    "DebugClient",
    "DebugServer",
    "DebuggerError",
    "ExprError",
    "Frame",
    "FrameBuilder",
    "Group",
    "HitGroup",
    "HitRecorder",
    "InsertedBreakpoint",
    "MatchError",
    "REVERSE_CONTINUE",
    "REVERSE_STEP",
    "Runtime",
    "STEP",
    "Scheduler",
    "VariableView",
    "build_variable_tree",
    "evaluate_str",
    "locate_instance",
    "parse",
]
