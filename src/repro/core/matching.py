"""Locating the generated IP inside the full simulated design (Sec. 3.4).

"Developers rarely use an HGF to generate the entire design and test bench
... hgdb only has a partial view of the final design and it needs a method
to locate the generated IP in the complete system during simulation."

The symbol table's instance tree is a subtree of the simulated hierarchy
with unchanged *relative* structure, so we search the simulator hierarchy
for a node whose descendants cover all symbol table instance paths, and
verify candidates by checking that known signal names actually exist.
"""

from __future__ import annotations

from ..sim.interface import HierNode
from ..symtable.query import SymbolTableInterface


class MatchError(Exception):
    """Raised when the generated IP cannot be located in the design."""


def _relative_paths(symtable: SymbolTableInterface) -> list[str]:
    """Instance paths relative to the symbol table's top ('' = the top)."""
    top = symtable.top_name()
    out = []
    for inst in symtable.instances():
        if inst.name == top:
            out.append("")
        elif inst.name.startswith(top + "."):
            out.append(inst.name[len(top) + 1 :])
        else:
            out.append(inst.name)
    return out


def _signal_samples(symtable: SymbolTableInterface, limit: int = 32) -> list[tuple[str, str]]:
    """(relative instance path, local signal name) pairs for verification,
    drawn from breakpoint scope variables."""
    top = symtable.top_name()
    samples: list[tuple[str, str]] = []
    for bp in symtable.all_breakpoints()[:limit]:
        rel = ""
        if bp.instance_name.startswith(top + "."):
            rel = bp.instance_name[len(top) + 1 :]
        elif bp.instance_name != top:
            rel = bp.instance_name
        samples.append((rel, bp.node))
        if len(samples) >= limit:
            break
    return samples


def locate_instance(
    symtable: SymbolTableInterface, hierarchy: HierNode
) -> dict[str, str]:
    """Map symbol table instance names to simulator hierarchical paths.

    Returns e.g. ``{"FPU": "TestHarness.dut.fpu", "FPU.dcmp": "...": ...}``.
    Raises :class:`MatchError` when no consistent placement exists.
    """
    rel_paths = _relative_paths(symtable)
    samples = _signal_samples(symtable)
    top = symtable.top_name()

    def signal_exists(node: HierNode, local: str) -> bool:
        return any(s.name == local for s in node.signals)

    best: tuple[int, int, HierNode] | None = None  # (score, -depth, node)
    for candidate in hierarchy.walk():
        # Structural check: every relative instance path must exist.
        ok = True
        for rel in rel_paths:
            target = candidate.path if not rel else f"{candidate.path}.{rel}"
            if hierarchy.find(target) is None:
                ok = False
                break
        if not ok:
            continue
        # Verification: count how many sampled signals resolve.
        score = 0
        for rel, local in samples:
            target = candidate.path if not rel else f"{candidate.path}.{rel}"
            node = hierarchy.find(target)
            if node is not None and signal_exists(node, local):
                score += 1
        depth = candidate.path.count(".")
        key = (score, -depth, candidate)
        if best is None or (key[0], key[1]) > (best[0], best[1]):
            best = key

    if best is None:
        raise MatchError(
            f"could not locate generated IP {top!r} in the simulated design"
        )
    score, _, node = best
    if samples and score == 0:
        raise MatchError(
            f"hierarchy shape matched at {node.path!r} but no symbol table "
            "signals resolved there; wrong design?"
        )

    mapping: dict[str, str] = {}
    for inst in symtable.instances():
        if inst.name == top:
            mapping[inst.name] = node.path
        else:
            tail = (
                inst.name[len(top) + 1 :]
                if inst.name.startswith(top + ".")
                else inst.name
            )
            mapping[inst.name] = f"{node.path}.{tail}"
    return mapping
