"""The hgdb debugger runtime.

Connects a simulation backend (live simulator or trace replay — any
:class:`~repro.sim.interface.SimulatorInterface`) with a symbol table and
implements the breakpoint scheduling loop of paper Fig. 2:

1. at every clock posedge, select the next group of breakpoints sharing a
   source location (pre-computed lexical order);
2. evaluate each breakpoint's enable condition and optional user condition
   against the stable simulation state;
3. on a hit, reconstruct one stack frame per concurrent instance and hand
   the batch to the client;
4. apply the client's command (continue / step / reverse-step / ...) and
   loop.

Reversing the group selection order yields *intra-cycle reverse debugging*;
when the backend supports ``set_time`` (snapshots or trace replay), reverse
debugging extends across cycles (Sec. 3.2).

When no breakpoints are inserted the clock callback returns immediately —
this is the only per-cycle cost of attaching hgdb, and the reason overall
overhead stays under 5% (paper Sec. 4.3, Fig. 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..sim.interface import SimulatorError, SimulatorInterface
from ..symtable.query import BreakpointRec, SymbolTableInterface
from . import expr_eval
from .frames import Frame, FrameBuilder
from .matching import locate_instance
from .scheduler import Group, InsertedBreakpoint, Scheduler
from .watch import WatchStore, Watchpoint


class CommandKind(enum.Enum):
    CONTINUE = "continue"
    STEP = "step"
    REVERSE_STEP = "reverse_step"
    REVERSE_CONTINUE = "reverse_continue"
    DETACH = "detach"


@dataclass(frozen=True, slots=True)
class Command:
    kind: CommandKind


CONTINUE = Command(CommandKind.CONTINUE)
STEP = Command(CommandKind.STEP)
REVERSE_STEP = Command(CommandKind.REVERSE_STEP)
REVERSE_CONTINUE = Command(CommandKind.REVERSE_CONTINUE)
DETACH = Command(CommandKind.DETACH)


@dataclass(slots=True)
class HitGroup:
    """Delivered to the client when a scheduling group hits: one frame per
    concurrent hardware thread (paper Fig. 4B).

    Watchpoint hits reuse the same shape with ``watch`` set to
    ``{"id", "label", "path", "old", "new"}`` and no frames.

    Against a many-worlds backend ``worlds`` carries the exact set of
    scenario-world indices whose condition mask fired (watch hits put the
    set in ``watch["worlds"]`` instead); it is None on scalar backends.
    """

    time: int
    filename: str
    line: int
    column: int
    frames: list[Frame] = field(default_factory=list)
    watch: dict | None = None
    worlds: tuple[int, ...] | None = None

    @property
    def location(self) -> str:
        return f"{self.filename}:{self.line}"

    def to_record(self) -> dict:
        """A JSON-serializable rendering of this hit.

        This is the shape shipped over the shard wire protocol and fed to
        the cross-shard aggregator: plain dicts/lists/ints/strs only, with
        frames flattened via :meth:`Frame.to_dict`.
        """
        rec: dict = {
            "time": self.time,
            "filename": self.filename,
            "line": self.line,
            "column": self.column,
        }
        if self.frames:
            rec["frames"] = [f.to_dict() for f in self.frames]
        if self.watch is not None:
            rec["watch"] = dict(self.watch)
        if self.worlds is not None:
            rec["worlds"] = list(self.worlds)
        return rec


class HitRecorder:
    """A non-interactive hit sink: collect serializable hit records.

    Usable anywhere a ``Runtime`` ``on_hit`` handler is expected — batch
    jobs, shard workers, CI scripts — where nobody sits at a console.
    Every hit is converted with :meth:`HitGroup.to_record` and appended to
    :attr:`records`; ``on_record`` (when given) streams each record as it
    lands, and ``limit`` detaches the runtime after that many hits so a
    hot breakpoint cannot stall a long batch run.
    """

    def __init__(self, on_record=None, limit: int | None = None):
        self.records: list[dict] = []
        self.on_record = on_record
        self.limit = limit

    def __len__(self) -> int:
        return len(self.records)

    def __call__(self, hit: HitGroup) -> Command:
        rec = hit.to_record()
        self.records.append(rec)
        if self.on_record is not None:
            self.on_record(rec)
        if self.limit is not None and len(self.records) >= self.limit:
            return DETACH
        return CONTINUE


class DebuggerError(Exception):
    """Raised on invalid debugger operations."""


class Runtime:
    """The hgdb runtime (Fig. 1 center box).

    Args:
        sim: any simulation backend implementing the unified interface.
        symtable: any symbol table implementing the unified interface
            (native SQLite or RPC client).
        on_hit: synchronous handler called with a :class:`HitGroup`;
            returns the next :class:`Command`.  While the handler runs the
            simulator is paused — exactly like a blocking VPI callback.
    """

    def __init__(
        self,
        sim: SimulatorInterface,
        symtable: SymbolTableInterface,
        on_hit=None,
        compile_conditions: bool = True,
    ):
        self.sim = sim
        self.symtable = symtable
        # `is None`, not truthiness: a stateful handler object (e.g. an
        # empty HitRecorder, whose __len__ is 0) must not be dropped.
        self.on_hit = on_hit if on_hit is not None else (lambda hit: CONTINUE)
        self.instance_map = locate_instance(symtable, sim.hierarchy())
        self.frames = FrameBuilder(symtable, sim, self.instance_map)
        self.scheduler = Scheduler(symtable)
        self.watchpoints = WatchStore(sim)
        self.warnings: list[str] = []
        self._warned: set[str] = set()
        self._cb_id: int | None = None
        self._time_cb_id: int | None = None
        # Debugger-driven pokes (a client's set_value from an on_hit
        # handler) are lazy on the fast engine; flush before re-reading
        # the value table so compiled conditions see settled state.
        self._flush = getattr(sim, "flush", None)
        self._step_mode = False
        self._pause_requested = False
        self._detached = False
        self._armed = False  # precomputed: anything to do at a posedge?
        # Compiled-condition fast path: breakpoint enable∧user conditions
        # are exec-compiled into one closure per scheduling group, with
        # names pre-resolved at compile time.  On a live Simulator names
        # bind directly to value-table indices (no per-eval dict lookups);
        # other backends bind to pre-resolved get_value paths.
        self._compile_conditions = compile_conditions
        # On a live Simulator, bind the value store's raw buffers: the
        # narrow lane buffer is what compiled closures index (`_v[i]`),
        # and >64-bit signals resolve through the wide overflow dict
        # (`_w[i]`) — never through a per-eval path lookup.
        store = getattr(sim, "store", None)
        self._sim_store = store
        self._sim_values = store.narrow if store is not None else getattr(sim, "values", None)
        self._sim_wide = store.wide if store is not None else None
        design = getattr(sim, "design", None)
        self._signal_index = getattr(design, "signal_index", None)
        # Many-worlds backend: names bind to whole scenario columns and
        # conditions evaluate as boolean masks over the world axis; hits
        # report the exact set of worlds that fired (docs/manyworlds.md).
        self._worlds = getattr(sim, "worlds", None)
        self._sim_matrix = getattr(store, "matrix", None)
        self._wide_signals = getattr(store, "wide_signals", None)
        self._vector = (
            self._worlds is not None and self._sim_matrix is not None
        )
        self.stats_callbacks = 0
        self.stats_bp_evals = 0

    # -- attachment -------------------------------------------------------

    def attach(self) -> None:
        """Register the clock-edge callback (paper Sec. 3.3)."""
        if self._cb_id is None:
            self._cb_id = self.sim.add_clock_callback(self._on_clock)
            self._detached = False
        if self._time_cb_id is None:
            # Rewind hook: any set_time (reverse debugging, or a client
            # jumping around directly) re-primes watchpoint `last` values
            # against the restored state.
            self._time_cb_id = self.sim.add_set_time_callback(self._on_set_time)

    def detach(self) -> None:
        if self._cb_id is not None:
            self.sim.remove_clock_callback(self._cb_id)
            self._cb_id = None
        if self._time_cb_id is not None:
            self.sim.remove_set_time_callback(self._time_cb_id)
            self._time_cb_id = None
        self._detached = True

    def _on_set_time(self, sim, time: int) -> None:
        self.watchpoints.rewound(sim)

    @property
    def attached(self) -> bool:
        return self._cb_id is not None

    # -- breakpoint management ------------------------------------------------

    def resolve_filename(self, filename: str) -> str | None:
        """Match a user-supplied (possibly partial) filename against the
        symbol table's absolute paths."""
        known = self.symtable.filenames()
        if filename in known:
            return filename
        matches = [
            k for k in known
            if k.endswith("/" + filename) or k.rsplit("/", 1)[-1] == filename
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def _update_armed(self) -> None:
        self._armed = bool(
            self.scheduler.inserted
            or self._step_mode
            or self._pause_requested
            or len(self.watchpoints)
        )

    def add_breakpoint(
        self, filename: str, line: int, column: int | None = None,
        condition: str | None = None,
    ) -> list[InsertedBreakpoint]:
        """Insert all emulated breakpoints for a source location.

        One source line can map to several emulated breakpoints (loop
        unrolling + SSA, paper Listings 1/2) across several instances; all
        of them are inserted, as the paper prescribes (Sec. 3.2).
        """
        resolved = self.resolve_filename(filename)
        if resolved is None:
            raise DebuggerError(f"unknown source file {filename!r}")
        recs = self.symtable.breakpoints_at(resolved, line, column)
        if not recs:
            raise DebuggerError(f"no statement maps to {filename}:{line}")
        out = [self.scheduler.insert(rec, condition) for rec in recs]
        self._update_armed()
        return out

    def remove_breakpoint(self, bp_id: int) -> bool:
        removed = self.scheduler.remove(bp_id)
        self._update_armed()
        return removed

    def clear_breakpoints(self) -> None:
        self.scheduler.clear()
        self._update_armed()

    def list_breakpoints(self) -> list[InsertedBreakpoint]:
        return sorted(self.scheduler.inserted.values(), key=lambda b: b.rec.id)

    def add_watchpoint(
        self,
        name: str,
        instance: str | None = None,
        condition: str | None = None,
    ) -> Watchpoint:
        """Watch a signal for value changes (a data breakpoint).

        ``name`` may be a full simulator path, an RTL name local to
        ``instance`` (default: the design top), or a source-level variable
        resolvable through the symbol table.  ``condition`` may reference
        ``old``/``new``/``value``.
        """
        path = self._resolve_watch_path(name, instance)
        wp = self.watchpoints.add(path, name, condition)
        if wp.error is not None:
            # Unresolvable at compile time (e.g. an unknown name): surface
            # through the warning channel now; the first change event also
            # carries it once, then the watchpoint reports unconditionally.
            self._warn_once(wp.error)
        self._update_armed()
        return wp

    def remove_watchpoint(self, wp_id: int) -> bool:
        removed = self.watchpoints.remove(wp_id)
        self._update_armed()
        return removed

    def _resolve_watch_path(self, name: str, instance: str | None) -> str:
        inst = instance or self.symtable.top_name()
        base = self.instance_map.get(inst, inst)
        candidates = [name, f"{base}.{name}"]
        # Source-level name: resolve through any breakpoint scope of the
        # instance (the scope tables carry the variable -> RTL mapping).
        for bp in self.symtable.all_breakpoints():
            if bp.instance_name != inst:
                continue
            rtl = self.symtable.resolve_scoped_var(bp.id, name)
            if rtl is not None:
                candidates.append(f"{base}.{rtl}")
            break
        for path in candidates:
            try:
                self.sim.get_value(path)
                return path
            except SimulatorError:
                continue
        raise DebuggerError(f"cannot resolve watch target {name!r}")

    def request_pause(self) -> None:
        """Stop at the next potential breakpoint (async 'pause' button)."""
        self._pause_requested = True
        self._armed = True

    # -- condition evaluation ---------------------------------------------------

    def _warn_once(self, message: str) -> None:
        if message not in self._warned:
            self._warned.add(message)
            self.warnings.append(message)

    def _rtl_resolver(self, instance_name: str):
        base = self.instance_map.get(instance_name, instance_name)

        def resolve(name: str) -> int:
            try:
                return self.sim.get_value(f"{base}.{name}")
            except SimulatorError as exc:
                raise expr_eval.ExprError(str(exc)) from exc

        return resolve

    def _scope_resolver(self, bp: BreakpointRec):
        """Resolve source-level names: scoped vars, generator vars, then raw
        RTL names within the instance."""
        rtl = self._rtl_resolver(bp.instance_name)

        def resolve(name: str) -> int:
            local = self.symtable.resolve_scoped_var(bp.id, name)
            if local is not None:
                return rtl(local)
            var = self.symtable.resolve_instance_var(bp.instance_id, name)
            if var is not None:
                if var.is_rtl:
                    return rtl(var.value)
                try:
                    return int(var.value, 0)
                except ValueError as exc:
                    raise expr_eval.ExprError(
                        f"generator variable {name!r} is not numeric"
                    ) from exc
            return rtl(name)

        return resolve

    # -- compiled conditions (the per-cycle fast path) ----------------------

    def _bind_path(self, path: str, env: dict) -> str:
        """Bind a full simulator path to a Python fragment: a direct value-
        table index on a live simulator (the wide overflow dict for >64-bit
        signals), a pre-resolved getter call elsewhere.  Raises ExprError
        when the signal does not exist."""
        try:
            self.sim.get_value(path)
        except SimulatorError as exc:
            raise expr_eval.ExprError(str(exc)) from exc
        if self._vector:
            idx = (
                self._signal_index.get(path)
                if self._signal_index is not None
                else None
            )
            if idx is None:
                # get_value would read world 0 only — refuse, so the group
                # compile fails loudly instead of silently mis-masking.
                raise expr_eval.ExprError(
                    f"{path!r} has no value-table index; cannot evaluate "
                    "per world"
                )
            if self._wide_signals and idx in self._wide_signals:
                env["_wcol"] = self._wide_column
                return f"_wcol({idx})"
            env["_mat"] = self._sim_matrix
            return f"_mat[{idx}].astype(object)"
        if self._sim_values is not None and self._signal_index is not None:
            idx = self._signal_index.get(path)
            if idx is not None:
                if self._sim_wide is not None and idx in self._sim_wide:
                    env["_w"] = self._sim_wide
                    return f"_w[{idx}]"
                return f"_v[{idx}]"
        key = f"_p{len(env)}"
        env[key] = path
        return f"_g({key})"

    def _wide_column(self, idx: int):
        """One >64-bit signal as an object-dtype per-world column."""
        import numpy as np

        wide, n = self._sim_wide, self._worlds
        return np.array(
            [wide[idx * n + k] for k in range(n)], dtype=object
        )

    def _rtl_binder(self, instance_name: str, env: dict):
        base = self.instance_map.get(instance_name, instance_name)

        def bind(name: str) -> str:
            return self._bind_path(f"{base}.{name}", env)

        return bind

    def _scope_binder(self, bp: BreakpointRec, env: dict):
        """Compile-time variant of :meth:`_scope_resolver`: names resolve
        once, to an index/path/constant, instead of on every evaluation."""
        rtl = self._rtl_binder(bp.instance_name, env)

        def bind(name: str) -> str:
            local = self.symtable.resolve_scoped_var(bp.id, name)
            if local is not None:
                return rtl(local)
            var = self.symtable.resolve_instance_var(bp.instance_id, name)
            if var is not None:
                if var.is_rtl:
                    return rtl(var.value)
                try:
                    return repr(int(var.value, 0))
                except ValueError as exc:
                    raise expr_eval.ExprError(
                        f"generator variable {name!r} is not numeric"
                    ) from exc
            return rtl(name)

        return bind

    def _bp_condition_source(self, bp: InsertedBreakpoint, env: dict) -> str:
        """Python source for one breakpoint's enable∧user condition, with
        the interpreter's warning semantics applied at compile time."""
        to_src = expr_eval.to_vector if self._vector else expr_eval.to_python
        parts = []
        if bp.enable_ast is not None:
            try:
                parts.append(
                    to_src(
                        bp.enable_ast,
                        self._rtl_binder(bp.rec.instance_name, env),
                    )
                )
            except expr_eval.ExprError as exc:
                self._warn_once(
                    f"enable condition {bp.rec.enable!r} unevaluable "
                    f"({exc}); treating as always-on"
                )
        if bp.condition_ast is not None:
            try:
                parts.append(
                    to_src(
                        bp.condition_ast, self._scope_binder(bp.rec, env)
                    )
                )
            except expr_eval.ExprError as exc:
                self._warn_once(
                    f"breakpoint condition {bp.condition_src!r} failed: {exc}"
                )
                return "0"
        if not parts:
            return "1"
        if self._vector and len(parts) > 1:
            return "_vb(" + " & ".join(
                f"((({p})) != 0)" for p in parts
            ) + ")"
        return "(" + ") and (".join(parts) + ")"

    def _compile_group(self, group: Group):
        """Compile a whole scheduling group into one batched evaluator
        ``fn(values) -> [passing breakpoint positions]``.  Returns False on
        failure (callers fall back to the interpreter)."""
        try:
            env: dict = dict(expr_eval.COMPILE_HELPERS)
            env["_g"] = self.sim.get_value
            if self._vector:
                env.update(expr_eval.VECTOR_HELPERS)
                worlds = self._worlds
                env["_vmask"] = (
                    lambda x: expr_eval.vector_mask(x, worlds)
                )
            conds = [
                self._bp_condition_source(bp, env) for bp in group.breakpoints
            ]
            lines = ["def _grp(_v):", "    out = []"]
            for j, src in enumerate(conds):
                if self._vector:
                    lines.append(f"    _ws{j} = _vmask({src})")
                    lines.append(
                        f"    if _ws{j} is not None: out.append(({j}, _ws{j}))"
                    )
                else:
                    lines.append(f"    if {src}: out.append({j})")
            lines.append("    return out")
            exec(compile("\n".join(lines), "<repro-group-cond>", "exec"), env)
            return env["_grp"]
        except Exception:
            return False

    def _eval_group(self, group: Group) -> list:
        """All breakpoints of a group that hit this cycle.

        Scalar backends: a list of breakpoints.  Many-worlds backends: a
        list of ``(breakpoint, world_indices)`` pairs — the exact worlds
        whose condition mask fired, restricted to still-active worlds.
        """
        bps = group.breakpoints
        if self._vector:
            if not self._compile_conditions:
                self._warn_once(
                    "many-worlds conditions require compiled conditions; "
                    "breakpoint groups are skipped"
                )
                return []
            fn = group.compiled
            if fn is None:
                fn = self._compile_group(group)
                group.compiled = fn
            if fn is False:
                self._warn_once(
                    f"breakpoint group at {group.key[0]}:{group.key[1]} "
                    "failed to compile for per-world evaluation; skipped"
                )
                return []
            self.stats_bp_evals += len(bps)
            alive = self.sim.active_worlds
            alive_set = set(alive)
            hits = []
            for j, ws in fn(self._sim_values):
                bp = bps[j]
                if len(alive) != self._worlds:
                    ws = tuple(k for k in ws if k in alive_set)
                    if not ws:
                        continue
                bp.hit_count += len(ws)
                if bp.ignore_count > 0:
                    bp.ignore_count -= 1
                    continue
                hits.append((bp, ws))
            return hits
        if not self._compile_conditions:
            return [bp for bp in bps if self._bp_hits(bp)]
        fn = group.compiled
        if fn is None:
            fn = self._compile_group(group)
            group.compiled = fn
        if fn is False:
            return [bp for bp in bps if self._bp_hits(bp)]
        self.stats_bp_evals += len(bps)
        hits = []
        for j in fn(self._sim_values):
            bp = bps[j]
            bp.hit_count += 1
            if bp.ignore_count > 0:
                bp.ignore_count -= 1
                continue
            hits.append(bp)
        return hits

    def _bp_hits(self, bp: InsertedBreakpoint) -> bool:
        self.stats_bp_evals += 1
        if bp.enable_ast is not None:
            try:
                if not expr_eval.evaluate(bp.enable_ast, self._rtl_resolver(bp.rec.instance_name)):
                    return False
            except expr_eval.ExprError as exc:
                self._warn_once(
                    f"enable condition {bp.rec.enable!r} unevaluable "
                    f"({exc}); treating as always-on"
                )
        if bp.condition_ast is not None:
            try:
                if not expr_eval.evaluate(bp.condition_ast, self._scope_resolver(bp.rec)):
                    return False
            except expr_eval.ExprError as exc:
                self._warn_once(
                    f"breakpoint condition {bp.condition_src!r} failed: {exc}"
                )
                return False
        bp.hit_count += 1
        if bp.ignore_count > 0:
            bp.ignore_count -= 1
            return False
        return True

    def evaluate(self, expr: str, bp: BreakpointRec | None = None) -> int:
        """Evaluate a user expression, in a breakpoint's scope when given
        (the debugger's ``p``/watch functionality)."""
        if bp is not None:
            return expr_eval.evaluate_str(expr, self._scope_resolver(bp))
        top = self.symtable.top_name()
        return expr_eval.evaluate_str(expr, self._rtl_resolver(top))

    # -- the Fig. 2 scheduling loop -------------------------------------------

    def _on_clock(self, sim) -> None:
        self.stats_callbacks += 1
        # Fast path: nothing to do — this is the entire overhead hgdb adds
        # per cycle when no breakpoints are active (paper Sec. 4.3).
        if not self._armed:
            return
        if self._flush is not None:
            # An earlier clock callback this cycle may have poked (lazy on
            # the fast engine); settle before reading the value table.
            self._flush()
        if len(self.watchpoints):
            self._check_watchpoints()
            if self._detached:
                return
        if self.scheduler.inserted or self._step_mode or self._pause_requested:
            self._scan_cycle()

    def _check_watchpoints(self) -> None:
        for wp, old, new in self.watchpoints.changed(self.sim):
            watch = {
                "id": wp.id,
                "label": wp.label,
                "path": wp.path,
                "old": old,
                "new": new,
            }
            if wp.fired_worlds is not None:
                # Many-worlds: old/new are the first fired world's pair;
                # the full fired set rides along.
                watch["worlds"] = list(wp.fired_worlds)
                note = getattr(self.sim, "note_mask_hit", None)
                if note is not None:
                    note(len(wp.fired_worlds))
            if wp.error is not None and not wp.error_reported:
                wp.error_reported = True
                self._warn_once(wp.error)
                watch["error"] = wp.error
            hit = HitGroup(
                time=self.sim.get_time(),
                filename="<watch>",
                line=0,
                column=0,
                watch=watch,
            )
            cmd = self.on_hit(hit)
            if self._flush is not None:
                self._flush()  # client may have poked from the handler
            kind = cmd.kind if isinstance(cmd, Command) else CommandKind(cmd)
            if kind is CommandKind.DETACH:
                self.detach()
                return
            self._step_mode = kind in (CommandKind.STEP, CommandKind.REVERSE_STEP)

    def _groups(self) -> list[Group]:
        return self.scheduler.groups(all_bps=self._step_mode)

    def _index_for(self, groups: list[Group], key, direction: int) -> int:
        """First index to scan (exclusive of ``key``) in ``direction``."""
        if direction > 0:
            for i, g in enumerate(groups):
                if g.key > key:
                    return i
            return len(groups)
        for i in range(len(groups) - 1, -1, -1):
            if groups[i].key < key:
                return i
        return -1

    def _scan_cycle(self) -> None:
        direction = 1
        groups = self._groups()
        idx = 0
        if self._pause_requested:
            self._pause_requested = False
            self._step_mode = True
            groups = self._groups()

        while True:
            hit_idx, hits = self._find_hit(groups, idx, direction)
            if hit_idx is None:
                if direction > 0:
                    return  # cycle scan complete; simulation proceeds
                # Reverse past the beginning of the cycle: previous cycle.
                if not self._reverse_time():
                    self._warn_once(
                        "cannot reverse beyond current history; stopping at "
                        "earliest available state"
                    )
                    direction = 1
                    idx = 0
                    continue
                groups = self._groups()
                idx = len(groups) - 1
                continue

            group = groups[hit_idx]
            now = self.sim.get_time()
            if self._vector:
                # hits are (breakpoint, fired-world-indices) pairs; frames
                # render world 0's view, the mask names the fired worlds.
                worlds = tuple(sorted({k for _, ws in hits for k in ws}))
                note = getattr(self.sim, "note_mask_hit", None)
                if note is not None:
                    note(len(worlds))
                hit = HitGroup(
                    time=now,
                    filename=group.key[0],
                    line=group.key[1],
                    column=group.key[2],
                    frames=[
                        self.frames.build(bp.rec, now) for bp, _ in hits
                    ],
                    worlds=worlds,
                )
            else:
                hit = HitGroup(
                    time=now,
                    filename=group.key[0],
                    line=group.key[1],
                    column=group.key[2],
                    frames=[self.frames.build(bp.rec, now) for bp in hits],
                )
            cmd = self.on_hit(hit)
            if self._flush is not None:
                self._flush()  # client may have poked from the handler
            kind = cmd.kind if isinstance(cmd, Command) else CommandKind(cmd)

            if kind is CommandKind.DETACH:
                self.detach()
                return
            self._step_mode = kind in (CommandKind.STEP, CommandKind.REVERSE_STEP)
            self._update_armed()
            direction = -1 if kind in (
                CommandKind.REVERSE_STEP, CommandKind.REVERSE_CONTINUE
            ) else 1
            groups = self._groups()
            idx = self._index_for(groups, group.key, direction)
            if direction > 0 and kind is CommandKind.CONTINUE and not self.scheduler.inserted:
                return  # nothing to continue to; resume free-running

    def _find_hit(self, groups: list[Group], idx: int, direction: int):
        """Scan groups from ``idx`` in ``direction`` for the first hit."""
        while 0 <= idx < len(groups):
            hits = self._eval_group(groups[idx])
            if hits:
                return idx, hits
            idx += direction
        return None, []

    def _reverse_time(self) -> bool:
        sim = self.sim
        if not sim.can_set_time:
            return False
        t = sim.get_time()
        if t <= 0:
            return False
        # Ask the backend's timeline for the previous *retained* cycle:
        # on a byte-bounded or evicted window the newest reachable cycle
        # may not be t-1, and jumping straight to it beats failing.
        target = t - 1
        timeline = sim.timeline
        if timeline is not None:
            target = timeline.prev_time(t)
            if target is None:
                return False
        try:
            sim.set_time(target)
        except SimulatorError:
            return False
        return True
