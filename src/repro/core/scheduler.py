"""Breakpoint storage and the Fig. 2 scheduling order.

Breakpoints are totally ordered by lexical position — "(filename, line,
column)" — and all breakpoints sharing one source location form a
*scheduling group*: the concurrent hardware threads of Fig. 4B.  The
scheduler owns insertion/removal and per-breakpoint condition evaluation;
the runtime walks groups forward (normal debugging) or backward
(intra-cycle reverse debugging, Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..symtable.query import BreakpointRec, SymbolTableInterface
from . import expr_eval


@dataclass(slots=True)
class InsertedBreakpoint:
    """A user-inserted breakpoint: symbol table record + parsed conditions.

    ``hit_count`` counts condition-passing evaluations; ``ignore_count``
    (gdb's ``ignore N``) suppresses that many hits before stopping.
    """

    rec: BreakpointRec
    enable_ast: object | None = None
    condition_ast: object | None = None
    condition_src: str | None = None
    hit_count: int = 0
    ignore_count: int = 0

    @property
    def id(self) -> int:
        return self.rec.id


GroupKey = tuple[str, int, int]


def group_key(rec: BreakpointRec) -> GroupKey:
    return (rec.filename, rec.line, rec.column)


@dataclass(slots=True)
class Group:
    """All breakpoints sharing one source location.

    ``compiled`` is the runtime's cache slot for the group's batched
    condition evaluator (None = not yet compiled, False = fall back to the
    tree-walking interpreter); it is reset whenever group membership or a
    member's conditions change.
    """

    key: GroupKey
    breakpoints: list[InsertedBreakpoint] = field(default_factory=list)
    compiled: object = None


class Scheduler:
    """Owns inserted breakpoints and produces scheduling groups.

    ``groups(all_bps=True)`` returns groups over *every* symbol table
    breakpoint (used by step/step-back, where execution pauses at each
    potential source statement); ``all_bps=False`` restricts to inserted
    breakpoints (used by continue).
    """

    def __init__(self, symtable: SymbolTableInterface):
        self.symtable = symtable
        self.inserted: dict[int, InsertedBreakpoint] = {}
        self._all_cache: list[Group] | None = None
        self._ins_cache: list[Group] | None = None

    # -- insertion -----------------------------------------------------------

    def _invalidate(self) -> None:
        # Rebuilding the inserted-group table produces fresh Group objects,
        # which also discards their compiled condition closures; the
        # all-breakpoints cache repairs itself (and resets `compiled`) in
        # _all_groups.
        self._ins_cache = None

    def insert(self, rec: BreakpointRec, condition: str | None = None) -> InsertedBreakpoint:
        enable_ast = expr_eval.parse(rec.enable) if rec.enable else None
        cond_ast = expr_eval.parse(condition) if condition else None
        bp = InsertedBreakpoint(rec, enable_ast, cond_ast, condition)
        self.inserted[rec.id] = bp
        self._invalidate()
        return bp

    def remove(self, bp_id: int) -> bool:
        removed = self.inserted.pop(bp_id, None) is not None
        if removed:
            self._invalidate()
        return removed

    def clear(self) -> None:
        self.inserted.clear()
        self._invalidate()

    def __len__(self) -> int:
        return len(self.inserted)

    # -- grouping -------------------------------------------------------------

    def groups(self, all_bps: bool = False) -> list[Group]:
        """Scheduling groups in ascending lexical order.

        Both group tables are cached between breakpoint mutations — the
        runtime calls this every armed cycle, and rebuilding/re-sorting per
        call dominated the scheduling loop.
        """
        if all_bps:
            return self._all_groups()
        if self._ins_cache is None:
            table: dict[GroupKey, Group] = {}
            for bp in self.inserted.values():
                key = group_key(bp.rec)
                table.setdefault(key, Group(key)).breakpoints.append(bp)
            self._ins_cache = [table[k] for k in sorted(table)]
        return self._ins_cache

    def _all_groups(self) -> list[Group]:
        if self._all_cache is None:
            table: dict[GroupKey, Group] = {}
            for rec in self.symtable.all_breakpoints():
                ibp = self.inserted.get(rec.id)
                if ibp is None:
                    ibp = InsertedBreakpoint(
                        rec, expr_eval.parse(rec.enable) if rec.enable else None
                    )
                key = group_key(rec)
                table.setdefault(key, Group(key)).breakpoints.append(ibp)
            self._all_cache = [table[k] for k in sorted(table)]
        else:
            # Refresh condition ASTs for breakpoints inserted since caching.
            for g in self._all_cache:
                for i, bp in enumerate(g.breakpoints):
                    live = self.inserted.get(bp.rec.id)
                    if live is not None and live is not bp:
                        g.breakpoints[i] = live
                        g.compiled = None
        return self._all_cache
