"""Watchpoints: pause when a signal's value changes.

hgdb's breakpoint emulation checks state at every clock posedge; the same
hook supports *data* breakpoints — watch a source-level variable (resolved
through the symbol table, instance mapping applied) or a raw hierarchical
signal, with an optional condition on the old/new value.

Two per-cycle costs are compiled away (the same treatment breakpoint
conditions got in ``core/runtime.py``):

* the watched path is resolved to a value-table index at ``add()`` time on
  a live simulator, so each cycle reads ``values[idx]`` instead of hashing
  a hierarchical path through ``sim.get_value``;
* conditions are exec-compiled once into ``fn(old, new) -> int`` via
  :func:`repro.core.expr_eval.to_python` instead of tree-walked per change.

A condition that fails (an unknown name, a bad runtime value) no longer
silently drops hits forever: the watchpoint is marked *errored* — the error
is surfaced once through the debugger event path — and subsequent changes
report unconditionally, gdb-style.

Reverse execution: ``WatchStore.rewound`` re-primes every watchpoint's
``last`` value against the restored state after a ``set_time`` jump
(wired from the simulator's set-time callback through the runtime), so
rewinds neither report phantom changes nor miss real ones on re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.interface import SimulatorError
from . import expr_eval


@dataclass(slots=True)
class Watchpoint:
    """One watched signal."""

    id: int
    path: str                      # full simulator hierarchical path
    label: str                     # what the user asked to watch
    condition_ast: object | None = None
    condition_src: str | None = None
    last: int | None = None
    hit_count: int = 0
    index: int | None = None       # value-table index on a live simulator
    condition_fn: object | None = None   # compiled (old, new) -> int
    error: str | None = None       # first condition failure, surfaced once
    error_reported: bool = False
    # Many-worlds backends: the world indices whose change fired on the
    # most recent report (None on scalar backends).
    fired_worlds: tuple[int, ...] | None = None


def _compile_condition(ast):
    """Compile a watch condition into ``fn(old, new) -> int``.

    Conditions may reference ``old``, ``new``, and ``value`` (an alias of
    ``new``); any other name is an :class:`~repro.core.expr_eval.ExprError`
    at compile time — the interpreter only discovered it on the first
    change.
    """

    def bind(name: str) -> str:
        if name in ("old", "new"):
            return name
        if name == "value":
            return "new"
        raise expr_eval.ExprError(f"unknown name {name!r}")

    return expr_eval.compile_fn(ast, bind, arg="old, new")


class WatchStore:
    """Owns watchpoints and detects value changes each cycle.

    ``sim`` (optional) enables the compiled fast path: on a live simulator
    watch paths resolve to value-table indices once, at :meth:`add` time,
    and per-cycle reads bind the value store's raw buffers (the narrow
    64-bit lanes, or the wide overflow dict for >64-bit signals).
    Backends without a value store (trace replay) fall back to per-cycle
    ``get_value`` lookups.
    """

    def __init__(self, sim=None):
        self._watch: dict[int, Watchpoint] = {}
        self._next_id = 1
        store = getattr(sim, "store", None)
        self._values = store.narrow if store is not None else None
        self._wide = store.wide if store is not None else None
        design = getattr(sim, "design", None)
        self._signal_index = getattr(design, "signal_index", None)
        # Many-worlds backend: reads return per-world tuples and changes
        # report the exact set of worlds that fired.
        self._matrix = getattr(store, "matrix", None)
        self._wide_signals = getattr(store, "wide_signals", None)
        self._worlds = getattr(sim, "worlds", None)

    def add(self, path: str, label: str, condition: str | None = None) -> Watchpoint:
        wp = Watchpoint(self._next_id, path, label)
        if condition:
            wp.condition_src = condition
            wp.condition_ast = expr_eval.parse(condition)  # parse errors raise
            try:
                wp.condition_fn = _compile_condition(wp.condition_ast)
            except expr_eval.ExprError as exc:
                wp.error = (
                    f"watchpoint condition {condition!r} failed: {exc}"
                )
        if self._signal_index is not None:
            wp.index = self._signal_index.get(path)
        self._watch[wp.id] = wp
        self._next_id += 1
        return wp

    def remove(self, wp_id: int) -> bool:
        return self._watch.pop(wp_id, None) is not None

    def clear(self) -> None:
        self._watch.clear()

    def __len__(self) -> int:
        return len(self._watch)

    def __iter__(self):
        return iter(self._watch.values())

    def _read(self, sim, wp: Watchpoint):
        if wp.index is not None and self._matrix is not None:
            idx, n = wp.index, self._worlds
            if self._wide_signals and idx in self._wide_signals:
                wide = self._wide
                return tuple(wide[idx * n + k] for k in range(n))
            return tuple(int(x) for x in self._matrix[idx])
        if wp.index is not None and self._values is not None:
            if self._wide and wp.index in self._wide:
                return self._wide[wp.index]
            return self._values[wp.index]
        return sim.get_value(wp.path)

    def changed(self, sim) -> list[tuple[Watchpoint, int, int]]:
        """(watchpoint, old, new) for every watched signal that changed.

        The first observation primes ``last`` without reporting a change.
        A condition failure marks the watchpoint errored (reported once by
        the runtime) and the change is still delivered; later changes on an
        errored watchpoint report unconditionally.
        """
        out: list[tuple[Watchpoint, int, int]] = []
        for wp in self._watch.values():
            value = self._read(sim, wp)
            last = wp.last
            if last is None:
                wp.last = value
                continue
            if isinstance(value, tuple):
                # Many-worlds: per-world compare, restricted to worlds
                # still running (a finished world's column drifts).
                hit = self._changed_worlds(sim, wp, last, value)
                if hit is not None:
                    out.append(hit)
                continue
            if value != last:
                wp.last = value
                if wp.condition_fn is not None and wp.error is None:
                    try:
                        if not wp.condition_fn(last, value):
                            continue
                    except (expr_eval.ExprError, ValueError, OverflowError) as exc:
                        wp.error = (
                            f"watchpoint condition {wp.condition_src!r} "
                            f"failed: {exc}"
                        )
                wp.hit_count += 1
                out.append((wp, last, value))
        return out

    def _changed_worlds(self, sim, wp: Watchpoint, last, value):
        """Many-worlds change detection: returns ``(wp, old, new)`` for
        the first fired world (mask in ``wp.fired_worlds``) or None."""
        wp.last = value
        alive = getattr(sim, "active_worlds", None)
        candidates = alive if alive is not None else range(len(value))
        fired = [k for k in candidates if value[k] != last[k]]
        if fired and wp.condition_fn is not None and wp.error is None:
            passing = []
            for k in fired:
                try:
                    if wp.condition_fn(last[k], value[k]):
                        passing.append(k)
                except (expr_eval.ExprError, ValueError, OverflowError) as exc:
                    wp.error = (
                        f"watchpoint condition {wp.condition_src!r} "
                        f"failed: {exc}"
                    )
                    break
            if wp.error is None:
                fired = passing
        if not fired:
            return None
        wp.fired_worlds = tuple(fired)
        wp.hit_count += len(fired)
        return (wp, last[fired[0]], value[fired[0]])

    def rewound(self, sim) -> None:
        """Re-prime every ``last`` value after a time jump.

        Called (via the runtime's set-time callback) once the backend has
        restored state: comparing the restored value against a pre-jump
        ``last`` would report a phantom change — or mask a real one on
        re-execution.
        """
        for wp in self._watch.values():
            try:
                wp.last = self._read(sim, wp)
            except SimulatorError:
                wp.last = None
