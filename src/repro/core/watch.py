"""Watchpoints: pause when a signal's value changes.

hgdb's breakpoint emulation checks state at every clock posedge; the same
hook supports *data* breakpoints — watch a source-level variable (resolved
through the symbol table, instance mapping applied) or a raw hierarchical
signal, with an optional condition on the new value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import expr_eval


@dataclass(slots=True)
class Watchpoint:
    """One watched signal."""

    id: int
    path: str                      # full simulator hierarchical path
    label: str                     # what the user asked to watch
    condition_ast: object | None = None
    condition_src: str | None = None
    last: int | None = None
    hit_count: int = 0


class WatchStore:
    """Owns watchpoints and detects value changes each cycle."""

    def __init__(self):
        self._watch: dict[int, Watchpoint] = {}
        self._next_id = 1

    def add(self, path: str, label: str, condition: str | None = None) -> Watchpoint:
        wp = Watchpoint(
            self._next_id,
            path,
            label,
            expr_eval.parse(condition) if condition else None,
            condition,
        )
        self._watch[wp.id] = wp
        self._next_id += 1
        return wp

    def remove(self, wp_id: int) -> bool:
        return self._watch.pop(wp_id, None) is not None

    def clear(self) -> None:
        self._watch.clear()

    def __len__(self) -> int:
        return len(self._watch)

    def __iter__(self):
        return iter(self._watch.values())

    def changed(self, sim) -> list[tuple[Watchpoint, int, int]]:
        """(watchpoint, old, new) for every watched signal that changed.

        The first observation primes ``last`` without reporting a change.
        """
        out: list[tuple[Watchpoint, int, int]] = []
        for wp in self._watch.values():
            value = sim.get_value(wp.path)
            if wp.last is None:
                wp.last = value
                continue
            if value != wp.last:
                old, wp.last = wp.last, value
                if wp.condition_ast is not None:
                    env = {"old": old, "new": value, "value": value}

                    def resolve(name, env=env):
                        if name in env:
                            return env[name]
                        raise expr_eval.ExprError(f"unknown name {name!r}")

                    try:
                        if not expr_eval.evaluate(wp.condition_ast, resolve):
                            continue
                    except expr_eval.ExprError:
                        continue
                wp.hit_count += 1
                out.append((wp, old, value))
        return out
