"""A C-like expression language for breakpoint conditions.

hgdb evaluates two kinds of conditions at a potential breakpoint (paper
Sec. 3.2 step 2): the SSA-derived *enable condition* stored in the symbol
table, and an optional *user condition* attached when inserting the
breakpoint (Fig. 4D "conditional breakpoints").  Both are expressions over
signal/variable names; this module parses and evaluates them.

Grammar (C precedence): ternary ``?:``, ``||``, ``&&``, ``|``, ``^``, ``&``,
equality, relational, shifts, additive, multiplicative, unary ``! ~ -``.
Names may be hierarchical (``io.a``, ``vec[3]``, ``a.b[2].c``); literals may
be decimal, hex (``0x``), or binary (``0b``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

try:
    import numpy as _np
except ImportError:  # pragma: no cover - vector conditions need numpy
    _np = None


class ExprError(Exception):
    """Raised on parse errors or unresolvable names."""


_TOKEN_RE = re.compile(
    r"""
    (?P<name>[A-Za-z_$][A-Za-z0-9_$]*(?:(?:\.[A-Za-z_$][A-Za-z0-9_$]*)|(?:\[\d+\]))*)
  | (?P<num>0[xX][0-9a-fA-F_]+|0[bB][01_]+|\d+)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>()?:])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    out: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ExprError(f"bad character {text[pos]!r} in expression {text!r}")
        pos = m.end()
        if m.lastgroup != "ws":
            out.append(m.group(0))
    return out


@dataclass(frozen=True, slots=True)
class Name:
    name: str


@dataclass(frozen=True, slots=True)
class Num:
    value: int


@dataclass(frozen=True, slots=True)
class Unary:
    op: str
    operand: object


@dataclass(frozen=True, slots=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True, slots=True)
class Ternary:
    cond: object
    then: object
    other: object


_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: list[str], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExprError(f"unexpected end of expression: {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ExprError(f"expected {tok!r}, got {got!r} in {self.source!r}")

    def parse(self):
        node = self.ternary()
        if self.peek() is not None:
            raise ExprError(f"trailing tokens in {self.source!r}")
        return node

    def ternary(self):
        cond = self.binary(0)
        if self.peek() == "?":
            self.next()
            then = self.ternary()
            self.expect(":")
            other = self.ternary()
            return Ternary(cond, then, other)
        return cond

    def binary(self, level: int):
        if level >= len(_BINARY_LEVELS):
            return self.unary()
        node = self.binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.peek() in ops:
            op = self.next()
            rhs = self.binary(level + 1)
            node = Binary(op, node, rhs)
        return node

    def unary(self):
        tok = self.peek()
        if tok in ("!", "~", "-", "+"):
            self.next()
            return Unary(tok, self.unary())
        return self.primary()

    def primary(self):
        tok = self.next()
        if tok == "(":
            node = self.ternary()
            self.expect(")")
            return node
        if re.fullmatch(r"0[xX][0-9a-fA-F_]+", tok):
            return Num(int(tok.replace("_", ""), 16))
        if re.fullmatch(r"0[bB][01_]+", tok):
            return Num(int(tok.replace("_", ""), 2))
        if tok.isdigit():
            return Num(int(tok))
        if re.fullmatch(r"[A-Za-z_$].*", tok):
            return Name(tok)
        raise ExprError(f"unexpected token {tok!r} in {self.source!r}")


def parse(text: str):
    """Parse an expression into its AST."""
    return _Parser(tokenize(text), text).parse()


def names_in(node) -> set[str]:
    """All names an expression references."""
    if isinstance(node, Name):
        return {node.name}
    if isinstance(node, Unary):
        return names_in(node.operand)
    if isinstance(node, Binary):
        return names_in(node.left) | names_in(node.right)
    if isinstance(node, Ternary):
        return names_in(node.cond) | names_in(node.then) | names_in(node.other)
    return set()


def evaluate(node, resolve) -> int:
    """Evaluate an AST.  ``resolve(name) -> int`` supplies variable values
    (raise :class:`ExprError` for unknown names)."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Name):
        return resolve(node.name)
    if isinstance(node, Unary):
        v = evaluate(node.operand, resolve)
        if node.op == "!":
            return int(v == 0)
        if node.op == "~":
            return ~v
        if node.op == "-":
            return -v
        return v
    if isinstance(node, Binary):
        a = evaluate(node.left, resolve)
        if node.op == "||":
            return int(bool(a) or bool(evaluate(node.right, resolve)))
        if node.op == "&&":
            return int(bool(a) and bool(evaluate(node.right, resolve)))
        b = evaluate(node.right, resolve)
        if node.op == "|":
            return a | b
        if node.op == "^":
            return a ^ b
        if node.op == "&":
            return a & b
        if node.op == "==":
            return int(a == b)
        if node.op == "!=":
            return int(a != b)
        if node.op == "<":
            return int(a < b)
        if node.op == "<=":
            return int(a <= b)
        if node.op == ">":
            return int(a > b)
        if node.op == ">=":
            return int(a >= b)
        if node.op == "<<":
            return a << min(b, 256)
        if node.op == ">>":
            return a >> min(b, 256)
        if node.op == "+":
            return a + b
        if node.op == "-":
            return a - b
        if node.op == "*":
            return a * b
        if node.op == "/":
            return a // b if b else 0
        if node.op == "%":
            return a % b if b else 0
        raise ExprError(f"unknown operator {node.op!r}")
    if isinstance(node, Ternary):
        return (
            evaluate(node.then, resolve)
            if evaluate(node.cond, resolve)
            else evaluate(node.other, resolve)
        )
    raise ExprError(f"cannot evaluate {node!r}")


def evaluate_str(text: str, resolve) -> int:
    """Parse and evaluate in one call."""
    return evaluate(parse(text), resolve)


# -- compilation to Python -------------------------------------------------
#
# Tree-walking `evaluate` resolves every name through a callback on every
# call — fine for one-shot `p expr`, too slow for per-cycle breakpoint
# conditions.  `to_python` translates an AST into Python expression source
# with names bound by the caller (typically to a pre-resolved signal index),
# and `compile_fn` exec-compiles that into a single closure.  The generated
# code must agree with `evaluate` bit-for-bit — including short-circuiting,
# shift clamping, and division-by-zero semantics; property tests enforce it.


def _ee_div(a: int, b: int) -> int:
    return a // b if b else 0


def _ee_mod(a: int, b: int) -> int:
    return a % b if b else 0


COMPILE_HELPERS = {"_ee_div": _ee_div, "_ee_mod": _ee_mod, "min": min}

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_DIRECT_OPS = ("|", "^", "&", "+", "-", "*")


def to_python(node, bind) -> str:
    """Translate an AST into Python expression source.

    ``bind(name) -> str`` supplies the Python expression for a variable
    reference (raise :class:`ExprError` for unresolvable names).  The
    emitted source references the :data:`COMPILE_HELPERS` names.
    """
    if isinstance(node, Num):
        return repr(node.value)
    if isinstance(node, Name):
        return bind(node.name)
    if isinstance(node, Unary):
        v = to_python(node.operand, bind)
        if node.op == "!":
            return f"(1 if ({v}) == 0 else 0)"
        if node.op == "~":
            return f"(~({v}))"
        if node.op == "-":
            return f"(-({v}))"
        return f"({v})"
    if isinstance(node, Binary):
        op = node.op
        a = to_python(node.left, bind)
        b = to_python(node.right, bind)
        if op == "||":
            return f"(1 if ({a}) or ({b}) else 0)"
        if op == "&&":
            return f"(1 if ({a}) and ({b}) else 0)"
        if op in _DIRECT_OPS:
            return f"(({a}) {op} ({b}))"
        if op in _CMP_OPS:
            return f"(1 if ({a}) {op} ({b}) else 0)"
        if op == "<<":
            return f"(({a}) << min(({b}), 256))"
        if op == ">>":
            return f"(({a}) >> min(({b}), 256))"
        if op == "/":
            return f"_ee_div(({a}), ({b}))"
        if op == "%":
            return f"_ee_mod(({a}), ({b}))"
        raise ExprError(f"unknown operator {op!r}")
    if isinstance(node, Ternary):
        return (
            f"(({to_python(node.then, bind)}) if ({to_python(node.cond, bind)})"
            f" else ({to_python(node.other, bind)}))"
        )
    raise ExprError(f"cannot compile {node!r}")


def compile_fn(node, bind, env: dict | None = None, arg: str = "_v"):
    """Compile an AST into a single closure ``fn(arg) -> int``.

    ``bind`` is as in :func:`to_python`; ``env`` supplies extra names the
    bound fragments reference (e.g. a value getter).
    """
    src = to_python(node, bind)
    ns = dict(COMPILE_HELPERS)
    if env:
        ns.update(env)
    code = f"def _compiled({arg}):\n    return {src}"
    exec(compile(code, "<repro-expr>", "exec"), ns)
    return ns["_compiled"]


# -- vectorized compilation (many-worlds conditions) ------------------------
#
# Against a ManyWorldsSimulator a condition evaluates over the whole
# scenario axis at once: names bind to per-world *columns* and the result is
# a mask.  Columns are object-dtype arrays of plain Python ints, so every
# element-wise operation runs the exact unbounded-int arithmetic `evaluate`
# uses — bit-for-bit, per world, including >64-bit values.  Comparison
# results are normalized back to object arrays of Python bools (ints), so
# `~`/arithmetic on them keep Python semantics instead of numpy's logical
# ones.


def _vb(x):
    """Normalize a comparison result: object array in, scalar 0/1 out."""
    if isinstance(x, _np.ndarray):
        return x.astype(object)
    return int(bool(x))


def _vpair(f):
    """Element-wise binary helper: Python semantics per world."""
    uf = _np.frompyfunc(f, 2, 1) if _np is not None else None

    def g(a, b):
        if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
            return uf(a, b)
        return f(a, b)

    return g


_vshl = _vpair(lambda a, b: a << min(b, 256))
_vshr = _vpair(lambda a, b: a >> min(b, 256))
_vdiv = _vpair(_ee_div)
_vmod = _vpair(_ee_mod)


def _vwhere(c, t, f):
    if not isinstance(c, _np.ndarray):
        return t if c else f
    if not isinstance(t, _np.ndarray):
        t = _np.full(c.shape, t, dtype=object)
    if not isinstance(f, _np.ndarray):
        f = _np.full(c.shape, f, dtype=object)
    return _np.where(c != 0, t, f)


VECTOR_HELPERS = {
    "_vb": _vb,
    "_vshl": _vshl,
    "_vshr": _vshr,
    "_vdiv": _vdiv,
    "_vmod": _vmod,
    "_vwhere": _vwhere,
}


def vector_mask(x, worlds: int) -> tuple[int, ...] | None:
    """Collapse a condition result to the tuple of world indices where it
    holds, or None when it holds nowhere.  Scalars (conditions that never
    touched a signal) apply to every world or none."""
    if isinstance(x, _np.ndarray):
        ks = _np.flatnonzero(x != 0)
        return tuple(int(k) for k in ks) if len(ks) else None
    return tuple(range(worlds)) if x else None


def to_vector(node, bind) -> str:
    """Translate an AST into per-world (column-wise) Python source.

    Like :func:`to_python`, but the emitted source evaluates over whole
    scenario columns: ``bind(name)`` supplies a fragment yielding an
    object-dtype column (or a scalar for constants) and the result is a
    column / scalar usable with :func:`vector_mask`.  The emitted source
    references :data:`VECTOR_HELPERS` in addition to the names ``bind``
    introduces.  Short-circuiting is dropped (all operators here are total
    and pure), everything else matches `evaluate` per world.
    """
    if isinstance(node, Num):
        return repr(node.value)
    if isinstance(node, Name):
        return bind(node.name)
    if isinstance(node, Unary):
        v = to_vector(node.operand, bind)
        if node.op == "!":
            return f"_vb(({v}) == 0)"
        if node.op == "~":
            return f"(~({v}))"
        if node.op == "-":
            return f"(-({v}))"
        return f"({v})"
    if isinstance(node, Binary):
        op = node.op
        a = to_vector(node.left, bind)
        b = to_vector(node.right, bind)
        if op == "||":
            return f"_vb(((({a})) != 0) | ((({b})) != 0))"
        if op == "&&":
            return f"_vb(((({a})) != 0) & ((({b})) != 0))"
        if op in _DIRECT_OPS:
            return f"(({a}) {op} ({b}))"
        if op in _CMP_OPS:
            return f"_vb(({a}) {op} ({b}))"
        if op == "<<":
            return f"_vshl(({a}), ({b}))"
        if op == ">>":
            return f"_vshr(({a}), ({b}))"
        if op == "/":
            return f"_vdiv(({a}), ({b}))"
        if op == "%":
            return f"_vmod(({a}), ({b}))"
        raise ExprError(f"unknown operator {op!r}")
    if isinstance(node, Ternary):
        return (
            f"_vwhere(({to_vector(node.cond, bind)}),"
            f" ({to_vector(node.then, bind)}),"
            f" ({to_vector(node.other, bind)}))"
        )
    raise ExprError(f"cannot compile {node!r}")
