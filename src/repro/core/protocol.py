"""The hgdb debugging protocol (paper Sec. 3.5).

Debugger tools communicate with the runtime over an RPC protocol "similar
to gdb remote protocol".  Ours is JSON-lines over TCP (the original uses
WebSockets; see DESIGN.md substitutions — the protocol *content* is what
matters):

Requests (client -> runtime)::

    {"id": 1, "type": "request", "command": "add_breakpoint",
     "args": {"filename": "fpu.py", "line": 42, "condition": "io.a > 3"}}

Responses mirror the id; events are unsolicited::

    {"type": "event", "event": "stopped", "payload": {...hit group...}}

Control commands (``continue``/``step``/``reverse_step``/
``reverse_continue``/``detach``) are only legal while stopped at a
breakpoint; query commands (``evaluate``, ``info``, breakpoint management)
are legal at any time.
"""

from __future__ import annotations

import contextlib
import json
import queue
import socket
import socketserver
import threading

from .runtime import (
    Command,
    CommandKind,
    DebuggerError,
    HitGroup,
    Runtime,
)

_CONTROL = {
    "continue": CommandKind.CONTINUE,
    "step": CommandKind.STEP,
    "reverse_step": CommandKind.REVERSE_STEP,
    "reverse_continue": CommandKind.REVERSE_CONTINUE,
    "detach": CommandKind.DETACH,
}


def hit_to_payload(hit: HitGroup) -> dict:
    return {
        "time": hit.time,
        "filename": hit.filename,
        "line": hit.line,
        "column": hit.column,
        "frames": [f.to_dict() for f in hit.frames],
    }


class DebugServer:
    """Serves one debugger client over TCP; bridges to a :class:`Runtime`.

    The embedding application still owns the simulation loop; when a
    breakpoint hits, the runtime blocks inside the clock callback while this
    server relays the stop event and waits for the client's next control
    command — the same control flow as a blocking VPI callback.
    """

    def __init__(self, runtime: Runtime, host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        runtime.on_hit = self._on_hit
        self._cmd_queue: queue.Queue[Command] = queue.Queue()
        self._paused = threading.Event()
        self._shutdown = False
        self._client_files: list = []
        self._lock = threading.Lock()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                with outer._lock:
                    outer._client_files.append(self.wfile)
                outer._send(
                    self.wfile,
                    {
                        "type": "event",
                        "event": "welcome",
                        "payload": {
                            "top": outer.runtime.symtable.top_name(),
                            "files": outer.runtime.symtable.filenames(),
                            "can_set_time": outer.runtime.sim.can_set_time,
                            "is_replay": outer.runtime.sim.is_replay,
                        },
                    },
                )
                try:
                    for line in self.rfile:
                        outer._handle_request(self.wfile, line)
                finally:
                    with outer._lock:
                        if self.wfile in outer._client_files:
                            outer._client_files.remove(self.wfile)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.address = self._server.server_address
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._shutdown = True
        if self._paused.is_set():
            self._cmd_queue.put(Command(CommandKind.DETACH))
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    @property
    def paused(self) -> bool:
        return self._paused.is_set()

    # -- runtime side ----------------------------------------------------------

    def _on_hit(self, hit: HitGroup) -> Command:
        # Order matters: a fast client may send its control command the
        # instant it sees the stopped event, so `paused` must be set first.
        self._paused.set()
        self._broadcast({"type": "event", "event": "stopped", "payload": hit_to_payload(hit)})
        try:
            while True:
                try:
                    cmd = self._cmd_queue.get(timeout=1.0)
                    break
                except queue.Empty:
                    if self._shutdown:
                        cmd = Command(CommandKind.DETACH)
                        break
        finally:
            self._paused.clear()
        self._broadcast({"type": "event", "event": "resumed", "payload": {}})
        return cmd

    def _broadcast(self, msg: dict) -> None:
        with self._lock:
            files = list(self._client_files)
        for f in files:
            with contextlib.suppress(OSError):
                self._send(f, msg)

    @staticmethod
    def _send(f, msg: dict) -> None:
        f.write(json.dumps(msg).encode() + b"\n")
        f.flush()

    # -- request handling -----------------------------------------------------------

    def _handle_request(self, wfile, line: bytes) -> None:
        try:
            req = json.loads(line)
            result = self._dispatch(req.get("command"), req.get("args") or {})
            resp = {"id": req.get("id"), "type": "response", "ok": True, "result": result}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            resp = {
                "id": req.get("id") if isinstance(req, dict) else None,
                "type": "response",
                "ok": False,
                "error": str(exc),
            }
        self._send(wfile, resp)

    def _dispatch(self, command: str, args: dict):
        rt = self.runtime
        if command in _CONTROL:
            if not self._paused.is_set():
                raise DebuggerError(f"{command!r} only valid while stopped")
            self._cmd_queue.put(Command(_CONTROL[command]))
            return {"queued": True}
        if command == "pause":
            rt.request_pause()
            return {"requested": True}
        if command == "add_breakpoint":
            bps = rt.add_breakpoint(
                args["filename"],
                int(args["line"]),
                args.get("column"),
                args.get("condition"),
            )
            return {
                "breakpoints": [
                    {
                        "id": bp.rec.id,
                        "instance": bp.rec.instance_name,
                        "filename": bp.rec.filename,
                        "line": bp.rec.line,
                        "enable": bp.rec.enable_src or bp.rec.enable,
                    }
                    for bp in bps
                ]
            }
        if command == "remove_breakpoint":
            return {"removed": rt.remove_breakpoint(int(args["id"]))}
        if command == "clear_breakpoints":
            rt.clear_breakpoints()
            return {}
        if command == "list_breakpoints":
            return {
                "breakpoints": [
                    {
                        "id": bp.rec.id,
                        "filename": bp.rec.filename,
                        "line": bp.rec.line,
                        "instance": bp.rec.instance_name,
                        "condition": bp.condition_src,
                    }
                    for bp in rt.list_breakpoints()
                ]
            }
        if command == "evaluate":
            bp = None
            if args.get("breakpoint_id") is not None:
                bp = rt.symtable.breakpoint(int(args["breakpoint_id"]))
            return {"value": rt.evaluate(args["expr"], bp)}
        if command == "set_value":
            rt.sim.set_value(args["path"], int(args["value"]))
            return {}
        if command == "info":
            what = args.get("what", "time")
            if what == "time":
                return {"time": rt.sim.get_time()}
            if what == "files":
                return {"files": rt.symtable.filenames()}
            if what == "lines":
                return {"lines": rt.symtable.breakpoint_lines(args["filename"])}
            if what == "warnings":
                return {"warnings": rt.warnings}
            raise DebuggerError(f"unknown info {what!r}")
        raise DebuggerError(f"unknown command {command!r}")


class DebugClient:
    """Client side of the debugging protocol.

    Events arrive on a reader thread and are queued; ``wait_stopped()``
    blocks until the next ``stopped`` event.  Request methods are
    synchronous.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._timeout = timeout
        self._file = self._sock.makefile("rwb")
        self._events: queue.Queue[dict] = queue.Queue()
        self._responses: dict[int, dict] = {}
        self._resp_cond = threading.Condition()
        self._next_id = 1
        self._closed = False
        self.welcome: dict | None = None
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        # The server greets immediately.
        evt = self.wait_event("welcome", timeout=timeout)
        self.welcome = evt["payload"]

    def _read_loop(self) -> None:
        with contextlib.suppress(OSError, ValueError):
            for line in self._file:
                msg = json.loads(line)
                if msg.get("type") == "response":
                    with self._resp_cond:
                        self._responses[msg.get("id")] = msg
                        self._resp_cond.notify_all()
                else:
                    self._events.put(msg)
        self._closed = True
        with self._resp_cond:
            self._resp_cond.notify_all()

    def request(self, command: str, **args):
        req_id = self._next_id
        self._next_id += 1
        msg = {"id": req_id, "type": "request", "command": command, "args": args}
        self._file.write(json.dumps(msg).encode() + b"\n")
        self._file.flush()
        import time as _time

        deadline = _time.monotonic() + self._timeout
        with self._resp_cond:
            while req_id not in self._responses and not self._closed:
                if _time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no response to {command!r} within {self._timeout}s"
                    )
                self._resp_cond.wait(timeout=0.1)
            resp = self._responses.pop(req_id, None)
        if resp is None:
            raise ConnectionError("debug server closed the connection")
        if not resp.get("ok"):
            raise DebuggerError(resp.get("error", "unknown error"))
        return resp.get("result")

    def wait_event(self, event: str, timeout: float = 30.0) -> dict:
        """Block until a specific event arrives (other events are dropped)."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"no {event!r} event within {timeout}s")
            msg = self._events.get(timeout=remaining)
            if msg.get("event") == event:
                return msg

    # -- sugar ------------------------------------------------------------

    def add_breakpoint(self, filename: str, line: int, condition: str | None = None):
        return self.request(
            "add_breakpoint", filename=filename, line=line, condition=condition
        )

    def cont(self):
        return self.request("continue")

    def step(self):
        return self.request("step")

    def reverse_step(self):
        return self.request("reverse_step")

    def reverse_continue(self):
        return self.request("reverse_continue")

    def evaluate(self, expr: str, breakpoint_id: int | None = None) -> int:
        return self.request("evaluate", expr=expr, breakpoint_id=breakpoint_id)["value"]

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._file.close()
            self._sock.close()
