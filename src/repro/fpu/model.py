"""Golden functional model for IEEE-754 single-precision comparison.

Plays the role of RocketChip's functional model in the paper's case study:
"the FPU output mismatches with the functional model" (Sec. 4.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Exception flag bit positions (RISC-V fflags order: NV DZ OF UF NX).
FLAG_NV = 1 << 4  # invalid operation
FLAG_DZ = 1 << 3
FLAG_OF = 1 << 2
FLAG_UF = 1 << 1
FLAG_NX = 1 << 0

#: Compare rounding-mode encodings used by the wrapper (paper's rm field):
RM_FLE = 0
RM_FLT = 1
RM_FEQ = 2


def float_to_bits(x: float) -> int:
    """IEEE-754 single bits of a Python float (round-to-nearest)."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def bits_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def is_nan(bits: int) -> bool:
    exp = (bits >> 23) & 0xFF
    mant = bits & 0x7FFFFF
    return exp == 0xFF and mant != 0


def is_signaling_nan(bits: int) -> bool:
    """sNaN: NaN with the quiet bit (mantissa MSB) clear."""
    return is_nan(bits) and not (bits & (1 << 22))


QNAN = 0x7FC00000      #: canonical quiet NaN
SNAN = 0x7F800001      #: a signaling NaN


@dataclass(frozen=True, slots=True)
class CmpResult:
    lt: int
    eq: int
    gt: int
    flags: int


def fcmp(a_bits: int, b_bits: int, signaling: bool) -> CmpResult:
    """Compare two floats given as raw bits.

    ``signaling`` selects the signaling comparison (used by flt/fle): any
    NaN operand raises invalid.  The quiet comparison (feq) raises invalid
    only for signaling NaNs.
    """
    a_bits &= 0xFFFFFFFF
    b_bits &= 0xFFFFFFFF
    nan = is_nan(a_bits) or is_nan(b_bits)
    snan = is_signaling_nan(a_bits) or is_signaling_nan(b_bits)
    flags = 0
    if nan:
        if signaling or snan:
            flags |= FLAG_NV
        return CmpResult(0, 0, 0, flags)

    # Interpret as sign-magnitude integers; +0 == -0.
    def key(bits: int) -> int:
        mag = bits & 0x7FFFFFFF
        return -mag if bits >> 31 else mag

    ka, kb = key(a_bits), key(b_bits)
    return CmpResult(int(ka < kb), int(ka == kb), int(ka > kb), flags)


def compare_op(a_bits: int, b_bits: int, rm: int) -> tuple[int, int]:
    """The wrapper-level operation: (result bit, exception flags) for
    fle/flt/feq selected by ``rm`` — matching IEEE/RISC-V semantics."""
    signaling = rm in (RM_FLE, RM_FLT)
    r = fcmp(a_bits, b_bits, signaling)
    if rm == RM_FLE:
        return (r.lt | r.eq, r.flags)
    if rm == RM_FLT:
        return (r.lt, r.flags)
    if rm == RM_FEQ:
        return (r.eq, r.flags)
    raise ValueError(f"bad compare rm {rm}")
