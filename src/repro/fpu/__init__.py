"""repro.fpu — the FPU comparison unit of the paper's case study.

``FpuCmp(buggy=True)`` contains the seeded ``signaling`` bug of paper
Listing 3; ``repro.fpu.model`` is the golden functional model the RTL is
checked against.  See ``examples/fpu_bug_hunt.py`` for the full debugging
walkthrough.
"""

from .fcmp import FCmp, FpuCmp
from .model import (
    FLAG_NV,
    QNAN,
    RM_FEQ,
    RM_FLE,
    RM_FLT,
    SNAN,
    CmpResult,
    bits_to_float,
    compare_op,
    fcmp,
    float_to_bits,
    is_nan,
    is_signaling_nan,
)

__all__ = [
    "CmpResult",
    "FCmp",
    "FLAG_NV",
    "FpuCmp",
    "QNAN",
    "RM_FEQ",
    "RM_FLE",
    "RM_FLT",
    "SNAN",
    "bits_to_float",
    "compare_op",
    "fcmp",
    "float_to_bits",
    "is_nan",
    "is_signaling_nan",
]
