"""The FPU comparison hardware of the paper's case study (Listing 3).

``FCmp`` is the ``dcmp`` unit: it compares two IEEE-754 singles and reports
lt/eq/gt plus exception flags, honoring the ``signaling`` input.  ``FpuCmp``
is the surrounding unit with the ``when (in.wflags)`` block of Listing 3;
``buggy=True`` seeds the paper's bug — ``dcmp.io.signaling := Bool(true)``
— which raises spurious invalid-operation flags for quiet (feq) compares
of quiet NaNs.

The IO of ``FCmp`` is a single Bundle port so the debugger demonstrates
structured-variable reconstruction from flattened RTL (Sec. 4.2).
"""

from __future__ import annotations

from .. import hgf


class FCmp(hgf.Module):
    """Recoded-float comparator: the ``dcmp`` instance of Listing 3."""

    def __init__(self):
        super().__init__()
        self.io = self.input(
            "io",
            typ=hgf.Bundle(
                a=hgf.UInt(32),
                b=hgf.UInt(32),
                signaling=hgf.UInt(1),
                lt=hgf.Flip(hgf.UInt(1)),
                eq=hgf.Flip(hgf.UInt(1)),
                gt=hgf.Flip(hgf.UInt(1)),
                exceptionFlags=hgf.Flip(hgf.UInt(5)),
            ),
        )
        io = self.io

        a_exp = self.node("a_exp", io.a[30:23])
        a_mant = self.node("a_mant", io.a[22:0])
        b_exp = self.node("b_exp", io.b[30:23])
        b_mant = self.node("b_mant", io.b[22:0])

        a_nan = self.node("a_nan", (a_exp == 0xFF) & (a_mant != 0))
        b_nan = self.node("b_nan", (b_exp == 0xFF) & (b_mant != 0))
        a_snan = self.node("a_snan", a_nan & ~io.a[22])
        b_snan = self.node("b_snan", b_nan & ~io.b[22])
        any_nan = self.node("any_nan", a_nan | b_nan)
        any_snan = self.node("any_snan", a_snan | b_snan)

        # Sign-magnitude ordering with +0 == -0.
        a_sign = self.node("a_sign", io.a[31])
        b_sign = self.node("b_sign", io.b[31])
        a_mag = self.node("a_mag", io.a[30:0])
        b_mag = self.node("b_mag", io.b[30:0])
        both_zero = self.node("both_zero", (a_mag == 0) & (b_mag == 0))

        ordered_eq = self.node(
            "ordered_eq", both_zero | ((io.a == io.b) & ~any_nan)
        )
        mag_lt = self.node("mag_lt", a_mag < b_mag)
        mag_gt = self.node("mag_gt", a_mag > b_mag)
        lt_same_sign = self.node(
            "lt_same_sign", hgf.mux(a_sign == 1, mag_gt, mag_lt)
        )
        lt_diff_sign = self.node("lt_diff_sign", (a_sign == 1) & ~both_zero)
        ordered_lt = self.node(
            "ordered_lt",
            ~ordered_eq & hgf.mux(a_sign == b_sign, lt_same_sign, lt_diff_sign),
        )

        io.lt <<= ~any_nan & ordered_lt
        io.eq <<= ~any_nan & ordered_eq
        io.gt <<= ~any_nan & ~ordered_lt & ~ordered_eq

        # Invalid (NV) is flags bit 4; the signaling input decides whether a
        # quiet NaN also signals.
        invalid = self.node(
            "invalid", (any_nan & io.signaling) | any_snan
        )
        io.exceptionFlags <<= invalid.pad(5) << 4


class FpuCmp(hgf.Module):
    """The unit containing Listing 3's logic.

    Inputs mirror the listing: ``in1``/``in2`` (operands), ``rm`` (compare
    op select: 0=fle, 1=flt, 2=feq), ``wflags`` (compare enabled).  Outputs:
    ``toint`` (the comparison result as an integer) and ``exc`` (exception
    flags).
    """

    def __init__(self, buggy: bool = False):
        super().__init__()
        self.buggy = buggy
        self.in1 = self.input("in1", 32)
        self.in2 = self.input("in2", 32)
        self.rm = self.input("rm", 2)
        self.wflags = self.input("wflags", 1)
        self.toint = self.output("toint", 32)
        self.exc = self.output("exc", 5)

        dcmp = self.instance("dcmp", FCmp())
        dcmp.io.a <<= self.in1
        dcmp.io.b <<= self.in2
        if buggy:
            # The seeded bug of Listing 3: signaling is permanently
            # asserted, so quiet compares (feq) of qNaNs raise invalid.
            dcmp.io.signaling <<= 1
        else:
            # Correct: only flt/fle (rm[1] == 0) are signaling compares.
            dcmp.io.signaling <<= ~self.rm[1]

        self.toint <<= 0
        self.exc <<= 0
        with self.when(self.wflags == 1):  # feq/flt/fle, fcvt
            self.node("lt_eq", hgf.cat(dcmp.io.lt, dcmp.io.eq))
            sel = self.node(
                "sel",
                hgf.mux(
                    self.rm == 0, dcmp.io.lt | dcmp.io.eq,
                    hgf.mux(self.rm == 1, dcmp.io.lt, dcmp.io.eq),
                ),
            )
            self.toint <<= sel.pad(32)
            self.exc <<= dcmp.io.exceptionFlags
