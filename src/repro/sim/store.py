"""Typed value-table storage backends (the ``ValueStore`` layer).

Every layer of the stack — generated ``comb``/``tick`` statements, the
engine's pokes and snapshots, compiled breakpoint/watchpoint closures,
shard state digests — reaches into one data structure: the flattened
signal value table.  The seed implementation was a ``list[int]``; this
module makes the representation pluggable:

* :class:`ListStore` — the reference backend, a plain ``list[int]``.
  Fastest per-element access (reads return cached int objects), no bulk
  operations.
* :class:`ArrayStore` — ``array('Q')`` lanes, one 64-bit lane per signal.
  Snapshot keyframes become C-level ``memcpy`` copies and the raw buffer
  is directly hashable/serializable via ``memoryview``.
* :class:`NumpyStore` — the vectorized backend: the *same* ``array('Q')``
  buffer with a zero-copy ``numpy`` view on top.  Generated statements
  keep indexing the ``array`` (plain Python ints in, plain Python ints
  out — numpy scalar arithmetic would be both slower and wrong for
  >64-bit intermediates), while the bulk operations the engine performs
  every cycle — the snapshot state-delta scan, keyframe copy/restore —
  run vectorized over the view.

**Lane layout.**  Signals up to 64 bits wide occupy one unsigned 64-bit
lane in the ``narrow`` buffer (all stored values are already masked to
their signal width by the code generator, so they always fit).  Wider
signals — e.g. the 128-bit product of two 64-bit operands — live in the
``wide`` overflow dict (signal index -> unmasked Python int); the code
generator emits ``w[i]`` instead of ``v[i]`` for them, so the hot path
pays nothing for the possibility.  Designs without wide signals (the
common case) carry an empty dict.

Backend selection: ``Simulator(store=...)`` takes a backend name, the
``REPRO_VALUE_STORE`` environment variable overrides the default, and
``"auto"`` (the default) picks ``numpy`` when importable, else ``array``.
Property tests pin all backends bit-identical to the list reference.
"""

from __future__ import annotations

import os
import sys
from array import array

try:
    import numpy as _np
except ImportError:  # the numpy backend is optional
    _np = None

from .interface import SimulatorError

#: Bits per lane of the typed ``narrow`` buffer; wider signals overflow
#: into the ``wide`` dict.
LANE_BITS = 64

#: Environment override for the default backend.
STORE_ENV = "REPRO_VALUE_STORE"

STORE_KINDS = ("list", "array", "numpy", "auto")


def numpy_available() -> bool:
    return _np is not None


def resolve_store_kind(kind: str | None) -> str:
    """Resolve a requested backend name to a concrete one.

    ``None`` defers to ``$REPRO_VALUE_STORE``, then to ``"auto"``.
    ``"auto"`` resolves to ``"numpy"`` when importable, else ``"array"``.
    An explicit ``"numpy"`` without numpy installed is an error (silently
    degrading an explicit request would mask a broken environment).
    """
    if kind is None:
        kind = os.environ.get(STORE_ENV) or "auto"
    if kind not in STORE_KINDS:
        raise SimulatorError(
            f"unknown value store {kind!r}; expected one of {STORE_KINDS}"
        )
    if kind == "auto":
        return "numpy" if _np is not None else "array"
    if kind == "numpy" and _np is None:
        raise SimulatorError(
            "value store 'numpy' requested but numpy is not importable"
        )
    return kind


def make_store(kind: str | None, design) -> ValueStore:
    """Build a value store for a compiled design (see :func:`resolve_store_kind`)."""
    resolved = resolve_store_kind(kind)
    cls = {"list": ListStore, "array": ArrayStore, "numpy": NumpyStore}[resolved]
    return cls(design.n_signals, design.wide_indices, design.state_indices)


class ValueStore:
    """One simulator's signal values: a ``narrow`` 64-bit-lane buffer plus
    a ``wide`` overflow dict for >64-bit signals.

    The hot paths never call methods on this object: generated code and
    the engine index ``narrow``/``wide`` directly, and compiled condition
    closures bind them at compile time.  The sequence protocol below
    serves the cold paths (``sim.values[i]``, trace writers, tests) with
    wide signals transparently dispatched.

    Snapshot support: ``copy_narrow``/``clone_narrow``/``restore_narrow``
    capture and restore the narrow buffer (backend-native, so the array
    backends get C-level copies), ``capture_state``/``state_delta`` drive
    the per-cycle delta scan over the design's state signals, and
    ``apply_delta`` replays a delta onto a captured buffer (ring eviction
    and ``set_time`` reconstruction).  Wide signals are snapshotted as
    full dict copies per entry — they are rare enough that deltas would
    cost more than they save.
    """

    kind = "list"

    def __init__(self, n_signals, wide_indices, state_indices):
        self.n = n_signals
        self.wide: dict[int, int] = {i: 0 for i in wide_indices}
        # Wide state signals are covered by the full per-snapshot wide
        # copy; the delta scan tracks only the narrow ones.
        self._narrow_state = tuple(i for i in state_indices if i not in self.wide)
        self.narrow = self._make_buffer(n_signals)

    # -- buffer construction (backend hooks) -------------------------------

    def _make_buffer(self, n):
        return [0] * n

    # -- sequence protocol (cold paths) ------------------------------------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i):
        # Match list semantics the wide dict would otherwise miss: slices
        # answer from the merged plain-list view (uniform across
        # backends), negative indices are normalized before the wide
        # lookup.
        if isinstance(i, slice):
            return self.as_list()[i]
        wide = self.wide
        if wide:
            if i < 0:
                i += self.n
            if i in wide:
                return wide[i]
        return self.narrow[i]

    def __setitem__(self, i: int, value: int) -> None:
        if i < 0:
            i += self.n
        if i in self.wide:
            self.wide[i] = value
        else:
            self.narrow[i] = value

    def __iter__(self):
        wide = self.wide
        if not wide:
            return iter(self.narrow)
        return (wide[i] if i in wide else v for i, v in enumerate(self.narrow))

    def __eq__(self, other) -> bool:
        if isinstance(other, ValueStore):
            return self.as_list() == other.as_list()
        if isinstance(other, (list, tuple)):
            return self.as_list() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n} wide={len(self.wide)}>"

    def as_list(self) -> list[int]:
        """The value table as a plain list (backend-independent view)."""
        return list(self)

    # -- snapshot keyframes -------------------------------------------------

    def copy_narrow(self):
        """A keyframe copy of the narrow buffer (backend native)."""
        return self.narrow.copy()

    def clone_narrow(self, saved):
        """An independent copy of a captured buffer (rewind scratch)."""
        return saved.copy()

    def restore_narrow(self, saved) -> None:
        """Write a captured buffer back into the live one, in place —
        generated code holds direct references to ``narrow``."""
        self.narrow[:] = saved

    def copy_wide(self) -> dict | None:
        """Full copy of the wide overflow values (None when there are none)."""
        return dict(self.wide) if self.wide else None

    def restore_wide(self, saved: dict | None) -> None:
        if saved is not None:
            self.wide.clear()
            self.wide.update(saved)

    @staticmethod
    def apply_delta(saved, delta) -> None:
        """Replay a delta onto a captured buffer.

        Deltas are *store-native* opaque objects: the engine only ever
        hands them back to the store that produced them.  The list/array
        backends use ``{index: value}`` dicts; the numpy backend uses
        index/value array pairs so both capture and replay stay
        vectorized."""
        for i, val in delta.items():
            saved[i] = val

    # -- delta codec hooks (repro.sim.timeline) -----------------------------
    #
    # The timeline's codecs delegate the representation-specific work
    # here so each backend keeps its native vectorized path: raw deltas
    # stay whatever ``state_delta`` produced, RLE packs consecutive
    # indices into ``(runs, values)`` typed buffers (``runs`` interleaves
    # ``start, count`` pairs), and the byte estimates feed the timeline's
    # byte-budget retention.

    def delta_nbytes(self, delta) -> int:
        """Approximate retained bytes of one raw (dict) delta: the dict
        table plus two boxed ints per changed signal."""
        return sys.getsizeof(delta) + 56 * len(delta)

    def delta_pairs(self, delta) -> list[tuple[int, int]]:
        """Sorted plain-int ``(index, value)`` pairs of a raw delta."""
        return sorted((int(i), int(v)) for i, v in delta.items())

    def encode_rle(self, delta):
        """Raw delta -> ``(runs, values)``: consecutive signal indices
        collapse into interleaved ``start, count`` runs over one flat
        unsigned-64 value buffer."""
        runs = array("q")
        values = array("Q")
        end = None
        for i, v in sorted(delta.items()):
            if end is not None and i == end:
                runs[-1] += 1
            else:
                runs.append(i)
                runs.append(1)
            values.append(v)
            end = i + 1
        return (runs, values)

    @staticmethod
    def apply_rle(saved, encoded) -> None:
        """Replay an RLE delta onto a captured buffer, one slice
        assignment per run (C-level on the typed backends)."""
        runs, values = encoded
        j = 0
        for k in range(0, len(runs), 2):
            start, count = runs[k], runs[k + 1]
            saved[start:start + count] = values[j:j + count]
            j += count

    @staticmethod
    def rle_nbytes(encoded) -> int:
        runs, values = encoded
        return sys.getsizeof(runs) + sys.getsizeof(values)

    @staticmethod
    def rle_pairs(encoded) -> list[tuple[int, int]]:
        runs, values = encoded
        out: list[tuple[int, int]] = []
        j = 0
        for k in range(0, len(runs), 2):
            start, count = runs[k], runs[k + 1]
            out.extend(
                (int(start) + o, int(values[j + o])) for o in range(count)
            )
            j += count
        return out

    # -- timeline byte accounting -------------------------------------------

    @property
    def state_indices(self) -> tuple:
        """The narrow state-signal indices the per-cycle delta scan
        covers (wide state signals ride the full per-entry wide copy)."""
        return self._narrow_state

    def keyframe_nbytes(self, saved) -> int:
        """Approximate retained bytes of one keyframe buffer."""
        return sys.getsizeof(saved) + 32 * len(saved)

    def wide_nbytes(self) -> int:
        """Approximate retained bytes of one full wide-overflow copy."""
        if not self.wide:
            return 0
        return sys.getsizeof(self.wide) + 88 * len(self.wide)

    # -- per-cycle state deltas ---------------------------------------------

    def capture_state(self):
        """Baseline for :meth:`state_delta`, taken from the live buffer."""
        narrow = self.narrow
        return [narrow[i] for i in self._narrow_state]

    def capture_state_from(self, saved):
        """Baseline taken from a captured buffer (rewind reconstruction)."""
        return [saved[i] for i in self._narrow_state]

    def state_delta(self, base) -> dict:
        """``{index: value}`` of state signals that changed since ``base``;
        updates ``base`` in place to the current values."""
        narrow = self.narrow
        delta: dict[int, int] = {}
        for k, i in enumerate(self._narrow_state):
            val = narrow[i]
            if val != base[k]:
                delta[i] = val
                base[k] = val
        return delta

    # -- digests -------------------------------------------------------------

    def digest_bytes(self) -> bytes:
        """The raw value table as bytes, backend-independent: the narrow
        lanes little-endian via ``memoryview``/``tobytes`` plus the sorted
        wide entries.  Equal bytes mean bit-identical state."""
        out = self._narrow_bytes()
        if self.wide:
            out += repr(sorted(self.wide.items())).encode()
        return out

    def _narrow_bytes(self) -> bytes:
        return array("Q", self.narrow).tobytes()


class ListStore(ValueStore):
    """The reference backend: a plain ``list[int]`` value table."""

    kind = "list"


class ArrayStore(ValueStore):
    """``array('Q')`` lanes: compact storage, memcpy keyframes, hashable
    raw buffer.  Element access still yields plain Python ints."""

    kind = "array"

    def _make_buffer(self, n):
        return array("Q", bytes(8 * n))

    def copy_narrow(self):
        return self.narrow[:]

    def clone_narrow(self, saved):
        return saved[:]

    def capture_state(self):
        narrow = self.narrow
        return array("Q", [narrow[i] for i in self._narrow_state])

    def capture_state_from(self, saved):
        return array("Q", [saved[i] for i in self._narrow_state])

    def keyframe_nbytes(self, saved) -> int:
        return sys.getsizeof(saved)  # the array object includes its buffer

    def _narrow_bytes(self) -> bytes:
        return self.narrow.tobytes()


class NumpyStore(ArrayStore):
    """The vectorized backend: ``array('Q')`` lanes shared zero-copy with
    a ``numpy`` view.  Element reads/writes (generated code, pokes, the
    compiled condition closures) go through the ``array`` — Python-int
    semantics, no numpy scalars on the hot path — while the per-cycle
    snapshot scan and keyframe copy/restore run vectorized on the view.
    """

    kind = "numpy"

    def __init__(self, n_signals, wide_indices, state_indices):
        if _np is None:  # pragma: no cover - guarded by resolve_store_kind
            raise SimulatorError("numpy is not importable")
        super().__init__(n_signals, wide_indices, state_indices)
        self.view = _np.frombuffer(self.narrow, dtype=_np.uint64)
        self._state_idx = _np.array(self._narrow_state, dtype=_np.intp)
        # Per-cycle scratch: one gather target reused every scan, so the
        # steady-state delta path allocates only the (small) delta itself.
        self._scratch = _np.zeros(len(self._narrow_state), dtype=_np.uint64)
        self._empty_delta = (
            _np.empty(0, dtype=_np.intp),
            _np.empty(0, dtype=_np.uint64),
        )

    def copy_narrow(self):
        return self.view.copy()

    def clone_narrow(self, saved):
        return saved.copy()

    def restore_narrow(self, saved) -> None:
        self.view[:] = saved

    @staticmethod
    def apply_delta(saved, delta) -> None:
        ks, vals = delta
        saved[ks] = vals

    def capture_state(self):
        return self.view[self._state_idx]

    def capture_state_from(self, saved):
        return saved[self._state_idx]

    def state_delta(self, base):
        cur = self._scratch
        self.view.take(self._state_idx, out=cur)
        changed = cur != base
        if not changed.any():
            return self._empty_delta
        ks = changed.nonzero()[0]
        delta = (self._state_idx[ks], cur[ks])
        base[:] = cur
        return delta

    # -- delta codec hooks: vectorized over the array-pair deltas -----------

    def delta_nbytes(self, delta) -> int:
        ks, vals = delta
        return ks.nbytes + vals.nbytes + 192  # + the two array objects

    def delta_pairs(self, delta) -> list[tuple[int, int]]:
        ks, vals = delta
        # ks ascending
        return [(int(i), int(v)) for i, v in zip(ks, vals, strict=False)]

    def encode_rle(self, delta):
        """Vectorized run detection: one ``diff`` over the (ascending)
        changed-index array finds every run break."""
        ks, vals = delta
        if len(ks) == 0:
            return (_np.empty(0, dtype=_np.int64), vals)
        breaks = _np.flatnonzero(_np.diff(ks) != 1) + 1
        starts = _np.concatenate((_np.zeros(1, dtype=_np.intp), breaks))
        lengths = _np.diff(_np.append(starts, len(ks)))
        runs = _np.empty(2 * len(starts), dtype=_np.int64)
        runs[0::2] = ks[starts]
        runs[1::2] = lengths
        return (runs, vals)

    @staticmethod
    def rle_nbytes(encoded) -> int:
        runs, values = encoded
        return runs.nbytes + values.nbytes + 224

    def keyframe_nbytes(self, saved) -> int:
        return saved.nbytes + 112

    def _narrow_bytes(self) -> bytes:
        return self.narrow.tobytes()


class MatrixStore(NumpyStore):
    """The many-worlds backend: N scenario worlds stacked as columns of one
    ``(n_signals, worlds)`` uint64 matrix (``repro.sim.manyworlds``).

    Storage is the flat NumpyStore buffer in signal-major order — flat index
    ``signal * worlds + world`` — with ``matrix`` a zero-copy 2D view of it,
    so every inherited bulk operation (snapshot delta scan, RLE codec,
    keyframe copy/restore, digests) works unchanged over the flattened
    layout: the :class:`~repro.sim.timeline.Timeline` machinery captures all
    worlds at once without knowing they exist.  Signals wider than one lane
    keep the overflow-dict representation with per-world flat keys, and
    ``wide_signals`` records the *design-level* wide indices.

    ``digest_bytes_world`` slices one world's column in the exact byte
    layout :meth:`ValueStore.digest_bytes` produces for a scalar store, so
    per-world digests compare bit-for-bit against sequential reference runs.
    """

    kind = "matrix"

    def __init__(self, n_signals, wide_indices, state_indices, worlds):
        if worlds < 1:
            raise SimulatorError("worlds must be >= 1")
        self.worlds = worlds
        self.n_signals = n_signals
        self.wide_signals = frozenset(wide_indices)
        flat_wide = [
            i * worlds + k for i in sorted(wide_indices) for k in range(worlds)
        ]
        flat_state = [
            i * worlds + k for i in state_indices for k in range(worlds)
        ]
        super().__init__(n_signals * worlds, flat_wide, flat_state)
        self.matrix = self.view.reshape(n_signals, worlds)

    def digest_bytes_world(self, k: int) -> bytes:
        """One world's column in scalar ``digest_bytes`` layout."""
        out = self.matrix[:, k].tobytes()
        if self.wide_signals:
            stride = self.worlds
            wide = self.wide
            out += repr(
                sorted((i, wide[i * stride + k]) for i in self.wide_signals)
            ).encode()
        return out
