"""A small testbench driver layered on the simulator.

The paper stresses that the debugging system is *orthogonal to the testing
environment* (Sec. 1) — drivers and monitors come from a testing framework,
hgdb only observes.  This module is our stand-in for that testing framework:
a UVM-flavoured driver/monitor pair that pokes stimulus, collects outputs,
and never touches the debugger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import Simulator


@dataclass(slots=True)
class Transaction:
    """One cycle's worth of stimulus: input name -> value."""

    pokes: dict[str, int] = field(default_factory=dict)


class Driver:
    """Applies a queue of transactions, one per clock cycle."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.queue: list[Transaction] = []

    def add(self, **pokes: int) -> None:
        self.queue.append(Transaction(dict(pokes)))

    def drive_one(self) -> bool:
        """Apply the next transaction (if any) and step one cycle.

        All of a transaction's pokes are applied inside one
        :meth:`~repro.sim.engine.Simulator.batch` block, so a multi-input
        transaction costs a single merged fanout-cone settle instead of one
        cone per poke."""
        if self.queue:
            txn = self.queue.pop(0)
            with self.sim.batch():
                for name, value in txn.pokes.items():
                    self.sim.poke(name, value)
        self.sim.step()
        return bool(self.queue)


class Monitor:
    """Samples a set of signals every cycle via a clock callback."""

    def __init__(self, sim: Simulator, signals: list[str]):
        self.sim = sim
        self.signals = list(signals)
        self.samples: list[dict[str, int]] = []
        self._cb = sim.add_clock_callback(self._sample)

    def _sample(self, sim: Simulator) -> None:
        self.samples.append({s: sim.peek(s) for s in self.signals})

    def detach(self) -> None:
        self.sim.remove_clock_callback(self._cb)


class Testbench:
    """Driver + monitor pair around a simulator."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, sim: Simulator, watch: list[str] | None = None):
        self.sim = sim
        self.driver = Driver(sim)
        self.monitor = Monitor(sim, watch or [])

    def run(self, max_cycles: int = 10_000) -> None:
        cycles = 0
        while self.driver.queue and cycles < max_cycles:
            self.driver.drive_one()
            cycles += 1
