"""The cycle-based RTL simulation engine.

Zero-delay synchronous semantics (the two facts hgdb's breakpoint emulation
relies on, paper Sec. 3): per cycle the engine settles all combinational
logic, fires clock-edge callbacks while every value is stable, then updates
registers and memories and advances time.

Two execution paths share the compiled design:

* the **reference path** (``fast=False``): every ``poke``/``set_value`` and
  every clock edge re-runs the full monolithic ``comb`` function;
* the **fast path** (``fast=True``, default): the engine tracks *which*
  signals changed and re-evaluates only their compiled fanout cones
  (``docs/performance.md``).  Pokes are **lazy** — they accumulate into a
  pending dirty set and the next settle point (a step, a read, an explicit
  ``flush()``/``batch()`` exit) evaluates one merged cone for the whole
  set.  Clock edges are **activity-tracked**: the generated tick reports
  which registers actually changed, and only their fanout (plus the
  memory-reading cone when a write landed) is re-settled — quiet cycles
  skip most of the datapath.  Property tests pin the two paths to
  bit-identical results.

Time travel (``set_time``, reverse debugging, windowed history) is owned
by the :mod:`repro.sim.timeline` subsystem: when snapshots are enabled
the simulator binds a :class:`~repro.sim.timeline.Timeline` to its value
store — compressed keyframe+delta history with a pluggable codec
(``raw``/``rle``), optional periodic keyframes, and entry- or
byte-bounded retention.  Recording scans only the state signals
(registers and inputs — O(state) + O(mem writes), never the full value
table or whole memories) and eviction folds the head keyframe forward in
O(delta).  See ``docs/time_travel.md``.

Signal values live in a pluggable :class:`~repro.sim.store.ValueStore`
(``Simulator(store=...)`` / ``$REPRO_VALUE_STORE``): typed 64-bit lanes by
default, a zero-copy numpy view for vectorized snapshot scans when numpy
is importable, and the plain-list reference backend the property tests pin
every other backend against.
"""

from __future__ import annotations

import hashlib
from array import array
from contextlib import contextmanager

import threading

from ..ir.stmt import Circuit
from ..obs import make_obs
from .compiler import CompiledDesign, compile_design
from .interface import (
    HierNode,
    SimulationFinished,
    SimulatorError,
    SimulatorInterface,
)
from .store import LANE_BITS, ValueStore, make_store
from .timeline import Timeline, TimelineError

# Sentinel distinguishing "caller passed this legacy kwarg" from its
# default, so options= and the deprecated keywords can coexist.
_UNSET = object()


class _PrintfDispatcher:
    """Routes generated-code ``printf`` calls to the simulator currently
    stepping on each thread.

    The generated ``tick`` reaches its printf sink through one module
    global (``_pf``).  With several simulators sharing one
    :class:`CompiledDesign` — hub sessions on their own threads, inline
    shards interleaving on one thread — a plain closure there would send
    every design's output to whichever simulator installed it last.  The
    dispatcher is installed into the design's namespace once; each
    simulator binds its own sink at construction and again on every
    ``step`` entry (thread-local, so concurrently stepping sessions never
    see each other's binding)."""

    __slots__ = ("_tls",)

    def __init__(self):
        self._tls = threading.local()

    def bind(self, sink) -> None:
        self._tls.sink = sink

    def __call__(self, index: int, *args: int) -> None:
        self._tls.sink(index, *args)


class Simulator(SimulatorInterface):
    """Execute a compiled Low-form circuit.

    Args:
        circuit: the Low-form circuit (``design.low``).
        top_path: hierarchical prefix for the root instance (defaults to the
            main module name).  Use e.g. ``"TestHarness.dut"`` to emulate a
            testbench wrapper around the generated IP (paper Sec. 3.4).
        snapshots: how many per-cycle state snapshots to retain; 0 (with
            no ``snapshot_bytes``) disables ``set_time``.
        snapshot_bytes: retain history up to ~this many bytes instead of
            (or in addition to) an entry count — with the ``rle`` codec
            this is how long rewind windows stay cheap.
        snapshot_codec: timeline delta codec — ``"raw"`` (store-native,
            the default), ``"rle"`` (run-length-encoded, ~an order of
            magnitude smaller on register-sparse designs), or None to
            defer to ``$REPRO_TIMELINE_CODEC``.
        keyframe_every: insert a full timeline keyframe every K retained
            cycles (bounds rewind latency to K delta replays); 0 keeps
            only the folded head keyframe.
        trace: an optional trace sink with ``begin(sim)`` / ``sample(sim)``
            methods (see ``repro.trace.VcdWriter.attach``).
        fast: select the dirty-set incremental comb path (default).  With
            ``fast=False`` every stimulus change re-runs the full ``comb``
            function — the reference semantics the fast path is tested
            against.
        compiled: reuse an already-compiled design instead of compiling
            ``circuit`` again.  This is how the shard coordinator and the
            debug hub elaborate and compile once and have every worker or
            session build its own simulator instance for free.  Sharing is
            safe within one process too: each simulator owns its value
            store, memories, and timeline; printf output is routed
            per-stepping-simulator (see ``_PrintfDispatcher``); and the
            design's cone caches are value-independent.  Across forked
            processes each child owns a copy-on-write copy.
        store: value-table backend name — ``"list"``, ``"array"``,
            ``"numpy"``, or ``"auto"`` (numpy when importable, else typed
            64-bit lanes).  ``None`` defers to ``$REPRO_VALUE_STORE``,
            then ``"auto"``.  See ``repro.sim.store``.
        strict: compile-time lint gate (``repro.lint``).  ``None`` defers
            to ``$REPRO_LINT`` (default off); ``"warn"`` runs the linter
            and reports findings as a ``LintWarning``; ``"error"`` (or
            ``True``) additionally raises ``LintError`` on error-severity
            findings (e.g. a combinational cycle) before compiling.  The
            gate only runs when this simulator compiles the circuit itself
            — a shared ``compiled`` design is assumed already vetted.
        obs: observability depth (``repro.obs``) — an :class:`~repro.obs.Obs`
            to share (how a shard worker's simulator reports into the
            shard's registry), a mode string (``"off"``/``"metrics"``/
            ``"trace"``), or None to defer to ``repro.obs.configure`` then
            ``$REPRO_OBS`` (default off).  The hot path is identical in
            every mode: per-cycle work bumps always-on plain ints and a
            registry collector folds them into metrics only when a
            snapshot is taken.  ``stats()`` reads the same ints directly
            and works in every mode, including off.
        options: a :class:`~repro.hub.api.SessionOptions` bundling the
            session-configuration keywords above (store / obs / strict /
            fast / snapshot budget) — the one record shared with
            ``ShardSession`` and the debug hub.  Passing the individual
            keywords still works but is deprecated; an explicitly passed
            keyword overrides the corresponding ``options`` field.
    """

    def __init__(
        self,
        circuit: Circuit,
        top_path: str | None = None,
        snapshots: int = _UNSET,
        trace=None,
        fast: bool = _UNSET,
        compiled: CompiledDesign | None = None,
        store: str | None = _UNSET,
        snapshot_bytes: int | None = _UNSET,
        snapshot_codec: str | None = _UNSET,
        keyframe_every: int = _UNSET,
        strict=_UNSET,
        obs=_UNSET,
        options=None,
    ):
        # Imported lazily: repro.hub.api sits above the core runtime,
        # which imports this package — a module-level import would cycle.
        from ..hub.api import resolve_session_options

        legacy = {
            key: value
            for key, value in (
                ("snapshots", snapshots),
                ("fast", fast),
                ("store", store),
                ("snapshot_bytes", snapshot_bytes),
                ("snapshot_codec", snapshot_codec),
                ("keyframe_every", keyframe_every),
                ("strict", strict),
                ("obs", obs),
            )
            if value is not _UNSET
        }
        opt = resolve_session_options(options, legacy, "Simulator")
        snapshots = opt.snapshots
        fast = opt.fast
        store = opt.store
        snapshot_bytes = opt.snapshot_bytes
        snapshot_codec = opt.snapshot_codec
        keyframe_every = opt.keyframe_every
        strict = opt.strict
        obs = opt.obs
        self.obs = make_obs(obs, proc="sim")
        if compiled is None:
            from ..lint.engine import GATE_OFF, gate_circuit, resolve_gate

            mode = resolve_gate(strict)
            if mode != GATE_OFF:
                gate_circuit(
                    circuit, mode, form="low", design=circuit.name
                )
        if compiled is not None:
            self.design: CompiledDesign = compiled
        else:
            with self.obs.span("sim.compile", design=circuit.name):
                self.design = compile_design(circuit, top_path)
        self.store: ValueStore = make_store(store, self.design)
        # The hot paths index the store's raw buffers directly; these
        # references are stable for the simulator's lifetime (the store
        # never rebinds them — generated code holds them across rewinds).
        self._v = self.store.narrow
        self._w = self.store.wide
        self.mems: list[list[int]] = self.design.initial_mems()
        self._fast = fast
        self._time = 0
        self._finished: int | None = None
        self._callbacks: dict[int, object] = {}
        self._cb_list: tuple = ()
        self._next_cb_id = 1
        # Settle bookkeeping (fast path): pokes accumulate indices into
        # `_dirty`, the activity-tracked tick accumulates changed registers
        # into `_tick_changed` (plus `_tick_mem` when a memory write
        # landed); `_settle` evaluates one merged cone for the union.  The
        # sets are mutated in place, never rebound — the step() loop holds
        # bound methods into them across callback-driven rewinds.
        self._pending_full = False   # full comb required (reference / rewind)
        self._dirty: set[int] = set()
        self._tick_changed: set[int] = set()
        self._tick_mem = False
        # Always-on stats: bare int increments on the hot path (cheaper
        # than any mode guard), folded into repro.obs metrics lazily by
        # the snapshot-time collector below, or read via stats().
        self._stat_ticks = 0
        self._stat_settle_full = 0
        self._stat_settle_seeds = 0
        self._stat_settle_tick = 0
        # Time travel: all history state (entry ring, delta baselines, the
        # memory-write journal the generated journaling tick feeds) lives
        # on the Timeline, bound to this simulator's store and memories.
        # A design whose memories exceed the timeline's word cap degrades
        # to register/input history with a one-time warning; a design with
        # no memories skips the journaling machinery entirely.
        self.timeline: Timeline | None = None
        if snapshots or snapshot_bytes:
            self.timeline = Timeline(
                self.store,
                self.mems,
                self.design.mems,
                limit=snapshots or None,
                byte_budget=snapshot_bytes or None,
                codec=snapshot_codec,
                keyframe_every=keyframe_every,
            )
        self._trace = trace
        self._printf_out: list[str] = []
        self._install_printf()
        self.design.comb(self._v, self._w, self.mems)
        if trace is not None:
            trace.begin(self)
        if self.obs.metrics is not None:
            self.obs.metrics.add_collector(self._collect_metrics)

    @property
    def values(self):
        """The signal value table (a :class:`~repro.sim.store.ValueStore`).

        Indexable by signal index like the ``list[int]`` it replaced, wide
        (>64-bit) signals transparently included; hot paths bind the
        store's raw buffers instead of going through this property.
        """
        return self.store

    # -- printf plumbing ----------------------------------------------------

    def _install_printf(self) -> None:
        # Pre-split every format string once: formatting is then a single
        # join per printf, and an argument whose text contains "{}" can no
        # longer corrupt later substitutions.
        parts_table = [fmt.split("{}") for fmt, _n in self.design.printf_specs]
        out = self._printf_out

        def _pf(index: int, *args: int) -> None:
            parts = parts_table[index]
            pieces = [parts[0]]
            for i in range(1, len(parts)):
                pieces.append(str(args[i - 1]) if i <= len(args) else "{}")
                pieces.append(parts[i])
            text = "".join(pieces)
            out.append(text)
            print(text)

        # The generated tick()'s namespace (shared with tick_journal) holds
        # one _PrintfDispatcher per design; every simulator sharing the
        # design routes through it.  Bind this simulator's sink now and at
        # each step() entry — printf only fires inside tick, so the binding
        # active during *this* simulator's step is always its own.
        self._has_printf = bool(self.design.printf_specs)
        namespace = self.design.tick.__globals__
        dispatcher = namespace.get("_pf")
        if not isinstance(dispatcher, _PrintfDispatcher):
            dispatcher = _PrintfDispatcher()
            namespace["_pf"] = dispatcher
        self._pf_dispatcher = dispatcher
        self._pf_sink = _pf
        if self._has_printf:
            dispatcher.bind(_pf)

    @property
    def printf_output(self) -> list[str]:
        return self._printf_out

    # -- settling ----------------------------------------------------------

    def _settle(self) -> None:
        """Bring every combinational signal up to date with current state."""
        if self._pending_full:
            self._pending_full = False
            self._dirty.clear()
            self._tick_changed.clear()
            self._tick_mem = False
            self._stat_settle_full += 1
            self.design.comb(self._v, self._w, self.mems)
            return
        dirty = self._dirty
        ticked = self._tick_changed
        if dirty:
            self._stat_settle_seeds += 1
            seeds = dirty | ticked if ticked else dirty
            self.design.settle_seeds(
                self._v, self._w, self.mems, seeds, self._tick_mem
            )
        elif ticked or self._tick_mem:
            # Pure clock-edge activity: the design may collapse a busy
            # edge onto the precomputed full tick cone.
            self._stat_settle_tick += 1
            self.design.settle_tick(
                self._v, self._w, self.mems, ticked, self._tick_mem
            )
        else:
            return
        dirty.clear()
        ticked.clear()
        self._tick_mem = False

    def flush(self) -> None:
        """Settle any pending pokes / deferred tick activity now.

        Pokes on the fast path are lazy: they accumulate into a dirty set
        and the whole set is settled as one merged fanout cone at the next
        observation point (``step``, ``peek``/``get_value``, a clock
        callback, or this call).  ``flush`` forces that settle explicitly —
        useful before reading ``values`` directly."""
        self._settle()

    @contextmanager
    def batch(self):
        """Group several pokes into one deferred cone settle.

        ::

            with sim.batch():
                sim.poke("a", 1)
                sim.poke("b", 2)   # no settling yet
            # exiting settles one merged cone for both fanouts

        Pokes are lazy regardless, so the context manager is primarily an
        explicit marker (and a guaranteed flush on exit) for testbench code
        that drives many inputs per cycle."""
        try:
            yield self
        finally:
            self._settle()

    def _drive(self, idx: int, value: int) -> None:
        """Write a signal; the fast path defers the cone settle to the
        next observation point, the reference path re-runs full comb."""
        width = self.design.signals[idx].width
        value &= (1 << width) - 1
        buf = self._w if idx in self._w else self._v
        if self._fast:
            if value == buf[idx]:
                return
            buf[idx] = value
            self._dirty.add(idx)
        else:
            buf[idx] = value
            self.design.comb(self._v, self._w, self.mems)

    # -- basic control -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished is not None

    @property
    def exit_code(self) -> int | None:
        return self._finished

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input port (by local or full name)."""
        idx = self.design.top_inputs.get(name)
        if idx is None:
            idx = self.design.signal_index.get(name)
        if idx is None:
            raise SimulatorError(f"no such input {name!r}")
        self._drive(idx, value)

    def peek(self, name: str) -> int:
        """Read any signal by local top-level or full hierarchical name."""
        self._settle()
        root = self.design.hierarchy.path
        idx = self.design.signal_index.get(name)
        if idx is None:
            idx = self.design.signal_index.get(f"{root}.{name}")
        if idx is None:
            raise SimulatorError(f"no such signal {name!r}")
        return self._w[idx] if idx in self._w else self._v[idx]

    def peek_mem(self, path: str, addr: int) -> int:
        """Read a memory word (full hierarchical memory path)."""
        design = self.design
        mi = design.mem_index.get(path)
        if mi is None:
            mi = design.mem_index.get(f"{design.hierarchy.path}.{path}")
        if mi is None:
            raise SimulatorError(f"no such memory {path!r}")
        return self.mems[mi][addr % design.mems[mi].depth]

    def reset(self, cycles: int = 1) -> None:
        """Assert reset for ``cycles`` clock cycles, then deassert."""
        self._drive(self.design.reset_index, 1)
        self.step(cycles)
        self._drive(self.design.reset_index, 0)

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` posedges."""
        if self._has_printf:
            # Re-claim the shared design's printf routing for this
            # simulator (cheap: one thread-local store); see
            # _PrintfDispatcher for why this happens per step.
            self._pf_dispatcher.bind(self._pf_sink)
        v, w, m = self._v, self._w, self.mems
        design = self.design
        cb_list = self._cb_list
        timeline = self.timeline
        journal = timeline is not None and timeline.snap_mems
        fast = self._fast
        tick = (
            (design.tick_act_journal if journal else design.tick_act)
            if fast
            else (design.tick_journal if journal else design.tick)
        )
        jw = timeline.mem_written.add if journal else None
        ch = self._tick_changed.add
        for _ in range(cycles):
            if self._finished is not None:
                return
            self._settle()
            if self._trace is not None:
                self._trace.sample(self)
            if cb_list:
                for fn in cb_list:
                    fn(self)
                cb_list = self._cb_list  # callbacks may attach/detach
                # Callback pokes settle lazily; consume them (and any
                # set_time rewind) before snapshotting and ticking.
                self._settle()
            if timeline is not None:
                timeline.record(self._time)
            try:
                if fast:
                    # The activity-tracked tick reports each changed
                    # register via `ch` and returns truthy when a memory
                    # word was written; the next settle re-evaluates just
                    # that activity's merged cone.
                    if journal:
                        if tick(v, w, m, self._time, jw, ch):
                            self._tick_mem = True
                    elif tick(v, w, m, self._time, ch):
                        self._tick_mem = True
                elif journal:
                    tick(v, w, m, self._time, jw)
                    self._pending_full = True
                else:
                    tick(v, w, m, self._time)
                    self._pending_full = True
            except SimulationFinished as fin:
                # Stops fire before any register/memory update, so the
                # fast path has no activity to settle; the reference path
                # keeps its full-comb-per-edge semantics.
                self._finished = fin.exit_code
                self._time += 1
                self._stat_ticks += 1
                if not fast:
                    self._pending_full = True
                self._settle()
                return
            self._time += 1
            self._stat_ticks += 1
        self._settle()

    def run(self, max_cycles: int = 1_000_000) -> int | None:
        """Run until a ``Stop`` fires or ``max_cycles`` elapse.  Returns the
        exit code, or None on timeout."""
        budget = max_cycles
        while budget > 0 and self._finished is None:
            chunk = min(budget, 1024)
            self.step(chunk)
            budget -= chunk
        return self._finished

    # -- time travel (delegated to repro.sim.timeline) ----------------------

    @property
    def can_set_time(self) -> bool:
        return self.timeline is not None

    def _apply_set_time(self, time: int) -> None:
        """Restore simulator state to a previously recorded cycle.

        The bound :class:`~repro.sim.timeline.Timeline` reconstructs the
        target (nearest keyframe + codec delta replays) and restores the
        value store, memories, and journal in place; the engine then
        resets its settle bookkeeping and re-derives every combinational
        signal.  Retained entries survive the jump, so repeating
        ``set_time`` or jumping forward within the window keeps working.
        """
        if self.timeline is None:
            raise TimelineError(
                "time travel disabled: no retained history — construct "
                "Simulator(snapshots=N) or Simulator(snapshot_bytes=N)"
            )
        self.timeline.restore(time)
        self._time = time
        self._finished = None
        self._pending_full = False
        self._dirty.clear()
        self._tick_changed.clear()
        self._tick_mem = False
        self.design.comb(self._v, self._w, self.mems)

    def _retain_current_time(self):
        """History-walk hook: make the current cycle a valid ``set_time``
        target and remember the finished flag (restored after the walk —
        intermediate jumps clear it).

        Record only when the current cycle is not already retained:
        ``record`` drops entries at-or-after its time (rewind +
        re-execution semantics), so recording right after a ``set_time``
        — when nothing was re-executed — would truncate the still-valid
        forward window.  The trade-off: state changed since the retained
        entry (pokes after a rewind, before any step) is reverted to the
        recorded state by the walk's final restore.
        """
        self._settle()
        if self._time not in self.timeline:
            # evict=False: a read-only query must not push the oldest
            # retained cycle out of a full ring/budget.
            self.timeline.record(self._time, evict=False)
        return self._finished

    def _restore_current_time(self, t0: int, token) -> None:
        if self.get_time() != t0:
            self.set_time(t0)
        self._finished = token

    # -- observability (repro.obs) ------------------------------------------

    def stats(self) -> dict:
        """Always-available runtime counters, whatever the obs mode.

        Ticks and settle-shape counts live on the engine, cone-cache
        hit/miss/fallback counts on the (possibly shared) compiled
        design, and history stats on the bound timeline.  All are plain
        ints maintained unconditionally; reading them costs nothing
        beyond this call.
        """
        design = self.design
        out = {
            "ticks": self._stat_ticks,
            "settle_full": self._stat_settle_full,
            "settle_seeds": self._stat_settle_seeds,
            "settle_tick": self._stat_settle_tick,
            "cone_hits": design.stat_cone_hits,
            "cone_misses": design.stat_cone_misses,
            "cone_fallbacks": design.stat_cone_fallbacks,
            "printfs": len(self._printf_out),
        }
        timeline = self.timeline
        if timeline is not None:
            out.update(
                {
                    "timeline_entries": len(timeline),
                    "timeline_records": timeline.stat_records,
                    "timeline_keyframes": timeline.stat_keyframes,
                    "timeline_evictions": timeline.stat_evictions,
                    "snapshot_bytes": timeline.nbytes,
                    "timeline_compression_ratio": timeline.compression_ratio(),
                }
            )
        return out

    def _collect_metrics(self, reg) -> None:
        """Snapshot-time collector: fold the always-on ints into metrics."""
        s = self.stats()
        reg.counter("sim_ticks_total", "Clock posedges executed").set_total(s["ticks"])
        reg.counter(
            "sim_settle_full_total", "Full comb re-evaluations"
        ).set_total(s["settle_full"])
        reg.counter(
            "sim_settle_seeds_total", "Merged dirty-set cone settles"
        ).set_total(s["settle_seeds"])
        reg.counter(
            "sim_settle_tick_total", "Activity-tracked clock-edge settles"
        ).set_total(s["settle_tick"])
        reg.counter(
            "sim_cone_cache_hits_total", "Mask-cone cache hits"
        ).set_total(s["cone_hits"])
        reg.counter(
            "sim_cone_cache_misses_total", "Mask-cone cache compiles"
        ).set_total(s["cone_misses"])
        reg.counter(
            "sim_cone_fallback_total",
            "Per-statement fallbacks after MASK_CONE_CAP saturation",
        ).set_total(s["cone_fallbacks"])
        if "timeline_entries" in s:
            reg.gauge(
                "sim_timeline_entries", "Retained history entries"
            ).set(s["timeline_entries"])
            reg.counter(
                "sim_timeline_records_total", "History entries recorded"
            ).set_total(s["timeline_records"])
            reg.counter(
                "sim_timeline_keyframes_total", "Timeline keyframes taken"
            ).set_total(s["timeline_keyframes"])
            reg.counter(
                "sim_timeline_evictions_total", "Head-keyframe fold-forward evictions"
            ).set_total(s["timeline_evictions"])
            reg.gauge(
                "sim_snapshot_bytes", "Bytes held by the retained history window"
            ).set(s["snapshot_bytes"])
            reg.gauge(
                "sim_timeline_compression_ratio",
                "All-keyframes-equivalent bytes over retained bytes",
            ).set(s["timeline_compression_ratio"])

    # -- state fingerprinting ----------------------------------------------

    def state_digest(self) -> str:
        """A stable fingerprint of the complete settled simulator state.

        Hashes the raw value-table buffer (``memoryview``/``tobytes`` on
        the typed backends — no per-signal boxing) plus every memory, so
        two simulators agree iff they are bit-identical.  Backend
        independent: every store serializes to the same 64-bit lane bytes.
        Shard workers report this with their results; the aggregator uses
        it to prove replicated shards stayed deterministic.
        """
        self._settle()
        h = hashlib.sha1(self.store.digest_bytes())
        for spec, mem in zip(self.design.mems, self.mems, strict=False):
            if spec.width <= LANE_BITS:
                h.update(array("Q", mem).tobytes())
            else:
                h.update(repr(mem).encode())
        return h.hexdigest()

    # -- SimulatorInterface ------------------------------------------------------

    def get_value(self, path: str) -> int:
        self._settle()
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        return self._w[idx] if idx in self._w else self._v[idx]

    def set_value(self, path: str, value: int) -> None:
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        self._drive(idx, value)

    @property
    def can_set_value(self) -> bool:
        return True

    def hierarchy(self) -> HierNode:
        return self.design.hierarchy

    def clock_name(self) -> str:
        return self.design.signals[self.design.clock_index].path

    def add_clock_callback(self, fn) -> int:
        cb_id = self._next_cb_id
        self._next_cb_id += 1
        self._callbacks[cb_id] = fn
        self._cb_list = tuple(self._callbacks.values())
        return cb_id

    def remove_clock_callback(self, cb_id: int) -> None:
        self._callbacks.pop(cb_id, None)
        self._cb_list = tuple(self._callbacks.values())

    def get_time(self) -> int:
        return self._time
