"""The cycle-based RTL simulation engine.

Zero-delay synchronous semantics (the two facts hgdb's breakpoint emulation
relies on, paper Sec. 3): per cycle the engine settles all combinational
logic, fires clock-edge callbacks while every value is stable, then updates
registers and memories and advances time.

Optional state snapshots give the live simulator ``set_time`` support —
the hook reverse debugging needs when no trace replay is available.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.stmt import Circuit
from .compiler import CompiledDesign, compile_design
from .interface import (
    HierNode,
    SimulationFinished,
    SimulatorError,
    SimulatorInterface,
)


@dataclass(slots=True)
class _Snapshot:
    time: int
    values: list[int]
    mem_copy: list[list[int]] | None = None


class Simulator(SimulatorInterface):
    """Execute a compiled Low-form circuit.

    Args:
        circuit: the Low-form circuit (``design.low``).
        top_path: hierarchical prefix for the root instance (defaults to the
            main module name).  Use e.g. ``"TestHarness.dut"`` to emulate a
            testbench wrapper around the generated IP (paper Sec. 3.4).
        snapshots: how many per-cycle state snapshots to retain (ring
            buffer); 0 disables ``set_time``.
        trace: an optional trace sink with ``begin(sim)`` / ``sample(sim)``
            methods (see ``repro.trace.VcdWriter.attach``).
    """

    def __init__(
        self,
        circuit: Circuit,
        top_path: str | None = None,
        snapshots: int = 0,
        trace=None,
    ):
        self.design: CompiledDesign = compile_design(circuit, top_path)
        self.values: list[int] = self.design.initial_values()
        self.mems: list[list[int]] = self.design.initial_mems()
        self._time = 0
        self._finished: int | None = None
        self._callbacks: dict[int, object] = {}
        self._cb_list: tuple = ()
        self._dirty = False
        self._next_cb_id = 1
        self._snap_limit = snapshots
        self._snapshots: dict[int, _Snapshot] = {}
        self._mem_undo_current: list[tuple[int, int, int]] = []
        self._trace = trace
        self._printf_out: list[str] = []
        self._install_printf()
        self.design.comb(self.values, self.mems)
        if trace is not None:
            trace.begin(self)

    # -- printf plumbing ----------------------------------------------------

    def _install_printf(self) -> None:
        specs = self.design.printf_specs
        out = self._printf_out

        def _pf(index: int, *args: int) -> None:
            fmt, _n = specs[index]
            text = fmt
            for a in args:
                text = text.replace("{}", str(a), 1)
            out.append(text)
            print(text)

        # Patch the generated tick()'s namespace.
        self.design.tick.__globals__["_pf"] = _pf

    @property
    def printf_output(self) -> list[str]:
        return self._printf_out

    # -- basic control -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished is not None

    @property
    def exit_code(self) -> int | None:
        return self._finished

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input port (by local or full name)."""
        idx = self.design.top_inputs.get(name)
        if idx is None:
            idx = self.design.signal_index.get(name)
        if idx is None:
            raise SimulatorError(f"no such input {name!r}")
        width = self.design.signals[idx].width
        self.values[idx] = value & ((1 << width) - 1)
        self.design.comb(self.values, self.mems)

    def peek(self, name: str) -> int:
        """Read any signal by local top-level or full hierarchical name."""
        root = self.design.hierarchy.path
        idx = self.design.signal_index.get(name)
        if idx is None:
            idx = self.design.signal_index.get(f"{root}.{name}")
        if idx is None:
            raise SimulatorError(f"no such signal {name!r}")
        return self.values[idx]

    def peek_mem(self, path: str, addr: int) -> int:
        """Read a memory word (full hierarchical memory path)."""
        root = self.design.hierarchy.path
        for spec in self.design.mems:
            if spec.path == path or spec.path == f"{root}.{path}":
                return self.mems[spec.index][addr % spec.depth]
        raise SimulatorError(f"no such memory {path!r}")

    def reset(self, cycles: int = 1) -> None:
        """Assert reset for ``cycles`` clock cycles, then deassert."""
        self.values[self.design.reset_index] = 1
        self.design.comb(self.values, self.mems)
        self.step(cycles)
        self.values[self.design.reset_index] = 0
        self.design.comb(self.values, self.mems)

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` posedges."""
        v, m = self.values, self.mems
        comb, tick = self.design.comb, self.design.tick
        cb_list = self._cb_list
        for _ in range(cycles):
            if self._finished is not None:
                return
            comb(v, m)
            if self._trace is not None:
                self._trace.sample(self)
            if cb_list:
                for fn in cb_list:
                    fn(self)
                cb_list = self._cb_list  # callbacks may attach/detach
                if self._dirty:
                    # a callback poked a value: re-settle before the edge
                    self._dirty = False
                    comb(v, m)
            if self._snap_limit:
                self._take_snapshot()
            try:
                tick(v, m, self._time)
            except SimulationFinished as fin:
                self._finished = fin.exit_code
                self._time += 1
                comb(v, m)
                return
            self._time += 1
        comb(v, m)

    def run(self, max_cycles: int = 1_000_000) -> int | None:
        """Run until a ``Stop`` fires or ``max_cycles`` elapse.  Returns the
        exit code, or None on timeout."""
        budget = max_cycles
        while budget > 0 and self._finished is None:
            chunk = min(budget, 1024)
            self.step(chunk)
            budget -= chunk
        return self._finished

    # -- snapshots / reverse execution ------------------------------------------

    def _take_snapshot(self) -> None:
        snap = _Snapshot(self._time, self.values.copy())
        # Memories are copied wholesale when the total footprint is modest;
        # for very large memories snapshotting degrades to register-only
        # state (set_time then diverges on memory contents — the trace
        # replay engine is the full-fidelity path for long reverse runs).
        total_words = sum(spec.depth for spec in self.design.mems)
        if total_words <= 1 << 16:
            snap.mem_copy = [mem.copy() for mem in self.mems]
        self._snapshots[self._time] = snap
        if len(self._snapshots) > self._snap_limit:
            oldest = min(self._snapshots)
            del self._snapshots[oldest]

    @property
    def can_set_time(self) -> bool:
        return self._snap_limit > 0

    def set_time(self, time: int) -> None:
        """Restore simulator state to a previously snapshot cycle."""
        if not self._snap_limit:
            raise SimulatorError("snapshots disabled; cannot set_time")
        snap = self._snapshots.get(time)
        if snap is None:
            available = sorted(self._snapshots)
            raise SimulatorError(
                f"no snapshot for time {time}; available: "
                f"{available[:3]}..{available[-3:] if available else []}"
            )
        # Mutate in place: step() holds direct references to these lists
        # while callbacks (which may call set_time for reverse debugging)
        # are running.
        self.values[:] = snap.values
        if snap.mem_copy is not None:
            for mem, saved in zip(self.mems, snap.mem_copy):
                mem[:] = saved
        self._time = time
        self._finished = None
        self.design.comb(self.values, self.mems)

    # -- SimulatorInterface ------------------------------------------------------

    def get_value(self, path: str) -> int:
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        return self.values[idx]

    def set_value(self, path: str, value: int) -> None:
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        width = self.design.signals[idx].width
        self.values[idx] = value & ((1 << width) - 1)
        self.design.comb(self.values, self.mems)

    @property
    def can_set_value(self) -> bool:
        return True

    def hierarchy(self) -> HierNode:
        return self.design.hierarchy

    def clock_name(self) -> str:
        return self.design.signals[self.design.clock_index].path

    def add_clock_callback(self, fn) -> int:
        cb_id = self._next_cb_id
        self._next_cb_id += 1
        self._callbacks[cb_id] = fn
        self._cb_list = tuple(self._callbacks.values())
        return cb_id

    def remove_clock_callback(self, cb_id: int) -> None:
        self._callbacks.pop(cb_id, None)
        self._cb_list = tuple(self._callbacks.values())

    def get_time(self) -> int:
        return self._time
