"""Delta codecs: how a :class:`~repro.sim.timeline.Timeline` stores one
cycle's worth of state change.

A codec is a thin strategy object between the timeline and the value
store.  The *store* owns the representation-specific work (each backend —
list / ``array('Q')`` / numpy — provides its own vectorized encode,
apply, and byte-accounting paths, see ``repro.sim.store``); the codec
picks which family of representation a timeline entry uses:

* :class:`RawCodec` — store-native deltas exactly as ``state_delta``
  produced them (``{index: value}`` dicts on the list/array backends,
  index/value array pairs on numpy).  This is the seed ring's behavior.
* :class:`RleCodec` — run-length-encoded deltas: consecutive signal
  indices collapse into ``(start, count)`` runs over one flat typed value
  buffer.  Registers of a module are allocated adjacently in the value
  table, so a design whose per-cycle activity is a handful of hot
  registers stores one run of a few words instead of a boxed dict —
  roughly an order of magnitude fewer bytes per cycle, which is the
  lever behind the ≥8x rewind-window bar in ``benchmarks/bench_timeline.py``.

Codecs only cover the *narrow state delta*: keyframes, wide (>64-bit)
overflow copies, and memory-word deltas are codec-independent (see
``timeline.py``).

Selection: ``Timeline(codec=...)`` / ``Simulator(snapshot_codec=...)``
take a name; ``None`` defers to ``$REPRO_TIMELINE_CODEC``, then
``"raw"``.  Property tests pin both codecs bit-identical to each other
and to the uncompressed reference path.
"""

from __future__ import annotations

import os

from ..interface import SimulatorError

#: Environment override for the default codec.
CODEC_ENV = "REPRO_TIMELINE_CODEC"

CODEC_KINDS = ("raw", "rle")


class DeltaCodec:
    """Strategy for one timeline's delta entries.

    Every method takes the owning :class:`~repro.sim.store.ValueStore`:
    deltas are store-native opaque objects, and the store is the only
    party that knows how to traverse them (vectorized on numpy).
    """

    name = "raw"

    def encode(self, store, delta):
        """Store-native delta -> entry payload (raw: identity)."""
        return delta

    def apply(self, store, buf, encoded) -> None:
        """Replay an encoded delta onto a captured narrow buffer."""
        store.apply_delta(buf, encoded)

    def nbytes(self, store, encoded) -> int:
        """Approximate retained bytes of one encoded delta."""
        return store.delta_nbytes(encoded)

    def pairs(self, store, encoded) -> list[tuple[int, int]]:
        """Sorted ``(index, value)`` pairs — the backend-independent view
        used by the wire serialization and divergence comparison."""
        return store.delta_pairs(encoded)


class RawCodec(DeltaCodec):
    """Store deltas exactly as the value store produced them."""

    name = "raw"


class RleCodec(DeltaCodec):
    """Run-length-encode deltas over consecutive signal indices."""

    name = "rle"

    def encode(self, store, delta):
        return store.encode_rle(delta)

    def apply(self, store, buf, encoded) -> None:
        store.apply_rle(buf, encoded)

    def nbytes(self, store, encoded) -> int:
        return store.rle_nbytes(encoded)

    def pairs(self, store, encoded) -> list[tuple[int, int]]:
        return store.rle_pairs(encoded)


_CODECS = {"raw": RawCodec, "rle": RleCodec}


def resolve_codec_kind(kind: str | None) -> str:
    """Resolve a requested codec name to a concrete one.

    ``None`` defers to ``$REPRO_TIMELINE_CODEC``, then ``"raw"`` (the
    seed ring's representation).
    """
    if kind is None:
        kind = os.environ.get(CODEC_ENV) or "raw"
    if kind not in CODEC_KINDS:
        raise SimulatorError(
            f"unknown timeline codec {kind!r}; expected one of {CODEC_KINDS}"
        )
    return kind


def make_codec(kind: str | None) -> DeltaCodec:
    """Build a codec instance (see :func:`resolve_codec_kind`)."""
    return _CODECS[resolve_codec_kind(kind)]()
