"""The unified time-travel subsystem.

Every reverse-debugging frontend in this repository — the live
``Simulator``'s ``set_time``, the VCD ``ReplayEngine``, shard workers
streaming history to the aggregator — answers the same two questions:
*which cycles can I go back to* and *what was the state there*.  This
module owns both:

* :class:`Timeline` — compressed state history for a live simulation: a
  deque of entries bound to one :class:`~repro.sim.store.ValueStore` (and
  the simulator's memories), where the head entry is always a full
  *keyframe* and later entries are per-cycle state deltas encoded by a
  pluggable codec (``raw`` = store-native dicts/array-pairs, ``rle`` =
  run-length-encoded typed buffers — see ``codec.py``).  Optional
  periodic keyframes every K cycles bound rewind latency; retention is
  bounded by entry count (the classic ring) and/or a byte budget.
* :class:`FullTraceTimeline` — the replay engine's view: a trace retains
  every cycle by construction, so the "timeline" is just the full cycle
  range with zero storage of its own.
* :class:`TimelineView` — the query surface both share (window, retained
  times, membership, ``describe``), which the console's ``timeline``
  command and :meth:`SimulatorInterface.history` are written against.
* :func:`first_timeline_divergence` — compare two serialized timelines
  (``Timeline.to_wire``) cycle by cycle and name the first divergent
  cycle *and signal/memory word*.  The shard aggregator uses this to turn
  a digest mismatch ("replicas disagree") into a localized bug report
  ("shard 2 diverged at cycle 37 on ``Top.core.acc``").

Out-of-window requests raise :class:`TimelineError`, which subclasses
both :class:`~repro.sim.interface.SimulatorError` (the interface
contract) and :class:`ValueError` (so plain callers get a conventional
exception) and always names the retained window.
"""

from __future__ import annotations

import sys
import warnings
from collections import deque
from dataclasses import dataclass

from ..interface import SimulatorError
from .codec import DeltaCodec, make_codec

#: Designs whose memories total more than this many words do not get
#: memory history (registers and inputs still do): copying megaword
#: memories into keyframes would dwarf the state they debug.  The
#: timeline warns once instead of silently degrading.
MEM_HISTORY_WORD_CAP = 1 << 16

#: Fixed per-entry overhead charged to the byte budget (entry object +
#: deque slot); keeps zero-delta cycles from looking free.
_ENTRY_OVERHEAD = 64


class TimelineError(SimulatorError, ValueError):
    """A time-travel request outside the retained window (or with history
    disabled).  Subclasses both ``SimulatorError`` and ``ValueError``."""


@dataclass(slots=True)
class TimelineEntry:
    """One retained cycle.

    A *keyframe* entry stores full copies (``values`` — the store-native
    narrow buffer — and ``mem_copy``); a *delta* entry stores only the
    codec-encoded state change since the previous entry (``delta`` /
    ``delta_mem``).  ``wide`` is a full copy of the >64-bit overflow
    values on every entry — wide signals are too rare to delta — and None
    on designs without them.
    """

    time: int
    values: object | None = None
    wide: dict | None = None
    mem_copy: list[list[int]] | None = None
    delta: object | None = None
    delta_mem: dict | None = None
    # Byte estimate, maintained eagerly only under a byte budget (the
    # entry-limited ring skips per-cycle accounting; Timeline.nbytes
    # computes lazily there).
    nbytes: int = 0


class TimelineView:
    """The read-only query surface every time-travel backend exposes.

    ``Simulator.timeline`` (a :class:`Timeline`) and
    ``ReplayEngine.timeline`` (a :class:`FullTraceTimeline`) both
    implement this, so frontends — the console's ``timeline`` command,
    ``SimulatorInterface.history`` — work identically on live and
    replayed runs.
    """

    def window(self) -> tuple[int, int] | None:
        """``(oldest, newest)`` retained cycle, or None when empty."""
        raise NotImplementedError

    def times(self) -> list[int]:
        """Every retained cycle, ascending."""
        raise NotImplementedError

    def __contains__(self, time: int) -> bool:
        w = self.window()
        return w is not None and w[0] <= time <= w[1]

    def __len__(self) -> int:
        return len(self.times())

    def prev_time(self, time: int) -> int | None:
        """The newest retained cycle strictly before ``time`` (reverse
        stepping), or None when history is exhausted."""
        best = None
        for t in self.times():
            if t >= time:
                break
            best = t
        return best

    @property
    def nbytes(self) -> int:
        """Approximate bytes retained (0 when history costs nothing,
        e.g. a trace that is already on disk)."""
        return 0

    def describe(self) -> str:
        """One human-readable summary line (console ``timeline``)."""
        w = self.window()
        if w is None:
            return "timeline: empty (no cycles retained yet)"
        return f"timeline: cycles {w[0]}..{w[1]} ({len(self)} retained)"


class FullTraceTimeline(TimelineView):
    """A replayed trace retains every cycle; nothing is stored here."""

    def __init__(self, n_cycles: int, label: str = "trace"):
        self.n_cycles = n_cycles
        self.label = label

    def window(self) -> tuple[int, int] | None:
        return (0, self.n_cycles - 1) if self.n_cycles else None

    def times(self) -> list[int]:
        return list(range(self.n_cycles))

    def __contains__(self, time: int) -> bool:
        return 0 <= time < self.n_cycles

    def __len__(self) -> int:
        return self.n_cycles

    def prev_time(self, time: int) -> int | None:
        t = min(time, self.n_cycles) - 1
        return t if t >= 0 else None

    def describe(self) -> str:
        if not self.n_cycles:
            return f"timeline: empty {self.label}"
        return (
            f"timeline: cycles 0..{self.n_cycles - 1} "
            f"({self.n_cycles} retained, full {self.label})"
        )


class Timeline(TimelineView):
    """Compressed keyframe+delta state history for one live simulation.

    The timeline owns everything the engine's snapshot ring used to
    scatter across ``Simulator`` internals: the entry deque, the by-time
    index, the per-cycle delta baseline, and the memory-write journal the
    generated journaling tick feeds (``mem_written`` — bound once and
    mutated in place; generated code holds its ``add`` across rewinds).

    Invariants:

    * entry times are strictly increasing; :meth:`record` drops any stale
      suffix at-or-after the new time first (rewind + re-execution);
    * the head entry is always a keyframe (eviction folds an evicted
      keyframe into its delta successor in O(delta));
    * with ``keyframe_every=K`` a fresh keyframe is inserted every K
      entries, bounding rewind reconstruction to K delta replays.

    Args:
        store: the simulator's value store (restored in place on rewind).
        mems: the simulator's live memory lists (restored in place).
        mem_specs: the compiled design's :class:`MemSpec` list — decides
            memory-history gating against :data:`MEM_HISTORY_WORD_CAP`.
        limit: retain at most this many entries (None = unbounded).
        byte_budget: retain at most ~this many bytes (None = unbounded).
            At least one entry is always kept.
        codec: ``"raw"`` / ``"rle"`` / None (``$REPRO_TIMELINE_CODEC``,
            then ``"raw"``).
        keyframe_every: insert a full keyframe every K entries (0 = only
            the folded head keyframe — the seed ring's behavior).
    """

    def __init__(
        self,
        store,
        mems: list[list[int]],
        mem_specs=(),
        *,
        limit: int | None = None,
        byte_budget: int | None = None,
        codec: str | DeltaCodec | None = None,
        keyframe_every: int = 0,
    ):
        if limit is None and byte_budget is None:
            raise SimulatorError("timeline needs a limit or a byte budget")
        if limit is not None and limit <= 0:
            raise SimulatorError(f"timeline entry limit must be > 0, got {limit}")
        if byte_budget is not None and byte_budget <= 0:
            raise SimulatorError(
                f"timeline byte budget must be > 0, got {byte_budget}"
            )
        self.store = store
        self.mems = mems
        self.codec: DeltaCodec = (
            codec if isinstance(codec, DeltaCodec) else make_codec(codec)
        )
        self.limit = limit
        self.byte_budget = byte_budget
        self.keyframe_every = keyframe_every
        self.entries: deque[TimelineEntry] = deque()
        self.by_time: dict[int, TimelineEntry] = {}
        #: Memory-write journal fed by the generated journaling tick.
        #: Mutated in place, never rebound (bound ``add`` lives in the
        #: engine's step loop across rewinds).
        self.mem_written: set[tuple[int, int]] = set()
        self._base = None          # state baseline for the next delta
        self._since_key = 0        # delta entries since the last keyframe
        self._nbytes = 0
        # Always-on history stats: plain ints read lazily by repro.obs
        # collectors / Simulator.stats(); never consulted on the hot path.
        self.stat_keyframes = 0
        self.stat_evictions = 0
        self.stat_records = 0
        total_words = sum(spec.depth for spec in mem_specs)
        self.snap_mems = bool(mem_specs) and total_words <= MEM_HISTORY_WORD_CAP
        if mem_specs and not self.snap_mems:
            warnings.warn(
                f"timeline: design has {total_words} memory words "
                f"(> cap {MEM_HISTORY_WORD_CAP}); memory history disabled — "
                f"set_time will restore registers and inputs but not "
                f"memory contents",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- view surface ------------------------------------------------------

    def window(self) -> tuple[int, int] | None:
        if not self.entries:
            return None
        return (self.entries[0].time, self.entries[-1].time)

    def times(self) -> list[int]:
        return [e.time for e in self.entries]

    def __contains__(self, time: int) -> bool:
        return time in self.by_time

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def nbytes(self) -> int:
        if self.byte_budget is not None:
            return self._nbytes  # maintained eagerly for eviction
        return sum(self._entry_nbytes(e) for e in self.entries)

    def describe(self) -> str:
        w = self.window()
        budget = (
            f", budget {_fmt_bytes(self.byte_budget)}" if self.byte_budget else ""
        )
        kf = f", keyframe every {self.keyframe_every}" if self.keyframe_every else ""
        if w is None:
            return f"timeline: empty (codec {self.codec.name}{budget}{kf})"
        return (
            f"timeline: cycles {w[0]}..{w[1]} ({len(self)} retained, "
            f"{_fmt_bytes(self.nbytes)}, codec {self.codec.name}{budget}{kf})"
        )

    # -- recording ---------------------------------------------------------

    def record(self, time: int, evict: bool = True) -> None:
        """Retain the store's current (settled) state as cycle ``time``.

        Re-executing after a rewind drops the stale suffix first: entries
        at-or-after ``time`` describe the previous run.  During plain
        forward stepping the tail sits at ``time - 1`` and the stale
        check is a single comparison.

        ``evict=False`` lets the new entry transiently exceed the
        retention bounds — used by read-only history walks, which must
        not push the oldest retained cycle out of the window just to
        make the current cycle restorable.  The next regular ``record``
        trims back to bounds.
        """
        entries = self.entries
        budget = self.byte_budget
        while entries and entries[-1].time >= time:
            dead = entries.pop()
            del self.by_time[dead.time]
            self._nbytes -= dead.nbytes
        store = self.store
        if self._base is None or not entries or (
            self.keyframe_every and self._since_key >= self.keyframe_every
        ):
            entry = self._make_keyframe(time)
        else:
            delta = store.state_delta(self._base)
            encoded = self.codec.encode(store, delta)
            delta_mem: dict | None = None
            if self.snap_mems:
                mems = self.mems
                delta_mem = {
                    key: mems[key[0]][key[1]] for key in self.mem_written
                }
                self.mem_written.clear()
            entry = TimelineEntry(
                time,
                wide=store.copy_wide(),
                delta=encoded,
                delta_mem=delta_mem,
            )
            self._since_key += 1
        entries.append(entry)
        self.by_time[time] = entry
        self.stat_records += 1
        if budget is not None:
            # Byte accounting stays off the per-cycle path unless a
            # budget actually needs it.
            entry.nbytes = self._entry_nbytes(entry)
            self._nbytes += entry.nbytes
            if evict:
                while len(entries) > 1 and self._nbytes > budget:
                    self._evict_oldest()
        limit = self.limit
        if evict and limit is not None:
            while len(entries) > limit and len(entries) > 1:
                self._evict_oldest()

    def _make_keyframe(self, time: int) -> TimelineEntry:
        self.stat_keyframes += 1
        store = self.store
        values = store.copy_narrow()
        mem_copy = (
            [mem.copy() for mem in self.mems] if self.snap_mems else None
        )
        self._base = store.capture_state()
        self.mem_written.clear()
        self._since_key = 0
        return TimelineEntry(
            time,
            values=values,
            wide=store.copy_wide(),
            mem_copy=mem_copy,
        )

    # -- retention ---------------------------------------------------------

    def _evict_oldest(self) -> None:
        """Drop the head keyframe by folding it into its successor —
        O(successor delta), never a rescan of the whole state."""
        self.stat_evictions += 1
        old = self.entries.popleft()
        del self.by_time[old.time]
        self._nbytes -= old.nbytes
        if not self.entries:
            return
        nxt = self.entries[0]
        if nxt.values is not None:
            return  # successor is already a (periodic) keyframe
        vals = old.values
        self.codec.apply(self.store, vals, nxt.delta)
        nxt.values = vals
        # nxt.wide is already a full copy — the keyframe's simply drops.
        if old.mem_copy is not None:
            mems = old.mem_copy
            for (mi, a), val in (nxt.delta_mem or {}).items():
                mems[mi][a] = val
            nxt.mem_copy = mems
        nxt.delta = None
        nxt.delta_mem = None
        if self.byte_budget is not None:
            self._nbytes -= nxt.nbytes
            nxt.nbytes = self._entry_nbytes(nxt)
            self._nbytes += nxt.nbytes

    # -- restoring ---------------------------------------------------------

    def restore(self, time: int) -> TimelineEntry:
        """Rewind the bound store (and memories) to ``time``, in place.

        Reconstruction replays codec deltas forward from the nearest
        keyframe at-or-before the target.  Retained entries are left
        untouched, so repeating ``restore`` or jumping forward to another
        retained time keeps working; stale entries are invalidated lazily
        by the next :meth:`record` once re-execution overwrites them.
        """
        entry = self.by_time.get(time)
        if entry is None:
            raise TimelineError(self._out_of_window(time))
        store = self.store
        # Nearest keyframe at-or-before the target: restart the segment
        # whenever a keyframe passes by (periodic keyframes make this the
        # rewind-latency bound).
        segment: list[TimelineEntry] = []
        for e in self.entries:
            if e.values is not None:
                segment = [e]
            else:
                segment.append(e)
            if e is entry:
                break
        vals = store.clone_narrow(segment[0].values)
        mems_rec = (
            [mem.copy() for mem in segment[0].mem_copy]
            if segment[0].mem_copy is not None
            else None
        )
        tail_base = None
        for e in segment[1:]:
            if e is entry:
                # The state at the target's *predecessor*: it becomes the
                # delta baseline for the entry re-taken at `time`.
                tail_base = store.capture_state_from(vals)
            self.codec.apply(store, vals, e.delta)
            if mems_rec is not None and e.delta_mem:
                for (mi, a), val in e.delta_mem.items():
                    mems_rec[mi][a] = val
        # Restore buffers/mems/journal in place: generated code and the
        # engine's step loop hold direct references to these objects
        # (including the journal's bound ``add``) while callbacks — which
        # may call set_time for reverse debugging — are running.
        store.restore_narrow(vals)
        store.restore_wide(entry.wide)
        if mems_rec is not None:
            for mem, saved in zip(self.mems, mems_rec, strict=False):
                mem[:] = saved
        self.mem_written.clear()
        if entry.values is None:
            # Baselines for the entry re-taken at `time`: the delta is
            # computed against the predecessor's state, and the memory
            # words the current delta covers changed since then — mark
            # them written so they are recaptured from the restored
            # arrays.
            self._base = tail_base
            self.mem_written.update(entry.delta_mem or ())
        else:
            # Rewound onto a keyframe: the predecessor baseline (if any)
            # is not cheaply available, so the next record() re-keyframes
            # — strictly correct for re-execution from here.
            self._base = None
        return entry

    def _out_of_window(self, time: int) -> str:
        w = self.window()
        if w is None:
            return (
                f"cannot rewind to cycle {time}: timeline is empty "
                f"(no cycles recorded yet)"
            )
        return (
            f"cannot rewind to cycle {time}: retained window is "
            f"{w[0]}..{w[1]} ({len(self)} cycles); raise snapshots= / "
            f"snapshot_bytes= to keep more history"
        )

    # -- byte accounting ---------------------------------------------------

    def compression_ratio(self) -> float:
        """Uncompressed-equivalent bytes / retained bytes.

        The head entry is always a keyframe, so its footprint is what
        every retained cycle would cost without delta compression; the
        ratio is that hypothetical all-keyframes size over the actual
        retained size.  1.0 when empty or when every entry is a keyframe.
        """
        entries = self.entries
        if not entries:
            return 1.0
        actual = self.nbytes
        if actual <= 0:
            return 1.0
        full = self._entry_nbytes(entries[0]) * len(entries)
        return full / actual

    def _entry_nbytes(self, entry: TimelineEntry) -> int:
        store = self.store
        n = _ENTRY_OVERHEAD + store.wide_nbytes()
        if entry.values is not None:
            n += store.keyframe_nbytes(entry.values)
            if entry.mem_copy is not None:
                n += sum(sys.getsizeof(m) for m in entry.mem_copy)
        else:
            n += self.codec.nbytes(store, entry.delta)
            if entry.delta_mem:
                n += sys.getsizeof(entry.delta_mem) + 88 * len(entry.delta_mem)
        return n

    # -- wire serialization ------------------------------------------------

    def to_wire(self) -> dict:
        """A backend-independent JSON-safe rendering of the retained
        window: plain ints only, deltas as ``[start, [values...]]`` runs.

        Shipped by shard workers so the aggregator can localize replica
        divergence (:func:`first_timeline_divergence`) without re-running
        anything.  Keyframes carry only the *state* signals (registers
        and inputs — what the deltas are defined over), so two shards'
        wires compare cycle-for-cycle regardless of store backend or
        codec.
        """
        store = self.store
        state_idx = list(store.state_indices)
        entries_w = []
        for e in self.entries:
            rec: dict = {"t": e.time}
            if e.values is not None:
                vals = e.values
                rec["k"] = [int(vals[i]) for i in state_idx]
                if e.mem_copy is not None:
                    rec["m"] = [[int(wd) for wd in m] for m in e.mem_copy]
            else:
                rec["d"] = _pairs_to_runs(self.codec.pairs(store, e.delta))
                if e.delta_mem:
                    rec["dm"] = sorted(
                        [mi, a, int(v)] for (mi, a), v in e.delta_mem.items()
                    )
            if e.wide:
                rec["w"] = sorted([int(i), int(v)] for i, v in e.wide.items())
            entries_w.append(rec)
        return {
            "v": 1,
            "codec": self.codec.name,
            "state": state_idx,
            "entries": entries_w,
        }


def _pairs_to_runs(pairs) -> list:
    """Sorted ``(index, value)`` pairs -> ``[[start, [values...]], ...]``
    runs of consecutive indices (the wire's RLE)."""
    runs: list = []
    end = None
    for i, v in pairs:
        if end is not None and i == end:
            runs[-1][1].append(v)
        else:
            runs.append([i, [v]])
        end = i + 1
    return runs


def _runs_to_pairs(runs) -> list[tuple[int, int]]:
    out: list[tuple[int, int]] = []
    for start, values in runs:
        out.extend((start + o, v) for o, v in enumerate(values))
    return out


def iter_wire_states(wire: dict):
    """Yield ``(time, state, wide, mems)`` per retained cycle of a
    serialized timeline — ``state`` is a ``{signal index: value}`` dict
    over the design's state signals, ``wide`` the >64-bit overflow dict,
    ``mems`` the full memory contents (None when memory history was
    disabled or never shipped)."""
    state: dict[int, int] = {}
    mems: list[list[int]] | None = None
    for rec in wire.get("entries", ()):
        if "k" in rec:
            state = dict(zip(wire.get("state", ()), rec["k"], strict=False))
            if "m" in rec:
                mems = [list(m) for m in rec["m"]]
        else:
            state = dict(state)
            for i, v in _runs_to_pairs(rec.get("d", ())):
                state[i] = v
            if mems is not None and rec.get("dm"):
                mems = [list(m) for m in mems]
                for mi, a, v in rec["dm"]:
                    mems[mi][a] = v
        wide = {i: v for i, v in rec.get("w", ())}
        yield rec["t"], state, wide, mems


def decode_timeline_states(wire: dict) -> dict:
    """Serialized timeline -> ``{cycle: (state, wide, mems)}``.

    Decoding replays every delta once; callers comparing one timeline
    against several others (the shard aggregator) should decode each
    wire once and hand the results to :func:`first_state_divergence`.
    """
    return {t: (s, w, m) for t, s, w, m in iter_wire_states(wire)}


def first_timeline_divergence(wire_a: dict, wire_b: dict) -> dict | None:
    """Locate the first cycle and signal where two serialized timelines
    disagree.

    Compares the overlapping retained window cycle by cycle, ascending;
    within a cycle, state signals (by index), then wide signals, then
    memory words.  Returns None when the overlap is empty or identical,
    else a dict::

        {"time": cycle, "kind": "signal" | "mem",
         "index": signal_index | [mem_index, addr], "a": ..., "b": ...}
    """
    return first_state_divergence(
        decode_timeline_states(wire_a), decode_timeline_states(wire_b)
    )


def first_state_divergence(states_a: dict, states_b: dict) -> dict | None:
    """:func:`first_timeline_divergence` over pre-decoded state maps."""
    for t in sorted(set(states_a) & set(states_b)):
        sa, wa, ma = states_a[t]
        sb, wb, mb = states_b[t]
        for i in sorted(set(sa) | set(sb)):
            va, vb = sa.get(i), sb.get(i)
            if va != vb:
                return {"time": t, "kind": "signal", "index": i, "a": va, "b": vb}
        for i in sorted(set(wa) | set(wb)):
            va, vb = wa.get(i), wb.get(i)
            if va != vb:
                return {"time": t, "kind": "signal", "index": i, "a": va, "b": vb}
        if ma is not None and mb is not None:
            for mi, (mem_a, mem_b) in enumerate(zip(ma, mb, strict=False)):
                for a_, (va, vb) in enumerate(zip(mem_a, mem_b, strict=False)):
                    if va != vb:
                        return {
                            "time": t,
                            "kind": "mem",
                            "index": [mi, a_],
                            "a": va,
                            "b": vb,
                        }
    return None


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f} KiB"
    return f"{n} B"
