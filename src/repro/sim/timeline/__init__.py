"""repro.sim.timeline — the unified time-travel subsystem.

One :class:`Timeline` object owns compressed keyframe+delta state
history (pluggable ``raw``/``rle`` codecs, periodic keyframes, entry- or
byte-bounded retention) for the live simulator; :class:`FullTraceTimeline`
is the replay engine's zero-cost view of the same API; and
:func:`first_timeline_divergence` compares two serialized timelines for
the shard aggregator's stateful divergence localization.

See ``docs/time_travel.md`` for the architecture and codec trade-offs.
"""

from .codec import (
    CODEC_ENV,
    CODEC_KINDS,
    DeltaCodec,
    RawCodec,
    RleCodec,
    make_codec,
    resolve_codec_kind,
)
from .timeline import (
    MEM_HISTORY_WORD_CAP,
    FullTraceTimeline,
    Timeline,
    TimelineEntry,
    TimelineError,
    TimelineView,
    decode_timeline_states,
    first_state_divergence,
    first_timeline_divergence,
    iter_wire_states,
)

__all__ = [
    "CODEC_ENV",
    "CODEC_KINDS",
    "DeltaCodec",
    "FullTraceTimeline",
    "MEM_HISTORY_WORD_CAP",
    "RawCodec",
    "RleCodec",
    "Timeline",
    "TimelineEntry",
    "TimelineError",
    "TimelineView",
    "decode_timeline_states",
    "first_state_divergence",
    "first_timeline_divergence",
    "iter_wire_states",
    "make_codec",
    "resolve_codec_kind",
]
